//! Batched execution: serving many independent requests per I/O round.
//!
//! The paper's bandwidth story (Section 4.1 discussion) is that a PDM
//! dictionary leaves most of the `D` disks idle during any one lookup —
//! so a server that accumulates `m` independent requests can schedule all
//! their probes together and pay only the per-disk maximum of unique
//! blocks, approaching `⌈m·d'/D⌉` parallel I/Os instead of `m`.
//!
//! ```sh
//! cargo run -p pdm-dict --example batched_lookups
//! ```
//!
//! Two views of the same engine:
//! 1. a raw `BatchPlan` over hand-picked block addresses, showing the
//!    round schedule and its exact cost, and
//! 2. `Dictionary::lookup_batch` serving a request queue, compared
//!    against the sequential loop on the same queries.

use pdm::{BatchPlan, BlockAddr, DiskArray, PdmConfig};
use pdm_dict::{DictParams, Dictionary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The scheduler itself -------------------------------------
    let cfg = PdmConfig::new(4, 16); // D = 4 disks, B = 16 words
    let mut disks = DiskArray::new(cfg, 8);
    // Six requests: disk 0 is asked for three blocks (one duplicated),
    // disks 1 and 2 for one each. The plan dedupes and packs rounds.
    let requests = [
        BlockAddr::new(0, 0),
        BlockAddr::new(0, 1),
        BlockAddr::new(0, 0), // duplicate: coalesced
        BlockAddr::new(1, 5),
        BlockAddr::new(2, 2),
        BlockAddr::new(0, 3),
    ];
    let plan = BatchPlan::new(disks.disks(), &requests);
    println!(
        "plan: {} requests -> {} unique blocks in {} rounds",
        plan.num_requests(),
        plan.num_unique_blocks(),
        plan.num_rounds()
    );
    for r in 0..plan.num_rounds() {
        println!("  round {r}: {:?}", plan.round(r));
    }
    let before = disks.stats();
    let _reads = plan.execute_read(&mut disks);
    println!(
        "charged {} parallel I/Os (the per-disk max)\n",
        disks.stats().since(&before).parallel_ios
    );

    // --- 2. A request queue against the full dictionary --------------
    let params = DictParams::new(4_096, u64::MAX, 2)
        .with_degree(20)
        .with_epsilon(0.5)
        .with_seed(0xBA7);
    let mut dict = Dictionary::new(params, 64)?;
    for k in 0..4_096u64 {
        dict.insert(k * 2_654_435_761 % (1 << 30), &[k, k ^ 0xFF])?;
    }

    // 256 queued requests over 97 hot keys — a repeated key costs its
    // blocks once per batch, and distinct keys share I/O rounds.
    let queue: Vec<u64> = (0..256u64)
        .map(|i| (i * 37 % 97) * 2_654_435_761 % (1 << 30))
        .collect();

    let mut seq_ios = 0;
    for &k in &queue {
        seq_ios += dict.lookup(k).cost.parallel_ios;
    }
    let (answers, batch_cost) = dict.lookup_batch(&queue);
    assert!(answers.iter().all(Option::is_some));
    println!(
        "{} requests: sequential {} I/Os, batched {} I/Os ({:.1}x)",
        queue.len(),
        seq_ios,
        batch_cost.parallel_ios,
        seq_ios as f64 / batch_cost.parallel_ios.max(1) as f64
    );
    Ok(())
}
