//! The Section 3 deterministic load balancing scheme, by itself.
//!
//! ```sh
//! cargo run -p pdm-dict --example load_balancing
//! ```
//!
//! Places items greedily using a fixed expander and compares the maximum
//! load against single-choice hashing, random two-choice, and the Lemma 3
//! bound — the paper's "deterministic balanced allocations".

use expander::params::{lemma3_bound, ExpanderParams};
use expander::SeededExpander;
use loadbalance::baselines::{random_d_choice, single_choice};
use loadbalance::{GreedyBalancer, LoadStats};

fn main() {
    let universe = 1u64 << 40;
    let n = 100_000u64;
    let v = 4096usize;
    let d = 16usize;

    // The deterministic scheme: greedy over a fixed degree-d expander.
    let graph = SeededExpander::new(universe, v / d, d, 0xBA1);
    let mut greedy = GreedyBalancer::new(&graph, 1);
    // The two randomized classics, expressed as the same greedy code over
    // degree-1 and degree-2 random graphs.
    let mut one = single_choice(universe, v, 0xBA2);
    let mut two = random_d_choice(universe, v, 2, 0xBA3);

    for i in 0..n {
        let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % universe;
        greedy.insert(key);
        one.insert(key);
        two.insert(key);
    }

    let g = LoadStats::of(greedy.loads());
    let o = LoadStats::of(one.loads());
    let t = LoadStats::of(two.loads());
    let bound = lemma3_bound(
        n as usize,
        1,
        &ExpanderParams {
            degree: d,
            right_size: v,
            epsilon: 1.0 / 12.0,
            delta: 0.5,
        },
    )
    .expect("premises hold");

    println!("{n} items into {v} buckets (average load {:.2}):\n", g.mean);
    println!(
        "{:<28} {:>8} {:>12} {:>8}",
        "scheme", "max", "max - avg", "stddev"
    );
    for (name, s) in [
        (format!("greedy d = {d} expander"), &g),
        ("single choice".to_string(), &o),
        ("random two-choice".to_string(), &t),
    ] {
        println!(
            "{:<28} {:>8} {:>12.2} {:>8.2}",
            name,
            s.max,
            s.max_deviation(),
            s.stddev
        );
    }
    println!(
        "\nLemma 3 bound for the greedy scheme: {bound:.1} (measured max: {})",
        g.max
    );
    println!(
        "the deterministic scheme tracks the average as tightly as two-choice — with a \
         worst-case guarantee instead of a with-high-probability one"
    );
}
