//! Observability: watch a dictionary work through its exported metrics.
//!
//! ```sh
//! cargo run -p pdm-dict --example observability
//! ```
//!
//! Installs a `MetricsRegistry` on a dictionary via the unified `Dict`
//! trait, runs a small workload, and prints what the telemetry saw:
//! per-op parallel-I/O histograms (the paper's own cost metric),
//! per-disk block counts and their imbalance, rebuild pacing — then the
//! same data as Prometheus text and JSON, ready for scraping.

use pdm::metrics::{MetricsRegistry, DISK_BLOCKS_TOTAL};
use pdm_dict::traits::DICT_OP_PARALLEL_IOS;
use pdm_dict::{Dict, DictParams, Dictionary};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DictParams::new(1_000, 1 << 40, 2)
        .with_degree(20)
        .with_epsilon(0.5)
        .with_seed(7);
    let mut dict = Dictionary::new(params, 128)?;

    // Hook up a registry. Every front-end implements `Dict`, so this
    // works identically for BasicDict, OneProbeStatic, ShardedDictionary …
    let registry = Arc::new(MetricsRegistry::new());
    dict.set_metrics(Some(Arc::clone(&registry)));

    println!("running 2,000 inserts + 3,000 lookups with metrics installed …");
    for k in 0..2_000u64 {
        Dict::insert(&mut dict, k * 977, &[k, k + 1])?;
    }
    for k in 0..3_000u64 {
        Dict::lookup(&mut dict, k * 977); // last third miss
    }
    dict.refresh_gauges();

    let snap = registry.snapshot();

    // 1. The paper's guarantees, read off the histograms.
    let lookups = snap
        .histogram(DICT_OP_PARALLEL_IOS, &[("dict", "rebuild"), ("op", "lookup")])
        .expect("lookup histogram");
    println!(
        "lookup parallel I/Os: count = {}, mean = {:.3}, p50 = {}, p99 = {}, max = {}",
        lookups.count,
        lookups.mean(),
        lookups.percentile(0.50),
        lookups.percentile(0.99),
        lookups.max,
    );

    // 2. Deterministic load balancing, visible as per-disk balance.
    if let Some(imb) = snap.imbalance(DISK_BLOCKS_TOTAL, &[("op", "read")]) {
        println!("read imbalance (max/mean over disks): {imb:.3}");
    }

    // 3. Structure shape and rebuild pacing.
    for g in &snap.gauges {
        if g.name.starts_with("dict_") {
            println!("{} = {}", g.name, g.value);
        }
    }

    // 4. Export formats. Prometheus text for scraping …
    let prom = snap.to_prometheus();
    println!("\n--- prometheus (excerpt) ---");
    for line in prom.lines().filter(|l| l.contains("dict_ops_total")).take(6) {
        println!("{line}");
    }
    // … and JSON for offline analysis.
    let json = snap.to_json();
    println!("\nJSON export: {} bytes (try piping to jq)", json.len());

    // Uninstall: the structure reverts to zero-overhead operation.
    dict.set_metrics(None);
    Ok(())
}
