//! The wire protocol end to end: a [`pdm_server::TcpServer`] serving the
//! engine over a length-prefixed binary protocol on localhost TCP, and
//! out-of-process-style [`pdm_server::TcpClient`] connections driving it.
//!
//! ```sh
//! cargo run -p pdm-server --example tcp_server
//! ```
//!
//! Everything is `std::net` — no async runtime, no serialization crate.
//! One thread per connection blocks in the engine while its request is
//! served, which is exactly what the coalescing engine wants: many
//! blocked connections mean a full batch window. The demo also shows the
//! two failure shapes a wire client sees: a *typed* dictionary error
//! (duplicate key) and a *typed* protocol error for a malformed frame.

use pdm_dict::{Dict, DictParams, Dictionary};
use pdm_server::protocol::{decode_response, read_frame, write_frame, WireResponse};
use pdm_server::{EngineConfig, ServeEngine, ServeError, TcpClient, TcpServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards: Vec<Box<dyn Dict + Send>> = (0..2u64)
        .map(|i| {
            let params = DictParams::new(2_048, u64::MAX, 2)
                .with_degree(16)
                .with_epsilon(1.0)
                .with_seed(0x7C9 + i);
            Ok(Box::new(Dictionary::new(params, 128)?) as Box<dyn Dict + Send>)
        })
        .collect::<Result<_, pdm_dict::DictError>>()?;
    let engine = ServeEngine::new(shards, EngineConfig::default());

    // Bind on an OS-assigned port; a real deployment would use a fixed
    // address ("0.0.0.0:7070") here.
    let server = TcpServer::bind("127.0.0.1:0", engine.client())?;
    let addr = server.local_addr();
    println!("serving the dictionary on tcp://{addr}");

    // Concurrent wire clients: each opens its own connection (the server
    // coalesces *across* connections, so more connections mean larger
    // batch windows, not more contention).
    std::thread::scope(|s| {
        for t in 0..8u64 {
            s.spawn(move || {
                let mut client = TcpClient::connect(addr).unwrap();
                client.ping().unwrap();
                for i in 0..200 {
                    let key = t * 10_000 + i;
                    client.insert(key, &[t, i]).unwrap();
                }
                for i in 0..200 {
                    let key = t * 10_000 + i;
                    assert_eq!(client.lookup(key).unwrap(), Some(vec![t, i]));
                }
            });
        }
    });
    let stats = engine.stats();
    println!(
        "8 connections × 400 ops: {} acked, {:.1} ops per coalesced call, \
         {:.2} parallel I/O rounds per op",
        stats.acked,
        stats.mean_batch(),
        stats.ios_per_op()
    );

    // Failure shapes. A duplicate insert crosses the wire as the same
    // typed error an in-process caller gets:
    let mut probe = TcpClient::connect(addr)?;
    match probe.insert(0, &[0, 0]) {
        Err(ServeError::Dict(e)) => println!("typed dictionary error over the wire: {e}"),
        other => println!("unexpected: {other:?}"),
    }

    // And a malformed frame gets a typed protocol error before the
    // connection is dropped (raw socket, bogus opcode 0xEE):
    let mut raw = std::net::TcpStream::connect(addr)?;
    write_frame(&mut raw, &[0xEE])?;
    if let Some(payload) = read_frame(&mut raw)? {
        if let WireResponse::Err(e) = decode_response(&payload)? {
            println!("malformed frame answered with: {e}");
        }
    }

    // Orderly teardown: stop the listener first (in-flight requests
    // finish), then drain + checkpoint the engine.
    server.shutdown();
    let shards = engine.shutdown();
    println!(
        "shutdown: queues drained, {} records across {} shards handed back",
        shards.iter().map(|d| d.len()).sum::<usize>(),
        shards.len()
    );
    Ok(())
}
