//! The Section 1.2 motivation, live: a file system as an associative
//! memory, with random block access in ~1 parallel I/O.
//!
//! ```sh
//! cargo run -p pdm-dict --example filesystem
//! ```
//!
//! "Let keys consist of a file name and a block number, and associate
//! them with the contents of the given block number of the given file" —
//! and compare against the B-tree's pointer walk.

use pdm_dict::PdmFileSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A file system storing 8-word blocks, on a 64-words-per-device-block
    // simulated array.
    let mut fs = PdmFileSystem::new(4096, 8, 128, 0xF00D)?;

    // Create a few "files" of different sizes.
    let files: &[(u32, u32)] = &[(1, 100), (2, 37), (3, 512)];
    for &(inode, blocks) in files {
        for b in 0..blocks {
            let payload: Vec<u64> = (0..8)
                .map(|w| u64::from(inode) << 32 | u64::from(b * 8 + w))
                .collect();
            fs.write_block(inode, b, &payload)?;
        }
    }
    println!(
        "wrote {} blocks across {} files",
        fs.blocks_stored(),
        files.len()
    );

    // Random access into the middle of file 3 — the operation B-trees
    // make you pay a pointer walk for.
    let before = fs.dictionary().io_stats().parallel_ios;
    let out = fs.read_block(3, 441);
    println!(
        "random read of file 3, block 441: {} parallel I/O(s), first word = {:#x}",
        out.cost.parallel_ios,
        out.satellite.as_ref().expect("present")[0]
    );

    // A burst of random reads: constant I/Os each, no matter the offsets.
    let mut total = 0u64;
    let mut worst = 0u64;
    let reads = 1000;
    for i in 0..reads {
        let (inode, blocks) = files[i % files.len()];
        let b = (i as u32 * 2654435761) % blocks;
        let out = fs.read_block(inode, b);
        assert!(out.found());
        total += out.cost.parallel_ios;
        worst = worst.max(out.cost.parallel_ios);
    }
    println!(
        "{reads} random reads: avg {:.3} parallel I/Os, worst {worst} \
         (a B-tree of this size pays its height ≈ 2-3 every time)",
        total as f64 / reads as f64
    );

    // Overwrite and truncate.
    fs.write_block(2, 5, &[7; 8])?;
    assert_eq!(fs.read_block(2, 5).satellite, Some(vec![7; 8]));
    let removed = fs.delete_file(2, 37)?;
    println!("deleted file 2 ({removed} blocks); reads now miss in 1 I/O:");
    let miss = fs.read_block(2, 5);
    println!(
        "  read(2, 5): found = {}, {} parallel I/O(s)",
        miss.found(),
        miss.cost.parallel_ios
    );

    let after = fs.dictionary().io_stats().parallel_ios;
    println!("\nI/Os since the first random read: {}", after - before);
    Ok(())
}
