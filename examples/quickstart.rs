//! Quickstart: the fully dynamic deterministic dictionary.
//!
//! ```sh
//! cargo run -p pdm-dict --example quickstart
//! ```
//!
//! Creates a dictionary on a simulated disk array, inserts, looks up and
//! deletes keys, and prints the exact parallel-I/O cost of everything —
//! the quantity the SPAA'06 paper's guarantees are about.

use pdm_dict::{DictParams, Dictionary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dictionary for 64-bit keys with 4 words of satellite data each.
    // `capacity` is only the initial sizing — the structure grows by
    // global rebuilding. Degree 20 ≥ the paper's Θ(log u) requirement.
    let params = DictParams::new(10_000, 1 << 40, 4)
        .with_degree(20)
        .with_epsilon(0.5) // Theorem 7's ɛ: averages 1+ɛ lookups, 2+ɛ updates
        .with_seed(42); // fixes the expander sample; everything after is deterministic
    let mut dict = Dictionary::new(params, 128)?;

    println!("inserting 10,000 keys …");
    for k in 0..10_000u64 {
        dict.insert(k * 977, &[k, k + 1, k + 2, k + 3])?;
    }

    // Successful lookup: worst case O(1) parallel I/Os, average ≤ 1 + ɛ.
    let out = dict.lookup(977 * 123);
    println!(
        "lookup(hit):  found = {:?} in {} parallel I/O(s)",
        out.satellite.as_ref().map(|s| s[0]),
        out.cost.parallel_ios
    );
    assert_eq!(out.satellite, Some(vec![123, 124, 125, 126]));

    // Unsuccessful lookup: exactly 1 parallel I/O.
    let miss = dict.lookup(5);
    println!(
        "lookup(miss): found = {} in {} parallel I/O(s)",
        miss.found(),
        miss.cost.parallel_ios
    );

    // Deletion tombstones the key; space is recycled by global rebuilding.
    let (was_present, cost) = dict.delete(977 * 123)?;
    println!(
        "delete:       present = {was_present} in {} parallel I/O(s)",
        cost.parallel_ios
    );
    assert!(!dict.lookup(977 * 123).found());

    let stats = dict.io_stats();
    println!(
        "\ntotals: {} keys live, {} parallel I/Os, {} block reads, {} block writes, {} rebuilds",
        dict.len(),
        stats.parallel_ios,
        stats.block_reads,
        stats.block_writes,
        dict.rebuilds()
    );
    println!(
        "average parallel I/Os per operation: {:.3}",
        stats.parallel_ios as f64 / 10_002.0
    );
    Ok(())
}
