//! The paper's other motivating workload: "webmail or http servers ...
//! typically have to retrieve small quantities of information at a time,
//! typically fitting within a block, but from a very large data set, in a
//! highly random fashion (depending on the desires of an arbitrary set of
//! users)".
//!
//! ```sh
//! cargo run -p pdm-server --example webserver
//! ```
//!
//! Simulates a mailbox-index server the way a server actually runs:
//! many concurrent client threads drive a [`pdm_server::ServeEngine`]
//! through cloned [`pdm_server::DictClient`] handles. Requests route to
//! per-shard worker threads whose queues *coalesce* concurrent
//! operations into batched dictionary calls — so the parallel I/O
//! rounds that one lookup would spend on a nearly-empty bus get shared
//! across every client that was waiting. The busier the server, the
//! bigger the window: batching improves under load, and the worst-case
//! per-op bound the paper proves is what makes that safe to promise.

use expander::seeded::mix64;
use pdm_dict::{Dict, DictParams, Dictionary};
use pdm_server::{EngineConfig, Op, ServeEngine};

const SHARDS: u64 = 4;
const CLIENTS: u64 = 16;
const OPS_PER_CLIENT: u64 = 1_500;
const USERS: u64 = 500;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four shard dictionaries — in a deployment each owns its own disk
    // group, so their I/O rounds overlap in time.
    let shards: Vec<Box<dyn Dict + Send>> = (0..SHARDS)
        .map(|i| {
            let params = DictParams::new(8_192, u64::MAX, 6)
                .with_degree(20)
                .with_epsilon(0.5)
                .with_seed(0x3B + i);
            Ok(Box::new(Dictionary::new(params, 128)?) as Box<dyn Dict + Send>)
        })
        .collect::<Result<_, pdm_dict::DictError>>()?;
    let engine = ServeEngine::new(shards, EngineConfig::default().with_queue_bound(1024));
    let client = engine.client();

    // message key = (user id, message id).
    let key = |user: u64, msg: u64| (user << 32) | msg;

    // Mailbox warm-up: every user gets an inbox, delivered by four
    // concurrent "SMTP" threads pipelining through `submit` so the
    // coalescing windows fill even before the real load arrives.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let client = client.clone();
            s.spawn(move || {
                // Pipeline in windows well under the queue bound, so
                // backpressure never fires on the warm-up path.
                let mut pending = Vec::new();
                for user in (t..USERS).step_by(4) {
                    for m in 0..(4 + user % 13) {
                        let record = vec![user, m, 0xE3A11, 0, 0, 0];
                        pending.push(client.submit(Op::Insert(key(user, m), record)).unwrap());
                        if pending.len() >= 128 {
                            for p in pending.drain(..) {
                                p.wait().unwrap();
                            }
                        }
                    }
                }
                for p in pending {
                    p.wait().unwrap();
                }
            });
        }
    });
    let warm = engine.stats();
    println!(
        "{} messages across {USERS} mailboxes ({} coalesced calls for {} inserts — {:.1} ops/call)",
        warm.acked,
        warm.exec_calls,
        warm.exec_ops,
        warm.mean_batch()
    );

    // The serving loop: CLIENTS threads, each a stream of Zipf-skewed
    // reads with occasional deliveries and deletions — the "arbitrary
    // set of users" of §1. Every thread just calls the sync client API;
    // coalescing happens behind the queues.
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let client = client.clone();
            s.spawn(move || {
                let mut state = 0x5EED ^ (t << 40);
                for _ in 0..OPS_PER_CLIENT {
                    state = mix64(state.wrapping_add(1));
                    // Zipf-ish user pick: collapse the high bits twice.
                    let user = (state % USERS).min(mix64(state) % USERS);
                    let msgs = 4 + user % 13;
                    match state % 10 {
                        0..=6 => {
                            // read a random warm-up message
                            let m = mix64(state ^ 1) % msgs;
                            client.lookup(key(user, m)).unwrap();
                        }
                        7 | 8 => {
                            // delivery; two clients may race to the same
                            // slot — the loser's DuplicateKey is fine.
                            let m = msgs + mix64(state ^ 3) % 1_000_000;
                            let record = [user, m, 0xE3A11, 0, 0, 0];
                            let _ = client.insert(key(user, m), &record);
                        }
                        _ => {
                            // deletion (may miss; users re-delete)
                            let m = mix64(state ^ 2) % msgs;
                            client.delete(key(user, m)).unwrap();
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let stats = engine.stats();
    let served = stats.acked + stats.dict_errors - warm.acked;
    println!(
        "{served} operations from {CLIENTS} concurrent clients in {:.2?}: \
         {:.0} ops/s, {:.1} ops per coalesced dictionary call, \
         {:.2} parallel I/O rounds per op",
        elapsed,
        served as f64 / elapsed.as_secs_f64(),
        stats.mean_batch(),
        stats.ios_per_op()
    );
    println!(
        "admission control: {} overloaded, {} timed out (typed backpressure — nothing dropped)",
        stats.rejected_overloaded, stats.rejected_timedout
    );

    // Graceful shutdown: drain, checkpoint the journals, hand the
    // shards back — the on-disk image is recover-consistent.
    let shards = engine.shutdown();
    let total: usize = shards.iter().map(|d| d.len()).sum();
    println!(
        "graceful shutdown: {} shards handed back holding {total} records",
        shards.len()
    );
    println!(
        "coalescing shares each parallel I/O round across every waiting client — the paper's \
         worst-case per-op bound is what lets the server promise that under *any* load mix (§1.2)"
    );
    Ok(())
}
