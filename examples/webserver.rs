//! The paper's other motivating workload: "webmail or http servers ...
//! typically have to retrieve small quantities of information at a time,
//! typically fitting within a block, but from a very large data set, in a
//! highly random fashion (depending on the desires of an arbitrary set of
//! users)".
//!
//! ```sh
//! cargo run -p pdm-dict --example webserver
//! ```
//!
//! Simulates a mailbox-index server: one record per message, Zipf-skewed
//! users, interleaved reads/writes/deletes — and shows that the
//! deterministic dictionary holds its worst-case I/O guarantee through
//! all of it (the real-time property the paper argues file systems need:
//! no expected-time caveats, no amortization spikes).

use expander::seeded::mix64;
use pdm_dict::{DictParams, Dictionary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let users = 500u64;
    let params = DictParams::new(8_192, u64::MAX, 6)
        .with_degree(20)
        .with_epsilon(0.5)
        .with_seed(0x3B);
    let mut dict = Dictionary::new(params, 128)?;

    // message key = (user id, message id).
    let key = |user: u64, msg: u64| (user << 32) | msg;

    // Mailbox warm-up: every user gets an inbox.
    let mut msg_count = vec![0u64; users as usize];
    for user in 0..users {
        for _ in 0..(4 + user % 13) {
            let m = msg_count[user as usize];
            dict.insert(key(user, m), &[user, m, 0xE3A11, 0, 0, 0])?;
            msg_count[user as usize] += 1;
        }
    }
    println!("{} messages across {users} mailboxes", dict.len());

    // The serving loop: Zipf-skewed random reads with occasional
    // deliveries and deletions.
    let mut state = 0x5EED_u64;
    let mut ops = 0u64;
    let mut total_ios = 0u64;
    let mut worst = 0u64;
    let before = dict.io_stats().parallel_ios;
    for _ in 0..20_000 {
        state = mix64(state.wrapping_add(1));
        // Zipf-ish user pick: collapse the high bits twice.
        let user = (state % users).min(mix64(state) % users);
        let action = state % 10;
        let cost = if action < 7 {
            // read a random message
            let m = msg_count[user as usize];
            if m == 0 {
                continue;
            }
            let out = dict.lookup(key(user, mix64(state ^ 1) % m));
            out.cost
        } else if action < 9 {
            // delivery
            let record = [user, msg_count[user as usize], 0xE3A11, 0, 0, 0];
            let c = dict.insert(key(user, msg_count[user as usize]), &record)?;
            msg_count[user as usize] += 1;
            c
        } else {
            // deletion (may miss — users re-delete; that is fine)
            let m = msg_count[user as usize].max(1);
            dict.delete(key(user, mix64(state ^ 2) % m))?.1
        };
        ops += 1;
        total_ios += cost.parallel_ios;
        worst = worst.max(cost.parallel_ios);
    }
    let after = dict.io_stats().parallel_ios;
    println!(
        "{ops} operations: avg {:.3} parallel I/Os, worst {worst} \
         ({} total I/Os, {} rebuilds)",
        total_ios as f64 / ops as f64,
        after - before,
        dict.rebuilds()
    );
    println!(
        "the worst single operation cost {worst} parallel I/Os — a *constant* set by the \
         incremental-rebuild migration pace, never the Θ(n) stall of an amortized rebuild or a \
         cuckoo rehash: the firm guarantee that lets a server promise real-time behaviour (§1.2)"
    );
    Ok(())
}
