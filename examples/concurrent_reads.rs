//! The paper's concurrency argument, made literal.
//!
//! ```sh
//! cargo run -p pdm-dict --example concurrent_reads
//! ```
//!
//! "All of our algorithms share features that make them suitable for an
//! environment with many concurrent lookups and updates: There is no
//! notion of an index structure or central directory of keys. Lookups
//! and updates go directly to the relevant blocks ... no piece of data
//! is ever moved, once inserted. This makes it easy to keep references
//! to data, and also simplifies concurrency control mechanisms such as
//! locking."
//!
//! Concretely: a built [`OneProbeStatic`] is immutable, its probe
//! addresses are pure functions of the key, so lookups need **no locks
//! at all** — the Rust type system proves it (the threads below share
//! `&OneProbeStatic` and `&DiskArray`; no `Mutex`, no `unsafe`).

use pdm::{DiskArray, PdmConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::one_probe::{OneProbeStatic, OneProbeVariant};
use pdm_dict::DictParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = 13;
    let n = 20_000usize;
    let sigma = 2;
    let mut disks = DiskArray::new(PdmConfig::new(2 * d, 128), 0);
    let mut alloc = DiskAllocator::new(2 * d);
    let entries: Vec<(u64, Vec<u64>)> = (0..n as u64)
        .map(|i| {
            let key = i.wrapping_mul(0x9E37_79B9) % (1 << 40);
            (key, vec![key, !key])
        })
        .collect();
    let params = DictParams::new(n, 1 << 40, sigma)
        .with_degree(d)
        .with_seed(7);
    let (dict, stats) = OneProbeStatic::build(
        &mut disks,
        &mut alloc,
        0,
        &params,
        OneProbeVariant::CaseA,
        &entries,
    )?;
    println!(
        "built one-probe dictionary: {} keys in {} parallel I/Os",
        dict.len(),
        stats.cost.parallel_ios
    );

    // Fan out readers over plain shared references. No locks: the borrow
    // checker accepts this because lookups are &self on both the
    // dictionary and the disk array.
    let threads = 8;
    let per_thread = 50_000usize;
    let start = std::time::Instant::now();
    let total_ios = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let dict = &dict;
            let disks = &disks;
            let entries = &entries;
            handles.push(scope.spawn(move || {
                let mut ios = 0u64;
                let mut state = 0x5EED ^ t as u64;
                for _ in 0..per_thread {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let (key, sat) = &entries[(state >> 33) as usize % entries.len()];
                    let out = dict.lookup_shared(disks, *key);
                    assert_eq!(out.satellite.as_ref(), Some(sat));
                    assert_eq!(out.cost.parallel_ios, 1, "one-probe violated");
                    ios += out.cost.parallel_ios;
                }
                ios
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .sum::<u64>()
    });
    let elapsed = start.elapsed();
    let lookups = threads * per_thread;
    println!(
        "{threads} threads × {per_thread} lookups = {lookups} concurrent one-probe reads, \
         {total_ios} parallel I/Os (exactly 1 each), zero locks, {:.2}s \
         ({:.1}k lookups/s of simulator throughput)",
        elapsed.as_secs_f64(),
        lookups as f64 / elapsed.as_secs_f64() / 1e3
    );
    println!(
        "compare any hash table that rebalances, resizes, or evicts on reads: those need \
         reader-writer coordination; this structure is proof-by-type-system lock-free for readers"
    );
    Ok(())
}
