//! Parallel instances: batch operations at single-operation I/O cost.
//!
//! The Section 4 preamble: "We can make any constant number of parallel
//! instances of our dictionaries. This allows insertions of a constant
//! number of elements in the same number of parallel I/Os as one
//! insertion, and does not influence lookup time. The amount of space
//! used and the number of disks increase by a constant factor."
//!
//! [`ParallelInstances`] realizes the claim for the Section 4.1
//! dictionary: `C` independent instances live on **disjoint** disk
//! ranges, so their probe batches touch different disks and can be issued
//! as *one* parallel I/O. A batch of `C` insertions (one per instance,
//! round-robin) therefore costs 2 parallel I/Os total — the same as a
//! single insertion — and a batch of `C` lookups costs 1.

use crate::basic::{BasicDict, BasicDictConfig};
use crate::layout::DiskAllocator;
use crate::traits::{DictError, LookupOutcome};
use expander::mix::mix64;
use pdm::{BlockAddr, DiskArray, OpCost, ReadOptions, Word, WriteOptions};

/// `C` Section 4.1 dictionaries on disjoint disk ranges with batched,
/// cost-merged operations.
#[derive(Debug)]
pub struct ParallelInstances {
    instances: Vec<BasicDict>,
    degree: usize,
    route_seed: u64,
}

impl ParallelInstances {
    /// Create `count` instances, each on its own `degree`-disk range
    /// starting at `first_disk` (so `count · degree` disks total).
    pub fn create(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        count: usize,
        cfg: BasicDictConfig,
    ) -> Result<Self, DictError> {
        if count == 0 {
            return Err(DictError::UnsupportedParams(
                "need at least one instance".into(),
            ));
        }
        let mut instances = Vec::with_capacity(count);
        for i in 0..count {
            let mut icfg = cfg;
            icfg.seed = cfg.seed.wrapping_add(i as u64);
            instances.push(BasicDict::create(
                disks,
                alloc,
                first_disk + i * cfg.degree,
                icfg,
            )?);
        }
        Ok(ParallelInstances {
            instances,
            degree: cfg.degree,
            route_seed: cfg.seed ^ 0x9A7A_11E1,
        })
    }

    /// Number of instances `C`.
    #[must_use]
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Disks occupied (`C · d`).
    #[must_use]
    pub fn disks_used(&self) -> usize {
        self.count() * self.degree
    }

    /// Total live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.iter().map(BasicDict::len).sum()
    }

    /// Whether all instances are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn instance_of(&self, key: u64) -> usize {
        (mix64(self.route_seed ^ key) % self.instances.len() as u64) as usize
    }

    /// Look up `keys` in **one merged probe**: instances' candidate
    /// blocks sit on disjoint disks, so a batch touching each instance at
    /// most once is one parallel I/O — "does not influence lookup time".
    /// (Keys colliding on an instance stack its disks: the batch then
    /// costs the per-instance maximum.)
    pub fn lookup_batch(
        &self,
        disks: &mut DiskArray,
        keys: &[u64],
    ) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let scope = disks.begin_op();
        let mut addrs: Vec<BlockAddr> = Vec::new();
        let mut spans = Vec::with_capacity(keys.len());
        for &key in keys {
            let inst = &self.instances[self.instance_of(key)];
            let a = inst.probe_addrs(key);
            spans.push((addrs.len(), a.len()));
            addrs.extend(a);
        }
        let blocks = disks.read(&addrs, ReadOptions::default()).into_blocks();
        let results = keys
            .iter()
            .zip(spans)
            .map(|(&key, (off, len))| {
                self.instances[self.instance_of(key)].decode_find(key, &blocks[off..off + len])
            })
            .collect();
        (results, disks.end_op(scope))
    }

    /// Single-key lookup (1 parallel I/O).
    pub fn lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        let (mut r, cost) = self.lookup_batch(disks, &[key]);
        LookupOutcome::new(r.pop().expect("one result"), cost)
    }

    /// Insert up to one key **per instance** in one merged
    /// read-batch/write-batch pair: `keys.len() ≤ C` distinct-instance
    /// insertions cost **2 parallel I/Os total** — "insertions of a
    /// constant number of elements in the same number of parallel I/Os as
    /// one insertion".
    ///
    /// Keys are routed by hash; if two keys of the batch route to the
    /// same instance the second is deferred internally (costing one more
    /// round), so supply keys in batch sizes ≈ `C` for full effect.
    pub fn insert_batch(
        &mut self,
        disks: &mut DiskArray,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<OpCost, DictError> {
        let scope = disks.begin_op();
        let mut pending: Vec<&(u64, Vec<Word>)> = entries.iter().collect();
        while !pending.is_empty() {
            // One round: at most one key per instance.
            let mut this_round: Vec<&(u64, Vec<Word>)> = Vec::new();
            let mut used = vec![false; self.instances.len()];
            let mut deferred = Vec::new();
            for e in pending {
                let i = self.instance_of(e.0);
                if used[i] {
                    deferred.push(e);
                } else {
                    used[i] = true;
                    this_round.push(e);
                }
            }
            // Merged probe for the whole round (1 parallel I/O).
            let mut addrs: Vec<BlockAddr> = Vec::new();
            let mut spans = Vec::with_capacity(this_round.len());
            for (key, _) in this_round.iter().copied() {
                let a = self.instances[self.instance_of(*key)].probe_addrs(*key);
                spans.push((addrs.len(), a.len()));
                addrs.extend(a);
            }
            let blocks = disks.read(&addrs, ReadOptions::default()).into_blocks();
            // Merged writes (1 parallel I/O: distinct instances, distinct
            // disks; within an instance the chosen bucket is one disk).
            let mut writes: Vec<(BlockAddr, Vec<Word>)> = Vec::new();
            let mut committed = Vec::new();
            for ((key, sat), (off, len)) in this_round.iter().copied().zip(spans) {
                let i = self.instance_of(*key);
                let w = self.instances[i].plan_insert(*key, sat, &blocks[off..off + len])?;
                writes.extend(w);
                committed.push(i);
            }
            let refs: Vec<(BlockAddr, &[Word])> =
                writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
            disks.write(&refs, WriteOptions::default());
            for i in committed {
                self.instances[i].note_inserted();
            }
            pending = deferred;
        }
        Ok(disks.end_op(scope))
    }

    /// Delete a key (2 parallel I/Os when present).
    pub fn delete(&mut self, disks: &mut DiskArray, key: u64) -> (bool, OpCost) {
        let i = self.instance_of(key);
        self.instances[i].delete(disks, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::PdmConfig;

    fn setup(count: usize, n: usize) -> (DiskArray, ParallelInstances) {
        let d = 13;
        let mut disks = DiskArray::new(PdmConfig::new(count * d, 64), 0);
        let mut alloc = DiskAllocator::new(count * d);
        let cfg = BasicDictConfig::log_load(n, 1 << 40, d, 1, 0x9A);
        let multi = ParallelInstances::create(&mut disks, &mut alloc, 0, count, cfg).unwrap();
        (disks, multi)
    }

    #[test]
    fn batch_of_c_insertions_costs_two_ios() {
        let c = 4;
        let (mut disks, mut multi) = setup(c, 500);
        // Find c keys that route to c distinct instances.
        let mut batch: Vec<(u64, Vec<u64>)> = Vec::new();
        let mut used = std::collections::HashSet::new();
        let mut k = 0u64;
        while batch.len() < c {
            let i = multi.instance_of(k);
            if used.insert(i) {
                batch.push((k, vec![k]));
            }
            k += 1;
        }
        let cost = multi.insert_batch(&mut disks, &batch).unwrap();
        assert_eq!(
            cost.parallel_ios, 2,
            "{c} insertions must cost the same 2 I/Os as one"
        );
        for (key, sat) in &batch {
            assert_eq!(multi.lookup(&mut disks, *key).satellite.as_ref(), Some(sat));
        }
    }

    #[test]
    fn batch_lookups_cost_one_io() {
        let (mut disks, mut multi) = setup(4, 500);
        let entries: Vec<(u64, Vec<u64>)> = (0..100u64).map(|k| (k, vec![k])).collect();
        for chunk in entries.chunks(4) {
            multi.insert_batch(&mut disks, chunk).unwrap();
        }
        // Pick one key per instance: the merged probe is then one I/O.
        let mut keys = Vec::new();
        let mut used = std::collections::HashSet::new();
        for k in 0..100u64 {
            if used.insert(multi.instance_of(k)) {
                keys.push(k);
            }
        }
        assert_eq!(keys.len(), 4);
        let (found, cost) = multi.lookup_batch(&mut disks, &keys);
        assert_eq!(cost.parallel_ios, 1, "batched lookups are one probe");
        for (k, f) in keys.iter().zip(found) {
            assert_eq!(f, Some(vec![*k]));
        }
    }

    #[test]
    fn colliding_routes_defer_but_commit() {
        let (mut disks, mut multi) = setup(2, 200);
        // Force a batch larger than C: rounds happen, everything lands.
        let entries: Vec<(u64, Vec<u64>)> = (0..20u64).map(|k| (k, vec![k + 1])).collect();
        let cost = multi.insert_batch(&mut disks, &entries).unwrap();
        assert!(cost.parallel_ios >= 2);
        assert_eq!(multi.len(), 20);
        for (k, s) in &entries {
            assert_eq!(multi.lookup(&mut disks, *k).satellite.as_ref(), Some(s));
        }
    }

    #[test]
    fn misses_and_deletes() {
        let (mut disks, mut multi) = setup(3, 100);
        multi.insert_batch(&mut disks, &[(5, vec![50])]).unwrap();
        assert!(!multi.lookup(&mut disks, 6).found());
        let (was, _) = multi.delete(&mut disks, 5);
        assert!(was);
        assert!(!multi.lookup(&mut disks, 5).found());
        let (absent, _) = multi.delete(&mut disks, 5);
        assert!(!absent);
    }

    #[test]
    fn duplicate_in_batch_rejected() {
        let (mut disks, mut multi) = setup(2, 100);
        multi.insert_batch(&mut disks, &[(7, vec![1])]).unwrap();
        assert!(matches!(
            multi.insert_batch(&mut disks, &[(7, vec![2])]),
            Err(DictError::DuplicateKey(7))
        ));
    }

    #[test]
    fn zero_instances_rejected() {
        let mut disks = DiskArray::new(PdmConfig::new(13, 64), 0);
        let mut alloc = DiskAllocator::new(13);
        let cfg = BasicDictConfig::log_load(10, 1 << 20, 13, 0, 0);
        assert!(ParallelInstances::create(&mut disks, &mut alloc, 0, 0, cfg).is_err());
    }
}
