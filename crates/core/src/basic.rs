//! The Section 4.1 basic dictionary.
//!
//! "Use a striped expander graph G with v = N/log N, and an array of v
//! (more elementary) dictionaries. The array is split across D = d disks
//! according to the stripes of G. ... The dictionary implements the load
//! balancing scheme described above, with k = 1."
//!
//! Concretely: `v` buckets (a multiple of `d`), stripe `i` of the expander
//! living on disk `i` of the structure's region. A lookup reads the key's
//! `d` candidate buckets — one per disk, so **one parallel I/O** when a
//! bucket is one block. An insertion reads the same `d` buckets, places
//! the record in the *currently least loaded* candidate (the greedy scheme
//! of Section 3 with `k = 1` — the loads are counted from the blocks just
//! read, so no in-memory index exists), and writes that bucket back:
//! **two parallel I/Os**, the minimum possible for a read-modify-write.
//!
//! With `v = Θ(N / log N)` the greedy bound (Lemma 3) keeps every bucket
//! at `Θ(log N)` records, so `B = Ω(log N)` gives single-block buckets.
//! Without any constraint on `B` a bucket spans `O(log N / B)` blocks and
//! operations stay `O(1)` I/Os for constant `log N / B`; see
//! [`crate::micro`] for the atomic-heap-style sub-bucket structure the
//! paper invokes for the fully general case.

use crate::bucket::BucketCodec;
use crate::layout::{DiskAllocator, Region};
use crate::traits::{DictError, LookupOutcome};
use expander::{FamilyExpander, FamilyKind, NeighborFamily, NeighborFn};
use pdm::{BatchExecutor, BatchPlan, BlockAddr, DiskArray, OpCost, ReadOptions, Word, WriteOptions};

/// Sizing and identity parameters for a [`BasicDict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicDictConfig {
    /// Capacity `N` (maximum live keys).
    pub capacity: usize,
    /// Universe size `u`.
    pub universe: u64,
    /// Expander degree `d` = disks used by this structure.
    pub degree: usize,
    /// Payload words stored with each key.
    pub payload_words: usize,
    /// Number of buckets `v` (must be a positive multiple of `degree`).
    pub buckets: usize,
    /// Slots per bucket.
    pub bucket_slots: usize,
    /// Expander seed.
    pub seed: u64,
    /// Hash family the expander is drawn from.
    pub family: FamilyKind,
}

impl BasicDictConfig {
    /// The paper's sizing: `v ≈ N / log N` buckets, so bucket loads are
    /// `Θ(log N)`; slot count adds the Lemma 3 additive margin.
    #[must_use]
    pub fn log_load(
        capacity: usize,
        universe: u64,
        degree: usize,
        payload_words: usize,
        seed: u64,
    ) -> Self {
        let n = capacity.max(2);
        let target_load = (usize::BITS - n.leading_zeros()) as usize; // ~log2 N
        let raw_v = (2 * n).div_ceil(target_load).max(degree);
        let buckets = raw_v.div_ceil(degree) * degree;
        BasicDictConfig {
            capacity,
            universe,
            degree,
            payload_words,
            buckets,
            // Average load ≤ target/2; Lemma 3's additive term is
            // log_{(1-ε)d}(v), far below 8 for any feasible v.
            bucket_slots: target_load + 8,
            seed,
            family: FamilyKind::default(),
        }
    }

    /// Single-block buckets: "by setting v = O(N/B) sufficiently large we
    /// can get a maximum load of less than B, and hence membership queries
    /// take 1 I/O".
    #[must_use]
    pub fn block_load(
        capacity: usize,
        universe: u64,
        degree: usize,
        payload_words: usize,
        block_words: usize,
        seed: u64,
    ) -> Self {
        let codec = BucketCodec::new(payload_words);
        let slots = codec.capacity(block_words).max(2);
        let raw_v = (4 * capacity.max(1)).div_ceil(slots).max(degree);
        let buckets = raw_v.div_ceil(degree) * degree;
        BasicDictConfig {
            capacity,
            universe,
            degree,
            payload_words,
            buckets,
            bucket_slots: slots,
            seed,
            family: FamilyKind::default(),
        }
    }

    /// Override the hash family the expander is drawn from.
    #[must_use]
    pub fn with_family(mut self, family: FamilyKind) -> Self {
        self.family = family;
        self
    }

    fn validate(&self) -> Result<(), DictError> {
        if self.degree == 0 || self.buckets == 0 || !self.buckets.is_multiple_of(self.degree) {
            return Err(DictError::UnsupportedParams(format!(
                "buckets v = {} must be a positive multiple of degree d = {}",
                self.buckets, self.degree
            )));
        }
        if self.bucket_slots == 0 {
            return Err(DictError::UnsupportedParams(
                "buckets must have at least one slot".into(),
            ));
        }
        Ok(())
    }
}

/// The Section 4.1 dictionary: expander-indexed buckets with greedy
/// balancing, `O(1)`-I/O operations worst case.
///
/// ```
/// use pdm::{DiskArray, PdmConfig};
/// use pdm_dict::basic::{BasicDict, BasicDictConfig};
/// use pdm_dict::layout::DiskAllocator;
///
/// let d = 13; // one disk per expander stripe
/// let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
/// let mut alloc = DiskAllocator::new(d);
/// let cfg = BasicDictConfig::log_load(1000, 1 << 40, d, 1, 42);
/// let mut dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg)?;
///
/// let cost = dict.insert(&mut disks, 7, &[99])?;
/// assert_eq!(cost.parallel_ios, 2); // read + write, worst case
/// let out = dict.lookup(&mut disks, 7);
/// assert_eq!(out.satellite, Some(vec![99]));
/// assert_eq!(out.cost.parallel_ios, 1); // one probe, worst case
/// # Ok::<(), pdm_dict::DictError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BasicDict {
    cfg: BasicDictConfig,
    graph: FamilyExpander,
    region: Region,
    codec: BucketCodec,
    blocks_per_bucket: usize,
    len: usize,
}

impl BasicDict {
    /// Create the structure on `degree` disks starting at `first_disk`.
    pub fn create(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        cfg: BasicDictConfig,
    ) -> Result<Self, DictError> {
        cfg.validate()?;
        let codec = BucketCodec::new(cfg.payload_words);
        let bucket_words = codec.slot_words() * cfg.bucket_slots;
        let blocks_per_bucket = bucket_words.div_ceil(disks.block_words());
        let buckets_per_disk = cfg.buckets / cfg.degree;
        let region = alloc.alloc(
            disks,
            first_disk,
            cfg.degree,
            buckets_per_disk * blocks_per_bucket,
        );
        let graph = cfg
            .family
            .build(cfg.universe, buckets_per_disk, cfg.degree, cfg.seed);
        Ok(BasicDict {
            cfg,
            graph,
            region,
            codec,
            blocks_per_bucket,
            len: 0,
        })
    }

    /// Live keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dictionary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configuration.
    #[must_use]
    pub fn config(&self) -> &BasicDictConfig {
        &self.cfg
    }

    /// Total buckets `v`.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.cfg.buckets
    }

    /// Blocks per bucket (1 when `B` is large enough — the 1-I/O regime).
    #[must_use]
    pub fn blocks_per_bucket(&self) -> usize {
        self.blocks_per_bucket
    }

    /// Space usage in words.
    #[must_use]
    pub fn space_words(&self, disks: &DiskArray) -> usize {
        self.region.total_blocks() * disks.block_words()
    }

    /// The block addresses of bucket `(stripe, j)`.
    fn bucket_addrs(&self, stripe: usize, j: usize) -> Vec<BlockAddr> {
        (0..self.blocks_per_bucket)
            .map(|b| self.region.addr(stripe, j * self.blocks_per_bucket + b))
            .collect()
    }

    /// Block addresses probed for `key`: all blocks of its `d` candidate
    /// buckets, grouped bucket by bucket (stripe order). One block per
    /// disk per bucket-block-row, so the batch costs `blocks_per_bucket`
    /// parallel I/Os — 1 in the `B = Ω(log N)` regime.
    #[must_use]
    pub fn probe_addrs(&self, key: u64) -> Vec<BlockAddr> {
        let mut out = Vec::with_capacity(self.cfg.degree * self.blocks_per_bucket);
        for (stripe, y) in self.graph.neighbors(key).into_iter().enumerate() {
            let (s, j) = self.graph.stripe_of(y);
            debug_assert_eq!(s, stripe);
            out.extend(self.bucket_addrs(stripe, j));
        }
        out
    }

    /// Reassemble per-bucket buffers from blocks returned for
    /// [`probe_addrs`](Self::probe_addrs).
    fn bucket_bufs(&self, blocks: &[Vec<Word>]) -> Vec<Vec<Word>> {
        blocks
            .chunks(self.blocks_per_bucket)
            .map(|c| c.concat())
            .collect()
    }

    /// Decode a lookup from pre-read probe blocks (for composed structures
    /// that merge several probes into one parallel I/O).
    #[must_use]
    pub fn decode_find(&self, key: u64, probe_blocks: &[Vec<Word>]) -> Option<Vec<Word>> {
        self.bucket_bufs(probe_blocks)
            .iter()
            .find_map(|buf| self.codec.find(buf, key))
    }

    /// Plan an insertion given pre-read probe blocks: choose the least
    /// loaded candidate bucket (greedy, ties to the lowest stripe) and
    /// return the block writes that commit it. The caller issues the
    /// writes and then calls [`note_inserted`](Self::note_inserted).
    pub fn plan_insert(
        &self,
        key: u64,
        payload: &[Word],
        probe_blocks: &[Vec<Word>],
    ) -> Result<Vec<(BlockAddr, Vec<Word>)>, DictError> {
        if payload.len() != self.cfg.payload_words {
            return Err(DictError::SatelliteWidth {
                expected: self.cfg.payload_words,
                got: payload.len(),
            });
        }
        if self.len >= self.cfg.capacity {
            return Err(DictError::CapacityExhausted {
                capacity: self.cfg.capacity,
            });
        }
        let mut bufs = self.bucket_bufs(probe_blocks);
        if bufs.iter().any(|b| self.codec.find(b, key).is_some()) {
            return Err(DictError::DuplicateKey(key));
        }
        // Greedy k = 1 choice from the read blocks themselves.
        let loads: Vec<usize> = bufs.iter().map(|b| self.codec.live_count(b)).collect();
        let mut order: Vec<usize> = (0..bufs.len()).collect();
        order.sort_by_key(|&i| (loads[i], i));
        for &choice in &order {
            if self.codec.insert(&mut bufs[choice], key, payload) {
                return Ok(self.bucket_writes(key, choice, &bufs[choice]));
            }
        }
        Err(DictError::BucketOverflow { key })
    }

    /// Plan a deletion (tombstone) from pre-read probe blocks; `None` when
    /// the key is absent.
    #[must_use]
    pub fn plan_delete(
        &self,
        key: u64,
        probe_blocks: &[Vec<Word>],
    ) -> Option<Vec<(BlockAddr, Vec<Word>)>> {
        let mut bufs = self.bucket_bufs(probe_blocks);
        for (i, buf) in bufs.iter_mut().enumerate() {
            if self.codec.delete(buf, key) {
                let writes = self.bucket_writes(key, i, buf);
                return Some(writes);
            }
        }
        None
    }

    /// Plan a payload update in place; `None` when the key is absent.
    #[must_use]
    pub fn plan_update(
        &self,
        key: u64,
        payload: &[Word],
        probe_blocks: &[Vec<Word>],
    ) -> Option<Vec<(BlockAddr, Vec<Word>)>> {
        assert_eq!(payload.len(), self.cfg.payload_words, "payload width");
        let mut bufs = self.bucket_bufs(probe_blocks);
        for (i, buf) in bufs.iter_mut().enumerate() {
            if self.codec.update(buf, key, payload) {
                let writes = self.bucket_writes(key, i, buf);
                return Some(writes);
            }
        }
        None
    }

    fn bucket_writes(
        &self,
        key: u64,
        candidate_index: usize,
        buf: &[Word],
    ) -> Vec<(BlockAddr, Vec<Word>)> {
        let y = self.graph.neighbor(key, candidate_index);
        let (stripe, j) = self.graph.stripe_of(y);
        let bw = buf.len() / self.blocks_per_bucket;
        self.bucket_addrs(stripe, j)
            .into_iter()
            .enumerate()
            .map(|(b, addr)| (addr, buf[b * bw..(b + 1) * bw].to_vec()))
            .collect()
    }

    /// Record a committed insertion.
    pub fn note_inserted(&mut self) {
        self.len += 1;
    }

    /// Record a committed deletion.
    pub fn note_deleted(&mut self) {
        debug_assert!(self.len > 0);
        self.len -= 1;
    }

    /// Restore the live-key counter from a persisted checkpoint (journal
    /// reopen; the blocks on disk already hold the keys).
    pub(crate) fn set_len(&mut self, len: usize) {
        self.len = len;
    }

    /// Lookup: one batched probe (1 parallel I/O per bucket-block row).
    pub fn lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        let scope = disks.begin_op();
        let blocks = disks.read(&self.probe_addrs(key), ReadOptions::default()).into_blocks();
        LookupOutcome::new(self.decode_find(key, &blocks), disks.end_op(scope))
    }

    /// Insert: read probe + write chosen bucket (2 parallel I/Os in the
    /// single-block regime, "the best possible" per Figure 1's footnote).
    pub fn insert(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
        payload: &[Word],
    ) -> Result<OpCost, DictError> {
        let scope = disks.begin_op();
        let blocks = disks.read(&self.probe_addrs(key), ReadOptions::default()).into_blocks();
        let writes = self.plan_insert(key, payload, &blocks)?;
        let refs: Vec<(BlockAddr, &[Word])> =
            writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
        disks.write(&refs, WriteOptions::default());
        self.note_inserted();
        Ok(disks.end_op(scope))
    }

    /// Delete (tombstone). Returns whether the key was present.
    pub fn delete(&mut self, disks: &mut DiskArray, key: u64) -> (bool, OpCost) {
        let scope = disks.begin_op();
        let blocks = disks.read(&self.probe_addrs(key), ReadOptions::default()).into_blocks();
        match self.plan_delete(key, &blocks) {
            Some(writes) => {
                let refs: Vec<(BlockAddr, &[Word])> =
                    writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
                disks.write(&refs, WriteOptions::default());
                self.note_deleted();
                (true, disks.end_op(scope))
            }
            None => (false, disks.end_op(scope)),
        }
    }

    /// Overwrite the payload of an existing key. Returns whether present.
    pub fn update(&mut self, disks: &mut DiskArray, key: u64, payload: &[Word]) -> (bool, OpCost) {
        let scope = disks.begin_op();
        let blocks = disks.read(&self.probe_addrs(key), ReadOptions::default()).into_blocks();
        match self.plan_update(key, payload, &blocks) {
            Some(writes) => {
                let refs: Vec<(BlockAddr, &[Word])> =
                    writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
                disks.write(&refs, WriteOptions::default());
                (true, disks.end_op(scope))
            }
            None => (false, disks.end_op(scope)),
        }
    }

    /// Batched lookup: all keys' probes are planned as **one** batch, so
    /// shared candidate buckets are read once and independent buckets
    /// share parallel rounds across disks — the Section 4.1 bandwidth
    /// story (`m` lookups cost the per-disk maximum of unique blocks,
    /// not `m` separate probes).
    ///
    /// Results are byte-identical to looking every key up sequentially.
    /// The returned cost is for the whole batch; per-key attribution is
    /// meaningless once blocks are shared.
    pub fn lookup_batch(
        &self,
        disks: &mut DiskArray,
        keys: &[u64],
    ) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let scope = disks.begin_op();
        let per = self.cfg.degree * self.blocks_per_bucket;
        let mut requests = Vec::with_capacity(keys.len() * per);
        for &k in keys {
            requests.extend(self.probe_addrs(k));
        }
        let plan = BatchPlan::new(disks.disks(), &requests);
        let reads = plan.execute_read(disks);
        let results = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| self.decode_find(k, &reads.gather(i * per..(i + 1) * per)))
            .collect();
        (results, disks.end_op(scope))
    }

    /// Batched insert with sequential semantics: keys are placed in
    /// order, each seeing the staged writes of its predecessors, and all
    /// dirty buckets are flushed as one planned write batch. Per-key
    /// errors (duplicates, overflow) leave the other keys' insertions
    /// intact, exactly as a sequential loop would.
    pub fn insert_batch(
        &mut self,
        disks: &mut DiskArray,
        entries: &[(u64, Vec<Word>)],
    ) -> (Vec<Result<(), DictError>>, OpCost) {
        let scope = disks.begin_op();
        let mut all: Vec<BlockAddr> = Vec::new();
        for (key, _) in entries {
            all.extend(self.probe_addrs(*key));
        }
        let mut ex = BatchExecutor::new(disks);
        ex.prefetch(&all);
        let mut results = Vec::with_capacity(entries.len());
        for (key, payload) in entries {
            let addrs = self.probe_addrs(*key);
            let blocks = ex.get_many(&addrs);
            match self.plan_insert(*key, payload, &blocks) {
                Ok(writes) => {
                    for (a, img) in writes {
                        ex.stage_write(a, img);
                    }
                    self.note_inserted();
                    results.push(Ok(()));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        let _ = ex.commit();
        (results, disks.end_op(scope))
    }

    /// Test hook: pack every candidate bucket of `key` with dummy records
    /// (keys `fake_base`, `fake_base + 1`, …) so the next
    /// [`Self::plan_insert`] of `key` fails with
    /// [`DictError::BucketOverflow`] — the deterministic stand-in for a
    /// sampled expander missing its load-balancing parameters.
    #[cfg(test)]
    pub(crate) fn saturate_probe_buckets(&self, disks: &mut DiskArray, key: u64, fake_base: u64) {
        let addrs = self.probe_addrs(key);
        let blocks = disks.read(&addrs, ReadOptions::default()).into_blocks();
        let mut bufs = self.bucket_bufs(&blocks);
        let payload = vec![0 as Word; self.cfg.payload_words];
        let mut fake = fake_base;
        for buf in &mut bufs {
            while self.codec.insert(buf, fake, &payload) {
                fake += 1;
            }
        }
        let bw = disks.block_words();
        for (i, buf) in bufs.iter().enumerate() {
            for b in 0..self.blocks_per_bucket {
                disks.write_block(addrs[i * self.blocks_per_bucket + b], &buf[b * bw..(b + 1) * bw]);
            }
        }
    }

    /// Read all live entries of bucket `index` (for global rebuilding's
    /// enumeration). Bucket indices run `0 .. buckets()` in stripe-major
    /// order.
    pub fn scan_bucket(&self, disks: &mut DiskArray, index: usize) -> Vec<(u64, Vec<Word>)> {
        assert!(index < self.cfg.buckets, "bucket {index} out of range");
        let per = self.cfg.buckets / self.cfg.degree;
        let (stripe, j) = (index / per, index % per);
        let blocks = disks.read(&self.bucket_addrs(stripe, j), ReadOptions::default()).into_blocks();
        self.codec.live_entries(&blocks.concat())
    }

    /// Observed maximum bucket load (peeks without I/O; diagnostics only).
    #[must_use]
    pub fn max_load_peek(&self, disks: &DiskArray) -> usize {
        let per = self.cfg.buckets / self.cfg.degree;
        let mut max = 0;
        for stripe in 0..self.cfg.degree {
            for j in 0..per {
                let buf: Vec<Word> = self
                    .bucket_addrs(stripe, j)
                    .into_iter()
                    .flat_map(|a| disks.peek(a).to_vec())
                    .collect();
                max = max.max(self.codec.live_count(&buf));
            }
        }
        max
    }

    /// Bulk-build from `(key, payload)` pairs: greedy balancing computed
    /// in one pass, then every bucket written once — `Θ(v/d ·
    /// blocks_per_bucket)` parallel I/Os, the streaming optimum.
    pub fn bulk_build(
        &mut self,
        disks: &mut DiskArray,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<OpCost, DictError> {
        let scope = disks.begin_op();
        if entries.len() > self.cfg.capacity {
            return Err(DictError::CapacityExhausted {
                capacity: self.cfg.capacity,
            });
        }
        let per = self.cfg.buckets / self.cfg.degree;
        let mut bufs: Vec<Vec<Word>> =
            vec![vec![0; self.codec.slot_words() * self.cfg.bucket_slots]; self.cfg.buckets];
        let mut seen = std::collections::HashSet::with_capacity(entries.len());
        for (key, payload) in entries {
            if !seen.insert(*key) {
                return Err(DictError::DuplicateKey(*key));
            }
            let neighbors = self.graph.neighbors(*key);
            let mut order: Vec<usize> = (0..neighbors.len()).collect();
            order.sort_by_key(|&i| (self.codec.live_count(&bufs[neighbors[i]]), i));
            let mut placed = false;
            for &i in &order {
                if self.codec.insert(&mut bufs[neighbors[i]], *key, payload) {
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(DictError::BucketOverflow { key: *key });
            }
        }
        // Stream out: rows of d blocks (one bucket-block per disk) per batch.
        for j in 0..per {
            for b in 0..self.blocks_per_bucket {
                let bw = disks.block_words();
                let mut writes = Vec::with_capacity(self.cfg.degree);
                for stripe in 0..self.cfg.degree {
                    let buf = &bufs[stripe * per + j];
                    let lo = b * bw;
                    let hi = (lo + bw).min(buf.len());
                    if lo < buf.len() {
                        writes.push((
                            self.region.addr(stripe, j * self.blocks_per_bucket + b),
                            buf[lo..hi].to_vec(),
                        ));
                    }
                }
                let refs: Vec<(BlockAddr, &[Word])> =
                    writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
                disks.write(&refs, WriteOptions::default());
            }
        }
        self.len = entries.len();
        Ok(disks.end_op(scope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::PdmConfig;

    fn setup(capacity: usize, payload: usize) -> (DiskArray, BasicDict) {
        let d = 13;
        let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
        let mut alloc = DiskAllocator::new(d);
        let cfg = BasicDictConfig::log_load(capacity, 1 << 30, d, payload, 42);
        let dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
        (disks, dict)
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let (mut disks, mut dict) = setup(500, 2);
        for k in 0..200u64 {
            dict.insert(&mut disks, k * 3, &[k, k + 1]).unwrap();
        }
        assert_eq!(dict.len(), 200);
        for k in 0..200u64 {
            let out = dict.lookup(&mut disks, k * 3);
            assert_eq!(out.satellite, Some(vec![k, k + 1]));
        }
        assert!(!dict.lookup(&mut disks, 1).found());
        let (was, _) = dict.delete(&mut disks, 9);
        assert!(was);
        assert!(!dict.lookup(&mut disks, 9).found());
        assert_eq!(dict.len(), 199);
    }

    #[test]
    fn lookup_costs_one_parallel_io() {
        let (mut disks, mut dict) = setup(500, 0);
        assert_eq!(dict.blocks_per_bucket(), 1, "test geometry must be 1-block");
        dict.insert(&mut disks, 77, &[]).unwrap();
        let out = dict.lookup(&mut disks, 77);
        assert_eq!(out.cost.parallel_ios, 1);
        let miss = dict.lookup(&mut disks, 78);
        assert_eq!(miss.cost.parallel_ios, 1);
    }

    #[test]
    fn insert_costs_two_parallel_ios() {
        let (mut disks, mut dict) = setup(500, 0);
        let cost = dict.insert(&mut disks, 5, &[]).unwrap();
        assert_eq!(cost.parallel_ios, 2);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (mut disks, mut dict) = setup(100, 0);
        dict.insert(&mut disks, 5, &[]).unwrap();
        assert!(matches!(
            dict.insert(&mut disks, 5, &[]),
            Err(DictError::DuplicateKey(5))
        ));
        assert_eq!(dict.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let (mut disks, mut dict) = setup(2, 0);
        dict.insert(&mut disks, 1, &[]).unwrap();
        dict.insert(&mut disks, 2, &[]).unwrap();
        assert!(matches!(
            dict.insert(&mut disks, 3, &[]),
            Err(DictError::CapacityExhausted { capacity: 2 })
        ));
    }

    #[test]
    fn wrong_payload_width_rejected() {
        let (mut disks, mut dict) = setup(10, 2);
        assert!(matches!(
            dict.insert(&mut disks, 1, &[9]),
            Err(DictError::SatelliteWidth {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn update_changes_payload() {
        let (mut disks, mut dict) = setup(10, 1);
        dict.insert(&mut disks, 4, &[1]).unwrap();
        let (ok, _) = dict.update(&mut disks, 4, &[2]);
        assert!(ok);
        assert_eq!(dict.lookup(&mut disks, 4).satellite, Some(vec![2]));
        let (missing, _) = dict.update(&mut disks, 5, &[0]);
        assert!(!missing);
    }

    #[test]
    fn max_load_stays_near_lemma3_bound() {
        let (mut disks, mut dict) = setup(2000, 0);
        for k in 0..2000u64 {
            dict.insert(&mut disks, k.wrapping_mul(0x9E37_79B9) % (1 << 30), &[])
                .unwrap();
        }
        let v = dict.buckets() as f64;
        let avg = 2000.0 / v;
        let max = dict.max_load_peek(&disks) as f64;
        // Lemma 3 shape: average plus a small logarithmic additive term.
        assert!(
            max <= avg + 12.0,
            "max load {max} too far above average {avg}"
        );
    }

    #[test]
    fn bulk_build_matches_incremental_lookups() {
        let (mut disks, mut dict) = setup(300, 1);
        let entries: Vec<(u64, Vec<Word>)> = (0..300u64).map(|k| (k * 7, vec![k])).collect();
        dict.bulk_build(&mut disks, &entries).unwrap();
        assert_eq!(dict.len(), 300);
        for (k, p) in &entries {
            assert_eq!(dict.lookup(&mut disks, *k).satellite, Some(p.clone()));
        }
    }

    #[test]
    fn bulk_build_is_cheaper_than_incremental() {
        let entries: Vec<(u64, Vec<Word>)> = (0..1000u64).map(|k| (k * 11, vec![])).collect();
        let (mut disks_a, mut bulk) = setup(1000, 0);
        let bulk_cost = bulk.bulk_build(&mut disks_a, &entries).unwrap();
        let (mut disks_b, mut inc) = setup(1000, 0);
        let scope = disks_b.begin_op();
        for (k, p) in &entries {
            inc.insert(&mut disks_b, *k, p).unwrap();
        }
        let inc_cost = disks_b.end_op(scope);
        assert!(
            bulk_cost.parallel_ios < inc_cost.parallel_ios / 2,
            "bulk {} vs incremental {}",
            bulk_cost.parallel_ios,
            inc_cost.parallel_ios
        );
    }

    #[test]
    fn scan_bucket_enumerates_everything() {
        let (mut disks, mut dict) = setup(120, 1);
        let mut expect = std::collections::HashMap::new();
        for k in 0..120u64 {
            dict.insert(&mut disks, k, &[k * 2]).unwrap();
            expect.insert(k, vec![k * 2]);
        }
        let mut seen = std::collections::HashMap::new();
        for b in 0..dict.buckets() {
            for (k, p) in dict.scan_bucket(&mut disks, b) {
                assert!(seen.insert(k, p).is_none(), "key {k} in two buckets");
            }
        }
        assert_eq!(seen, expect);
    }

    #[test]
    fn block_load_config_gives_single_block_buckets() {
        let d = 13;
        let mut disks = DiskArray::new(PdmConfig::new(d, 32), 0);
        let mut alloc = DiskAllocator::new(d);
        let cfg = BasicDictConfig::block_load(1000, 1 << 30, d, 0, 32, 1);
        let dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
        assert_eq!(dict.blocks_per_bucket(), 1);
    }

    #[test]
    fn rejects_bad_bucket_count() {
        let mut disks = DiskArray::new(PdmConfig::new(4, 32), 0);
        let mut alloc = DiskAllocator::new(4);
        let cfg = BasicDictConfig {
            capacity: 10,
            universe: 1 << 20,
            degree: 4,
            payload_words: 0,
            buckets: 10, // not a multiple of 4
            bucket_slots: 4,
            seed: 0,
            family: FamilyKind::default(),
        };
        assert!(BasicDict::create(&mut disks, &mut alloc, 0, cfg).is_err());
    }

    #[test]
    fn tombstone_slot_reused_on_reinsert() {
        let (mut disks, mut dict) = setup(50, 1);
        dict.insert(&mut disks, 8, &[1]).unwrap();
        dict.delete(&mut disks, 8);
        dict.insert(&mut disks, 8, &[2]).unwrap();
        assert_eq!(dict.lookup(&mut disks, 8).satellite, Some(vec![2]));
    }
}
