//! Dictionary parameters and theorem side-condition validation.

use expander::params;
use expander::FamilyKind;

/// Parameters shared by all dictionary variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DictParams {
    /// Capacity `N`: the maximum number of keys (fixed at initialization,
    /// as in the paper; the global-rebuilding wrapper lifts the limit).
    pub capacity: usize,
    /// Universe size `u` (keys are `0 ≤ x < u`; `u64::MAX` means `2^64`).
    pub universe: u64,
    /// Satellite words per key, fixed per instance.
    pub satellite_words: usize,
    /// Expander degree `d`. Defaults to the paper's `Θ(log u)` with the
    /// `d > 12` floor; override for experiments.
    pub degree: usize,
    /// Performance parameter `ɛ` of Theorem 7 (average lookup `1 + ɛ`,
    /// average update `2 + ɛ`).
    pub epsilon_perf: f64,
    /// Right-part slack `c` in `v = c·N·d` for the field arrays.
    pub right_slack: f64,
    /// Seed of the sampled expanders (the stand-in for the paper's
    /// assumed explicit construction).
    pub seed: u64,
    /// Hash family the expanders are drawn from (see
    /// [`expander::family`]). All families honor the same striped
    /// geometry, so any dictionary runs over any family; the default is
    /// the fastest family that passes the `hashfam` quality gates.
    pub family: FamilyKind,
    /// Rows per disk of the write-ahead intent journal
    /// ([`pdm::journal`]); 0 (the default) disables journaling. When
    /// set, structure creation reserves the journal ring through the
    /// same allocator as the dictionary regions — **before** any
    /// dictionary structure, so later rebuild slots can never collide
    /// with it — and every multi-block mutation becomes crash-atomic.
    pub journal_rows: usize,
}

impl DictParams {
    /// Smallest initial capacity the global-rebuilding wrapper
    /// ([`crate::Dictionary`]) supports. Below this floor the `2·live`
    /// replacement built mid-rebuild is so small that migrating keys plus
    /// concurrent inserts exhaust it before the migration completes, and
    /// inserts fail with a mid-rebuild `CapacityExhausted`.
    /// [`DictParams::validate_rebuild_capacity`] rejects such parameters up
    /// front instead.
    pub const MIN_REBUILD_CAPACITY: usize = 16;

    /// Sensible defaults for `capacity` keys from a universe of size
    /// `universe`, with `satellite_words` words of data per key.
    #[must_use]
    pub fn new(capacity: usize, universe: u64, satellite_words: usize) -> Self {
        DictParams {
            capacity: capacity.max(2),
            universe,
            satellite_words,
            degree: params::paper_degree(universe),
            epsilon_perf: 0.5,
            right_slack: params::DEFAULT_RIGHT_SLACK,
            seed: 0x5EED_0000_0001,
            family: FamilyKind::default(),
            journal_rows: 0,
        }
    }

    /// Enable the write-ahead intent journal with `rows` ring blocks per
    /// disk (see [`DictParams::journal_rows`]). A handful of rows
    /// suffices: the ring only ever holds the last
    /// [`pdm::journal::GROUP_COMMIT_EVERY`] ops' intents, each a few
    /// blocks wide.
    #[must_use]
    pub fn with_journal(mut self, rows: usize) -> Self {
        self.journal_rows = rows;
        self
    }

    /// Override the degree.
    #[must_use]
    pub fn with_degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }

    /// Override Theorem 7's performance parameter `ɛ`.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon_perf: f64) -> Self {
        self.epsilon_perf = epsilon_perf;
        self
    }

    /// Override the expander seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the hash family the expanders are drawn from.
    #[must_use]
    pub fn with_family(mut self, family: FamilyKind) -> Self {
        self.family = family;
        self
    }

    /// `2d/3` — fields assigned per key by the one-probe structures.
    #[must_use]
    pub fn fields_per_key(&self) -> usize {
        params::fields_per_key(self.degree)
    }

    /// Satellite size in bits, `σ`.
    #[must_use]
    pub fn sigma_bits(&self) -> usize {
        self.satellite_words * pdm::WORD_BITS
    }

    /// Disks required by the one-probe case (a) and dynamic structures:
    /// `2d` (membership + retrieval), as Theorem 6(a) states.
    #[must_use]
    pub fn disks_required_two_part(&self) -> usize {
        2 * self.degree
    }

    /// Validate the paper's side conditions against a disk geometry.
    ///
    /// * `D ≥ d` (striped expander needs one disk per stripe); the paper's
    ///   headline condition `D = Ω(log u)` is the case `d = Θ(log u)`.
    /// * For two-part structures, `D ≥ 2d`.
    /// * Theorem 6(a) and Theorem 7 need `B = Ω(log n)`: we check that a
    ///   block holds at least a few (key, pointer) pairs.
    pub fn validate(
        &self,
        cfg: &pdm::PdmConfig,
        two_part: bool,
    ) -> Result<(), crate::traits::DictError> {
        let need = if two_part {
            self.disks_required_two_part()
        } else {
            self.degree
        };
        if cfg.disks < need {
            return Err(crate::traits::DictError::UnsupportedParams(format!(
                "need D ≥ {need} disks for degree d = {} ({}), have {}",
                self.degree,
                if two_part {
                    "2d: membership + retrieval"
                } else {
                    "one per stripe"
                },
                cfg.disks
            )));
        }
        if self.degree <= 12 {
            return Err(crate::traits::DictError::UnsupportedParams(format!(
                "Theorem 6 fixes ε = 1/12, which requires degree d > 12 (got {})",
                self.degree
            )));
        }
        if (self.capacity as u64) > self.universe {
            return Err(crate::traits::DictError::UnsupportedParams(format!(
                "capacity {} exceeds universe {}",
                self.capacity, self.universe
            )));
        }
        Ok(())
    }

    /// Validate the global-rebuilding wrapper's capacity floor
    /// ([`DictParams::MIN_REBUILD_CAPACITY`]).
    ///
    /// # Errors
    /// Returns [`DictError`](crate::traits::DictError)`::UnsupportedParams`
    /// for capacities that would later fail mid-rebuild.
    pub fn validate_rebuild_capacity(&self) -> Result<(), crate::traits::DictError> {
        if self.capacity < Self::MIN_REBUILD_CAPACITY {
            return Err(crate::traits::DictError::UnsupportedParams(format!(
                "global rebuilding needs an initial capacity of at least {} (got {}): \
                 smaller replacements fill up before their migration completes",
                Self::MIN_REBUILD_CAPACITY,
                self.capacity
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::PdmConfig;

    #[test]
    fn defaults_follow_paper() {
        let p = DictParams::new(1000, 1 << 20, 4);
        assert_eq!(p.degree, 21); // log2(2^20) + 1 = 21 > 13
        assert_eq!(p.fields_per_key(), 14);
        assert_eq!(p.sigma_bits(), 256);
        assert_eq!(p.disks_required_two_part(), 42);
    }

    #[test]
    fn validate_accepts_good_geometry() {
        let p = DictParams::new(100, 1 << 20, 1).with_degree(13);
        assert!(p.validate(&PdmConfig::new(13, 32), false).is_ok());
        assert!(p.validate(&PdmConfig::new(26, 32), true).is_ok());
    }

    #[test]
    fn validate_rejects_too_few_disks() {
        let p = DictParams::new(100, 1 << 20, 1).with_degree(13);
        let err = p.validate(&PdmConfig::new(12, 32), false).unwrap_err();
        assert!(err.to_string().contains("D ≥ 13"));
        let err2 = p.validate(&PdmConfig::new(13, 32), true).unwrap_err();
        assert!(err2.to_string().contains("D ≥ 26"));
    }

    #[test]
    fn validate_rejects_small_degree() {
        let p = DictParams::new(100, 1 << 20, 1).with_degree(12);
        assert!(p.validate(&PdmConfig::new(32, 32), false).is_err());
    }

    #[test]
    fn validate_rejects_capacity_above_universe() {
        let p = DictParams::new(5000, 4096, 1).with_degree(13);
        assert!(p.validate(&PdmConfig::new(13, 32), false).is_err());
    }

    #[test]
    fn builder_overrides() {
        let p = DictParams::new(10, 1 << 16, 0)
            .with_degree(15)
            .with_epsilon(0.25)
            .with_seed(7)
            .with_family(FamilyKind::Seeded);
        assert_eq!(p.degree, 15);
        assert_eq!(p.epsilon_perf, 0.25);
        assert_eq!(p.seed, 7);
        assert_eq!(p.family, FamilyKind::Seeded);
    }
}
