//! Disk-region layout: assigning structures to disk ranges and block
//! ranges.
//!
//! The composed dictionaries place their sub-structures on *disjoint disk
//! ranges* so one parallel I/O can probe all of them simultaneously (the
//! paper: the case (a) dictionary devotes "half of the 2d available disks
//! ... to each dictionary", and the Section 4 preamble runs two whole
//! structures side by side for global rebuilding). [`DiskAllocator`] is a
//! per-disk bump allocator handing out [`Region`]s.

use pdm::{BlockAddr, DiskArray};

/// A rectangular region: a contiguous range of disks, and on each of those
/// disks a contiguous range of blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First disk of the range.
    pub first_disk: usize,
    /// Number of disks.
    pub disks: usize,
    /// First block on each disk.
    pub first_block: usize,
    /// Blocks per disk.
    pub blocks_per_disk: usize,
}

impl Region {
    /// Address of block `b` on the `i`-th disk of the region.
    ///
    /// # Panics
    /// Panics if `i` or `b` is outside the region.
    #[must_use]
    pub fn addr(&self, i: usize, b: usize) -> BlockAddr {
        assert!(
            i < self.disks,
            "disk {i} outside region of {} disks",
            self.disks
        );
        assert!(
            b < self.blocks_per_disk,
            "block {b} outside region of {} blocks/disk",
            self.blocks_per_disk
        );
        BlockAddr::new(self.first_disk + i, self.first_block + b)
    }

    /// Total blocks in the region.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.disks * self.blocks_per_disk
    }
}

/// Per-disk bump allocator over a [`DiskArray`].
///
/// Regions are never freed (data structures in the paper never move data);
/// the global-rebuilding wrapper accounts live space separately.
#[derive(Debug, Clone)]
pub struct DiskAllocator {
    next_free: Vec<usize>,
}

impl DiskAllocator {
    /// Allocator starting at block 0 of every disk.
    #[must_use]
    pub fn new(disks: usize) -> Self {
        DiskAllocator {
            next_free: vec![0; disks],
        }
    }

    /// Allocate `blocks_per_disk` blocks on each of the disks
    /// `first_disk .. first_disk + disks`, growing the array as needed.
    ///
    /// The region starts at the max of the involved disks' bump pointers
    /// so its blocks are aligned across disks (required for one-I/O probes
    /// that touch the same block row on every disk).
    ///
    /// # Panics
    /// Panics if the disk range exceeds the array.
    pub fn alloc(
        &mut self,
        array: &mut DiskArray,
        first_disk: usize,
        disks: usize,
        blocks_per_disk: usize,
    ) -> Region {
        assert!(disks >= 1, "a region needs at least one disk");
        assert!(
            first_disk + disks <= array.disks(),
            "disk range {}..{} exceeds array of {} disks",
            first_disk,
            first_disk + disks,
            array.disks()
        );
        let start = self.next_free[first_disk..first_disk + disks]
            .iter()
            .copied()
            .max()
            .expect("non-empty disk range");
        for d in first_disk..first_disk + disks {
            self.next_free[d] = start + blocks_per_disk;
        }
        array.grow(start + blocks_per_disk);
        Region {
            first_disk,
            disks,
            first_block: start,
            blocks_per_disk,
        }
    }

    /// Current bump pointer of a disk (for space accounting).
    #[must_use]
    pub fn used_blocks(&self, disk: usize) -> usize {
        self.next_free[disk]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::PdmConfig;

    #[test]
    fn regions_do_not_overlap() {
        let mut arr = DiskArray::new(PdmConfig::new(8, 4), 0);
        let mut alloc = DiskAllocator::new(8);
        let a = alloc.alloc(&mut arr, 0, 4, 3);
        let b = alloc.alloc(&mut arr, 0, 4, 2);
        assert_eq!(a.first_block, 0);
        assert_eq!(b.first_block, 3);
        let c = alloc.alloc(&mut arr, 4, 4, 5);
        assert_eq!(c.first_block, 0, "disjoint disks can reuse block 0");
    }

    #[test]
    fn overlapping_disk_ranges_align() {
        let mut arr = DiskArray::new(PdmConfig::new(8, 4), 0);
        let mut alloc = DiskAllocator::new(8);
        let _ = alloc.alloc(&mut arr, 0, 2, 5); // disks 0-1 now at 5
        let r = alloc.alloc(&mut arr, 1, 3, 2); // overlaps disk 1
        assert_eq!(r.first_block, 5, "must start past the busiest disk");
        assert_eq!(alloc.used_blocks(3), 7);
    }

    #[test]
    fn alloc_grows_the_array() {
        let mut arr = DiskArray::new(PdmConfig::new(2, 4), 0);
        let mut alloc = DiskAllocator::new(2);
        let r = alloc.alloc(&mut arr, 0, 2, 10);
        assert!(arr.blocks_on(0) >= 10);
        let addr = r.addr(1, 9);
        assert_eq!(addr, BlockAddr::new(1, 9));
    }

    #[test]
    #[should_panic(expected = "exceeds array")]
    fn out_of_range_disks_rejected() {
        let mut arr = DiskArray::new(PdmConfig::new(2, 4), 0);
        let mut alloc = DiskAllocator::new(2);
        let _ = alloc.alloc(&mut arr, 1, 2, 1);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn addr_bounds_checked() {
        let mut arr = DiskArray::new(PdmConfig::new(2, 4), 0);
        let mut alloc = DiskAllocator::new(2);
        let r = alloc.alloc(&mut arr, 0, 2, 1);
        let _ = r.addr(0, 1);
    }

    #[test]
    fn total_blocks() {
        let r = Region {
            first_disk: 0,
            disks: 3,
            first_block: 2,
            blocks_per_disk: 4,
        };
        assert_eq!(r.total_blocks(), 12);
    }
}
