//! A concurrent front for the fully dynamic dictionary.
//!
//! The paper motivates its structures with "an environment with many
//! concurrent lookups and updates" (webmail/http servers) and argues that
//! the absence of a central directory and the never-move-data discipline
//! "simplifies concurrency control mechanisms such as locking".
//!
//! [`ShardedDictionary`] is the standard server-side realization of that
//! argument: the key space is split over `S` independent [`Dictionary`]
//! shards (each with its own simulated disk array — in a deployment, its
//! own disk group), so concurrent operations on different shards never
//! contend, and per-shard locking is trivially correct because the shard
//! structure itself needs no reader-writer coordination beyond the lock.
//! Static structures need no locks at all — see
//! [`OneProbeStatic::lookup_shared`](crate::one_probe::OneProbeStatic::lookup_shared)
//! and the `concurrent_reads` example.

use crate::config::DictParams;
use crate::rebuild::Dictionary;
use crate::traits::{Dict, DictError, LookupOutcome, OpRecorder};
use expander::mix::mix64;
use pdm::metrics::{IoMetricsSink, MetricsRegistry};
use pdm::{OpCost, ScrubReport, Word};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock a shard, recovering from poisoning.
///
/// A panicking thread only ever leaves a shard in a state that is valid
/// for subsequent operations (all multi-block mutations go through a
/// single `write_batch`), so poisoned locks are safe to adopt.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `S` dictionary shards behind per-shard locks.
///
/// ```
/// use pdm_dict::concurrent::ShardedDictionary;
/// use pdm_dict::DictParams;
///
/// let params = DictParams::new(128, 1 << 40, 1)
///     .with_degree(16)
///     .with_epsilon(1.0)
///     .with_seed(3);
/// let dict = ShardedDictionary::new(4, params, 128)?;
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let dict = &dict;
///         s.spawn(move || {
///             for i in 0..100u64 {
///                 dict.insert(t * 1000 + i, &[i]).unwrap();
///             }
///         });
///     }
/// });
/// assert_eq!(dict.len(), 400);
/// assert_eq!(dict.lookup(2050).satellite, Some(vec![50]));
/// # Ok::<(), pdm_dict::DictError>(())
/// ```
#[derive(Debug)]
pub struct ShardedDictionary {
    shards: Vec<Mutex<Dictionary>>,
    route_seed: u64,
    metrics: Option<OpRecorder>,
}

impl ShardedDictionary {
    /// Create `shards` shards, each an independent [`Dictionary`] with
    /// `params` (capacities are per shard).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, params: DictParams, block_words: usize) -> Result<Self, DictError> {
        assert!(shards > 0, "need at least one shard");
        let mut v = Vec::with_capacity(shards);
        for i in 0..shards {
            let shard_params = params.with_seed(params.seed.wrapping_add(i as u64));
            v.push(Mutex::new(Dictionary::new(shard_params, block_words)?));
        }
        Ok(ShardedDictionary {
            shards: v,
            route_seed: params.seed ^ 0x5AAD_ED00,
            metrics: None,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: u64) -> &Mutex<Dictionary> {
        &self.shards[self.shard_index(key)]
    }

    fn shard_index(&self, key: u64) -> usize {
        (mix64(self.route_seed ^ key) % self.shards.len() as u64) as usize
    }

    /// Total live keys across shards (takes each lock briefly).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether all shards are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup (locks one shard).
    pub fn lookup(&self, key: u64) -> LookupOutcome {
        lock(self.shard_of(key)).lookup(key)
    }

    /// Insert (locks one shard).
    pub fn insert(&self, key: u64, satellite: &[Word]) -> Result<OpCost, DictError> {
        lock(self.shard_of(key)).insert(key, satellite)
    }

    /// Delete (locks one shard). Returns whether the key was present.
    pub fn delete(&self, key: u64) -> Result<(bool, OpCost), DictError> {
        lock(self.shard_of(key)).delete(key)
    }

    /// Batched lookup: keys are grouped by shard, each group served by
    /// one [`Dictionary::lookup_batch`] under a single lock acquisition.
    /// Shard arrays are **independent disk groups**, so the per-shard
    /// batches overlap in time and the charged parallel cost is the
    /// per-shard **max** ([`OpCost::alongside`]); the per-shard sum — what
    /// serving the groups one after another would cost — is retained in
    /// [`OpCost::sequential_ios`]. Results are byte-identical to calling
    /// [`Self::lookup`] per key, in order.
    pub fn lookup_batch(&self, keys: &[u64]) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &key) in keys.iter().enumerate() {
            groups[self.shard_index(key)].push(i);
        }
        let mut results: Vec<Option<Vec<Word>>> = vec![None; keys.len()];
        let mut cost = OpCost::default();
        for (shard, group) in self.shards.iter().zip(&groups) {
            if group.is_empty() {
                continue;
            }
            let sub: Vec<u64> = group.iter().map(|&i| keys[i]).collect();
            let (found, c) = lock(shard).lookup_batch(&sub);
            cost = cost.alongside(c);
            for (&i, f) in group.iter().zip(found) {
                results[i] = f;
            }
        }
        (results, cost)
    }

    /// Batched insert: entries are grouped by shard, each group applied
    /// by one [`Dictionary::insert_batch`] under a single lock
    /// acquisition. Per-key errors (duplicates, width mismatches) are
    /// reported in input order; other keys are unaffected. As with
    /// [`Self::lookup_batch`], the parallel cost is the per-shard max
    /// and the per-shard sum is kept in [`OpCost::sequential_ios`].
    pub fn insert_batch(&self, entries: &[(u64, Vec<Word>)]) -> (Vec<Result<(), DictError>>, OpCost) {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (key, _)) in entries.iter().enumerate() {
            groups[self.shard_index(*key)].push(i);
        }
        let mut results: Vec<Option<Result<(), DictError>>> = (0..entries.len())
            .map(|_| None)
            .collect();
        let mut cost = OpCost::default();
        for (shard, group) in self.shards.iter().zip(&groups) {
            if group.is_empty() {
                continue;
            }
            let sub: Vec<(u64, Vec<Word>)> = group.iter().map(|&i| entries[i].clone()).collect();
            let (res, c) = lock(shard).insert_batch(&sub);
            cost = cost.alongside(c);
            for (&i, r) in group.iter().zip(res) {
                results[i] = Some(r);
            }
        }
        (
            results
                .into_iter()
                .map(|r| r.expect("every key routed to exactly one shard"))
                .collect(),
            cost,
        )
    }

    /// Scrub every shard in turn (each under its own lock) and merge the
    /// per-shard reports. Other shards stay available while one scrubs.
    pub fn scrub_all(&self) -> ScrubReport {
        let mut total = ScrubReport::default();
        for shard in &self.shards {
            total.merge(&lock(shard).scrub());
        }
        total
    }

    /// Sum of parallel I/Os across all shard arrays.
    #[must_use]
    pub fn total_parallel_ios(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| lock(s).io_stats().parallel_ios)
            .sum()
    }

    /// Sum of shard capacities.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| lock(s).capacity()).sum()
    }
}

impl Dict for ShardedDictionary {
    fn kind(&self) -> &'static str {
        "sharded"
    }

    fn len(&self) -> usize {
        ShardedDictionary::len(self)
    }

    fn capacity(&self) -> usize {
        ShardedDictionary::capacity(self)
    }

    fn lookup(&mut self, key: u64) -> LookupOutcome {
        let out = ShardedDictionary::lookup(self, key);
        if let Some(m) = &self.metrics {
            m.record_lookup(&out);
        }
        out
    }

    fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<OpCost, DictError> {
        let result = ShardedDictionary::insert(self, key, satellite);
        if let Some(m) = &self.metrics {
            m.record_insert(&result);
        }
        result
    }

    fn delete(&mut self, key: u64) -> Result<(bool, OpCost), DictError> {
        let result = ShardedDictionary::delete(self, key);
        if let Some(m) = &self.metrics {
            m.record_delete(&result);
        }
        result
    }

    fn lookup_batch(&mut self, keys: &[u64]) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let (results, cost) = ShardedDictionary::lookup_batch(self, keys);
        if let Some(m) = &self.metrics {
            m.record_lookup_batch(keys.len(), cost);
        }
        (results, cost)
    }

    fn insert_batch(&mut self, entries: &[(u64, Vec<Word>)]) -> (Vec<Result<(), DictError>>, OpCost) {
        let (results, cost) = ShardedDictionary::insert_batch(self, entries);
        if let Some(m) = &self.metrics {
            m.record_insert_batch(entries.len(), cost);
        }
        (results, cost)
    }

    fn scrub(&mut self) -> ScrubReport {
        let report = ShardedDictionary::scrub_all(self);
        if let Some(m) = &self.metrics {
            m.record_scrub(&report);
        }
        report
    }

    /// Checkpoint every shard's journal in turn; `true` if any shard
    /// actually had one.
    fn checkpoint(&mut self) -> bool {
        let mut any = false;
        for shard in &self.shards {
            any |= lock(shard).checkpoint();
        }
        any
    }

    /// Recover every shard and merge the reports (costs and counts sum;
    /// replayed intents concatenate in shard order).
    fn recover(&mut self) -> pdm::RecoveryReport {
        let mut merged = pdm::RecoveryReport::default();
        for shard in &self.shards {
            let r = lock(shard).recover();
            merged.scanned_slots += r.scanned_slots;
            merged.discarded += r.discarded;
            merged.stalled += r.stalled;
            merged.blocks_rewritten += r.blocks_rewritten;
            merged.cost = merged.cost.plus(r.cost);
            merged.replayed.extend(r.replayed);
        }
        merged
    }

    /// Installs one [`IoMetricsSink`] per shard on the shard's disk array
    /// (all shards share the registry, so per-disk counters aggregate
    /// across shards by disk index) and records per-op costs under
    /// `dict = "sharded"`. The shard `Dictionary`s' own recorders stay
    /// uninstalled — ops are counted once, at the front the caller used.
    fn set_metrics(&mut self, registry: Option<Arc<MetricsRegistry>>) {
        match registry {
            Some(registry) => {
                for shard in &self.shards {
                    let mut d = lock(shard);
                    let disks = d.disks().disks();
                    d.set_io_sink(Some(Arc::new(IoMetricsSink::new(&registry, disks))));
                }
                self.metrics = Some(OpRecorder::new(registry, "sharded"));
            }
            None => {
                for shard in &self.shards {
                    lock(shard).set_io_sink(None);
                }
                self.metrics = None;
            }
        }
    }

    fn refresh_gauges(&mut self) {
        let Some(m) = &self.metrics else { return };
        m.set_shape(
            "sharded",
            ShardedDictionary::len(self),
            ShardedDictionary::capacity(self),
        );
        m.registry
            .gauge("dict_shards", &[("dict", "sharded")])
            .set(self.shards.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(shards: usize) -> ShardedDictionary {
        let params = DictParams::new(64, 1 << 40, 1)
            .with_degree(16)
            .with_epsilon(1.0)
            .with_seed(0x5A);
        ShardedDictionary::new(shards, params, 128).unwrap()
    }

    #[test]
    fn single_threaded_semantics() {
        let dict = sharded(4);
        for k in 0..500u64 {
            dict.insert(k, &[k * 2]).unwrap();
        }
        assert_eq!(dict.len(), 500);
        for k in 0..500u64 {
            assert_eq!(dict.lookup(k).satellite, Some(vec![k * 2]));
        }
        let (was, _) = dict.delete(9).unwrap();
        assert!(was);
        assert!(!dict.lookup(9).found());
        assert_eq!(dict.len(), 499);
    }

    #[test]
    fn concurrent_mixed_operations_are_linearizable_per_key() {
        let dict = sharded(8);
        let threads = 8u64;
        let per = 200u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let dict = &dict;
                s.spawn(move || {
                    // Each thread owns a disjoint key range: per-key
                    // linearizability is then directly checkable.
                    let base = t << 32;
                    for i in 0..per {
                        dict.insert(base + i, &[t]).unwrap();
                    }
                    for i in (0..per).step_by(2) {
                        let (was, _) = dict.delete(base + i).unwrap();
                        assert!(was);
                    }
                    for i in 0..per {
                        let found = dict.lookup(base + i).found();
                        assert_eq!(found, i % 2 == 1, "thread {t}, key {i}");
                    }
                });
            }
        });
        assert_eq!(dict.len(), (threads * per / 2) as usize);
        assert!(dict.total_parallel_ios() > 0);
    }

    #[test]
    fn duplicate_rejected_across_threads() {
        let dict = sharded(4);
        dict.insert(7, &[1]).unwrap();
        let failures: usize = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let dict = &dict;
                    s.spawn(move || usize::from(dict.insert(7, &[2]).is_err()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(failures, 4, "every racing duplicate must be rejected");
        assert_eq!(dict.lookup(7).satellite, Some(vec![1]));
    }

    /// Two-shard batch cost, checked by hand: shards own independent
    /// disk groups, so a cross-shard batch overlaps the per-shard
    /// batches in time. The parallel cost must be the **max** of the two
    /// per-shard batch costs, while the sum — what a one-group-at-a-time
    /// schedule would pay — is retained as `sequential_ios`.
    #[test]
    fn cross_shard_batch_cost_is_per_shard_max_with_sum_retained() {
        // Twin dictionaries: `probe` measures the per-shard batch costs
        // in isolation, `dict` serves the combined batch.
        let dict = sharded(2);
        let probe = sharded(2);
        // Skewed split: shard 0 gets enough keys that its batch strictly
        // dominates shard 1's, making max < sum observable.
        let mut shard0 = Vec::new();
        let mut shard1 = Vec::new();
        for k in 0..400u64 {
            if dict.shard_index(k) == 0 && shard0.len() < 24 {
                shard0.push(k);
            } else if dict.shard_index(k) == 1 && shard1.len() < 2 {
                shard1.push(k);
            }
        }
        assert_eq!((shard0.len(), shard1.len()), (24, 2));
        for &k in shard0.iter().chain(&shard1) {
            dict.insert(k, &[k]).unwrap();
            probe.insert(k, &[k]).unwrap();
        }

        // Per-shard batch costs in isolation (single-shard batches:
        // max == sum, so parallel_ios is the plain batch cost).
        let (_, c0) = probe.lookup_batch(&shard0);
        let (_, c1) = probe.lookup_batch(&shard1);
        assert_eq!(c0.parallel_ios, c0.sequential_ios);
        assert_eq!(c1.parallel_ios, c1.sequential_ios);
        assert!(c0.parallel_ios >= 1 && c1.parallel_ios >= 1);

        // The combined batch: routed identically (same seed), so the
        // groups are exactly shard0 + shard1.
        let all: Vec<u64> = shard0.iter().chain(&shard1).copied().collect();
        let (found, cost) = dict.lookup_batch(&all);
        assert!(found.iter().all(Option::is_some));
        assert_eq!(
            cost.parallel_ios,
            c0.parallel_ios.max(c1.parallel_ios),
            "parallel cost is the per-shard max"
        );
        assert_eq!(
            cost.sequential_ios,
            c0.parallel_ios + c1.parallel_ios,
            "the one-shard-at-a-time sum is retained"
        );
        assert!(
            cost.sequential_ios > cost.parallel_ios,
            "with two busy shards the sum must exceed the max: {} vs {}",
            cost.sequential_ios,
            cost.parallel_ios
        );
        assert_eq!(cost.block_reads, c0.block_reads + c1.block_reads);
    }

    #[test]
    fn shard_routing_is_stable() {
        let dict = sharded(8);
        dict.insert(123, &[9]).unwrap();
        for _ in 0..10 {
            assert_eq!(dict.lookup(123).satellite, Some(vec![9]));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let params = DictParams::new(16, 1 << 20, 0)
            .with_degree(16)
            .with_epsilon(1.0);
        let _ = ShardedDictionary::new(0, params, 64);
    }
}
