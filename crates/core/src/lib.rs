//! # `pdm-dict` — deterministic dictionaries in the parallel disk model
//!
//! The primary contribution of the SPAA'06 paper *"Deterministic load
//! balancing and dictionaries in the parallel disk model"*: dictionaries
//! with **worst-case** I/O guarantees matching the *expected* performance
//! of hashing, obtained by trading randomness for parallelism
//! (`D = Ω(log u)` disks).
//!
//! The structures, bottom to top:
//!
//! * [`basic::BasicDict`] — Section 4.1: `v` buckets indexed by a striped
//!   expander, greedy `k = 1` load balancing done *from the read blocks
//!   themselves* (no in-memory index). `O(1)`-I/O lookups and updates
//!   worst case; 1-I/O lookups when `B = Ω(log N)`.
//! * [`one_probe::OneProbeStatic`] — Section 4.2 / Theorem 6: the static
//!   one-probe dictionary. Every key owns `2d/3` *unique-neighbor* fields;
//!   case (b) tags fields with `⌈lg n⌉`-bit identifiers and decodes by
//!   majority, case (a) pairs a membership dictionary with unary-coded
//!   pointer chains for full bandwidth. Built by the paper's sort-based
//!   construction in `O(sort(n·d))` parallel I/Os.
//! * [`dynamic::DynamicDict`] — Section 4.3 / Theorem 7: `l` geometrically
//!   shrinking field arrays with first-fit insertion; lookups average
//!   `1 + ɛ` I/Os, updates `2 + ɛ`, worst case `O(log n)`, unsuccessful
//!   lookups exactly 1 I/O.
//! * [`rebuild::Dictionary`] — the user-facing fully dynamic dictionary:
//!   global rebuilding (Overmars–van Leeuwen) over two disk regions makes
//!   the capacity unbounded and supports deletions, at a constant-factor
//!   space/disk overhead, exactly as the Section 4 preamble describes.
//! * [`fs::PdmFileSystem`] — the Section 1.2 motivation: a file-system
//!   facade where keys are (inode, block number) pairs and a random block
//!   of any file is one parallel I/O away.
//!
//! Beyond the headline structures:
//!
//! * [`wide::WideDict`] — §4.1's `k = d/2` variant: `O(BD/log N)`-word
//!   bandwidth at one-probe lookups.
//! * [`multi::ParallelInstances`] — the §4 preamble's parallel instances:
//!   `C` insertions for 2 parallel I/Os, `C` lookups for 1.
//! * [`one_probe::HeadModelOneProbe`] — §5's closing remark: the
//!   dictionary over an *unstriped* expander in the parallel disk head
//!   model, saving the trivial striping's factor-`d` space.
//! * [`concurrent::ShardedDictionary`] — a lock-sharded concurrent front;
//!   and static structures support lock-free shared reads
//!   ([`one_probe::OneProbeStatic::lookup_shared`]).
//! * [`micro::MicroDict`] — the small-`B` regime's atomic-heap stand-in.
//!
//! All structures share the properties the paper advertises for
//! concurrent environments: no central directory (lookups go directly to
//! blocks computed from the key and the structure's size), and — absent
//! deletions — no piece of data is ever moved once inserted.
//!
//! ## Determinism
//!
//! Every structure is deterministic once its expander seed is fixed; the
//! seed plays the role of the paper's assumed-for-free explicit expander
//! (see the `expander` crate docs for the substitution argument).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basic;
pub mod bucket;
pub mod concurrent;
pub mod config;
pub mod dynamic;
pub mod fields;
pub mod fs;
pub mod handle;
pub mod layout;
pub mod micro;
pub mod multi;
pub mod one_probe;
pub mod rebuild;
pub mod traits;
pub mod wide;

pub use basic::BasicDict;
pub use concurrent::ShardedDictionary;
pub use config::DictParams;
pub use dynamic::DynamicDict;
pub use fs::PdmFileSystem;
pub use handle::{BasicHandle, DictHandle, DynamicHandle, OneProbeHandle, RawDict, WideHandle};
pub use multi::ParallelInstances;
pub use one_probe::OneProbeStatic;
pub use rebuild::Dictionary;
pub use traits::{Dict, DictError, ErrorKind, LookupOutcome, Provenance};
pub use wide::WideDict;
