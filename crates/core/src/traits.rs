//! Common result and error types for the dictionaries, and the unified
//! object-safe [`Dict`] trait every front-end implements.

use pdm::metrics::{Counter, Histogram, MetricsRegistry};
use pdm::{DiskArray, IoFaultKind, OpCost, ScrubReport, Word};
use std::sync::Arc;

/// Whether a lookup's answer came from fully healthy reads or had to
/// tolerate damage (erasure-decoded fields, sanitized blocks, a retried
/// transient error). A `Degraded` answer is still *correct* when present
/// — the redundancy covered the damage — but signals that a scrub or
/// disk replacement is due.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Provenance {
    /// Every block backing the answer read cleanly.
    #[default]
    Exact,
    /// At least one backing block was damaged; the answer was produced
    /// from surviving redundancy (or is a conservative miss).
    Degraded,
}

/// Result of a lookup: the satellite data if the key was present, plus the
/// exact parallel-I/O cost of the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupOutcome {
    /// Satellite words, or `None` for an unsuccessful search.
    pub satellite: Option<Vec<Word>>,
    /// I/O cost of this lookup.
    pub cost: OpCost,
    /// Whether the answer was produced from fully healthy reads.
    pub provenance: Provenance,
}

impl LookupOutcome {
    /// An outcome backed by fully healthy reads ([`Provenance::Exact`]).
    #[must_use]
    pub fn new(satellite: Option<Vec<Word>>, cost: OpCost) -> Self {
        LookupOutcome {
            satellite,
            cost,
            provenance: Provenance::Exact,
        }
    }

    /// An outcome that tolerated damage ([`Provenance::Degraded`]).
    #[must_use]
    pub fn degraded(satellite: Option<Vec<Word>>, cost: OpCost) -> Self {
        LookupOutcome {
            satellite,
            cost,
            provenance: Provenance::Degraded,
        }
    }

    /// Whether the key was found.
    #[must_use]
    pub fn found(&self) -> bool {
        self.satellite.is_some()
    }

    /// Whether the answer was backed by fully healthy reads.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.provenance == Provenance::Exact
    }

    /// Whether this outcome is a **certified absence**: an unsuccessful
    /// search backed by fully healthy reads. The paper's one-probe
    /// dictionary (Theorem 6) pays its single parallel I/O on
    /// unsuccessful searches too, and its case-(b) identifier-tagged
    /// fields make the miss a positive statement — "no field of this
    /// key's block carries its identifier" — rather than mere failure to
    /// find. Every front-end in this workspace inherits the same shape:
    /// a miss read all the blocks the key could live in and saw it in
    /// none of them. A `Degraded` miss certifies nothing (a sanitized
    /// block might have held the key), so only `Exact` misses are safe
    /// to cache negatively.
    #[must_use]
    pub fn certifies_absence(&self) -> bool {
        self.satellite.is_none() && self.provenance == Provenance::Exact
    }
}

/// Errors the dictionaries can report.
///
/// The deterministic guarantees of the paper are conditional on the
/// expander having its stated parameters; with a sampled graph the
/// failure probability is tiny but nonzero, and surfaces as
/// [`DictError::BucketOverflow`] / [`DictError::LevelsExhausted`] /
/// [`DictError::ExpansionFailure`] rather than silent data loss.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DictError {
    /// The structure reached its fixed capacity `N`.
    CapacityExhausted {
        /// The capacity that was reached.
        capacity: usize,
    },
    /// The key is already present (the paper's structures store a key
    /// set; updates of satellite data go through delete + insert).
    DuplicateKey(u64),
    /// Section 4.1: all `d` candidate buckets of the key are full — the
    /// expander missed its load-balancing parameters.
    BucketOverflow {
        /// The key being inserted.
        key: u64,
    },
    /// Section 4.3: no level offered `2d/3` free fields — the expander
    /// missed its unique-neighbor parameters.
    LevelsExhausted {
        /// The key being inserted.
        key: u64,
    },
    /// Static construction failed to assign fields (peeling got stuck).
    ExpansionFailure(String),
    /// The requested parameters violate a theorem's side condition
    /// (e.g. too few disks: the paper requires `D = Ω(log u)`).
    UnsupportedParams(String),
    /// Satellite data of the wrong width for this dictionary instance.
    SatelliteWidth {
        /// Words expected per record.
        expected: usize,
        /// Words supplied.
        got: usize,
    },
    /// A disk-level fault prevented the operation from completing reliably
    /// (dead disk, transient read error that outlived the retry, checksum
    /// mismatch, torn write). Reads that can be answered from redundancy
    /// do **not** raise this — they return a
    /// [`Provenance::Degraded`] outcome instead; `Io` means the
    /// operation's effect could not be guaranteed.
    ///
    /// Stability contract: both this enum and [`pdm::IoFaultKind`] are
    /// `#[non_exhaustive]`. Callers must classify via
    /// [`kind`](DictError::kind) / [`ErrorKind::Io`] (or a wildcard arm)
    /// rather than exhaustively destructuring, so new fault kinds and new
    /// payload fields are not breaking changes.
    Io {
        /// What went wrong at the disk layer.
        kind: IoFaultKind,
        /// Disk on which the fault fired.
        disk: usize,
        /// Block index on that disk.
        addr: usize,
    },
}

/// Coarse classification of a [`DictError`], for callers that react to the
/// *category* of a failure (retry, rebuild, reject) rather than its payload.
/// Match on this instead of destructuring the `#[non_exhaustive]` error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The structure reached its fixed capacity.
    CapacityExhausted,
    /// The key is already present.
    DuplicateKey,
    /// An expander-based placement ran out of room (§4.1 buckets).
    BucketOverflow,
    /// An expander-based placement ran out of levels (§4.3).
    LevelsExhausted,
    /// A static construction failed to assign fields.
    ExpansionFailure,
    /// The requested parameters violate a theorem's side condition.
    UnsupportedParams,
    /// Satellite data had the wrong width.
    SatelliteWidth,
    /// A disk-level fault prevented the operation from completing.
    Io,
}

impl DictError {
    /// The coarse [`ErrorKind`] of this error.
    #[must_use]
    pub fn kind(&self) -> ErrorKind {
        match self {
            DictError::CapacityExhausted { .. } => ErrorKind::CapacityExhausted,
            DictError::DuplicateKey(_) => ErrorKind::DuplicateKey,
            DictError::BucketOverflow { .. } => ErrorKind::BucketOverflow,
            DictError::LevelsExhausted { .. } => ErrorKind::LevelsExhausted,
            DictError::ExpansionFailure(_) => ErrorKind::ExpansionFailure,
            DictError::UnsupportedParams(_) => ErrorKind::UnsupportedParams,
            DictError::SatelliteWidth { .. } => ErrorKind::SatelliteWidth,
            DictError::Io { .. } => ErrorKind::Io,
        }
    }

    /// True for the family of expander-parameter misses the paper's
    /// guarantees are conditional on ([`ErrorKind::BucketOverflow`],
    /// [`ErrorKind::LevelsExhausted`], [`ErrorKind::ExpansionFailure`]):
    /// with a sampled graph these have tiny but nonzero probability, and the
    /// standard reaction is to rebuild with a fresh seed.
    #[must_use]
    pub fn is_expansion_failure(&self) -> bool {
        matches!(
            self.kind(),
            ErrorKind::BucketOverflow | ErrorKind::LevelsExhausted | ErrorKind::ExpansionFailure
        )
    }
}

impl std::fmt::Display for DictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DictError::CapacityExhausted { capacity } => {
                write!(f, "dictionary capacity {capacity} exhausted")
            }
            DictError::DuplicateKey(k) => write!(f, "key {k} already present"),
            DictError::BucketOverflow { key } => {
                write!(
                    f,
                    "all candidate buckets full for key {key} (expansion failure)"
                )
            }
            DictError::LevelsExhausted { key } => {
                write!(
                    f,
                    "no level had enough free fields for key {key} (expansion failure)"
                )
            }
            DictError::ExpansionFailure(msg) => write!(f, "expansion failure: {msg}"),
            DictError::UnsupportedParams(msg) => write!(f, "unsupported parameters: {msg}"),
            DictError::SatelliteWidth { expected, got } => {
                write!(
                    f,
                    "satellite width mismatch: expected {expected} words, got {got}"
                )
            }
            DictError::Io { kind, disk, addr } => {
                write!(f, "i/o fault ({kind}) on disk {disk} block {addr}")
            }
        }
    }
}

impl std::error::Error for DictError {}

/// A storage-backend configuration failure (e.g. [`pdm::FileBackend`]
/// rejecting a block-size change on reopen or a missing disk file)
/// surfaces as a typed [`DictError::Io`] — never a panic. The backend
/// error carries no block address, so `addr` is 0.
impl From<pdm::BackendError> for DictError {
    fn from(e: pdm::BackendError) -> Self {
        DictError::Io {
            kind: e.kind,
            disk: e.disk,
            addr: 0,
        }
    }
}

/// The unified, object-safe dictionary interface.
///
/// All six front-ends — `BasicDict`, `DynamicDict`, `OneProbeStatic`,
/// `Dictionary`, `ShardedDictionary`, `WideDict` — are usable through
/// `&mut dyn Dict` (the externally-disked structures via the
/// [`DictHandle`](crate::DictHandle) adapter that pairs them with their
/// [`DiskArray`]). Generic infrastructure — the differential test harness,
/// the workload-replay bench, metrics recording — drives every front-end
/// through this trait instead of six copies of the loop.
///
/// Static structures (`OneProbeStatic`) return
/// [`ErrorKind::UnsupportedParams`] from [`insert`](Dict::insert) and
/// [`delete`](Dict::delete).
pub trait Dict {
    /// Stable tag naming the front-end (`"basic"`, `"dynamic"`,
    /// `"one_probe"`, `"rebuild"`, `"sharded"`, `"wide"`); used as the
    /// `dict` label on every exported metric.
    fn kind(&self) -> &'static str;

    /// Number of keys currently stored.
    fn len(&self) -> usize;

    /// True if no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of keys this instance can hold (for static
    /// structures, the size of the built key set).
    fn capacity(&self) -> usize;

    /// Look up `key`.
    fn lookup(&mut self, key: u64) -> LookupOutcome;

    /// Insert `key` with `satellite` payload.
    ///
    /// # Errors
    /// See [`DictError`]; static structures report
    /// [`DictError::UnsupportedParams`].
    fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<OpCost, DictError>;

    /// Delete `key`, returning whether it was present.
    ///
    /// # Errors
    /// Static structures report [`DictError::UnsupportedParams`].
    fn delete(&mut self, key: u64) -> Result<(bool, OpCost), DictError>;

    /// Batched lookup. The default loops over [`lookup`](Dict::lookup);
    /// front-ends with a round-sharing batch engine override it.
    fn lookup_batch(&mut self, keys: &[u64]) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let mut results = Vec::with_capacity(keys.len());
        let mut cost = OpCost::default();
        for &key in keys {
            let out = self.lookup(key);
            cost = cost.plus(out.cost);
            results.push(out.satellite);
        }
        (results, cost)
    }

    /// Batched insert with per-entry results. The default loops over
    /// [`insert`](Dict::insert).
    fn insert_batch(&mut self, entries: &[(u64, Vec<Word>)]) -> (Vec<Result<(), DictError>>, OpCost) {
        let mut results = Vec::with_capacity(entries.len());
        let mut cost = OpCost::default();
        for (key, satellite) in entries {
            match self.insert(*key, satellite) {
                Ok(c) => {
                    cost = cost.plus(c);
                    results.push(Ok(()));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        (results, cost)
    }

    /// Install (or with `None` remove) a metrics registry. Implementations
    /// tag per-op cost histograms with their [`kind`](Dict::kind) and hook
    /// the underlying disk arrays (see [`pdm::metrics`]).
    fn set_metrics(&mut self, registry: Option<Arc<MetricsRegistry>>);

    /// Refresh structure-shape gauges (`dict_len`, `dict_capacity`, plus
    /// front-end specifics such as `dict_max_bucket_load`) in the installed
    /// registry. No-op without a registry.
    fn refresh_gauges(&mut self) {}

    /// The underlying disk array, when the front-end has exactly one — the
    /// differential harness uses it as a byte-identity witness. `None` for
    /// sharded structures.
    fn disks(&self) -> Option<&DiskArray> {
        None
    }

    /// Mutable access to the underlying disk array, for failure injection
    /// in tests. `None` for sharded structures.
    fn disks_mut(&mut self) -> Option<&mut DiskArray> {
        None
    }

    /// Crash recovery: scan the write-ahead intent journal
    /// ([`pdm::journal`]), replay every intact in-flight intent, roll
    /// back torn ones, reconcile in-memory counters with the replay, and
    /// truncate. Idempotent — recovering a clean structure is a no-op
    /// scan. The default replays at the disk layer only; front-ends with
    /// replay-sensitive counters (the dynamic dictionary and its
    /// wrappers) override it to also reconcile and checkpoint. Returns
    /// an empty report when there is no accessible disk array or no
    /// journal is enabled.
    fn recover(&mut self) -> pdm::RecoveryReport {
        self.disks_mut()
            .map(DiskArray::recover)
            .unwrap_or_default()
    }

    /// Checkpoint the write-ahead intent journal ([`pdm::journal`]):
    /// persist the front-end's replay-sensitive counters and truncate the
    /// ring, so a crash immediately after this point replays nothing.
    /// Returns `true` when a journal was actually checkpointed, `false`
    /// when the front-end has no journal enabled (the default). The
    /// serving engine calls this on graceful shutdown, after draining its
    /// queues, so a served image is always recoverable.
    fn checkpoint(&mut self) -> bool {
        false
    }

    /// Walk the structure's blocks, verify checksums, and rewrite every
    /// repairable block from surviving redundancy. The default delegates to
    /// [`DiskArray::scrub_verify`] (detection only — counts damage and
    /// refreshes transient state); front-ends with field-level redundancy
    /// (`OneProbeStatic` case (b)) override it with real repair. Returns an
    /// empty report when there is no accessible disk array.
    fn scrub(&mut self) -> ScrubReport {
        self.disks_mut()
            .map(DiskArray::scrub_verify)
            .unwrap_or_default()
    }
}

/// Per-front-end metric recording, shared by every [`Dict`] implementation.
///
/// All registry handles are resolved at installation time, so recording an
/// operation is one histogram observe plus one counter increment.
#[derive(Clone)]
pub(crate) struct OpRecorder {
    pub(crate) registry: Arc<MetricsRegistry>,
    lookup_ios: Arc<Histogram>,
    insert_ios: Arc<Histogram>,
    delete_ios: Arc<Histogram>,
    batch_lookup_ios: Arc<Histogram>,
    batch_insert_ios: Arc<Histogram>,
    batch_lookup_keys: Arc<Histogram>,
    batch_insert_keys: Arc<Histogram>,
    lookup_hit: Arc<Counter>,
    lookup_miss: Arc<Counter>,
    insert_ok: Arc<Counter>,
    insert_err: Arc<Counter>,
    delete_hit: Arc<Counter>,
    delete_miss: Arc<Counter>,
    lookup_degraded: Arc<Counter>,
    scrub_ios: Arc<Histogram>,
    scrub_blocks: Arc<Counter>,
    scrub_failures: Arc<Counter>,
    scrub_repaired_blocks: Arc<Counter>,
    scrub_repaired_fields: Arc<Counter>,
    scrub_unrepairable: Arc<Counter>,
}

impl std::fmt::Debug for OpRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpRecorder").finish_non_exhaustive()
    }
}

/// Histogram of parallel I/Os per sequential op, labels `dict`, `op`.
pub const DICT_OP_PARALLEL_IOS: &str = "dict_op_parallel_ios";
/// Histogram of parallel I/Os per batch call, labels `dict`, `op`.
pub const DICT_BATCH_PARALLEL_IOS: &str = "dict_batch_parallel_ios";
/// Histogram of keys per batch call, labels `dict`, `op`.
pub const DICT_BATCH_KEYS: &str = "dict_batch_keys";
/// Counter of operations, labels `dict`, `op`, `outcome`.
pub const DICT_OPS_TOTAL: &str = "dict_ops_total";
/// Counter of lookups answered with [`Provenance::Degraded`], label `dict`.
pub const DICT_DEGRADED_LOOKUPS_TOTAL: &str = "dict_degraded_lookups_total";
/// Counter of scrub statistics, labels `dict`, `stat` (one of
/// `blocks_scanned`, `checksum_failures`, `repaired_blocks`,
/// `repaired_fields`, `unrepairable_keys`).
pub const DICT_SCRUB_TOTAL: &str = "dict_scrub_total";
/// Histogram of parallel I/Os per scrub pass, label `dict`.
pub const DICT_SCRUB_PARALLEL_IOS: &str = "dict_scrub_parallel_ios";

impl OpRecorder {
    pub(crate) fn new(registry: Arc<MetricsRegistry>, dict: &'static str) -> Self {
        let hist = |op: &str| registry.histogram(DICT_OP_PARALLEL_IOS, &[("dict", dict), ("op", op)]);
        let bhist =
            |op: &str| registry.histogram(DICT_BATCH_PARALLEL_IOS, &[("dict", dict), ("op", op)]);
        let keys = |op: &str| registry.histogram(DICT_BATCH_KEYS, &[("dict", dict), ("op", op)]);
        let ops = |op: &str, outcome: &str| {
            registry.counter(
                DICT_OPS_TOTAL,
                &[("dict", dict), ("op", op), ("outcome", outcome)],
            )
        };
        let scrub = |stat: &str| registry.counter(DICT_SCRUB_TOTAL, &[("dict", dict), ("stat", stat)]);
        OpRecorder {
            lookup_ios: hist("lookup"),
            insert_ios: hist("insert"),
            delete_ios: hist("delete"),
            batch_lookup_ios: bhist("lookup"),
            batch_insert_ios: bhist("insert"),
            batch_lookup_keys: keys("lookup"),
            batch_insert_keys: keys("insert"),
            lookup_hit: ops("lookup", "hit"),
            lookup_miss: ops("lookup", "miss"),
            insert_ok: ops("insert", "ok"),
            insert_err: ops("insert", "err"),
            delete_hit: ops("delete", "hit"),
            delete_miss: ops("delete", "miss"),
            lookup_degraded: registry.counter(DICT_DEGRADED_LOOKUPS_TOTAL, &[("dict", dict)]),
            scrub_ios: registry.histogram(DICT_SCRUB_PARALLEL_IOS, &[("dict", dict)]),
            scrub_blocks: scrub("blocks_scanned"),
            scrub_failures: scrub("checksum_failures"),
            scrub_repaired_blocks: scrub("repaired_blocks"),
            scrub_repaired_fields: scrub("repaired_fields"),
            scrub_unrepairable: scrub("unrepairable_keys"),
            registry,
        }
    }

    pub(crate) fn record_lookup(&self, out: &LookupOutcome) {
        self.lookup_ios.observe(out.cost.parallel_ios);
        if out.found() {
            self.lookup_hit.inc();
        } else {
            self.lookup_miss.inc();
        }
        if !out.is_exact() {
            self.lookup_degraded.inc();
        }
    }

    pub(crate) fn record_scrub(&self, report: &ScrubReport) {
        self.scrub_ios.observe(report.cost.parallel_ios);
        self.scrub_blocks.add(report.blocks_scanned);
        self.scrub_failures.add(report.checksum_failures);
        self.scrub_repaired_blocks.add(report.repaired_blocks);
        self.scrub_repaired_fields.add(report.repaired_fields);
        self.scrub_unrepairable.add(report.unrepairable_keys);
    }

    pub(crate) fn record_insert(&self, result: &Result<OpCost, DictError>) {
        match result {
            Ok(cost) => {
                self.insert_ios.observe(cost.parallel_ios);
                self.insert_ok.inc();
            }
            Err(_) => self.insert_err.inc(),
        }
    }

    pub(crate) fn record_delete(&self, result: &Result<(bool, OpCost), DictError>) {
        if let Ok((found, cost)) = result {
            self.delete_ios.observe(cost.parallel_ios);
            if *found {
                self.delete_hit.inc();
            } else {
                self.delete_miss.inc();
            }
        }
    }

    pub(crate) fn record_lookup_batch(&self, keys: usize, cost: OpCost) {
        self.batch_lookup_ios.observe(cost.parallel_ios);
        self.batch_lookup_keys.observe(keys as u64);
    }

    pub(crate) fn record_insert_batch(&self, keys: usize, cost: OpCost) {
        self.batch_insert_ios.observe(cost.parallel_ios);
        self.batch_insert_keys.observe(keys as u64);
    }

    /// Set the shared shape gauges every front-end exports.
    pub(crate) fn set_shape(&self, dict: &'static str, len: usize, capacity: usize) {
        self.registry
            .gauge("dict_len", &[("dict", dict)])
            .set(len as i64);
        self.registry
            .gauge("dict_capacity", &[("dict", dict)])
            .set(capacity as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_found() {
        let hit = LookupOutcome::new(Some(vec![1, 2]), OpCost::default());
        let miss = LookupOutcome::new(None, OpCost::default());
        assert!(hit.found());
        assert!(!miss.found());
        assert!(hit.is_exact());
        assert_eq!(hit.provenance, Provenance::Exact);
    }

    #[test]
    fn degraded_outcome_keeps_satellite_but_flags_provenance() {
        let out = LookupOutcome::degraded(Some(vec![9]), OpCost::default());
        assert!(out.found());
        assert!(!out.is_exact());
        assert_eq!(out.provenance, Provenance::Degraded);
        assert_eq!(Provenance::default(), Provenance::Exact);
    }

    #[test]
    fn absence_certification_requires_exact_miss() {
        assert!(LookupOutcome::new(None, OpCost::default()).certifies_absence());
        assert!(!LookupOutcome::new(Some(vec![1]), OpCost::default()).certifies_absence());
        assert!(!LookupOutcome::degraded(None, OpCost::default()).certifies_absence());
        assert!(!LookupOutcome::degraded(Some(vec![1]), OpCost::default()).certifies_absence());
    }

    #[test]
    fn errors_display() {
        assert!(DictError::DuplicateKey(7).to_string().contains('7'));
        assert!(DictError::BucketOverflow { key: 3 }
            .to_string()
            .contains("expansion"));
        assert!(DictError::SatelliteWidth {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("expected 2"));
    }

    #[test]
    fn error_kinds() {
        assert_eq!(
            DictError::CapacityExhausted { capacity: 8 }.kind(),
            ErrorKind::CapacityExhausted
        );
        assert_eq!(DictError::DuplicateKey(1).kind(), ErrorKind::DuplicateKey);
        assert_eq!(
            DictError::BucketOverflow { key: 1 }.kind(),
            ErrorKind::BucketOverflow
        );
        assert_eq!(
            DictError::LevelsExhausted { key: 1 }.kind(),
            ErrorKind::LevelsExhausted
        );
        assert_eq!(
            DictError::ExpansionFailure("x".into()).kind(),
            ErrorKind::ExpansionFailure
        );
        assert_eq!(
            DictError::UnsupportedParams("x".into()).kind(),
            ErrorKind::UnsupportedParams
        );
        assert_eq!(
            DictError::SatelliteWidth {
                expected: 1,
                got: 2
            }
            .kind(),
            ErrorKind::SatelliteWidth
        );
        assert_eq!(
            DictError::Io {
                kind: IoFaultKind::DiskDead,
                disk: 3,
                addr: 7
            }
            .kind(),
            ErrorKind::Io
        );
    }

    #[test]
    fn io_error_displays_fault_location() {
        let err = DictError::Io {
            kind: IoFaultKind::ChecksumMismatch,
            disk: 2,
            addr: 11,
        };
        let msg = err.to_string();
        assert!(msg.contains("disk 2"), "{msg}");
        assert!(msg.contains("block 11"), "{msg}");
        assert!(!err.is_expansion_failure());
    }

    #[test]
    fn backend_errors_convert_to_typed_io_errors() {
        // Missing disk file at reopen: typed, never a panic.
        let dir = std::env::temp_dir().join(format!("pdm-dict-be-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let _fb =
                pdm::FileBackend::create(&dir, 2, 4, 2, pdm::FileBackendOptions::default())
                    .unwrap();
        }
        std::fs::remove_file(dir.join("disk-0.bin")).unwrap();
        let err: DictError = pdm::FileBackend::open(&dir, pdm::FileBackendOptions::default())
            .unwrap_err()
            .into();
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(matches!(
            err,
            DictError::Io {
                kind: IoFaultKind::Misconfigured,
                disk: 0,
                addr: 0
            }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn block_size_change_on_reopen_is_a_typed_io_error() {
        let dir = std::env::temp_dir().join(format!("pdm-dict-bs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let _fb =
                pdm::FileBackend::create(&dir, 2, 4, 4, pdm::FileBackendOptions::default())
                    .unwrap();
        }
        // The directory was written under B = 4; reopening it with a
        // B = 8 config must fail with a typed geometry error.
        let fb = pdm::FileBackend::open(&dir, pdm::FileBackendOptions::default()).unwrap();
        let err: DictError =
            pdm::DiskArray::with_backend(pdm::PdmConfig::new(2, 8), Box::new(fb))
                .unwrap_err()
                .into();
        assert!(matches!(
            err,
            DictError::Io {
                kind: IoFaultKind::Misconfigured,
                ..
            }
        ));
        assert!(err.to_string().contains("i/o fault (misconfigured)"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expansion_failure_classification() {
        assert!(DictError::BucketOverflow { key: 1 }.is_expansion_failure());
        assert!(DictError::LevelsExhausted { key: 1 }.is_expansion_failure());
        assert!(DictError::ExpansionFailure("x".into()).is_expansion_failure());
        assert!(!DictError::CapacityExhausted { capacity: 8 }.is_expansion_failure());
        assert!(!DictError::DuplicateKey(1).is_expansion_failure());
        assert!(!DictError::UnsupportedParams("x".into()).is_expansion_failure());
    }
}
