//! Common result and error types for the dictionaries.

use pdm::{OpCost, Word};

/// Result of a lookup: the satellite data if the key was present, plus the
/// exact parallel-I/O cost of the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupOutcome {
    /// Satellite words, or `None` for an unsuccessful search.
    pub satellite: Option<Vec<Word>>,
    /// I/O cost of this lookup.
    pub cost: OpCost,
}

impl LookupOutcome {
    /// Whether the key was found.
    #[must_use]
    pub fn found(&self) -> bool {
        self.satellite.is_some()
    }
}

/// Errors the dictionaries can report.
///
/// The deterministic guarantees of the paper are conditional on the
/// expander having its stated parameters; with a sampled graph the
/// failure probability is tiny but nonzero, and surfaces as
/// [`DictError::BucketOverflow`] / [`DictError::LevelsExhausted`] /
/// [`DictError::ExpansionFailure`] rather than silent data loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictError {
    /// The structure reached its fixed capacity `N`.
    CapacityExhausted {
        /// The capacity that was reached.
        capacity: usize,
    },
    /// The key is already present (the paper's structures store a key
    /// set; updates of satellite data go through delete + insert).
    DuplicateKey(u64),
    /// Section 4.1: all `d` candidate buckets of the key are full — the
    /// expander missed its load-balancing parameters.
    BucketOverflow {
        /// The key being inserted.
        key: u64,
    },
    /// Section 4.3: no level offered `2d/3` free fields — the expander
    /// missed its unique-neighbor parameters.
    LevelsExhausted {
        /// The key being inserted.
        key: u64,
    },
    /// Static construction failed to assign fields (peeling got stuck).
    ExpansionFailure(String),
    /// The requested parameters violate a theorem's side condition
    /// (e.g. too few disks: the paper requires `D = Ω(log u)`).
    UnsupportedParams(String),
    /// Satellite data of the wrong width for this dictionary instance.
    SatelliteWidth {
        /// Words expected per record.
        expected: usize,
        /// Words supplied.
        got: usize,
    },
}

impl std::fmt::Display for DictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DictError::CapacityExhausted { capacity } => {
                write!(f, "dictionary capacity {capacity} exhausted")
            }
            DictError::DuplicateKey(k) => write!(f, "key {k} already present"),
            DictError::BucketOverflow { key } => {
                write!(
                    f,
                    "all candidate buckets full for key {key} (expansion failure)"
                )
            }
            DictError::LevelsExhausted { key } => {
                write!(
                    f,
                    "no level had enough free fields for key {key} (expansion failure)"
                )
            }
            DictError::ExpansionFailure(msg) => write!(f, "expansion failure: {msg}"),
            DictError::UnsupportedParams(msg) => write!(f, "unsupported parameters: {msg}"),
            DictError::SatelliteWidth { expected, got } => {
                write!(
                    f,
                    "satellite width mismatch: expected {expected} words, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for DictError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_found() {
        let hit = LookupOutcome {
            satellite: Some(vec![1, 2]),
            cost: OpCost::default(),
        };
        let miss = LookupOutcome {
            satellite: None,
            cost: OpCost::default(),
        };
        assert!(hit.found());
        assert!(!miss.found());
    }

    #[test]
    fn errors_display() {
        assert!(DictError::DuplicateKey(7).to_string().contains('7'));
        assert!(DictError::BucketOverflow { key: 3 }
            .to_string()
            .contains("expansion"));
        assert!(DictError::SatelliteWidth {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("expected 2"));
    }
}
