//! The Section 4.1 wide-bandwidth variant.
//!
//! "By changing the parameters of the load balancing scheme to k = d/2
//! and v = kN/log N, it is possible to accommodate lookup of associated
//! information of size O(BD/log N) in one I/O."
//!
//! Each key's satellite record is split into `k` chunks, placed by the
//! greedy scheme into `k` *distinct* least-loaded candidate buckets
//! (distinctness keeps the buckets on distinct disks, so both the probe
//! and the chunk writes are single parallel I/Os). A lookup reads all `d`
//! candidate buckets — one per disk, one parallel I/O — gathers the key's
//! chunks and reassembles them by chunk index, returning `k · chunk`
//! words ≈ `B·D / (2·log N)` of satellite data per probe.

use crate::bucket::BucketCodec;
use crate::layout::{DiskAllocator, Region};
use crate::traits::{DictError, LookupOutcome};
use expander::{FamilyExpander, FamilyKind, NeighborFamily, NeighborFn};
use pdm::{BlockAddr, DiskArray, OpCost, ReadOptions, Word, WriteOptions};

/// Sizing parameters for a [`WideDict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideDictConfig {
    /// Capacity `N`.
    pub capacity: usize,
    /// Universe size `u`.
    pub universe: u64,
    /// Expander degree `d` (= disks used).
    pub degree: usize,
    /// Chunks per key, `k` (the paper: `d/2`).
    pub chunks_per_key: usize,
    /// Words per chunk.
    pub chunk_words: usize,
    /// Buckets `v` (positive multiple of `degree`).
    pub buckets: usize,
    /// Slots per bucket.
    pub bucket_slots: usize,
    /// Expander seed.
    pub seed: u64,
    /// Hash family the expander is drawn from.
    pub family: FamilyKind,
}

impl WideDictConfig {
    /// The paper's parameterization: `k = d/2`, `v = Θ(k·N / log N)`, so
    /// bucket loads stay `Θ(log N)` and the bandwidth is
    /// `k · chunk_words ≈ B·D/(2·log N)` words per lookup.
    #[must_use]
    pub fn paper(
        capacity: usize,
        universe: u64,
        degree: usize,
        chunk_words: usize,
        seed: u64,
    ) -> Self {
        let n = capacity.max(2);
        let k = (degree / 2).max(1);
        let target_load = (usize::BITS - n.leading_zeros()) as usize; // ~log2 N
        let raw_v = (2 * k * n).div_ceil(target_load).max(degree);
        let buckets = raw_v.div_ceil(degree) * degree;
        WideDictConfig {
            capacity,
            universe,
            degree,
            chunks_per_key: k,
            chunk_words,
            buckets,
            bucket_slots: target_load + 8,
            seed,
            family: FamilyKind::default(),
        }
    }

    /// Override the hash family the expander is drawn from.
    #[must_use]
    pub fn with_family(mut self, family: FamilyKind) -> Self {
        self.family = family;
        self
    }

    /// Satellite words per key (`k · chunk_words`).
    #[must_use]
    pub fn satellite_words(&self) -> usize {
        self.chunks_per_key * self.chunk_words
    }
}

/// The `k = d/2` wide-bandwidth dictionary of Section 4.1.
///
/// ```
/// use pdm::{DiskArray, PdmConfig};
/// use pdm_dict::layout::DiskAllocator;
/// use pdm_dict::wide::{WideDict, WideDictConfig};
///
/// let d = 16;
/// let mut disks = DiskArray::new(PdmConfig::new(d, 128), 0);
/// let mut alloc = DiskAllocator::new(d);
/// let cfg = WideDictConfig::paper(500, 1 << 40, d, 4, 1); // 4-word chunks
/// let mut dict = WideDict::create(&mut disks, &mut alloc, 0, cfg)?;
/// let record: Vec<u64> = (0..dict.bandwidth_words() as u64).collect();
/// dict.insert(&mut disks, 9, &record)?;
/// let out = dict.lookup(&mut disks, 9);
/// assert_eq!(out.satellite, Some(record));
/// assert_eq!(out.cost.parallel_ios, 1); // k·chunk words in ONE probe
/// # Ok::<(), pdm_dict::DictError>(())
/// ```
#[derive(Debug)]
pub struct WideDict {
    cfg: WideDictConfig,
    graph: FamilyExpander,
    region: Region,
    codec: BucketCodec,
    blocks_per_bucket: usize,
    len: usize,
}

impl WideDict {
    /// Create on `degree` disks starting at `first_disk`.
    pub fn create(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        cfg: WideDictConfig,
    ) -> Result<Self, DictError> {
        if cfg.degree == 0 || cfg.buckets == 0 || !cfg.buckets.is_multiple_of(cfg.degree) {
            return Err(DictError::UnsupportedParams(format!(
                "buckets v = {} must be a positive multiple of degree d = {}",
                cfg.buckets, cfg.degree
            )));
        }
        if cfg.chunks_per_key == 0 || cfg.chunks_per_key > cfg.degree {
            return Err(DictError::UnsupportedParams(format!(
                "chunks k = {} must satisfy 1 ≤ k ≤ d = {}",
                cfg.chunks_per_key, cfg.degree
            )));
        }
        // Slot: [flags, key, chunk index, chunk words…].
        let codec = BucketCodec::new(1 + cfg.chunk_words);
        let bucket_words = codec.slot_words() * cfg.bucket_slots;
        let blocks_per_bucket = bucket_words.div_ceil(disks.block_words());
        let buckets_per_disk = cfg.buckets / cfg.degree;
        let region = alloc.alloc(
            disks,
            first_disk,
            cfg.degree,
            buckets_per_disk * blocks_per_bucket,
        );
        let graph = cfg
            .family
            .build(cfg.universe, buckets_per_disk, cfg.degree, cfg.seed);
        Ok(WideDict {
            cfg,
            graph,
            region,
            codec,
            blocks_per_bucket,
            len: 0,
        })
    }

    /// Live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Words of satellite data returned per lookup.
    #[must_use]
    pub fn bandwidth_words(&self) -> usize {
        self.cfg.satellite_words()
    }

    /// Capacity `N` (maximum live keys).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Space in words.
    #[must_use]
    pub fn space_words(&self, disks: &DiskArray) -> usize {
        self.region.total_blocks() * disks.block_words()
    }

    fn bucket_addrs(&self, stripe: usize, j: usize) -> Vec<BlockAddr> {
        (0..self.blocks_per_bucket)
            .map(|b| self.region.addr(stripe, j * self.blocks_per_bucket + b))
            .collect()
    }

    fn probe_addrs(&self, key: u64) -> Vec<BlockAddr> {
        self.graph
            .neighbors(key)
            .into_iter()
            .flat_map(|y| {
                let (s, j) = self.graph.stripe_of(y);
                self.bucket_addrs(s, j)
            })
            .collect()
    }

    fn bucket_bufs(&self, blocks: &[Vec<Word>]) -> Vec<Vec<Word>> {
        blocks
            .chunks(self.blocks_per_bucket)
            .map(|c| c.concat())
            .collect()
    }

    /// Lookup: one parallel I/O, returning up to `k · chunk_words` words.
    pub fn lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        let scope = disks.begin_op();
        let blocks = disks.read(&self.probe_addrs(key), ReadOptions::default()).into_blocks();
        let bufs = self.bucket_bufs(&blocks);
        // Gather this key's chunks from all candidate buckets.
        let mut chunks: Vec<(u64, Vec<Word>)> = Vec::new();
        for buf in &bufs {
            for (k, payload) in self.codec.live_entries(buf) {
                if k == key {
                    chunks.push((payload[0], payload[1..].to_vec()));
                }
            }
        }
        let satellite = if chunks.len() == self.cfg.chunks_per_key {
            chunks.sort_unstable_by_key(|&(idx, _)| idx);
            let mut out = Vec::with_capacity(self.cfg.satellite_words());
            for (_, c) in chunks {
                out.extend_from_slice(&c);
            }
            Some(out)
        } else {
            None
        };
        LookupOutcome::new(satellite, disks.end_op(scope))
    }

    /// Insert: read the `d` candidate buckets (1 I/O), spread the `k`
    /// chunks over the `k` least-loaded *distinct* candidates, write those
    /// buckets back (1 I/O — distinct stripes, distinct disks).
    pub fn insert(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
        satellite: &[Word],
    ) -> Result<OpCost, DictError> {
        if satellite.len() != self.cfg.satellite_words() {
            return Err(DictError::SatelliteWidth {
                expected: self.cfg.satellite_words(),
                got: satellite.len(),
            });
        }
        if self.len >= self.cfg.capacity {
            return Err(DictError::CapacityExhausted {
                capacity: self.cfg.capacity,
            });
        }
        let scope = disks.begin_op();
        let blocks = disks.read(&self.probe_addrs(key), ReadOptions::default()).into_blocks();
        let mut bufs = self.bucket_bufs(&blocks);
        if bufs
            .iter()
            .any(|b| self.codec.live_entries(b).iter().any(|&(k, _)| k == key))
        {
            return Err(DictError::DuplicateKey(key));
        }
        // Greedy: k distinct least-loaded candidates with a free slot.
        let mut order: Vec<usize> = (0..bufs.len()).collect();
        order.sort_by_key(|&i| (self.codec.live_count(&bufs[i]), i));
        let mut chosen = Vec::with_capacity(self.cfg.chunks_per_key);
        for &i in &order {
            if chosen.len() == self.cfg.chunks_per_key {
                break;
            }
            if self.codec.live_count(&bufs[i]) < self.cfg.bucket_slots {
                chosen.push(i);
            }
        }
        if chosen.len() < self.cfg.chunks_per_key {
            return Err(DictError::BucketOverflow { key });
        }
        let mut writes: Vec<(BlockAddr, Vec<Word>)> = Vec::new();
        for (t, &i) in chosen.iter().enumerate() {
            let mut payload = Vec::with_capacity(1 + self.cfg.chunk_words);
            payload.push(t as Word);
            payload.extend_from_slice(
                &satellite[t * self.cfg.chunk_words..(t + 1) * self.cfg.chunk_words],
            );
            let inserted = self.codec.insert(&mut bufs[i], key, &payload);
            debug_assert!(inserted, "free slot checked");
            // Emit block writes for this bucket.
            let y = self.graph.neighbor(key, i);
            let (stripe, j) = self.graph.stripe_of(y);
            let bw = bufs[i].len() / self.blocks_per_bucket;
            for (b, addr) in self.bucket_addrs(stripe, j).into_iter().enumerate() {
                writes.push((addr, bufs[i][b * bw..(b + 1) * bw].to_vec()));
            }
        }
        let refs: Vec<(BlockAddr, &[Word])> =
            writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
        disks.write(&refs, WriteOptions::default());
        self.len += 1;
        Ok(disks.end_op(scope))
    }

    /// Delete: tombstone every chunk (all candidate buckets were read
    /// anyway). 2 parallel I/Os.
    pub fn delete(&mut self, disks: &mut DiskArray, key: u64) -> (bool, OpCost) {
        let scope = disks.begin_op();
        let blocks = disks.read(&self.probe_addrs(key), ReadOptions::default()).into_blocks();
        let mut bufs = self.bucket_bufs(&blocks);
        let mut writes: Vec<(BlockAddr, Vec<Word>)> = Vec::new();
        let mut found = false;
        for (i, buf) in bufs.iter_mut().enumerate() {
            let mut touched = false;
            while self.codec.delete(buf, key) {
                touched = true;
                found = true;
            }
            if touched {
                let y = self.graph.neighbor(key, i);
                let (stripe, j) = self.graph.stripe_of(y);
                let bw = buf.len() / self.blocks_per_bucket;
                for (b, addr) in self.bucket_addrs(stripe, j).into_iter().enumerate() {
                    writes.push((addr, buf[b * bw..(b + 1) * bw].to_vec()));
                }
            }
        }
        if found {
            let refs: Vec<(BlockAddr, &[Word])> =
                writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
            disks.write(&refs, WriteOptions::default());
            self.len -= 1;
        }
        (found, disks.end_op(scope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::PdmConfig;

    fn setup(n: usize, chunk_words: usize) -> (DiskArray, WideDict) {
        let d = 16;
        let mut disks = DiskArray::new(PdmConfig::new(d, 128), 0);
        let mut alloc = DiskAllocator::new(d);
        let cfg = WideDictConfig::paper(n, 1 << 40, d, chunk_words, 0x71DE);
        let dict = WideDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
        (disks, dict)
    }

    fn sat(dict: &WideDict, key: u64) -> Vec<Word> {
        (0..dict.bandwidth_words() as u64)
            .map(|i| expander::mix::mix64(key ^ (i << 32)))
            .collect()
    }

    #[test]
    fn roundtrip_with_wide_satellite() {
        let (mut disks, mut dict) = setup(300, 3);
        assert_eq!(dict.bandwidth_words(), 8 * 3); // k = 8 chunks of 3 words
        for k in 0..300u64 {
            let s = sat(&dict, k);
            dict.insert(&mut disks, k * 5 + 1, &s).unwrap();
        }
        for k in 0..300u64 {
            let out = dict.lookup(&mut disks, k * 5 + 1);
            assert_eq!(out.satellite, Some(sat(&dict, k)), "key {k}");
        }
        assert!(!dict.lookup(&mut disks, 2).found());
    }

    #[test]
    fn one_io_lookup_two_io_insert() {
        let (mut disks, mut dict) = setup(200, 2);
        let s = sat(&dict, 9);
        let ins = dict.insert(&mut disks, 9, &s).unwrap();
        assert_eq!(ins.parallel_ios, 2, "insert = probe + chunk writes");
        let out = dict.lookup(&mut disks, 9);
        assert_eq!(out.cost.parallel_ios, 1, "wide lookup must stay one probe");
    }

    #[test]
    fn bandwidth_scales_with_degree_over_log_n() {
        // The headline: satellite ≈ B·D/(2·log N) words in one I/O.
        let (_, dict) = setup(1 << 14, 4);
        let d = 16;
        let expected = (d / 2) * 4;
        assert_eq!(dict.bandwidth_words(), expected);
    }

    #[test]
    fn delete_removes_every_chunk() {
        let (mut disks, mut dict) = setup(100, 2);
        let s = sat(&dict, 77);
        dict.insert(&mut disks, 77, &s).unwrap();
        let (was, cost) = dict.delete(&mut disks, 77);
        assert!(was);
        assert_eq!(cost.parallel_ios, 2);
        assert!(!dict.lookup(&mut disks, 77).found());
        // Reinsert works (slots reused).
        dict.insert(&mut disks, 77, &s).unwrap();
        assert!(dict.lookup(&mut disks, 77).found());
    }

    #[test]
    fn duplicate_and_width_checked() {
        let (mut disks, mut dict) = setup(50, 2);
        let s = sat(&dict, 1);
        dict.insert(&mut disks, 1, &s).unwrap();
        assert!(matches!(
            dict.insert(&mut disks, 1, &s),
            Err(DictError::DuplicateKey(1))
        ));
        assert!(matches!(
            dict.insert(&mut disks, 2, &s[..3]),
            Err(DictError::SatelliteWidth { .. })
        ));
    }

    #[test]
    fn loads_stay_near_log_n() {
        let (mut disks, mut dict) = setup(2000, 1);
        for k in 0..2000u64 {
            let s = sat(&dict, k);
            dict.insert(&mut disks, k.wrapping_mul(0x9E37_79B9) % (1 << 40), &s)
                .unwrap();
        }
        assert_eq!(dict.len(), 2000);
        // Spot-check reads still one I/O after heavy fill.
        let probe = 0x9E37_79B9u64;
        assert_eq!(dict.lookup(&mut disks, probe).cost.parallel_ios, 1);
    }

    #[test]
    fn rejects_bad_chunk_count() {
        let mut disks = DiskArray::new(PdmConfig::new(4, 64), 0);
        let mut alloc = DiskAllocator::new(4);
        let mut cfg = WideDictConfig::paper(10, 1 << 20, 4, 1, 0);
        cfg.chunks_per_key = 5; // > d
        assert!(WideDict::create(&mut disks, &mut alloc, 0, cfg).is_err());
    }
}
