//! Theorem 7: the dynamic dictionary with full bandwidth and `1 + ɛ`
//! average-I/O lookups.
//!
//! Two sub-dictionaries on `2d` disks, as in Theorem 6(a):
//!
//! * a Section 4.1 membership dictionary (disks `0..d`) whose per-key
//!   payload packs the head pointer (`⌈lg d⌉` bits) and the level the key
//!   landed on;
//! * `l = ⌈log N / log(1/(6ε))⌉` retrieval arrays `A_1 ⊃ A_2 ⊃ …` of
//!   geometrically decreasing size (factor `6ε`), each indexed by its own
//!   degree-`d` expander, all on disks `d..2d`.
//!
//! **Insertion is first-fit**: "for a given `x ∈ U` find the first array
//! in the sequence `(A_1, A_2, …, A_l)` in which there are `2d/3` fields
//! unique to `x` (at that moment)" — operationally, read `x`'s `d`
//! candidate fields level by level (each read is one parallel I/O; the
//! level-1 read shares the insertion's first I/O with the membership
//! probe, since the two halves live on disjoint disks) until a level
//! offers `m = ⌈2d/3⌉` *unoccupied* fields, then write the chain and the
//! membership record in one more parallel I/O. Lemma 5 guarantees the
//! first fit exists and that at most a `6ε` fraction of keys falls through
//! each level, so `n` insertions cost `n` writes plus
//! `n(1 + 6ε + (6ε)² + …) < (1+ɛ)n` reads — `2 + ɛ` I/Os per insertion on
//! average, `l + 1 = O(log n)` worst case.
//!
//! **Lookups** read the membership bucket and the level-1 fields in one
//! parallel I/O; keys living on level 1 (all but a `≤ ɛ` fraction) finish
//! there, others pay one more I/O for their level. Unsuccessful searches
//! are always exactly 1 I/O.

use crate::basic::{BasicDict, BasicDictConfig};
use crate::config::DictParams;
use crate::fields::FieldArray;
use crate::layout::DiskAllocator;
use crate::one_probe::encoding::Chain;
use crate::traits::{DictError, LookupOutcome};
use expander::{params, FamilyExpander, NeighborFamily, NeighborFn};
use pdm::journal::{JournalRegion, RecoveryReport};
use pdm::{
    BatchExecutor, BatchPlan, BlockAddr, BlockHealth, DiskArray, IoFaultKind, OpCost, ReadOptions,
    Word, WriteOptions,
};

/// Journal-entry metadata opcodes (`meta[1]`); `meta[0]` is the
/// instance tag ([`DynamicDict::meta_tag`]).
pub(crate) const META_INSERT: Word = 1;
pub(crate) const META_DELETE: Word = 2;
pub(crate) const META_BATCH: Word = 3;
/// An insert performed by the global-rebuilding wrapper's migration (a
/// *copy* of a key still present in the old structure). Counter deltas
/// equal [`META_INSERT`]'s; the wrapper additionally bumps its
/// `copied` double-count on replay.
pub(crate) const META_MIGRATE: Word = 4;

/// The Theorem 7 dynamic dictionary.
///
/// `Clone` copies only the in-memory description (expander seeds,
/// counters, region placement) — the blocks live on the external
/// [`DiskArray`]. Crash tests use a clone as a metadata snapshot to pair
/// with a post-crash disk image.
#[derive(Debug, Clone)]
pub struct DynamicDict {
    params: DictParams,
    membership: BasicDict,
    levels: Vec<Level>,
    enc: Chain,
    len: usize,
    insertions: usize,
    level_population: Vec<usize>,
    /// Watermark: journal seq of the newest op reflected in the
    /// counters above. [`Self::apply_replay`] applies only newer deltas.
    pub(crate) journal_seq: u64,
    /// Whether this instance writes the journal's superblock metadata
    /// checkpoint (its serialized counters). True standalone; the
    /// global-rebuilding [`crate::Dictionary`] clears it on its
    /// sub-dictionaries because two structures share one journal.
    pub(crate) checkpoint_owner: bool,
    /// Opcode stamped on sequential inserts' intents ([`META_INSERT`]
    /// normally; the rebuild wrapper switches to [`META_MIGRATE`] around
    /// its migration copies so replay can tell them apart).
    pub(crate) insert_meta_op: Word,
}

#[derive(Debug, Clone)]
struct Level {
    graph: FamilyExpander,
    fields: FieldArray,
}

impl DynamicDict {
    /// Create an empty dictionary on disks
    /// `first_disk .. first_disk + 2d`.
    pub fn create(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        params: DictParams,
    ) -> Result<Self, DictError> {
        params.validate(disks.config(), true)?;
        let d = params.degree;
        let (graph_eps, min_degree) = expander::params::theorem7_graph_epsilon(params.epsilon_perf);
        if d < min_degree {
            return Err(DictError::UnsupportedParams(format!(
                "Theorem 7 with ɛ = {} needs degree d > 6(1 + 1/ɛ) = {}, got {d}",
                params.epsilon_perf,
                min_degree - 1
            )));
        }
        let n_cap = params.capacity.max(2);
        let enc = Chain::new(params.sigma_bits(), d);

        // Write-ahead intent journal, reserved through the same allocator
        // as the dictionary regions and **before** them, so any structure
        // created later (including a rebuild replacement) can never
        // collide with the ring. A rebuild replacement sharing the array
        // reuses the already-enabled journal instead.
        if params.journal_rows > 0 && !disks.journal_enabled() {
            let region = alloc.alloc(disks, 0, disks.disks(), params.journal_rows);
            disks.enable_journal(JournalRegion {
                first_block: region.first_block,
                rows: params.journal_rows,
            });
        }

        // Membership payload: head stripe + level, packed into one word.
        let mcfg =
            BasicDictConfig::log_load(n_cap, params.universe, d, 1, params.seed ^ 0x4D45_4D42)
                .with_family(params.family);
        let membership = BasicDict::create(disks, alloc, first_disk, mcfg)?;
        if membership.blocks_per_bucket() != 1 {
            return Err(DictError::UnsupportedParams(format!(
                "Theorem 7 inherits Theorem 6(a)'s condition B = Ω(log n): a bucket of {} \
                 slots must fit one block of {} words",
                membership.config().bucket_slots,
                disks.block_words()
            )));
        }

        // Retrieval levels, sizes v·(6ε)^{i-1}, each its own expander.
        let l = params::theorem7_levels(n_cap, graph_eps).max(1);
        let shrink = 6.0 * graph_eps;
        let mut levels = Vec::with_capacity(l);
        let mut stripe = ((params.right_slack * n_cap as f64).ceil() as usize).max(4);
        for i in 0..l {
            let graph = params.family.build(
                params.universe,
                stripe,
                d,
                params.seed.wrapping_add(0xBEEF).wrapping_add(i as u64),
            );
            let fields =
                FieldArray::create(disks, alloc, first_disk + d, d, stripe, enc.field_bits)?;
            levels.push(Level { graph, fields });
            stripe = ((stripe as f64 * shrink).ceil() as usize).max(4);
        }

        Ok(DynamicDict {
            params,
            membership,
            levels,
            enc,
            len: 0,
            insertions: 0,
            level_population: vec![0; l],
            journal_seq: disks.last_journal_seq(),
            checkpoint_owner: true,
            insert_meta_op: META_INSERT,
        })
    }

    /// Reconstruct an instance over an existing disk image whose journal
    /// ring lives at `region`: adopt the persisted superblock
    /// ([`DiskArray::reopen_journal`]), rebuild the (deterministic)
    /// layout, replay in-flight intents ([`DiskArray::recover`]), restore
    /// counters from the persisted checkpoint, reconcile them with the
    /// replay, and truncate. The result answers lookups for every key
    /// whose journaled mutation was acked before the crash.
    ///
    /// `params` must equal the parameters the image was created with
    /// (the layout is a pure function of them), including
    /// `journal_rows == region.rows`.
    pub fn reopen(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        params: DictParams,
        region: JournalRegion,
    ) -> Result<(Self, RecoveryReport), DictError> {
        assert_eq!(
            params.journal_rows, region.rows,
            "reopen params disagree with the journal region"
        );
        disks.reopen_journal(region);
        // Account the ring in the (fresh) allocator so `create` places
        // the dictionary regions exactly where they were originally.
        let _ = alloc.alloc(disks, 0, disks.disks(), region.rows);
        let mut dict = Self::create(disks, alloc, first_disk, params)?;
        let report = disks.recover();
        let meta = disks.journal_meta();
        if !meta.is_empty() && !dict.restore_meta(&meta) {
            return Err(DictError::UnsupportedParams(
                "journal checkpoint does not belong to this dictionary".into(),
            ));
        }
        dict.apply_replay(&report);
        disks.journal_checkpoint(&dict.checkpoint_meta());
        Ok((dict, report))
    }

    /// Instance tag recorded as `meta[0]` of every journal entry and
    /// checkpoint: the placement of the level-1 field region, unique per
    /// live instance (the allocator hands out disjoint regions). Replay
    /// reconciliation filters on it, so two structures sharing one
    /// journal (the active dictionary and its rebuild replacement) only
    /// consume their own deltas.
    pub(crate) fn meta_tag(&self) -> Word {
        let r = self.levels[0].fields.region();
        ((r.first_disk as Word) << 32) | r.first_block as Word
    }

    /// The metadata checkpoint persisted in the journal superblock:
    /// `[tag, len, insertions, level populations…]`. Together with the
    /// applied-seq watermark persisted alongside it, this reconstructs
    /// the counters exactly: the checkpoint covers ops up to that seq,
    /// and newer intents still in the ring carry the deltas.
    pub(crate) fn checkpoint_meta(&self) -> Vec<Word> {
        let mut meta = vec![self.meta_tag(), self.len as Word, self.insertions as Word];
        meta.extend(self.level_population.iter().map(|&p| p as Word));
        meta
    }

    /// Restore counters from a [`Self::checkpoint_meta`] image; `false`
    /// if the words do not belong to this instance. Resets the journal
    /// watermark: every intent a subsequent replay hands back is newer
    /// than the checkpoint (truncation discards the rest) and must be
    /// applied on top.
    pub(crate) fn restore_meta(&mut self, meta: &[Word]) -> bool {
        if meta.len() != 3 + self.levels.len() || meta[0] != self.meta_tag() {
            return false;
        }
        self.len = meta[1] as usize;
        self.insertions = meta[2] as usize;
        for (p, &w) in self.level_population.iter_mut().zip(&meta[3..]) {
            *p = w as usize;
        }
        self.membership.set_len(self.len);
        self.journal_seq = 0;
        true
    }

    /// Reconcile the in-memory counters with a recovery replay: apply
    /// the per-op deltas of every replayed intent that is tagged with
    /// this instance's identity and newer than its watermark. The
    /// watermark makes reconciliation idempotent — recovering twice, or
    /// replaying an intent the counters already reflect, changes
    /// nothing. Returns how many intents were applied.
    pub fn apply_replay(&mut self, report: &RecoveryReport) -> usize {
        let tag = self.meta_tag();
        let mut applied = 0;
        for intent in &report.replayed {
            if intent.seq <= self.journal_seq || intent.meta.first() != Some(&tag) {
                continue;
            }
            match intent.meta.get(1) {
                Some(&(META_INSERT | META_MIGRATE)) => {
                    let level = intent.meta.get(2).map_or(0, |&l| l as usize);
                    self.membership.note_inserted();
                    self.len += 1;
                    self.insertions += 1;
                    if let Some(p) = self.level_population.get_mut(level) {
                        *p += 1;
                    }
                }
                Some(&META_DELETE) => {
                    self.membership.note_deleted();
                    self.len = self.len.saturating_sub(1);
                }
                Some(&META_BATCH) => {
                    for (level, &dp) in intent.meta[2..].iter().enumerate() {
                        let dp = dp as usize;
                        self.len += dp;
                        self.insertions += dp;
                        if let Some(p) = self.level_population.get_mut(level) {
                            *p += dp;
                        }
                        for _ in 0..dp {
                            self.membership.note_inserted();
                        }
                    }
                }
                _ => {}
            }
            self.journal_seq = self.journal_seq.max(intent.seq);
            applied += 1;
        }
        applied
    }

    /// Post-mutation journal bookkeeping: advance the watermark to the
    /// intent just appended and (when this instance owns the superblock
    /// checkpoint) stage the updated counters for the next group-commit
    /// truncation.
    fn after_op(&mut self, disks: &mut DiskArray) {
        if !disks.journal_enabled() {
            return;
        }
        self.journal_seq = self.journal_seq.max(disks.last_journal_seq());
        if self.checkpoint_owner {
            disks.journal_set_meta(&self.checkpoint_meta());
        }
    }

    /// Live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity `N`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.params.capacity
    }

    /// Total insertions ever performed. Deleted keys do not release their
    /// fields ("no piece of data is ever moved, once inserted"), so the
    /// capacity budget is consumed per *insertion*; global rebuilding
    /// resets it.
    #[must_use]
    pub fn insertions(&self) -> usize {
        self.insertions
    }

    /// Number of retrieval levels `l`.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// How many keys landed on each level (diagnostics for THM7).
    #[must_use]
    pub fn level_population(&self) -> &[usize] {
        &self.level_population
    }

    /// Space usage in words.
    #[must_use]
    pub fn space_words(&self, disks: &DiskArray) -> usize {
        self.membership.space_words(disks)
            + self
                .levels
                .iter()
                .map(|lv| lv.fields.space_words(disks))
                .sum::<usize>()
    }

    fn pack_payload(head_stripe: usize, level: usize) -> Word {
        (head_stripe as Word) | ((level as Word) << 32)
    }

    fn unpack_payload(payload: Word) -> (usize, usize) {
        ((payload & 0xFFFF_FFFF) as usize, (payload >> 32) as usize)
    }

    fn level_positions(&self, level: usize, key: u64) -> Vec<(usize, usize)> {
        let lv = &self.levels[level];
        lv.graph
            .neighbors(key)
            .into_iter()
            .map(|y| lv.graph.stripe_of(y))
            .collect()
    }

    /// The first unhealthy probe in a verified batch as a typed error.
    fn io_error(addrs: &[BlockAddr], healths: &[BlockHealth]) -> Option<DictError> {
        healths
            .iter()
            .zip(addrs)
            .find(|(h, _)| !h.is_ok())
            .map(|(h, a)| DictError::Io {
                kind: h.fault_kind().unwrap_or(IoFaultKind::TransientError),
                disk: a.disk,
                addr: a.block,
            })
    }

    /// Verified read with one retry: transient windows pass with the
    /// clock, so the retry is only charged when a probe actually failed.
    fn read_retry(disks: &mut DiskArray, addrs: &[BlockAddr]) -> (Vec<Vec<Word>>, Vec<BlockHealth>) {
        let out = disks.read(addrs, ReadOptions::verified());
        if out.all_ok() {
            return (out.blocks, out.healths);
        }
        let retry = disks.read(addrs, ReadOptions::verified());
        (retry.blocks, retry.healths)
    }

    /// Lookup. 1 parallel I/O when the key is absent or lives on level 1;
    /// 2 parallel I/Os otherwise — averaging `1 + ɛ` over stored keys.
    ///
    /// Reads are verified: a probe that fails (dead disk, transient
    /// window, checksum mismatch) is retried once; if damage persists the
    /// outcome is flagged [`crate::Provenance::Degraded`] and decodes
    /// fail closed — a damaged key reads as a miss, never as wrong data.
    pub fn lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        let scope = disks.begin_op();
        // Parallel probe: membership buckets + level-1 fields.
        let maddrs = self.membership.probe_addrs(key);
        let positions0 = self.level_positions(0, key);
        let faddrs0 = self.levels[0].fields.probe_addrs(&positions0);
        let msplit = maddrs.len();
        let mut all = maddrs;
        all.extend(faddrs0);
        let (blocks, healths) = Self::read_retry(disks, &all);
        let mut degraded = !healths.iter().all(|h| h.is_ok());
        let (mblocks, fblocks0) = blocks.split_at(msplit);

        let Some(payload) = self.membership.decode_find(key, mblocks) else {
            let cost = disks.end_op(scope);
            return if degraded {
                LookupOutcome::degraded(None, cost)
            } else {
                LookupOutcome::new(None, cost)
            };
        };
        let (head, level) = Self::unpack_payload(payload[0]);
        let raw = if level == 0 {
            self.levels[0].fields.extract(&positions0, fblocks0)
        } else {
            let positions = self.level_positions(level, key);
            let addrs = self.levels[level].fields.probe_addrs(&positions);
            let (fblocks, fh) = Self::read_retry(disks, &addrs);
            degraded |= !fh.iter().all(|h| h.is_ok());
            self.levels[level].fields.extract(&positions, &fblocks)
        };
        let satellite = self.decode_satellite(head, &raw);
        let cost = disks.end_op(scope);
        if degraded {
            LookupOutcome::degraded(satellite, cost)
        } else {
            LookupOutcome::new(satellite, cost)
        }
    }

    fn decode_satellite(&self, head: usize, raw: &[Vec<Word>]) -> Option<Vec<Word>> {
        self.enc.decode(head, raw).map(|mut s| {
            s.truncate(self.params.satellite_words);
            s.resize(self.params.satellite_words, 0);
            s
        })
    }

    /// Batched lookup in **two phases**: one plan covers every key's
    /// membership probe plus level-1 fields (all that most keys — and all
    /// misses — ever need); a second plan covers only the stragglers that
    /// landed on a deeper level. `m` lookups therefore cost at most two
    /// batch rounds of per-disk-maximum I/Os instead of up to `2m`
    /// sequential ones.
    ///
    /// Results are byte-identical to calling [`Self::lookup`] per key; a
    /// key whose probe blocks read unhealthy falls back to the sequential
    /// path (which retries once), so only damaged keys pay extra I/Os.
    pub fn lookup_batch(
        &self,
        disks: &mut DiskArray,
        keys: &[u64],
    ) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let scope = disks.begin_op();
        // Phase 1: membership + level-1 fields for every key, one plan.
        let mut all: Vec<BlockAddr> = Vec::new();
        let mut meta = Vec::with_capacity(keys.len());
        for &key in keys {
            let maddrs = self.membership.probe_addrs(key);
            let positions0 = self.level_positions(0, key);
            let faddrs0 = self.levels[0].fields.probe_addrs(&positions0);
            let start = all.len();
            let msplit = maddrs.len();
            all.extend(maddrs);
            all.extend(faddrs0);
            meta.push((positions0, start..all.len(), msplit));
        }
        let plan = BatchPlan::new(disks.disks(), &all);
        let reads = plan.execute_read(disks);

        let mut results: Vec<Option<Vec<Word>>> = vec![None; keys.len()];
        // Stragglers living on level > 1 need a second probe:
        // (key index, level, head stripe, positions).
        type Straggler = (usize, usize, usize, Vec<(usize, usize)>);
        let mut stragglers: Vec<Straggler> = Vec::new();
        let mut addrs2: Vec<BlockAddr> = Vec::new();
        let mut ranges2 = Vec::new();
        for (i, (&key, (positions0, range, msplit))) in keys.iter().zip(meta).enumerate() {
            if !reads.range_ok(range.clone()) {
                results[i] = self.lookup(disks, key).satellite;
                continue;
            }
            let blocks = reads.gather(range);
            let (mblocks, fblocks0) = blocks.split_at(msplit);
            let Some(payload) = self.membership.decode_find(key, mblocks) else {
                continue;
            };
            let (head, level) = Self::unpack_payload(payload[0]);
            if level == 0 {
                let raw = self.levels[0].fields.extract(&positions0, fblocks0);
                results[i] = self.decode_satellite(head, &raw);
            } else {
                let positions = self.level_positions(level, key);
                let start = addrs2.len();
                addrs2.extend(self.levels[level].fields.probe_addrs(&positions));
                ranges2.push(start..addrs2.len());
                stragglers.push((i, level, head, positions));
            }
        }
        // Phase 2: one plan over every straggler's own level.
        if !stragglers.is_empty() {
            let plan = BatchPlan::new(disks.disks(), &addrs2);
            let reads = plan.execute_read(disks);
            for ((i, level, head, positions), range) in stragglers.into_iter().zip(ranges2) {
                if !reads.range_ok(range.clone()) {
                    results[i] = self.lookup(disks, keys[i]).satellite;
                    continue;
                }
                let fblocks = reads.gather(range);
                let raw = self.levels[level].fields.extract(&positions, &fblocks);
                results[i] = self.decode_satellite(head, &raw);
            }
        }
        (results, disks.end_op(scope))
    }

    /// Batched insert with sequential semantics: keys are placed
    /// first-fit in order, each seeing its predecessors' staged fields
    /// (so intra-batch occupancy is exactly what a sequential loop would
    /// observe), and all dirty blocks flush as one planned write batch.
    /// Membership and level-1 blocks for the whole batch are prefetched
    /// in one plan; only deeper-level probes read on demand.
    ///
    /// Processing **stops at the first budget error**
    /// ([`DictError::CapacityExhausted`] / [`DictError::LevelsExhausted`]):
    /// the returned vector then ends with that error and is shorter than
    /// `entries`, and no entry past the failed one has been committed.
    /// This lets a caller (the global-rebuilding [`crate::Dictionary`])
    /// re-route the failed key *and everything after it* through another
    /// structure without double-inserting keys this batch already stored.
    /// Non-budget errors (duplicates, satellite width) are per-key and do
    /// not stop the batch, exactly as in a sequential loop.
    pub fn insert_batch(
        &mut self,
        disks: &mut DiskArray,
        entries: &[(u64, Vec<Word>)],
    ) -> (Vec<Result<(), DictError>>, OpCost) {
        let scope = disks.begin_op();
        let mut all: Vec<BlockAddr> = Vec::new();
        for (key, _) in entries {
            all.extend(self.membership.probe_addrs(*key));
            let positions0 = self.level_positions(0, *key);
            all.extend(self.levels[0].fields.probe_addrs(&positions0));
        }
        let pops_before = self.level_population.clone();
        let mut ex = BatchExecutor::new(disks);
        ex.prefetch(&all);
        let mut results = Vec::with_capacity(entries.len());
        for (key, satellite) in entries {
            let res = self.insert_staged(&mut ex, *key, satellite);
            let stop = matches!(
                res,
                Err(DictError::CapacityExhausted { .. } | DictError::LevelsExhausted { .. })
            );
            results.push(res);
            if stop {
                break;
            }
        }
        // The whole batch commits as one journal intent; the metadata
        // carries per-level insertion counts (compressed — a batch may
        // stage more keys than metadata words), enough to reconcile
        // `len`/`insertions`/populations on replay.
        let mut meta = vec![self.meta_tag(), META_BATCH];
        meta.extend(
            self.level_population
                .iter()
                .zip(&pops_before)
                .map(|(&now, &before)| (now - before) as Word),
        );
        let _ = ex.commit_checked_with_meta(&meta);
        drop(ex);
        self.after_op(disks);
        (results, disks.end_op(scope))
    }

    /// One first-fit insertion through a batch executor: reads come from
    /// the executor's cache (which reflects earlier keys' staged writes),
    /// writes are staged rather than flushed.
    fn insert_staged(
        &mut self,
        ex: &mut BatchExecutor<'_>,
        key: u64,
        satellite: &[Word],
    ) -> Result<(), DictError> {
        if satellite.len() != self.params.satellite_words {
            return Err(DictError::SatelliteWidth {
                expected: self.params.satellite_words,
                got: satellite.len(),
            });
        }
        if self.insertions >= self.params.capacity {
            return Err(DictError::CapacityExhausted {
                capacity: self.params.capacity,
            });
        }
        let maddrs = self.membership.probe_addrs(key);
        let (mut mblocks, mut mhealths) = ex.get_many_verified(&maddrs);
        if !mhealths.iter().all(|h| h.is_ok()) {
            // Retry once at a later clock (transient windows pass); a
            // membership bucket that stays unreadable makes the duplicate
            // check unsound, so the insertion must fail typed, not guess.
            ex.refresh(&maddrs);
            (mblocks, mhealths) = ex.get_many_verified(&maddrs);
            if let Some(e) = Self::io_error(&maddrs, &mhealths) {
                return Err(e);
            }
        }
        if self.membership.decode_find(key, &mblocks).is_some() {
            return Err(DictError::DuplicateKey(key));
        }

        let m = self.enc.fields_per_key;
        let mut chosen = None;
        for level in 0..self.levels.len() {
            let positions = self.level_positions(level, key);
            let addrs = self.levels[level].fields.probe_addrs(&positions);
            let (fblocks, fhealths) = ex.get_many_verified(&addrs);
            let raw = self.levels[level].fields.extract(&positions, &fblocks);
            // Route around damage: a field on an unreadable block counts
            // as occupied, so no data is placed where a write would be
            // dropped or a later read sanitized.
            let free: Vec<usize> = (0..positions.len())
                .filter(|&i| fhealths[i].is_ok() && !self.enc.is_occupied(&raw[i]))
                .collect();
            if free.len() >= m {
                let keep: Vec<(usize, usize)> = free[..m].iter().map(|&i| positions[i]).collect();
                chosen = Some((level, keep, addrs, fblocks));
                break;
            }
        }
        let Some((level, keep, addrs, mut fblocks)) = chosen else {
            return Err(DictError::LevelsExhausted { key });
        };

        let stripes: Vec<usize> = keep.iter().map(|&(s, _)| s).collect();
        // Plan the membership record before staging anything: plan_insert
        // only reads the probe blocks and can still fail (BucketOverflow),
        // and an aborted key must leave the executor's dirty set untouched
        // — otherwise orphaned field slots would flush at commit and the
        // batch would diverge from the sequential path, which discards all
        // writes on the same error.
        let mpayload = Self::pack_payload(stripes[0], level);
        let mwrites = self.membership.plan_insert(key, &[mpayload], &mblocks)?;
        let encoded = self.enc.encode(&stripes, satellite);
        {
            let fa = &self.levels[level].fields;
            for ((stripe, bits), &(s, j)) in encoded.iter().zip(&keep) {
                debug_assert_eq!(*stripe, s);
                fa.patch((s, j), &mut fblocks[s], bits);
                ex.stage_write(addrs[s], fblocks[s].clone());
            }
        }
        for (a, img) in mwrites {
            ex.stage_write(a, img);
        }
        self.membership.note_inserted();
        self.len += 1;
        self.insertions += 1;
        self.level_population[level] += 1;
        Ok(())
    }

    /// Insert. First-fit over the levels: `j + 1` parallel I/Os when the
    /// key lands on level `j` (1-based), averaging `2 + ɛ`.
    pub fn insert(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
        satellite: &[Word],
    ) -> Result<OpCost, DictError> {
        if satellite.len() != self.params.satellite_words {
            return Err(DictError::SatelliteWidth {
                expected: self.params.satellite_words,
                got: satellite.len(),
            });
        }
        if self.insertions >= self.params.capacity {
            return Err(DictError::CapacityExhausted {
                capacity: self.params.capacity,
            });
        }
        let scope = disks.begin_op();

        // First parallel I/O: membership probe + level-1 fields.
        let maddrs = self.membership.probe_addrs(key);
        let positions0 = self.level_positions(0, key);
        let faddrs0 = self.levels[0].fields.probe_addrs(&positions0);
        let msplit = maddrs.len();
        let mut all = maddrs;
        all.extend(faddrs0.clone());
        let (blocks, healths) = Self::read_retry(disks, &all);
        let (mblocks, fblocks0) = blocks.split_at(msplit);
        let (mhealths, fhealths0) = healths.split_at(msplit);
        // An unreadable membership bucket makes the duplicate check
        // unsound: fail typed rather than risk a double insert.
        if let Some(e) = Self::io_error(&all[..msplit], mhealths) {
            return Err(e);
        }
        if self.membership.decode_find(key, mblocks).is_some() {
            return Err(DictError::DuplicateKey(key));
        }

        // First-fit level search: (level, chosen positions, probed
        // addresses, probed block images).
        type Probe = (usize, Vec<(usize, usize)>, Vec<BlockAddr>, Vec<Vec<Word>>);
        let m = self.enc.fields_per_key;
        let mut chosen: Option<Probe> = None;
        for level in 0..self.levels.len() {
            let (positions, addrs, fblocks, fhealths) = if level == 0 {
                (
                    positions0.clone(),
                    faddrs0.clone(),
                    fblocks0.to_vec(),
                    fhealths0.to_vec(),
                )
            } else {
                let positions = self.level_positions(level, key);
                let addrs = self.levels[level].fields.probe_addrs(&positions);
                // One more parallel I/O (plus a retry only under faults).
                let (fblocks, fhealths) = Self::read_retry(disks, &addrs);
                (positions, addrs, fblocks, fhealths)
            };
            let raw = self.levels[level].fields.extract(&positions, &fblocks);
            // Route around damage: fields on unreadable blocks count as
            // occupied, so data never lands where writes would be dropped.
            let free: Vec<usize> = (0..positions.len())
                .filter(|&i| fhealths[i].is_ok() && !self.enc.is_occupied(&raw[i]))
                .collect();
            if free.len() >= m {
                let keep: Vec<(usize, usize)> = free[..m].iter().map(|&i| positions[i]).collect();
                chosen = Some((level, keep, addrs, fblocks));
                break;
            }
        }
        let Some((level, keep, addrs, mut fblocks)) = chosen else {
            return Err(DictError::LevelsExhausted { key });
        };

        // Encode the chain into the free fields (stripe order) and patch
        // the level's block images. `addrs[i]` is the block of stripe `i`
        // (one field per stripe), so the chain's field at stripe `s`
        // patches image `s`.
        let stripes: Vec<usize> = keep.iter().map(|&(s, _)| s).collect();
        let encoded = self.enc.encode(&stripes, satellite);
        let fa = &self.levels[level].fields;
        let mut touched: Vec<usize> = Vec::with_capacity(m);
        for ((stripe, bits), &(s, j)) in encoded.iter().zip(&keep) {
            debug_assert_eq!(*stripe, s);
            fa.patch((s, j), &mut fblocks[s], bits);
            touched.push(s);
        }
        let mut writes: Vec<(BlockAddr, Vec<Word>)> = touched
            .into_iter()
            .map(|s| (addrs[s], fblocks[s].clone()))
            .collect();

        // Membership record in the same write batch (disjoint disks).
        let mpayload = Self::pack_payload(stripes[0], level);
        let mwrites = self.membership.plan_insert(key, &[mpayload], mblocks)?;
        writes.extend(mwrites);

        let refs: Vec<(BlockAddr, &[Word])> =
            writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
        // With a journal enabled the multi-block group (field patches +
        // membership record) becomes one intent entry, crash-atomic under
        // any crash point; without one this is the plain checked write.
        let whealths = if disks.journal_enabled() {
            let meta = [self.meta_tag(), self.insert_meta_op, level as Word];
            disks.journaled_write_batch_checked(&refs, &meta)
        } else {
            disks.write(&refs, WriteOptions::checked()).healths
        };
        let waddrs: Vec<BlockAddr> = writes.iter().map(|(a, _)| *a).collect();
        if let Some(e) = Self::io_error(&waddrs, &whealths) {
            // Some block of the insert did not land (disk died or the
            // write tore). The key is not counted as stored; whatever
            // fragment did land decodes fail-closed (a chain missing a
            // block, or a membership record whose fields are absent,
            // reads as a miss) and is reclaimed by scrub or rebuild.
            if disks.journal_enabled() {
                // The op is acked as failed, so its intent must never
                // replay (a later recovery would resurrect the key the
                // caller was told is absent): truncate it now.
                let meta = if self.checkpoint_owner {
                    self.checkpoint_meta()
                } else {
                    disks.journal_meta()
                };
                disks.journal_checkpoint(&meta);
            }
            return Err(e);
        }
        self.membership.note_inserted();
        self.len += 1;
        self.insertions += 1;
        self.level_population[level] += 1;
        self.after_op(disks);
        Ok(disks.end_op(scope))
    }

    /// Delete: tombstone the membership record (fields are not reclaimed —
    /// "no piece of data is ever moved, once inserted"; space is recovered
    /// by global rebuilding). Returns whether the key was present.
    ///
    /// With a journal enabled the tombstone write is journaled too
    /// (journal-all-mutations: if it bypassed the ring, a later recovery
    /// replaying an older intact intent over the same bucket block would
    /// resurrect the key).
    pub fn delete(&mut self, disks: &mut DiskArray, key: u64) -> (bool, OpCost) {
        let scope = disks.begin_op();
        if !disks.journal_enabled() {
            let (was, _) = self.membership.delete(disks, key);
            if was {
                self.len -= 1;
            }
            return (was, disks.end_op(scope));
        }
        let addrs = self.membership.probe_addrs(key);
        let (blocks, _healths) = Self::read_retry(disks, &addrs);
        let Some(writes) = self.membership.plan_delete(key, &blocks) else {
            return (false, disks.end_op(scope));
        };
        let refs: Vec<(BlockAddr, &[Word])> =
            writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
        let meta = [self.meta_tag(), META_DELETE];
        let _ = disks.journaled_write_batch_checked(&refs, &meta);
        self.membership.note_deleted();
        self.len -= 1;
        self.after_op(disks);
        (true, disks.end_op(scope))
    }

    /// Enumerate live keys of one membership bucket (for global
    /// rebuilding). `bucket` ranges over `0..membership_buckets()`.
    pub fn scan_bucket(&self, disks: &mut DiskArray, bucket: usize) -> Vec<u64> {
        self.membership
            .scan_bucket(disks, bucket)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    /// Number of membership buckets (scan domain).
    #[must_use]
    pub fn membership_buckets(&self) -> usize {
        self.membership.buckets()
    }

    /// Test hook: mark every candidate field of `key` occupied on every
    /// level, so inserting `key` fails with
    /// [`DictError::LevelsExhausted`] (the deterministic stand-in for a
    /// sampled expander missing its unique-neighbor parameters) while
    /// other keys insert normally.
    #[cfg(test)]
    pub(crate) fn exhaust_key_fields(&self, disks: &mut DiskArray, key: u64) {
        let mut field = vec![0 as Word; self.enc.field_words()];
        field[0] = 1; // occupied bit; no chain ever links through it
        for level in 0..self.levels.len() {
            for pos in self.level_positions(level, key) {
                self.levels[level].fields.write_field(disks, pos, &field);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::PdmConfig;

    fn setup(capacity: usize, sigma: usize, eps: f64) -> (DiskArray, DynamicDict) {
        let d = 20;
        let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
        let mut alloc = DiskAllocator::new(2 * d);
        let params = DictParams::new(capacity, 1 << 30, sigma)
            .with_degree(d)
            .with_epsilon(eps)
            .with_seed(0xD1C7);
        let dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
        (disks, dict)
    }

    fn keys(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9).wrapping_add(11) % (1 << 30))
            .collect()
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let (mut disks, mut dict) = setup(300, 2, 0.5);
        for (i, k) in keys(300).into_iter().enumerate() {
            dict.insert(&mut disks, k, &[k, i as u64]).unwrap();
        }
        assert_eq!(dict.len(), 300);
        for (i, k) in keys(300).into_iter().enumerate() {
            let out = dict.lookup(&mut disks, k);
            assert_eq!(out.satellite, Some(vec![k, i as u64]), "key {k}");
        }
    }

    #[test]
    fn unsuccessful_search_is_one_io() {
        let (mut disks, mut dict) = setup(100, 1, 0.5);
        for k in keys(100) {
            dict.insert(&mut disks, k, &[k]).unwrap();
        }
        let present: std::collections::HashSet<u64> = keys(100).into_iter().collect();
        for probe in 0..500u64 {
            if !present.contains(&probe) {
                let out = dict.lookup(&mut disks, probe);
                assert!(!out.found());
                assert_eq!(
                    out.cost.parallel_ios, 1,
                    "unsuccessful search must be 1 I/O"
                );
            }
        }
    }

    #[test]
    fn average_lookup_within_one_plus_eps() {
        let eps = 0.5;
        let (mut disks, mut dict) = setup(500, 1, eps);
        for k in keys(500) {
            dict.insert(&mut disks, k, &[k]).unwrap();
        }
        let mut total = 0u64;
        for k in keys(500) {
            total += dict.lookup(&mut disks, k).cost.parallel_ios;
        }
        let avg = total as f64 / 500.0;
        assert!(
            avg <= 1.0 + eps,
            "average successful lookup {avg} exceeds 1 + ɛ = {}",
            1.0 + eps
        );
    }

    #[test]
    fn average_insert_within_two_plus_eps() {
        let eps = 0.5;
        let (mut disks, mut dict) = setup(500, 1, eps);
        let mut total = 0u64;
        let mut worst = 0u64;
        for k in keys(500) {
            let c = dict.insert(&mut disks, k, &[k]).unwrap();
            total += c.parallel_ios;
            worst = worst.max(c.parallel_ios);
        }
        let avg = total as f64 / 500.0;
        assert!(
            avg <= 2.0 + eps,
            "average insert {avg} exceeds 2 + ɛ = {}",
            2.0 + eps
        );
        assert!(
            worst <= dict.num_levels() as u64 + 1,
            "worst insert {worst} exceeds l + 1"
        );
    }

    #[test]
    fn most_keys_land_on_level_one() {
        let (mut disks, mut dict) = setup(400, 1, 0.5);
        for k in keys(400) {
            dict.insert(&mut disks, k, &[0]).unwrap();
        }
        let pop = dict.level_population();
        assert!(
            pop[0] as f64 >= 0.9 * 400.0,
            "level-1 population {} too small: {pop:?}",
            pop[0]
        );
    }

    #[test]
    fn delete_then_miss_then_reinsert() {
        let (mut disks, mut dict) = setup(50, 1, 0.5);
        dict.insert(&mut disks, 42, &[1]).unwrap();
        let (was, cost) = dict.delete(&mut disks, 42);
        assert!(was);
        assert_eq!(cost.parallel_ios, 2);
        assert!(!dict.lookup(&mut disks, 42).found());
        // Reinsert gets fresh fields (old ones are not reclaimed).
        dict.insert(&mut disks, 42, &[2]).unwrap();
        assert_eq!(dict.lookup(&mut disks, 42).satellite, Some(vec![2]));
    }

    #[test]
    fn duplicate_rejected() {
        let (mut disks, mut dict) = setup(50, 1, 0.5);
        dict.insert(&mut disks, 7, &[1]).unwrap();
        assert!(matches!(
            dict.insert(&mut disks, 7, &[2]),
            Err(DictError::DuplicateKey(7))
        ));
        assert_eq!(dict.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let (mut disks, mut dict) = setup(3, 0, 0.5);
        for k in [1u64, 2, 3] {
            dict.insert(&mut disks, k, &[]).unwrap();
        }
        assert!(matches!(
            dict.insert(&mut disks, 4, &[]),
            Err(DictError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn degree_condition_enforced() {
        // ɛ = 0.25 needs d > 6(1 + 4) = 30.
        let d = 16;
        let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
        let mut alloc = DiskAllocator::new(2 * d);
        let params = DictParams::new(100, 1 << 30, 1)
            .with_degree(d)
            .with_epsilon(0.25);
        let err = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap_err();
        assert!(err.to_string().contains("6(1 + 1/ɛ)"), "{err}");
    }

    #[test]
    fn scan_enumerates_live_keys() {
        let (mut disks, mut dict) = setup(120, 1, 0.5);
        let ks = keys(120);
        for k in &ks {
            dict.insert(&mut disks, *k, &[*k]).unwrap();
        }
        dict.delete(&mut disks, ks[0]);
        let mut seen = std::collections::HashSet::new();
        for b in 0..dict.membership_buckets() {
            for k in dict.scan_bucket(&mut disks, b) {
                assert!(seen.insert(k));
            }
        }
        assert_eq!(seen.len(), 119);
        assert!(!seen.contains(&ks[0]));
    }

    #[test]
    fn insert_batch_stops_at_first_budget_error() {
        let (mut disks, mut dict) = setup(4, 1, 0.5);
        let ks = keys(6);
        let entries: Vec<(u64, Vec<Word>)> = ks.iter().map(|&k| (k, vec![k])).collect();
        let (res, _) = dict.insert_batch(&mut disks, &entries);
        assert_eq!(res.len(), 5, "batch must stop at the first budget error");
        assert!(res[..4].iter().all(Result::is_ok));
        assert!(matches!(res[4], Err(DictError::CapacityExhausted { .. })));
        assert_eq!(dict.len(), 4);
        // The unprocessed suffix was never committed.
        assert!(!dict.lookup(&mut disks, ks[5]).found());
    }

    #[test]
    fn aborted_staged_insert_leaves_nothing_dirty() {
        // A key whose membership buckets are all full fails plan_insert
        // *after* its retrieval fields have been chosen; the staged path
        // must abort without leaving those field blocks in the batch's
        // dirty set, or commit would flush occupied slots with no owning
        // membership record.
        let (mut disks, mut dict) = setup(100, 1, 0.5);
        let victim = 0x5EED_u64;
        dict.membership
            .saturate_probe_buckets(&mut disks, victim, 1 << 40);
        let mut ex = BatchExecutor::new(&mut disks);
        let res = dict.insert_staged(&mut ex, victim, &[7]);
        assert!(matches!(res, Err(DictError::BucketOverflow { .. })));
        assert_eq!(ex.staged_writes(), 0, "aborted insert staged writes");
        drop(ex);
        assert_eq!(dict.len(), 0);
        assert!(!dict.lookup(&mut disks, victim).found());
    }

    #[test]
    fn dead_field_disk_degrades_to_misses_never_garbage() {
        let (mut disks, mut dict) = setup(200, 1, 0.5);
        let ks = keys(200);
        for k in &ks {
            dict.insert(&mut disks, *k, &[*k]).unwrap();
        }
        disks.enable_integrity();
        // Kill one retrieval disk (fields live on disks d..2d).
        disks.set_fault_plan(pdm::FaultPlan::new().dead_disk(23));
        let mut exact = 0;
        let mut missed = 0;
        for k in &ks {
            let out = dict.lookup(&mut disks, *k);
            match out.satellite {
                Some(s) => {
                    assert_eq!(s, vec![*k], "degraded read must never invent data");
                    exact += 1;
                }
                None => {
                    assert!(!out.is_exact(), "a silent miss must carry Degraded");
                    missed += 1;
                }
            }
        }
        // Chains avoiding stripe 3 still decode; chains through it miss.
        assert!(exact > 0, "some chains avoid the dead disk");
        assert!(missed > 0, "some chains run through the dead disk");
    }

    #[test]
    fn insert_routes_around_a_dead_field_disk() {
        let (mut disks, mut dict) = setup(150, 1, 0.5);
        disks.enable_integrity();
        disks.set_fault_plan(pdm::FaultPlan::new().dead_disk(25));
        let ks = keys(150);
        for k in &ks {
            // d = 20 healthy-stripe candidates minus one dead still leaves
            // ≥ m = ⌈2d/3⌉ free fields, so every insert routes around.
            dict.insert(&mut disks, *k, &[*k]).unwrap();
        }
        for k in &ks {
            let out = dict.lookup(&mut disks, *k);
            assert_eq!(out.satellite, Some(vec![*k]), "key {k}");
            assert!(!out.is_exact(), "probe touches the dead disk");
        }
        // Replace the disk: nothing was stored on it, so every lookup
        // returns to exact with no repair needed.
        disks.clear_fault_plan();
        for k in &ks {
            let out = dict.lookup(&mut disks, *k);
            assert_eq!(out.satellite, Some(vec![*k]));
            assert!(out.is_exact());
        }
    }

    #[test]
    fn dead_membership_disk_fails_inserts_typed() {
        let (mut disks, mut dict) = setup(100, 1, 0.5);
        disks.enable_integrity();
        disks.set_fault_plan(pdm::FaultPlan::new().dead_disk(0));
        let mut io_errors = 0;
        for k in keys(100) {
            match dict.insert(&mut disks, k, &[k]) {
                Ok(_) => {}
                Err(DictError::Io { kind, disk, .. }) => {
                    assert_eq!(kind, pdm::IoFaultKind::DiskDead);
                    assert_eq!(disk, 0);
                    io_errors += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(io_errors > 0, "keys probing disk 0 must fail typed");
    }

    #[test]
    fn transient_read_window_is_absorbed_by_the_retry() {
        let (mut disks, mut dict) = setup(100, 1, 0.5);
        let ks = keys(100);
        for k in &ks {
            dict.insert(&mut disks, *k, &[*k]).unwrap();
        }
        disks.enable_integrity();
        // Installing a plan zeroes the access clocks, so a 1-batch window
        // at index 0 on disk 21 hits each lookup's first probe; the in-op
        // retry lands past the window and must return the exact record.
        for (i, k) in ks.iter().enumerate() {
            disks.set_fault_plan(pdm::FaultPlan::new().transient_read(21, 0, 1));
            let out = dict.lookup(&mut disks, *k);
            assert_eq!(out.satellite, Some(vec![*k]), "key {i}");
            assert!(out.is_exact(), "retry absorbed the window for key {i}");
            disks.clear_fault_plan();
        }
    }

    fn setup_journaled(capacity: usize, sigma: usize) -> (DiskArray, DynamicDict) {
        let d = 20;
        let mut disks = DiskArray::new(PdmConfig::new(2 * d, 64), 0);
        let mut alloc = DiskAllocator::new(2 * d);
        let params = DictParams::new(capacity, 1 << 30, sigma)
            .with_degree(d)
            .with_epsilon(0.5)
            .with_seed(0xD1C7)
            .with_journal(2);
        let dict = DynamicDict::create(&mut disks, &mut alloc, 0, params).unwrap();
        assert!(disks.journal_enabled());
        (disks, dict)
    }

    /// Exhaustive crash matrix over a journaled insert: for every
    /// physical-write index `k`, kill the batch after `k` writes, run
    /// recovery against a pre-crash metadata snapshot, and check the op
    /// is all-or-nothing — the key reads back fully or not at all, the
    /// counters match, and every previously acked key survives.
    #[test]
    fn journaled_insert_is_atomic_under_any_crash_point() {
        let (mut disks0, mut dict0) = setup_journaled(64, 1);
        let pre: Vec<u64> = (0..8u64).map(|i| i * 7 + 3).collect();
        for &k in &pre {
            dict0.insert(&mut disks0, k, &[k]).unwrap();
        }
        let victim = 0xFACE_u64;
        let mut completed = false;
        for k in 0..60u64 {
            let mut disks = disks0.clone();
            let mut dict = dict0.clone();
            disks.set_fault_plan(pdm::FaultPlan::new().crash_after(k));
            let _ = dict.insert(&mut disks, victim, &[victim]);
            let fired = disks.crash_fired();
            disks.clear_fault_plan();

            // "Restart": recover the disks, reconcile a pre-crash snapshot.
            let mut rec = dict0.clone();
            let report = disks.recover();
            rec.apply_replay(&report);
            disks.journal_checkpoint(&rec.checkpoint_meta());

            let out = rec.lookup(&mut disks, victim);
            if out.found() {
                assert_eq!(out.satellite, Some(vec![victim]), "crash at {k}");
                assert_eq!(rec.len(), dict0.len() + 1, "crash at {k}");
            } else {
                assert_eq!(rec.len(), dict0.len(), "crash at {k}");
            }
            for &p in &pre {
                assert_eq!(
                    rec.lookup(&mut disks, p).satellite,
                    Some(vec![p]),
                    "acked key {p} lost at crash point {k}"
                );
            }
            // A second recovery finds nothing left to do.
            assert!(disks.recover().is_clean(), "crash at {k}");
            if !fired {
                assert!(out.found(), "no crash fired at {k} but key missing");
                completed = true;
                break;
            }
        }
        assert!(completed, "crash matrix never reached the uncrashed end");
    }

    #[test]
    fn journaled_delete_is_atomic_and_replayable() {
        let (mut disks0, mut dict0) = setup_journaled(32, 1);
        for k in [5u64, 9, 13] {
            dict0.insert(&mut disks0, k, &[k]).unwrap();
        }
        let mut completed = false;
        for k in 0..40u64 {
            let mut disks = disks0.clone();
            let mut dict = dict0.clone();
            disks.set_fault_plan(pdm::FaultPlan::new().crash_after(k));
            let _ = dict.delete(&mut disks, 9);
            let fired = disks.crash_fired();
            disks.clear_fault_plan();

            let mut rec = dict0.clone();
            let report = disks.recover();
            rec.apply_replay(&report);
            disks.journal_checkpoint(&rec.checkpoint_meta());

            let found = rec.lookup(&mut disks, 9).found();
            if found {
                assert_eq!(rec.len(), 3, "crash at {k}");
            } else {
                assert_eq!(rec.len(), 2, "tombstone replayed but len stale at {k}");
            }
            for p in [5u64, 13] {
                assert!(rec.lookup(&mut disks, p).found(), "key {p} at crash {k}");
            }
            if !fired {
                assert!(!found, "uncrashed delete left the key at {k}");
                completed = true;
                break;
            }
        }
        assert!(completed);
    }

    #[test]
    fn journaled_insert_batch_commits_atomically_with_batch_meta() {
        let (mut disks0, mut dict0) = setup_journaled(64, 1);
        dict0.insert(&mut disks0, 1000, &[1000]).unwrap();
        let entries: Vec<(u64, Vec<Word>)> = (1..=5u64).map(|k| (k, vec![k])).collect();
        // Crash after the journal append but before all in-place writes
        // land: the whole batch must replay.
        let mut seen_all_or_nothing = true;
        for k in 0..80u64 {
            let mut disks = disks0.clone();
            let mut dict = dict0.clone();
            disks.set_fault_plan(pdm::FaultPlan::new().crash_after(k));
            let _ = dict.insert_batch(&mut disks, &entries);
            let fired = disks.crash_fired();
            disks.clear_fault_plan();

            let mut rec = dict0.clone();
            let report = disks.recover();
            rec.apply_replay(&report);
            disks.journal_checkpoint(&rec.checkpoint_meta());

            let found: Vec<bool> = entries
                .iter()
                .map(|(key, _)| rec.lookup(&mut disks, *key).found())
                .collect();
            let all = found.iter().all(|&f| f);
            let none = found.iter().all(|&f| !f);
            seen_all_or_nothing &= all || none;
            if all {
                assert_eq!(rec.len(), dict0.len() + entries.len(), "crash at {k}");
            }
            if none {
                assert_eq!(rec.len(), dict0.len(), "crash at {k}");
            }
            assert!(rec.lookup(&mut disks, 1000).found(), "crash at {k}");
            if !fired {
                assert!(all, "uncrashed batch must commit");
                break;
            }
        }
        assert!(seen_all_or_nothing, "a crash point split the batch");
    }

    #[test]
    fn reopen_restores_counters_and_replays_in_flight_intents() {
        let (mut disks, mut dict) = setup_journaled(64, 1);
        let ks = keys(20);
        for k in &ks {
            dict.insert(&mut disks, *k, &[*k]).unwrap();
        }
        let params = dict.params;
        let expect_len = dict.len();
        let region = disks.journal_region().unwrap();
        // "Kill the process" between ops: the in-memory instance is
        // dropped with up to GROUP_COMMIT_EVERY intents not yet covered
        // by a persisted truncation, so the on-disk checkpoint counters
        // run behind — reopen must replay the ring on top of them.
        drop(dict);
        let mut alloc = DiskAllocator::new(disks.disks());
        let (mut reopened, report) =
            DynamicDict::reopen(&mut disks, &mut alloc, 0, params, region).unwrap();
        assert!(report.scanned_slots > 0);
        assert_eq!(reopened.len(), expect_len, "counters restored");
        for k in &ks {
            assert_eq!(
                reopened.lookup(&mut disks, *k).satellite,
                Some(vec![*k]),
                "key {k} after reopen"
            );
        }
        // Truncation persisted: nothing replayable remains.
        assert!(disks.recover().is_clean());
        // And the reopened instance keeps working.
        reopened.insert(&mut disks, 0x7777, &[1]).unwrap();
        assert!(reopened.lookup(&mut disks, 0x7777).found());
    }

    #[test]
    fn satellite_width_checked() {
        let (mut disks, mut dict) = setup(10, 2, 0.5);
        assert!(matches!(
            dict.insert(&mut disks, 1, &[1]),
            Err(DictError::SatelliteWidth {
                expected: 2,
                got: 1
            })
        ));
    }
}
