//! The field array `A` of the one-probe structures (Sections 4.2–4.3).
//!
//! `v` fixed-width bit fields, striped over `d` disks (stripe `i` of the
//! expander ↔ disk `i` of the region). Fields are packed into blocks —
//! never straddling a block boundary — so the `d` fields `Γ(x)` of a key
//! live in `d` blocks on `d` *distinct* disks: reading all of them is one
//! parallel I/O, which is the whole point of Theorem 6.

use crate::layout::{DiskAllocator, Region};
use crate::traits::DictError;
use pdm::bits::{copy_bits, extract_bits};
use pdm::{BlockAddr, DiskArray, Word, WORD_BITS};

/// A striped array of fixed-width bit fields.
#[derive(Debug, Clone)]
pub struct FieldArray {
    region: Region,
    stripe_size: usize,
    field_bits: usize,
    fields_per_block: usize,
}

/// A field position: `(stripe, index within stripe)`.
pub type FieldPos = (usize, usize);

impl FieldArray {
    /// Create an array of `degree · stripe_size` fields of `field_bits`
    /// bits on `degree` disks starting at `first_disk`.
    pub fn create(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        degree: usize,
        stripe_size: usize,
        field_bits: usize,
    ) -> Result<Self, DictError> {
        let block_bits = disks.block_words() * WORD_BITS;
        if field_bits == 0 || field_bits > block_bits {
            return Err(DictError::UnsupportedParams(format!(
                "field of {field_bits} bits cannot fit a block of {block_bits} bits"
            )));
        }
        if degree == 0 || stripe_size == 0 {
            return Err(DictError::UnsupportedParams(
                "field array needs positive degree and stripe size".into(),
            ));
        }
        let fields_per_block = block_bits / field_bits;
        let blocks_per_disk = stripe_size.div_ceil(fields_per_block);
        let region = alloc.alloc(disks, first_disk, degree, blocks_per_disk);
        Ok(FieldArray {
            region,
            stripe_size,
            field_bits,
            fields_per_block,
        })
    }

    /// Bits per field.
    #[must_use]
    pub fn field_bits(&self) -> usize {
        self.field_bits
    }

    /// Fields per stripe (`v / d`).
    #[must_use]
    pub fn stripe_size(&self) -> usize {
        self.stripe_size
    }

    /// Number of stripes (`d`).
    #[must_use]
    pub fn stripes(&self) -> usize {
        self.region.disks
    }

    /// Total fields `v`.
    #[must_use]
    pub fn num_fields(&self) -> usize {
        self.stripes() * self.stripe_size
    }

    /// Space usage in words.
    #[must_use]
    pub fn space_words(&self, disks: &DiskArray) -> usize {
        self.region.total_blocks() * disks.block_words()
    }

    /// Block address holding field `(stripe, j)`.
    ///
    /// # Panics
    /// Panics if the position is out of range.
    #[must_use]
    pub fn addr_of(&self, pos: FieldPos) -> BlockAddr {
        let (stripe, j) = pos;
        assert!(j < self.stripe_size, "field index {j} out of stripe");
        self.region.addr(stripe, j / self.fields_per_block)
    }

    /// Bit offset of field `(_, j)` within its block.
    fn bit_offset(&self, j: usize) -> usize {
        (j % self.fields_per_block) * self.field_bits
    }

    /// Addresses of the blocks holding `positions` (in order; duplicates
    /// preserved — the disk layer batches them at no extra cost when they
    /// coincide... they are distinct blocks whenever stripes are distinct).
    #[must_use]
    pub fn probe_addrs(&self, positions: &[FieldPos]) -> Vec<BlockAddr> {
        positions.iter().map(|&p| self.addr_of(p)).collect()
    }

    /// Extract the field bits at `positions[i]` from `blocks[i]` (the
    /// blocks returned for [`probe_addrs`](Self::probe_addrs)).
    #[must_use]
    pub fn extract(&self, positions: &[FieldPos], blocks: &[Vec<Word>]) -> Vec<Vec<Word>> {
        assert_eq!(positions.len(), blocks.len(), "positions/blocks mismatch");
        positions
            .iter()
            .zip(blocks)
            .map(|(&(_, j), block)| extract_bits(block, self.bit_offset(j), self.field_bits))
            .collect()
    }

    /// Patch field `positions[i]`'s bits inside its block image
    /// `blocks[i]` (caller writes the blocks back afterwards).
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn patch(&self, pos: FieldPos, block: &mut [Word], field: &[Word]) {
        let need = self.field_bits.div_ceil(WORD_BITS);
        assert!(field.len() >= need, "field buffer too small");
        copy_bits(block, self.bit_offset(pos.1), field, 0, self.field_bits);
    }

    /// Convenience for tests and construction: write one field with a
    /// read-modify-write of its block (2 parallel I/Os).
    pub fn write_field(&self, disks: &mut DiskArray, pos: FieldPos, field: &[Word]) {
        let addr = self.addr_of(pos);
        let mut block = disks.read_block(addr);
        self.patch(pos, &mut block, field);
        disks.write_block(addr, &block);
    }

    /// Convenience: read one field (1 parallel I/O).
    pub fn read_field(&self, disks: &mut DiskArray, pos: FieldPos) -> Vec<Word> {
        let addr = self.addr_of(pos);
        let block = disks.read_block(addr);
        extract_bits(&block, self.bit_offset(pos.1), self.field_bits)
    }

    /// Iterate the `(block row, stripe)` write order used by the
    /// streaming construction: returns, for a field index `(stripe, j)`,
    /// a sort key such that ascending order groups fields block-row by
    /// block-row with the `d` disks interleaved — so the filler can flush
    /// rows of `d` blocks as single parallel I/Os.
    #[must_use]
    pub fn fill_order_key(&self, pos: FieldPos) -> u64 {
        let (stripe, j) = pos;
        let row = j / self.fields_per_block;
        let slot = j % self.fields_per_block;
        ((row as u64 * self.stripes() as u64 + stripe as u64) * self.fields_per_block as u64)
            + slot as u64
    }

    /// Inverse of [`fill_order_key`](Self::fill_order_key).
    #[must_use]
    pub fn pos_from_fill_key(&self, key: u64) -> FieldPos {
        let slot = (key % self.fields_per_block as u64) as usize;
        let rest = key / self.fields_per_block as u64;
        let stripe = (rest % self.stripes() as u64) as usize;
        let row = (rest / self.stripes() as u64) as usize;
        (stripe, row * self.fields_per_block + slot)
    }

    /// The block row of a fill key (for grouping writes).
    #[must_use]
    pub fn row_of_fill_key(&self, key: u64) -> u64 {
        key / (self.fields_per_block as u64 * self.stripes() as u64)
    }

    /// Fields per block.
    #[must_use]
    pub fn fields_per_block(&self) -> usize {
        self.fields_per_block
    }

    /// Address of block row `row` on stripe `stripe`.
    ///
    /// # Panics
    /// Panics if the row is out of range.
    #[must_use]
    pub fn addr_of_row(&self, stripe: usize, row: usize) -> BlockAddr {
        self.region.addr(stripe, row)
    }

    /// Region (for composition-level diagnostics).
    #[must_use]
    pub fn region(&self) -> &Region {
        &self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DiskAllocator;
    use pdm::PdmConfig;

    fn setup(field_bits: usize, stripe_size: usize) -> (DiskArray, FieldArray) {
        let mut disks = DiskArray::new(PdmConfig::new(4, 4), 0); // 256-bit blocks
        let mut alloc = DiskAllocator::new(4);
        let fa = FieldArray::create(&mut disks, &mut alloc, 0, 4, stripe_size, field_bits).unwrap();
        (disks, fa)
    }

    #[test]
    fn geometry() {
        let (_, fa) = setup(100, 10);
        // 256-bit blocks hold 2 fields of 100 bits.
        assert_eq!(fa.num_fields(), 40);
        assert_eq!(fa.field_bits(), 100);
        assert_eq!(fa.stripes(), 4);
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut disks, fa) = setup(100, 10);
        let field = vec![
            0xDEAD_BEEF_CAFE_F00D,
            0x1234_5678_9ABC_DEF0 & ((1 << 36) - 1),
        ];
        fa.write_field(&mut disks, (2, 7), &field);
        let got = fa.read_field(&mut disks, (2, 7));
        assert_eq!(got[0], field[0]);
        assert_eq!(got[1] & ((1 << 36) - 1), field[1]);
    }

    #[test]
    fn neighboring_fields_do_not_clobber() {
        let (mut disks, fa) = setup(100, 10);
        // Fields (0,0) and (0,1) share block 0 of disk 0.
        fa.write_field(&mut disks, (0, 0), &[u64::MAX, u64::MAX]);
        fa.write_field(&mut disks, (0, 1), &[0, 0]);
        let f0 = fa.read_field(&mut disks, (0, 0));
        assert_eq!(f0[0], u64::MAX);
        assert_eq!(f0[1] & ((1u64 << 36) - 1), (1u64 << 36) - 1);
        let f1 = fa.read_field(&mut disks, (0, 1));
        assert_eq!(f1[0], 0);
    }

    #[test]
    fn one_field_per_stripe_is_one_parallel_io() {
        let (mut disks, fa) = setup(64, 8);
        let positions: Vec<FieldPos> = (0..4).map(|s| (s, s * 2)).collect();
        let addrs = fa.probe_addrs(&positions);
        let scope = disks.begin_op();
        let blocks = disks.read(&addrs, pdm::ReadOptions::default()).into_blocks();
        assert_eq!(disks.end_op(scope).parallel_ios, 1);
        let fields = fa.extract(&positions, &blocks);
        assert_eq!(fields.len(), 4);
    }

    #[test]
    fn patch_then_extract() {
        let (mut disks, fa) = setup(33, 16);
        let addr = fa.addr_of((1, 5));
        let mut block = disks.read_block(addr);
        fa.patch((1, 5), &mut block, &[0x1_2345_6789]);
        disks.write_block(addr, &block);
        assert_eq!(fa.read_field(&mut disks, (1, 5))[0], 0x1_2345_6789);
    }

    #[test]
    fn fill_order_key_roundtrip_and_grouping() {
        let (_, fa) = setup(100, 10);
        let mut keys = Vec::new();
        for stripe in 0..4 {
            for j in 0..10 {
                let k = fa.fill_order_key((stripe, j));
                assert_eq!(fa.pos_from_fill_key(k), (stripe, j));
                keys.push((k, stripe, j));
            }
        }
        keys.sort_unstable();
        // Ascending fill order visits block row 0 of all stripes before
        // any row-1 block (2 fields per block -> rows are j/2).
        let first_eight: Vec<usize> = keys[..8].iter().map(|&(_, _, j)| j / 2).collect();
        assert!(first_eight.iter().all(|&r| r == 0));
        assert_eq!(fa.row_of_fill_key(keys[8].0), 1);
    }

    #[test]
    fn rejects_field_larger_than_block() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 1), 0); // 64-bit blocks
        let mut alloc = DiskAllocator::new(2);
        assert!(FieldArray::create(&mut disks, &mut alloc, 0, 2, 4, 65).is_err());
    }

    #[test]
    #[should_panic(expected = "out of stripe")]
    fn position_bounds_checked() {
        let (_, fa) = setup(64, 8);
        let _ = fa.addr_of((0, 8));
    }
}
