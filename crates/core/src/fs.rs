//! The Section 1.2 motivation: a file system as an associative memory.
//!
//! "Let keys consist of a file name and a block number, and associate
//! them with the contents of the given block number of the given file.
//! Note that this implementation gives random access to any position in a
//! file" — versus the B-tree path walk ("in most settings it takes 3 disk
//! accesses before the contents of the block is available").
//!
//! [`PdmFileSystem`] packs `(inode, block number)` into one 64-bit key
//! (32 bits each) and stores a fixed payload of `block_payload_words` per
//! file block in a [`Dictionary`]. Reading a random position of any file
//! is a dictionary lookup: 1–2 parallel I/Os, no index walk.

use crate::config::DictParams;
use crate::rebuild::Dictionary;
use crate::traits::{DictError, LookupOutcome};
use pdm::{OpCost, Word};

/// A dictionary-backed file system.
#[derive(Debug)]
pub struct PdmFileSystem {
    dict: Dictionary,
    block_payload_words: usize,
}

impl PdmFileSystem {
    /// Create a file system whose file blocks carry
    /// `block_payload_words` words each, with initial capacity for
    /// `capacity_blocks` blocks.
    pub fn new(
        capacity_blocks: usize,
        block_payload_words: usize,
        device_block_words: usize,
        seed: u64,
    ) -> Result<Self, DictError> {
        let params = DictParams::new(capacity_blocks, u64::MAX, block_payload_words)
            .with_degree(20)
            .with_epsilon(0.5)
            .with_seed(seed);
        Ok(PdmFileSystem {
            dict: Dictionary::new(params, device_block_words)?,
            block_payload_words,
        })
    }

    fn key(inode: u32, block_no: u32) -> u64 {
        (u64::from(inode) << 32) | u64::from(block_no)
    }

    /// Words per file block.
    #[must_use]
    pub fn block_payload_words(&self) -> usize {
        self.block_payload_words
    }

    /// Number of stored file blocks.
    #[must_use]
    pub fn blocks_stored(&self) -> usize {
        self.dict.len()
    }

    /// Underlying dictionary (for I/O accounting).
    #[must_use]
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Write block `block_no` of file `inode`. Overwrites an existing
    /// block (delete + insert, keeping the paper's insert-only substrate).
    pub fn write_block(
        &mut self,
        inode: u32,
        block_no: u32,
        data: &[Word],
    ) -> Result<OpCost, DictError> {
        if data.len() != self.block_payload_words {
            return Err(DictError::SatelliteWidth {
                expected: self.block_payload_words,
                got: data.len(),
            });
        }
        let key = Self::key(inode, block_no);
        let (_, dcost) = self.dict.delete(key)?;
        let icost = self.dict.insert(key, data)?;
        Ok(dcost.plus(icost))
    }

    /// Random access: read block `block_no` of file `inode`.
    pub fn read_block(&mut self, inode: u32, block_no: u32) -> LookupOutcome {
        self.dict.lookup(Self::key(inode, block_no))
    }

    /// Delete one block. Returns whether it existed.
    pub fn delete_block(&mut self, inode: u32, block_no: u32) -> Result<bool, DictError> {
        Ok(self.dict.delete(Self::key(inode, block_no))?.0)
    }

    /// Delete blocks `0..num_blocks` of a file.
    pub fn delete_file(&mut self, inode: u32, num_blocks: u32) -> Result<usize, DictError> {
        let mut removed = 0;
        for b in 0..num_blocks {
            if self.delete_block(inode, b)? {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> PdmFileSystem {
        PdmFileSystem::new(256, 4, 64, 0xF5).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut fs = fs();
        fs.write_block(1, 0, &[1, 2, 3, 4]).unwrap();
        fs.write_block(1, 1, &[5, 6, 7, 8]).unwrap();
        fs.write_block(2, 0, &[9, 9, 9, 9]).unwrap();
        assert_eq!(fs.read_block(1, 1).satellite, Some(vec![5, 6, 7, 8]));
        assert_eq!(fs.read_block(2, 0).satellite, Some(vec![9, 9, 9, 9]));
        assert!(!fs.read_block(2, 1).found());
        assert_eq!(fs.blocks_stored(), 3);
    }

    #[test]
    fn random_access_is_constant_ios() {
        let mut fs = fs();
        for b in 0..100u32 {
            fs.write_block(7, b, &[u64::from(b); 4]).unwrap();
        }
        for probe in [0u32, 99, 50, 13, 77] {
            let out = fs.read_block(7, probe);
            assert_eq!(out.satellite, Some(vec![u64::from(probe); 4]));
            assert!(
                out.cost.parallel_ios <= 2,
                "random access cost {} too high",
                out.cost.parallel_ios
            );
        }
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut fs = fs();
        fs.write_block(3, 5, &[1; 4]).unwrap();
        fs.write_block(3, 5, &[2; 4]).unwrap();
        assert_eq!(fs.read_block(3, 5).satellite, Some(vec![2; 4]));
        assert_eq!(fs.blocks_stored(), 1);
    }

    #[test]
    fn delete_file_removes_all_blocks() {
        let mut fs = fs();
        for b in 0..10u32 {
            fs.write_block(4, b, &[0; 4]).unwrap();
        }
        assert_eq!(fs.delete_file(4, 20).unwrap(), 10);
        for b in 0..10u32 {
            assert!(!fs.read_block(4, b).found());
        }
    }

    #[test]
    fn files_do_not_collide() {
        let mut fs = fs();
        fs.write_block(1, 7, &[1; 4]).unwrap();
        fs.write_block(7, 1, &[2; 4]).unwrap();
        assert_eq!(fs.read_block(1, 7).satellite, Some(vec![1; 4]));
        assert_eq!(fs.read_block(7, 1).satellite, Some(vec![2; 4]));
    }

    #[test]
    fn wrong_block_size_rejected() {
        let mut fs = fs();
        assert!(fs.write_block(1, 0, &[1, 2]).is_err());
    }
}
