//! Bucket slot codec for the Section 4.1 dictionary.
//!
//! A bucket is a word buffer (one or more blocks on a single disk) holding
//! fixed-width slots `[flags, key, payload…]`. The flags word marks a slot
//! live or tombstoned — the paper's Section 4 preamble: "we can mark
//! deleted elements without influencing the search time of other
//! elements"; tombstoned slots are reused by later insertions and space is
//! reclaimed wholesale by global rebuilding.

use pdm::Word;

/// Flags word values.
const FLAG_LIVE: Word = 0b01;
const FLAG_TOMBSTONE: Word = 0b11; // tombstones remain "used" slots

/// Encodes/decodes fixed-width slots within a bucket buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCodec {
    /// Payload words per slot.
    pub payload_words: usize,
}

impl BucketCodec {
    /// Codec for slots carrying `payload_words` payload words.
    #[must_use]
    pub fn new(payload_words: usize) -> Self {
        BucketCodec { payload_words }
    }

    /// Words per slot: flags + key + payload.
    #[must_use]
    pub fn slot_words(&self) -> usize {
        2 + self.payload_words
    }

    /// Slots that fit in a buffer of `words` words.
    #[must_use]
    pub fn capacity(&self, words: usize) -> usize {
        words / self.slot_words()
    }

    fn slot<'a>(&self, buf: &'a [Word], i: usize) -> &'a [Word] {
        let w = self.slot_words();
        &buf[i * w..(i + 1) * w]
    }

    fn slot_mut<'a>(&self, buf: &'a mut [Word], i: usize) -> &'a mut [Word] {
        let w = self.slot_words();
        &mut buf[i * w..(i + 1) * w]
    }

    /// Find a live slot holding `key`; returns its payload.
    #[must_use]
    pub fn find(&self, buf: &[Word], key: u64) -> Option<Vec<Word>> {
        (0..self.capacity(buf.len())).find_map(|i| {
            let s = self.slot(buf, i);
            (s[0] == FLAG_LIVE && s[1] == key).then(|| s[2..].to_vec())
        })
    }

    /// Number of live (non-tombstoned) slots — the bucket's load for the
    /// greedy balancing decision.
    #[must_use]
    pub fn live_count(&self, buf: &[Word]) -> usize {
        (0..self.capacity(buf.len()))
            .filter(|&i| self.slot(buf, i)[0] == FLAG_LIVE)
            .count()
    }

    /// Insert `(key, payload)` into the first free or tombstoned slot.
    /// Returns `false` when the bucket is full.
    ///
    /// # Panics
    /// Panics on a payload width mismatch.
    pub fn insert(&self, buf: &mut [Word], key: u64, payload: &[Word]) -> bool {
        assert_eq!(payload.len(), self.payload_words, "payload width mismatch");
        for i in 0..self.capacity(buf.len()) {
            if self.slot(buf, i)[0] != FLAG_LIVE {
                let s = self.slot_mut(buf, i);
                s[0] = FLAG_LIVE;
                s[1] = key;
                s[2..].copy_from_slice(payload);
                return true;
            }
        }
        false
    }

    /// Overwrite the payload of `key`'s live slot. Returns `false` if the
    /// key is absent.
    pub fn update(&self, buf: &mut [Word], key: u64, payload: &[Word]) -> bool {
        assert_eq!(payload.len(), self.payload_words, "payload width mismatch");
        for i in 0..self.capacity(buf.len()) {
            let s = self.slot(buf, i);
            if s[0] == FLAG_LIVE && s[1] == key {
                self.slot_mut(buf, i)[2..].copy_from_slice(payload);
                return true;
            }
        }
        false
    }

    /// Tombstone `key`'s slot. Returns `false` if the key is absent.
    pub fn delete(&self, buf: &mut [Word], key: u64) -> bool {
        for i in 0..self.capacity(buf.len()) {
            let s = self.slot(buf, i);
            if s[0] == FLAG_LIVE && s[1] == key {
                self.slot_mut(buf, i)[0] = FLAG_TOMBSTONE;
                return true;
            }
        }
        false
    }

    /// All live `(key, payload)` pairs, in slot order.
    #[must_use]
    pub fn live_entries(&self, buf: &[Word]) -> Vec<(u64, Vec<Word>)> {
        (0..self.capacity(buf.len()))
            .filter_map(|i| {
                let s = self.slot(buf, i);
                (s[0] == FLAG_LIVE).then(|| (s[1], s[2..].to_vec()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(codec: &BucketCodec, slots: usize) -> Vec<Word> {
        vec![0; codec.slot_words() * slots]
    }

    #[test]
    fn insert_find_roundtrip() {
        let c = BucketCodec::new(2);
        let mut b = buf(&c, 4);
        assert!(c.insert(&mut b, 42, &[7, 8]));
        assert_eq!(c.find(&b, 42), Some(vec![7, 8]));
        assert_eq!(c.find(&b, 43), None);
        assert_eq!(c.live_count(&b), 1);
    }

    #[test]
    fn key_zero_is_storable() {
        // Key 0 must not be confused with an empty slot.
        let c = BucketCodec::new(0);
        let mut b = buf(&c, 2);
        assert_eq!(c.find(&b, 0), None);
        assert!(c.insert(&mut b, 0, &[]));
        assert_eq!(c.find(&b, 0), Some(vec![]));
    }

    #[test]
    fn full_bucket_rejects() {
        let c = BucketCodec::new(0);
        let mut b = buf(&c, 2);
        assert!(c.insert(&mut b, 1, &[]));
        assert!(c.insert(&mut b, 2, &[]));
        assert!(!c.insert(&mut b, 3, &[]));
    }

    #[test]
    fn delete_tombstones_and_slot_is_reused() {
        let c = BucketCodec::new(1);
        let mut b = buf(&c, 2);
        c.insert(&mut b, 1, &[10]);
        c.insert(&mut b, 2, &[20]);
        assert!(c.delete(&mut b, 1));
        assert_eq!(c.find(&b, 1), None);
        assert_eq!(c.live_count(&b), 1);
        // Tombstone slot is reused by the next insertion.
        assert!(c.insert(&mut b, 3, &[30]));
        assert_eq!(c.find(&b, 3), Some(vec![30]));
        assert_eq!(c.find(&b, 2), Some(vec![20]));
    }

    #[test]
    fn delete_absent_returns_false() {
        let c = BucketCodec::new(0);
        let mut b = buf(&c, 2);
        assert!(!c.delete(&mut b, 9));
    }

    #[test]
    fn update_in_place() {
        let c = BucketCodec::new(1);
        let mut b = buf(&c, 2);
        c.insert(&mut b, 5, &[1]);
        assert!(c.update(&mut b, 5, &[99]));
        assert_eq!(c.find(&b, 5), Some(vec![99]));
        assert!(!c.update(&mut b, 6, &[0]));
    }

    #[test]
    fn live_entries_in_order() {
        let c = BucketCodec::new(0);
        let mut b = buf(&c, 3);
        c.insert(&mut b, 3, &[]);
        c.insert(&mut b, 1, &[]);
        c.delete(&mut b, 3);
        c.insert(&mut b, 2, &[]); // reuses slot 0
        assert_eq!(c.live_entries(&b), vec![(2, vec![]), (1, vec![])]);
    }

    #[test]
    fn capacity_rounds_down() {
        let c = BucketCodec::new(1); // 3 words per slot
        assert_eq!(c.capacity(8), 2);
        assert_eq!(c.capacity(9), 3);
    }
}
