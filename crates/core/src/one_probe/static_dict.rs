//! Theorem 6: the one-probe static dictionary.
//!
//! Lookups cost **one parallel I/O**, construction costs `O(sort(n·d))`
//! parallel I/Os, and the two cases trade block-size assumptions for
//! space:
//!
//! * **case (a)** — `O(log n)` keys fit in a block: `2d` disks; a
//!   Section 4.1 membership dictionary (with a `⌈lg d⌉`-bit head pointer
//!   per key) occupies half of them, the pointer-chain retrieval array the
//!   other half. Space `O(n(log u + σ))` bits — optimal.
//! * **case (b)** — tiny blocks: `d` disks, identifier-tagged fields with
//!   majority decoding. Space `O(n·log u·log n + n·σ)` bits.

use crate::basic::{BasicDict, BasicDictConfig};
use crate::config::DictParams;
use crate::fields::FieldArray;
use crate::layout::{DiskAllocator, Region};
use crate::one_probe::construct::{sorted_construct, ConstructStats};
use crate::one_probe::encoding::{CaseB, Chain};
use crate::traits::{DictError, LookupOutcome};
use expander::{FamilyExpander, NeighborFamily, NeighborFn};
use pdm::{BatchPlan, BlockAddr, BlockHealth, DiskArray, OpCost, ReadOptions, ScrubReport, Word, WriteOptions, WORD_BITS};

/// Which Theorem 6 case to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneProbeVariant {
    /// Case (a): membership dictionary + pointer-chain retrieval
    /// (`2d` disks, needs `B = Ω(log n)`).
    CaseA,
    /// Case (b): identifier-tagged fields with majority decoding
    /// (`d` disks, any `B` that holds one field).
    CaseB,
}

#[derive(Debug)]
enum VariantImpl {
    B {
        fields: FieldArray,
        enc: CaseB,
        manifest: Option<Manifest>,
    },
    A {
        membership: BasicDict,
        fields: FieldArray,
        enc: Chain,
    },
}

/// Scrub manifest of case (b): the rank-ordered `(key, stripe-bitmap)`
/// records the repair pass needs to re-derive every key's field positions
/// (`neighbors(key)[s]` for each set stripe `s`). Two words per key, kept
/// in **two** replicas whose linear blocks rotate to different disks, so a
/// single dead disk never loses both copies of a record. Records are
/// self-validating: a genuine record's bitmap has exactly `m` set bits,
/// while an erased (zeroed) or padding slot has none.
#[derive(Debug)]
struct Manifest {
    replicas: [Region; 2],
    records: usize,
    recs_per_block: usize,
}

impl Manifest {
    /// Linear manifest blocks needed for `records` records.
    fn blocks(&self) -> usize {
        self.records.div_ceil(self.recs_per_block).max(1)
    }

    /// Address of linear block `j` in `replica` (0 or 1): row `j / d`,
    /// disk `(j + replica) % d` — the rotation that keeps the copies of
    /// any record on two different disks.
    fn addr(&self, replica: usize, j: usize) -> BlockAddr {
        let r = &self.replicas[replica];
        r.addr((j + replica) % r.disks, j / r.disks)
    }
}

/// The one-probe static dictionary of Theorem 6, generic over the
/// (striped) expander powering it. `G = FamilyExpander` is the default
/// (any of the pluggable hash families, chosen by `params.family`);
/// [`OneProbeStatic::build_with_graph`] accepts any striped
/// [`NeighborFn`] — in particular the Section 5 semi-explicit
/// construction after trivial striping, which yields the paper's fully
/// semi-explicit dictionary end to end.
#[derive(Debug)]
pub struct OneProbeStatic<G: NeighborFn = FamilyExpander> {
    variant: VariantImpl,
    graph: G,
    n: usize,
    sigma_words: usize,
}

impl OneProbeStatic<FamilyExpander> {
    /// Build the dictionary for `entries` (keys with equal-width
    /// satellite data) starting at `first_disk`, drawing an expander
    /// from `params.family` with seed `params.seed`. Case (a) uses `2d`
    /// disks, case (b) uses `d`.
    ///
    /// Returns the structure and the measured construction cost.
    pub fn build(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        params: &DictParams,
        variant: OneProbeVariant,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<(Self, ConstructStats), DictError> {
        // (n, ε)-expander with v = slack·n·d, i.e. slack·n per stripe.
        let n = entries.len().max(1);
        let stripe = ((params.right_slack * n as f64).ceil() as usize).max(4);
        let graph = params
            .family
            .build(params.universe, stripe, params.degree, params.seed);
        Self::build_with_graph(disks, alloc, first_disk, params, variant, graph, entries)
    }
}

impl<G: NeighborFn> OneProbeStatic<G> {
    /// Build over a caller-supplied striped expander.
    ///
    /// The graph must be striped with `degree == params.degree`; its
    /// stripe size determines the field arrays' size.
    pub fn build_with_graph(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        params: &DictParams,
        variant: OneProbeVariant,
        graph: G,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<(Self, ConstructStats), DictError> {
        params.validate(disks.config(), matches!(variant, OneProbeVariant::CaseA))?;
        if !graph.is_striped() {
            return Err(DictError::UnsupportedParams(
                "the parallel disk model needs a striped expander (the parallel disk head \
                 model lifts this; see expander::TriviallyStriped)"
                    .into(),
            ));
        }
        if graph.degree() != params.degree {
            return Err(DictError::UnsupportedParams(format!(
                "graph degree {} does not match configured degree {}",
                graph.degree(),
                params.degree
            )));
        }
        let n = entries.len().max(1);
        let d = params.degree;
        let m = params.fields_per_key();
        let sigma_words = params.satellite_words;
        if entries.iter().any(|(_, s)| s.len() != sigma_words) {
            return Err(DictError::UnsupportedParams(
                "all satellites must have the configured width".into(),
            ));
        }
        let sigma_bits = sigma_words * WORD_BITS;
        let stripe = graph.stripe_size();

        match variant {
            OneProbeVariant::CaseB => {
                let enc = CaseB::new(n, sigma_bits, d);
                let fields =
                    FieldArray::create(disks, alloc, first_disk, d, stripe, enc.field_bits())?;
                let field_words = enc.field_bits().div_ceil(WORD_BITS);
                // Rank-ordered (key, stripe-bitmap) records for the scrub
                // manifest, filled as the construction assigns stripes.
                let mut records: Vec<(u64, u64)> = vec![(0, 0); entries.len()];
                let stats = sorted_construct(
                    disks,
                    &graph,
                    &fields,
                    entries,
                    m,
                    field_words,
                    |key, rank, stripes, satellite| {
                        if d <= WORD_BITS {
                            let bitmap = stripes.iter().fold(0u64, |b, &s| b | 1 << s);
                            records[rank as usize] = (key, bitmap);
                        }
                        (0..stripes.len())
                            .map(|t| (stripes[t], enc.encode(rank, satellite, t)))
                            .collect()
                    },
                )?;
                let mut stats = stats;
                let manifest = Self::write_manifest(
                    disks,
                    alloc,
                    first_disk,
                    d,
                    &records,
                    &mut stats.cost,
                );
                Ok((
                    OneProbeStatic {
                        variant: VariantImpl::B {
                            fields,
                            enc,
                            manifest,
                        },
                        graph,
                        n: entries.len(),
                        sigma_words,
                    },
                    stats,
                ))
            }
            OneProbeVariant::CaseA => {
                let enc = Chain::new(sigma_bits, d);
                // Membership on disks [first, first+d): key -> head stripe.
                let mcfg =
                    BasicDictConfig::log_load(n, params.universe, d, 1, params.seed ^ 0xA11C_E55E)
                        .with_family(params.family);
                let membership = BasicDict::create(disks, alloc, first_disk, mcfg)?;
                if membership.blocks_per_bucket() != 1 {
                    return Err(DictError::UnsupportedParams(format!(
                        "case (a) requires B = Ω(log n): a bucket of {} slots must fit one \
                         block of {} words",
                        membership.config().bucket_slots,
                        disks.block_words()
                    )));
                }
                // Retrieval on disks [first+d, first+2d).
                let fields =
                    FieldArray::create(disks, alloc, first_disk + d, d, stripe, enc.field_bits)?;
                let field_words = enc.field_words();
                let mut heads: Vec<(u64, Vec<Word>)> = Vec::with_capacity(entries.len());
                let stats = sorted_construct(
                    disks,
                    &graph,
                    &fields,
                    entries,
                    m,
                    field_words,
                    |key, _rank, stripes, satellite| {
                        heads.push((key, vec![stripes[0] as Word]));
                        enc.encode(stripes, satellite)
                    },
                )?;
                let mut membership = membership;
                let mcost = membership.bulk_build(disks, &heads)?;
                let mut stats = stats;
                stats.cost = stats.cost.plus(mcost);
                Ok((
                    OneProbeStatic {
                        variant: VariantImpl::A {
                            membership,
                            fields,
                            enc,
                        },
                        graph,
                        n: entries.len(),
                        sigma_words,
                    },
                    stats,
                ))
            }
        }
    }

    /// Allocate and write the case (b) scrub manifest: two rotated
    /// replicas of the rank-ordered `(key, stripe-bitmap)` records.
    /// `None` when the geometry cannot support it (blocks of fewer than
    /// two words, a single disk, or `d > 64` stripes per bitmap word).
    fn write_manifest(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        d: usize,
        records: &[(u64, u64)],
        cost: &mut OpCost,
    ) -> Option<Manifest> {
        let bw = disks.block_words();
        if !(2..=WORD_BITS).contains(&d) || bw < 2 || records.is_empty() {
            return None;
        }
        let recs_per_block = bw / 2;
        let blocks = records.len().div_ceil(recs_per_block);
        let rows = blocks.div_ceil(d);
        let replicas = [
            alloc.alloc(disks, first_disk, d, rows),
            alloc.alloc(disks, first_disk, d, rows),
        ];
        let manifest = Manifest {
            replicas,
            records: records.len(),
            recs_per_block,
        };
        let scope = disks.begin_op();
        for j in 0..blocks {
            let mut img = vec![0 as Word; bw];
            for (k, &(key, bitmap)) in records
                .iter()
                .skip(j * recs_per_block)
                .take(recs_per_block)
                .enumerate()
            {
                img[2 * k] = key;
                img[2 * k + 1] = bitmap;
            }
            let writes = [
                (manifest.addr(0, j), img.as_slice()),
                (manifest.addr(1, j), img.as_slice()),
            ];
            disks.write(&writes, WriteOptions::default());
        }
        *cost = cost.plus(disks.end_op(scope));
        Some(manifest)
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dictionary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Satellite width in words.
    #[must_use]
    pub fn satellite_words(&self) -> usize {
        self.sigma_words
    }

    /// Space usage in words.
    #[must_use]
    pub fn space_words(&self, disks: &DiskArray) -> usize {
        match &self.variant {
            VariantImpl::B { fields, .. } => fields.space_words(disks),
            VariantImpl::A {
                membership, fields, ..
            } => membership.space_words(disks) + fields.space_words(disks),
        }
    }

    /// One-probe lookup: a single batched parallel I/O.
    pub fn lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        let out = self.lookup_shared(disks, key);
        disks.charge_cost(out.cost);
        out
    }

    /// Batched lookup: every key's single probe is planned as one batch,
    /// so `m` lookups cost the per-disk maximum of *unique* blocks rather
    /// than `m` parallel I/Os — with independent keys and `D` disks the
    /// probes stripe across the array and the whole batch approaches
    /// `⌈m·d/D⌉` (or better, when keys share blocks).
    ///
    /// Results are byte-identical to calling [`Self::lookup`] per key.
    pub fn lookup_batch(
        &self,
        disks: &mut DiskArray,
        keys: &[u64],
    ) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let scope = disks.begin_op();
        let mut all: Vec<BlockAddr> = Vec::new();
        let mut meta = Vec::with_capacity(keys.len());
        for &key in keys {
            let positions: Vec<(usize, usize)> = self
                .graph
                .neighbors(key)
                .into_iter()
                .map(|y| self.graph.stripe_of(y))
                .collect();
            let start = all.len();
            let msplit = match &self.variant {
                VariantImpl::B { fields, .. } => {
                    all.extend(fields.probe_addrs(&positions));
                    0
                }
                VariantImpl::A {
                    membership, fields, ..
                } => {
                    let maddrs = membership.probe_addrs(key);
                    let msplit = maddrs.len();
                    all.extend(maddrs);
                    all.extend(fields.probe_addrs(&positions));
                    msplit
                }
            };
            meta.push((positions, start..all.len(), msplit));
        }
        let plan = BatchPlan::new(disks.disks(), &all);
        let reads = plan.execute_read(disks);
        let results = keys
            .iter()
            .zip(meta)
            .map(|(&key, (positions, range, msplit))| {
                let healths = reads.gather_healths(range.clone());
                let blocks = reads.gather(range);
                match &self.variant {
                    VariantImpl::B { fields, enc, .. } => {
                        let raw = fields.extract(&positions, &blocks);
                        let erased: Vec<bool> = healths.iter().map(|h| !h.is_ok()).collect();
                        enc.decode_erasure(&raw, &erased).map(|(_, sat)| {
                            let mut s = sat;
                            s.truncate(self.sigma_words);
                            s.resize(self.sigma_words, 0);
                            s
                        })
                    }
                    VariantImpl::A {
                        membership,
                        fields,
                        enc,
                    } => {
                        let (mblocks, fblocks) = blocks.split_at(msplit);
                        membership.decode_find(key, mblocks).and_then(|payload| {
                            let head = payload[0] as usize;
                            let raw = fields.extract(&positions, fblocks);
                            enc.decode(head, &raw).map(|mut s| {
                                s.truncate(self.sigma_words);
                                s.resize(self.sigma_words, 0);
                                s
                            })
                        })
                    }
                }
            })
            .collect();
        (results, disks.end_op(scope))
    }

    /// One-probe lookup through a **shared** reference — the paper's
    /// concurrency property made literal: the structure is static, probe
    /// addresses are pure functions of the key, and no data ever moves,
    /// so any number of threads may call this simultaneously (see the
    /// `concurrent_reads` example). The returned cost is computed but not
    /// recorded in the array's counters.
    #[must_use]
    pub fn lookup_shared(&self, disks: &DiskArray, key: u64) -> LookupOutcome {
        let positions: Vec<(usize, usize)> = self
            .graph
            .neighbors(key)
            .into_iter()
            .map(|y| self.graph.stripe_of(y))
            .collect();
        match &self.variant {
            VariantImpl::B { fields, enc, .. } => {
                let addrs = fields.probe_addrs(&positions);
                let out = disks.read_shared(&addrs, ReadOptions::verified());
                let (blocks, healths, cost) = (out.blocks, out.healths, out.cost);
                let raw = fields.extract(&positions, &blocks);
                let erased: Vec<bool> = healths.iter().map(|h| !h.is_ok()).collect();
                let mut parity_used = false;
                let satellite = enc.decode_detail(&raw, &erased).map(|(_, sat, repaired)| {
                    parity_used = repaired;
                    let mut s = sat;
                    s.truncate(self.sigma_words);
                    s.resize(self.sigma_words, 0);
                    s
                });
                if healths.iter().all(|h| h.is_ok()) && !parity_used {
                    LookupOutcome::new(satellite, cost)
                } else {
                    LookupOutcome::degraded(satellite, cost)
                }
            }
            VariantImpl::A {
                membership,
                fields,
                enc,
            } => {
                // One batch probes both halves: the membership buckets on
                // the first d disks, the fields on the second d disks.
                let maddrs = membership.probe_addrs(key);
                let faddrs = fields.probe_addrs(&positions);
                let msplit = maddrs.len();
                let mut all = maddrs;
                all.extend(faddrs);
                let out = disks.read_shared(&all, ReadOptions::verified());
                let (blocks, healths, cost) = (out.blocks, out.healths, out.cost);
                let (mblocks, fblocks) = blocks.split_at(msplit);
                // Damaged blocks arrive sanitized to zero, which every
                // decoder reads as absent/unoccupied — the chain format
                // has no parity, so damage fails closed to a miss.
                let satellite = membership.decode_find(key, mblocks).and_then(|payload| {
                    let head = payload[0] as usize;
                    let raw = fields.extract(&positions, fblocks);
                    enc.decode(head, &raw).map(|mut s| {
                        s.truncate(self.sigma_words);
                        s.resize(self.sigma_words, 0);
                        s
                    })
                });
                if healths.iter().all(|h| h.is_ok()) {
                    LookupOutcome::new(satellite, cost)
                } else {
                    LookupOutcome::degraded(satellite, cost)
                }
            }
        }
    }

    /// Scrub-and-repair pass.
    ///
    /// Case (b) with a manifest: walks both manifest replicas and the
    /// whole field array with verified reads, re-derives every key's
    /// field positions from the expander (`neighbors(key)[s]` for each
    /// stripe in its bitmap), detects damaged fields *by parsing* (a
    /// genuine field carries `id == rank` and its slot index, so zeroed
    /// or rotted fields are identified even without checksums), erasure-
    /// decodes each damaged key's record through the XOR parity, re-
    /// encodes the lost fields, and rewrites repaired blocks — which
    /// reseals their checksums. Manifest replicas repair each other.
    ///
    /// Case (a) — the chain format has no field-level redundancy — falls
    /// back to [`DiskArray::scrub_verify`] (detection only).
    pub fn scrub(&self, disks: &mut DiskArray) -> ScrubReport {
        let VariantImpl::B {
            fields,
            enc,
            manifest: Some(manifest),
        } = &self.variant
        else {
            return disks.scrub_verify();
        };
        let scope = disks.begin_op();
        let mut report = ScrubReport::default();
        let d = enc.degree;
        let m = enc.fields_per_key;
        let count_bad = |report: &mut ScrubReport, healths: &[BlockHealth]| {
            report.checksum_failures += healths
                .iter()
                .filter(|h| matches!(h, BlockHealth::ChecksumMismatch))
                .count() as u64;
        };

        // Read both manifest replicas (damaged blocks arrive zeroed).
        let mblocks = manifest.blocks();
        let mut rep_imgs: Vec<Vec<Vec<Word>>> = Vec::with_capacity(2);
        for replica in 0..2 {
            let addrs: Vec<BlockAddr> = (0..mblocks).map(|j| manifest.addr(replica, j)).collect();
            let out = disks.read(&addrs, ReadOptions::verified());
            let (imgs, healths) = (out.blocks, out.healths);
            report.blocks_scanned += mblocks as u64;
            count_bad(&mut report, &healths);
            rep_imgs.push(imgs);
        }

        // Reconstruct the record list, repairing one replica from the
        // other. A record is valid iff its bitmap has exactly m set bits
        // within the d stripes (zeroed and padding slots have none).
        let valid = |key_bm: (u64, u64)| {
            let bm = key_bm.1;
            bm.count_ones() as usize == m && (d == WORD_BITS || bm >> d == 0)
        };
        let mut records: Vec<Option<(u64, u64)>> = Vec::with_capacity(manifest.records);
        let mut dirty_manifest = [vec![false; mblocks], vec![false; mblocks]];
        for i in 0..manifest.records {
            let j = i / manifest.recs_per_block;
            let k = i % manifest.recs_per_block;
            let copies = [
                (rep_imgs[0][j][2 * k], rep_imgs[0][j][2 * k + 1]),
                (rep_imgs[1][j][2 * k], rep_imgs[1][j][2 * k + 1]),
            ];
            let rec = match (valid(copies[0]), valid(copies[1])) {
                (true, _) => Some(copies[0]),
                (false, true) => Some(copies[1]),
                (false, false) => {
                    report.unrepairable_keys += 1;
                    None
                }
            };
            if let Some(rec) = rec {
                for (r, &copy) in copies.iter().enumerate() {
                    if copy != rec {
                        rep_imgs[r][j][2 * k] = rec.0;
                        rep_imgs[r][j][2 * k + 1] = rec.1;
                        dirty_manifest[r][j] = true;
                    }
                }
            }
            records.push(rec);
        }

        // Read the whole field array, row by row (one parallel I/O each).
        let rows = fields.region().blocks_per_disk;
        let mut imgs: Vec<Vec<Vec<Word>>> = vec![Vec::with_capacity(rows); d];
        for row in 0..rows {
            let addrs: Vec<BlockAddr> = (0..d).map(|s| fields.addr_of_row(s, row)).collect();
            let out = disks.read(&addrs, ReadOptions::verified());
            let (blocks, healths) = (out.blocks, out.healths);
            report.blocks_scanned += d as u64;
            count_bad(&mut report, &healths);
            for (s, img) in blocks.into_iter().enumerate() {
                imgs[s].push(img);
            }
        }

        // Per key: verify the m fields by parsing, erasure-decode the
        // record if any are damaged, re-encode and patch them in place.
        let fpb = fields.fields_per_block();
        let field_words = enc.field_bits().div_ceil(WORD_BITS);
        let mut repaired_per_block: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        for (i, rec) in records.iter().enumerate() {
            let Some((key, bitmap)) = *rec else { continue };
            let stripes: Vec<usize> = (0..d).filter(|s| bitmap >> s & 1 == 1).collect();
            let neighbors = self.graph.neighbors(key);
            let positions: Vec<(usize, usize)> = stripes
                .iter()
                .map(|&s| self.graph.stripe_of(neighbors[s]))
                .collect();
            let mut probe = vec![vec![0 as Word; field_words]; d];
            let mut erased = vec![false; d];
            let mut damaged: Vec<usize> = Vec::new(); // slot indexes
            for (t, &(s, j)) in positions.iter().enumerate() {
                let img = &imgs[s][j / fpb];
                let f = fields.extract(&[(s, j)], std::slice::from_ref(img));
                let ok = enc
                    .parse_header(&f[0])
                    .is_some_and(|h| h.id == i as u64 && h.slot == t);
                if ok {
                    probe[s] = f.into_iter().next().expect("one field");
                } else {
                    erased[s] = true;
                    damaged.push(t);
                }
            }
            if damaged.is_empty() {
                continue;
            }
            match enc.decode_erasure(&probe, &erased) {
                Some((id, sat)) if id == i as u64 => {
                    for &t in &damaged {
                        let (s, j) = positions[t];
                        let new_field = enc.encode(i as u64, &sat, t);
                        fields.patch((s, j), &mut imgs[s][j / fpb], &new_field);
                        *repaired_per_block.entry((s, j / fpb)).or_insert(0) += 1;
                    }
                }
                _ => report.unrepairable_keys += 1,
            }
        }

        // Flush repaired blocks; checksums reseal on write. Writes the
        // fault plan still drops (an in-place dead disk) are not counted
        // as repairs — run the scrub again after the disk is replaced.
        let mut writes: Vec<(BlockAddr, &[Word], u64)> = Vec::new();
        for (&(s, row), &nf) in &repaired_per_block {
            writes.push((fields.addr_of_row(s, row), &imgs[s][row], nf));
        }
        for r in 0..2 {
            for j in 0..mblocks {
                if dirty_manifest[r][j] {
                    writes.push((manifest.addr(r, j), &rep_imgs[r][j], 0));
                }
            }
        }
        if !writes.is_empty() {
            let batch: Vec<(BlockAddr, &[Word])> = writes.iter().map(|&(a, w, _)| (a, w)).collect();
            // Route the repair flush through the intent journal when one
            // is enabled: a crash mid-flush must never leave a previously
            // Degraded-but-decodable block half-rewritten (and thus
            // unreadable) — recovery replays the whole repair or none.
            let healths = if disks.journal_enabled() {
                disks.journaled_write_batch_checked(&batch, &[])
            } else {
                disks.write(&batch, WriteOptions::checked()).healths
            };
            for (&(_, _, nf), h) in writes.iter().zip(&healths) {
                if h.is_ok() {
                    report.repaired_blocks += 1;
                    report.repaired_fields += nf;
                }
            }
        }
        report.cost = disks.end_op(scope);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::PdmConfig;

    fn entries(n: usize, sigma: usize) -> Vec<(u64, Vec<Word>)> {
        (0..n as u64)
            .map(|k| {
                let key = k.wrapping_mul(0x9E37_79B9).wrapping_add(7) % (1 << 30);
                (key, (0..sigma as u64).map(|i| key ^ (i << 32)).collect())
            })
            .collect()
    }

    fn params(n: usize, sigma: usize) -> DictParams {
        DictParams::new(n, 1 << 30, sigma)
            .with_degree(13)
            .with_seed(77)
    }

    fn build(
        variant: OneProbeVariant,
        n: usize,
        sigma: usize,
    ) -> (DiskArray, OneProbeStatic, ConstructStats) {
        let d = 13;
        let disks_needed = match variant {
            OneProbeVariant::CaseA => 2 * d,
            OneProbeVariant::CaseB => d,
        };
        let mut disks = DiskArray::new(PdmConfig::new(disks_needed, 64), 0);
        let mut alloc = DiskAllocator::new(disks_needed);
        let es = entries(n, sigma);
        let (dict, stats) =
            OneProbeStatic::build(&mut disks, &mut alloc, 0, &params(n, sigma), variant, &es)
                .unwrap();
        (disks, dict, stats)
    }

    #[test]
    fn case_b_lookups_are_one_io_and_correct() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseB, 150, 2);
        for (key, sat) in entries(150, 2) {
            let out = dict.lookup(&mut disks, key);
            assert_eq!(out.satellite, Some(sat), "key {key}");
            assert_eq!(out.cost.parallel_ios, 1, "one-probe violated");
        }
    }

    #[test]
    fn case_a_lookups_are_one_io_and_correct() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseA, 150, 3);
        for (key, sat) in entries(150, 3) {
            let out = dict.lookup(&mut disks, key);
            assert_eq!(out.satellite, Some(sat), "key {key}");
            assert_eq!(out.cost.parallel_ios, 1, "one-probe violated");
        }
    }

    #[test]
    fn case_a_misses_have_no_false_positives() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseA, 100, 1);
        let present: std::collections::HashSet<u64> =
            entries(100, 1).into_iter().map(|(k, _)| k).collect();
        for probe in 0..2000u64 {
            if !present.contains(&probe) {
                let out = dict.lookup(&mut disks, probe);
                assert!(out.satellite.is_none(), "false positive at {probe}");
                assert_eq!(out.cost.parallel_ios, 1);
            }
        }
    }

    #[test]
    fn case_b_misses_are_rejected_by_majority() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseB, 100, 1);
        let present: std::collections::HashSet<u64> =
            entries(100, 1).into_iter().map(|(k, _)| k).collect();
        let mut false_pos = 0;
        for probe in 0..2000u64 {
            if !present.contains(&probe) && dict.lookup(&mut disks, probe).found() {
                false_pos += 1;
            }
        }
        // Shared-neighbor bound makes a majority for an absent key
        // impossible when the graph has its parameters; the sampled graph
        // must match that here.
        assert_eq!(false_pos, 0, "{false_pos} false positives");
    }

    #[test]
    fn construction_cost_within_constant_of_sort_bound() {
        let n = 200;
        let d = 13;
        let (disks, _, stats) = build(OneProbeVariant::CaseB, n, 2);
        let bound = pdm::sort_io_bound(disks.config(), n * d, 2).max(1);
        let ratio = stats.cost.parallel_ios as f64 / bound as f64;
        assert!(
            ratio < 40.0,
            "construction {}, sort bound {bound}: ratio {ratio}",
            stats.cost.parallel_ios
        );
    }

    #[test]
    fn zero_sigma_membership_only() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseB, 80, 0);
        for (key, _) in entries(80, 0) {
            let out = dict.lookup(&mut disks, key);
            assert_eq!(out.satellite, Some(vec![]));
        }
    }

    #[test]
    fn case_b_survives_dead_disk_and_scrub_restores_exact() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseB, 150, 2);
        disks.enable_integrity();
        let es = entries(150, 2);

        // Kill one disk: every lookup must still return the exact record
        // (single field per key lost, parity covers it), flagged Degraded.
        disks.set_fault_plan(pdm::FaultPlan::new().dead_disk(4));
        let mut degraded = 0;
        for (key, sat) in &es {
            let out = dict.lookup(&mut disks, *key);
            assert_eq!(out.satellite.as_ref(), Some(sat), "key {key} under dead disk");
            if !out.is_exact() {
                degraded += 1;
            }
        }
        assert!(degraded > 0, "some keys must have probed the dead disk");

        // Replace the disk (fault cleared, its data gone) and scrub: all
        // lost fields are re-encoded from parity and rewritten.
        disks.clear_fault_plan();
        let report = dict.scrub(&mut disks);
        assert_eq!(report.unrepairable_keys, 0, "{report:?}");
        assert!(report.repaired_fields > 0, "{report:?}");
        assert!(report.repaired_blocks > 0, "{report:?}");
        assert!(report.cost.parallel_ios > 0);

        // Post-scrub: every lookup is exact again.
        for (key, sat) in &es {
            let out = dict.lookup(&mut disks, *key);
            assert_eq!(out.satellite.as_ref(), Some(sat));
            assert!(out.is_exact(), "key {key} still degraded after scrub");
        }
        // And a second scrub finds nothing left to repair.
        let again = dict.scrub(&mut disks);
        assert_eq!(again.repaired_fields, 0, "{again:?}");
        assert_eq!(again.checksum_failures, 0, "{again:?}");
    }

    #[test]
    fn case_b_scrub_repairs_bit_rot() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseB, 120, 1);
        disks.enable_integrity();
        // Rot several blocks of ONE disk (a key owns at most one field
        // per disk, so parity covers every key; damage spread over many
        // disks can exceed the single-erasure budget and must instead
        // fail closed — see case_b_two_missing_chunks_fail_closed).
        let mut plan = pdm::FaultPlan::new();
        for b in 0..4usize.min(disks.blocks_on(3)) {
            plan = plan.bit_rot(3, b, (b * 97) as u32);
        }
        disks.set_fault_plan(plan);
        disks.clear_fault_plan();
        let report = dict.scrub(&mut disks);
        assert_eq!(report.unrepairable_keys, 0, "{report:?}");
        for (key, sat) in entries(120, 1) {
            let out = dict.lookup(&mut disks, key);
            assert_eq!(out.satellite, Some(sat), "key {key} after rot+scrub");
            assert!(out.is_exact());
        }
    }

    #[test]
    fn case_a_degrades_to_misses_never_garbage() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseA, 150, 2);
        disks.enable_integrity();
        disks.set_fault_plan(pdm::FaultPlan::new().dead_disk(3));
        let es = entries(150, 2);
        let mut found = 0;
        for (key, sat) in &es {
            let out = dict.lookup(&mut disks, *key);
            if let Some(got) = &out.satellite {
                assert_eq!(got, sat, "case (a) returned wrong data for {key}");
                found += 1;
            }
        }
        assert!(found < es.len(), "a dead disk must lose some chains");
        assert!(found > 0, "keys avoiding the dead disk must still decode");
    }

    #[test]
    fn case_a_rejects_tiny_blocks() {
        // B = 4 words cannot hold a log-load bucket: case (a) must refuse.
        let d = 13;
        let mut disks = DiskArray::new(PdmConfig::new(2 * d, 4), 0);
        let mut alloc = DiskAllocator::new(2 * d);
        let es = entries(200, 1);
        let err = OneProbeStatic::build(
            &mut disks,
            &mut alloc,
            0,
            &params(200, 1),
            OneProbeVariant::CaseA,
            &es,
        )
        .unwrap_err();
        assert!(err.to_string().contains("Ω(log n)"), "got: {err}");
    }

    #[test]
    fn mismatched_satellite_width_rejected() {
        let d = 13;
        let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
        let mut alloc = DiskAllocator::new(d);
        let es = vec![(1u64, vec![1, 2]), (2u64, vec![3])];
        assert!(OneProbeStatic::build(
            &mut disks,
            &mut alloc,
            0,
            &params(2, 2),
            OneProbeVariant::CaseB,
            &es
        )
        .is_err());
    }
}
