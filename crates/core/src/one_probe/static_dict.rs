//! Theorem 6: the one-probe static dictionary.
//!
//! Lookups cost **one parallel I/O**, construction costs `O(sort(n·d))`
//! parallel I/Os, and the two cases trade block-size assumptions for
//! space:
//!
//! * **case (a)** — `O(log n)` keys fit in a block: `2d` disks; a
//!   Section 4.1 membership dictionary (with a `⌈lg d⌉`-bit head pointer
//!   per key) occupies half of them, the pointer-chain retrieval array the
//!   other half. Space `O(n(log u + σ))` bits — optimal.
//! * **case (b)** — tiny blocks: `d` disks, identifier-tagged fields with
//!   majority decoding. Space `O(n·log u·log n + n·σ)` bits.

use crate::basic::{BasicDict, BasicDictConfig};
use crate::config::DictParams;
use crate::fields::FieldArray;
use crate::layout::DiskAllocator;
use crate::one_probe::construct::{sorted_construct, ConstructStats};
use crate::one_probe::encoding::{CaseB, Chain};
use crate::traits::{DictError, LookupOutcome};
use expander::{NeighborFn, SeededExpander};
use pdm::{BatchPlan, BlockAddr, DiskArray, OpCost, Word, WORD_BITS};

/// Which Theorem 6 case to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneProbeVariant {
    /// Case (a): membership dictionary + pointer-chain retrieval
    /// (`2d` disks, needs `B = Ω(log n)`).
    CaseA,
    /// Case (b): identifier-tagged fields with majority decoding
    /// (`d` disks, any `B` that holds one field).
    CaseB,
}

#[derive(Debug)]
enum VariantImpl {
    B {
        fields: FieldArray,
        enc: CaseB,
    },
    A {
        membership: BasicDict,
        fields: FieldArray,
        enc: Chain,
    },
}

/// The one-probe static dictionary of Theorem 6, generic over the
/// (striped) expander powering it. `G = SeededExpander` is the default;
/// [`OneProbeStatic::build_with_graph`] accepts any striped
/// [`NeighborFn`] — in particular the Section 5 semi-explicit
/// construction after trivial striping, which yields the paper's fully
/// semi-explicit dictionary end to end.
#[derive(Debug)]
pub struct OneProbeStatic<G: NeighborFn = SeededExpander> {
    variant: VariantImpl,
    graph: G,
    n: usize,
    sigma_words: usize,
}

impl OneProbeStatic<SeededExpander> {
    /// Build the dictionary for `entries` (keys with equal-width
    /// satellite data) starting at `first_disk`, sampling a seeded
    /// expander from `params`. Case (a) uses `2d` disks, case (b)
    /// uses `d`.
    ///
    /// Returns the structure and the measured construction cost.
    pub fn build(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        params: &DictParams,
        variant: OneProbeVariant,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<(Self, ConstructStats), DictError> {
        // (n, ε)-expander with v = slack·n·d, i.e. slack·n per stripe.
        let n = entries.len().max(1);
        let stripe = ((params.right_slack * n as f64).ceil() as usize).max(4);
        let graph = SeededExpander::new(params.universe, stripe, params.degree, params.seed);
        Self::build_with_graph(disks, alloc, first_disk, params, variant, graph, entries)
    }
}

impl<G: NeighborFn> OneProbeStatic<G> {
    /// Build over a caller-supplied striped expander.
    ///
    /// The graph must be striped with `degree == params.degree`; its
    /// stripe size determines the field arrays' size.
    pub fn build_with_graph(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        params: &DictParams,
        variant: OneProbeVariant,
        graph: G,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<(Self, ConstructStats), DictError> {
        params.validate(disks.config(), matches!(variant, OneProbeVariant::CaseA))?;
        if !graph.is_striped() {
            return Err(DictError::UnsupportedParams(
                "the parallel disk model needs a striped expander (the parallel disk head \
                 model lifts this; see expander::TriviallyStriped)"
                    .into(),
            ));
        }
        if graph.degree() != params.degree {
            return Err(DictError::UnsupportedParams(format!(
                "graph degree {} does not match configured degree {}",
                graph.degree(),
                params.degree
            )));
        }
        let n = entries.len().max(1);
        let d = params.degree;
        let m = params.fields_per_key();
        let sigma_words = params.satellite_words;
        if entries.iter().any(|(_, s)| s.len() != sigma_words) {
            return Err(DictError::UnsupportedParams(
                "all satellites must have the configured width".into(),
            ));
        }
        let sigma_bits = sigma_words * WORD_BITS;
        let stripe = graph.stripe_size();

        match variant {
            OneProbeVariant::CaseB => {
                let enc = CaseB::new(n, sigma_bits, d);
                let fields =
                    FieldArray::create(disks, alloc, first_disk, d, stripe, enc.field_bits())?;
                let field_words = enc.field_bits().div_ceil(WORD_BITS);
                let stats = sorted_construct(
                    disks,
                    &graph,
                    &fields,
                    entries,
                    m,
                    field_words,
                    |_key, rank, stripes, satellite| {
                        (0..stripes.len())
                            .map(|t| (stripes[t], enc.encode(rank, satellite, t)))
                            .collect()
                    },
                )?;
                Ok((
                    OneProbeStatic {
                        variant: VariantImpl::B { fields, enc },
                        graph,
                        n: entries.len(),
                        sigma_words,
                    },
                    stats,
                ))
            }
            OneProbeVariant::CaseA => {
                let enc = Chain::new(sigma_bits, d);
                // Membership on disks [first, first+d): key -> head stripe.
                let mcfg =
                    BasicDictConfig::log_load(n, params.universe, d, 1, params.seed ^ 0xA11C_E55E);
                let membership = BasicDict::create(disks, alloc, first_disk, mcfg)?;
                if membership.blocks_per_bucket() != 1 {
                    return Err(DictError::UnsupportedParams(format!(
                        "case (a) requires B = Ω(log n): a bucket of {} slots must fit one \
                         block of {} words",
                        membership.config().bucket_slots,
                        disks.block_words()
                    )));
                }
                // Retrieval on disks [first+d, first+2d).
                let fields =
                    FieldArray::create(disks, alloc, first_disk + d, d, stripe, enc.field_bits)?;
                let field_words = enc.field_words();
                let mut heads: Vec<(u64, Vec<Word>)> = Vec::with_capacity(entries.len());
                let stats = sorted_construct(
                    disks,
                    &graph,
                    &fields,
                    entries,
                    m,
                    field_words,
                    |key, _rank, stripes, satellite| {
                        heads.push((key, vec![stripes[0] as Word]));
                        enc.encode(stripes, satellite)
                    },
                )?;
                let mut membership = membership;
                let mcost = membership.bulk_build(disks, &heads)?;
                let mut stats = stats;
                stats.cost = stats.cost.plus(mcost);
                Ok((
                    OneProbeStatic {
                        variant: VariantImpl::A {
                            membership,
                            fields,
                            enc,
                        },
                        graph,
                        n: entries.len(),
                        sigma_words,
                    },
                    stats,
                ))
            }
        }
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dictionary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Satellite width in words.
    #[must_use]
    pub fn satellite_words(&self) -> usize {
        self.sigma_words
    }

    /// Space usage in words.
    #[must_use]
    pub fn space_words(&self, disks: &DiskArray) -> usize {
        match &self.variant {
            VariantImpl::B { fields, .. } => fields.space_words(disks),
            VariantImpl::A {
                membership, fields, ..
            } => membership.space_words(disks) + fields.space_words(disks),
        }
    }

    /// One-probe lookup: a single batched parallel I/O.
    pub fn lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        let out = self.lookup_shared(disks, key);
        disks.charge_cost(out.cost);
        out
    }

    /// Batched lookup: every key's single probe is planned as one batch,
    /// so `m` lookups cost the per-disk maximum of *unique* blocks rather
    /// than `m` parallel I/Os — with independent keys and `D` disks the
    /// probes stripe across the array and the whole batch approaches
    /// `⌈m·d/D⌉` (or better, when keys share blocks).
    ///
    /// Results are byte-identical to calling [`Self::lookup`] per key.
    pub fn lookup_batch(
        &self,
        disks: &mut DiskArray,
        keys: &[u64],
    ) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let scope = disks.begin_op();
        let mut all: Vec<BlockAddr> = Vec::new();
        let mut meta = Vec::with_capacity(keys.len());
        for &key in keys {
            let positions: Vec<(usize, usize)> = self
                .graph
                .neighbors(key)
                .into_iter()
                .map(|y| self.graph.stripe_of(y))
                .collect();
            let start = all.len();
            let msplit = match &self.variant {
                VariantImpl::B { fields, .. } => {
                    all.extend(fields.probe_addrs(&positions));
                    0
                }
                VariantImpl::A {
                    membership, fields, ..
                } => {
                    let maddrs = membership.probe_addrs(key);
                    let msplit = maddrs.len();
                    all.extend(maddrs);
                    all.extend(fields.probe_addrs(&positions));
                    msplit
                }
            };
            meta.push((positions, start..all.len(), msplit));
        }
        let plan = BatchPlan::new(disks.disks(), &all);
        let reads = plan.execute_read(disks);
        let results = keys
            .iter()
            .zip(meta)
            .map(|(&key, (positions, range, msplit))| {
                let blocks = reads.gather(range);
                match &self.variant {
                    VariantImpl::B { fields, enc } => {
                        let raw = fields.extract(&positions, &blocks);
                        enc.decode(&raw).map(|(_, sat)| {
                            let mut s = sat;
                            s.truncate(self.sigma_words);
                            s.resize(self.sigma_words, 0);
                            s
                        })
                    }
                    VariantImpl::A {
                        membership,
                        fields,
                        enc,
                    } => {
                        let (mblocks, fblocks) = blocks.split_at(msplit);
                        membership.decode_find(key, mblocks).and_then(|payload| {
                            let head = payload[0] as usize;
                            let raw = fields.extract(&positions, fblocks);
                            enc.decode(head, &raw).map(|mut s| {
                                s.truncate(self.sigma_words);
                                s.resize(self.sigma_words, 0);
                                s
                            })
                        })
                    }
                }
            })
            .collect();
        (results, disks.end_op(scope))
    }

    /// One-probe lookup through a **shared** reference — the paper's
    /// concurrency property made literal: the structure is static, probe
    /// addresses are pure functions of the key, and no data ever moves,
    /// so any number of threads may call this simultaneously (see the
    /// `concurrent_reads` example). The returned cost is computed but not
    /// recorded in the array's counters.
    #[must_use]
    pub fn lookup_shared(&self, disks: &DiskArray, key: u64) -> LookupOutcome {
        let positions: Vec<(usize, usize)> = self
            .graph
            .neighbors(key)
            .into_iter()
            .map(|y| self.graph.stripe_of(y))
            .collect();
        match &self.variant {
            VariantImpl::B { fields, enc } => {
                let addrs = fields.probe_addrs(&positions);
                let (blocks, cost) = disks.read_batch_shared(&addrs);
                let raw = fields.extract(&positions, &blocks);
                let satellite = enc.decode(&raw).map(|(_, sat)| {
                    let mut s = sat;
                    s.truncate(self.sigma_words);
                    s.resize(self.sigma_words, 0);
                    s
                });
                LookupOutcome { satellite, cost }
            }
            VariantImpl::A {
                membership,
                fields,
                enc,
            } => {
                // One batch probes both halves: the membership buckets on
                // the first d disks, the fields on the second d disks.
                let maddrs = membership.probe_addrs(key);
                let faddrs = fields.probe_addrs(&positions);
                let msplit = maddrs.len();
                let mut all = maddrs;
                all.extend(faddrs);
                let (blocks, cost) = disks.read_batch_shared(&all);
                let (mblocks, fblocks) = blocks.split_at(msplit);
                let satellite = membership.decode_find(key, mblocks).and_then(|payload| {
                    let head = payload[0] as usize;
                    let raw = fields.extract(&positions, fblocks);
                    enc.decode(head, &raw).map(|mut s| {
                        s.truncate(self.sigma_words);
                        s.resize(self.sigma_words, 0);
                        s
                    })
                });
                LookupOutcome { satellite, cost }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::PdmConfig;

    fn entries(n: usize, sigma: usize) -> Vec<(u64, Vec<Word>)> {
        (0..n as u64)
            .map(|k| {
                let key = k.wrapping_mul(0x9E37_79B9).wrapping_add(7) % (1 << 30);
                (key, (0..sigma as u64).map(|i| key ^ (i << 32)).collect())
            })
            .collect()
    }

    fn params(n: usize, sigma: usize) -> DictParams {
        DictParams::new(n, 1 << 30, sigma)
            .with_degree(13)
            .with_seed(77)
    }

    fn build(
        variant: OneProbeVariant,
        n: usize,
        sigma: usize,
    ) -> (DiskArray, OneProbeStatic, ConstructStats) {
        let d = 13;
        let disks_needed = match variant {
            OneProbeVariant::CaseA => 2 * d,
            OneProbeVariant::CaseB => d,
        };
        let mut disks = DiskArray::new(PdmConfig::new(disks_needed, 64), 0);
        let mut alloc = DiskAllocator::new(disks_needed);
        let es = entries(n, sigma);
        let (dict, stats) =
            OneProbeStatic::build(&mut disks, &mut alloc, 0, &params(n, sigma), variant, &es)
                .unwrap();
        (disks, dict, stats)
    }

    #[test]
    fn case_b_lookups_are_one_io_and_correct() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseB, 150, 2);
        for (key, sat) in entries(150, 2) {
            let out = dict.lookup(&mut disks, key);
            assert_eq!(out.satellite, Some(sat), "key {key}");
            assert_eq!(out.cost.parallel_ios, 1, "one-probe violated");
        }
    }

    #[test]
    fn case_a_lookups_are_one_io_and_correct() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseA, 150, 3);
        for (key, sat) in entries(150, 3) {
            let out = dict.lookup(&mut disks, key);
            assert_eq!(out.satellite, Some(sat), "key {key}");
            assert_eq!(out.cost.parallel_ios, 1, "one-probe violated");
        }
    }

    #[test]
    fn case_a_misses_have_no_false_positives() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseA, 100, 1);
        let present: std::collections::HashSet<u64> =
            entries(100, 1).into_iter().map(|(k, _)| k).collect();
        for probe in 0..2000u64 {
            if !present.contains(&probe) {
                let out = dict.lookup(&mut disks, probe);
                assert!(out.satellite.is_none(), "false positive at {probe}");
                assert_eq!(out.cost.parallel_ios, 1);
            }
        }
    }

    #[test]
    fn case_b_misses_are_rejected_by_majority() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseB, 100, 1);
        let present: std::collections::HashSet<u64> =
            entries(100, 1).into_iter().map(|(k, _)| k).collect();
        let mut false_pos = 0;
        for probe in 0..2000u64 {
            if !present.contains(&probe) && dict.lookup(&mut disks, probe).found() {
                false_pos += 1;
            }
        }
        // Shared-neighbor bound makes a majority for an absent key
        // impossible when the graph has its parameters; the sampled graph
        // must match that here.
        assert_eq!(false_pos, 0, "{false_pos} false positives");
    }

    #[test]
    fn construction_cost_within_constant_of_sort_bound() {
        let n = 200;
        let d = 13;
        let (disks, _, stats) = build(OneProbeVariant::CaseB, n, 2);
        let bound = pdm::sort_io_bound(disks.config(), n * d, 2).max(1);
        let ratio = stats.cost.parallel_ios as f64 / bound as f64;
        assert!(
            ratio < 40.0,
            "construction {}, sort bound {bound}: ratio {ratio}",
            stats.cost.parallel_ios
        );
    }

    #[test]
    fn zero_sigma_membership_only() {
        let (mut disks, dict, _) = build(OneProbeVariant::CaseB, 80, 0);
        for (key, _) in entries(80, 0) {
            let out = dict.lookup(&mut disks, key);
            assert_eq!(out.satellite, Some(vec![]));
        }
    }

    #[test]
    fn case_a_rejects_tiny_blocks() {
        // B = 4 words cannot hold a log-load bucket: case (a) must refuse.
        let d = 13;
        let mut disks = DiskArray::new(PdmConfig::new(2 * d, 4), 0);
        let mut alloc = DiskAllocator::new(2 * d);
        let es = entries(200, 1);
        let err = OneProbeStatic::build(
            &mut disks,
            &mut alloc,
            0,
            &params(200, 1),
            OneProbeVariant::CaseA,
            &es,
        )
        .unwrap_err();
        assert!(err.to_string().contains("Ω(log n)"), "got: {err}");
    }

    #[test]
    fn mismatched_satellite_width_rejected() {
        let d = 13;
        let mut disks = DiskArray::new(PdmConfig::new(d, 64), 0);
        let mut alloc = DiskAllocator::new(d);
        let es = vec![(1u64, vec![1, 2]), (2u64, vec![3])];
        assert!(OneProbeStatic::build(
            &mut disks,
            &mut alloc,
            0,
            &params(2, 2),
            OneProbeVariant::CaseB,
            &es
        )
        .is_err());
    }
}
