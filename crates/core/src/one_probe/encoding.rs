//! Field formats of the one-probe dictionaries.
//!
//! Every key owns `m = ⌈2d/3⌉` fields among its `d` neighbors (Theorem 6
//! with `λ = 1/3`). Two formats pack its `σ`-bit record into them:
//!
//! * **Case (b)** (small blocks): each field is
//!   `[present:1][identifier:⌈lg n⌉][slot:⌈lg m⌉][chunk:⌈σ/(m−1)⌉]`. A
//!   lookup reads all `d` fields of `Γ(x)` and looks for an identifier
//!   "that appears in more than half of the fields"; since distinct keys
//!   share at most `ε·d < d/12` neighbors, only the owner can reach the
//!   `m > d/2` majority. The explicit slot index (the paper stores the
//!   chunks "in stripe order"; carrying the index instead costs `⌈lg m⌉`
//!   extra bits) makes the format *erasure-tolerant*: slot `m−1` holds the
//!   XOR parity of the `m−1` data chunks, so any single lost or corrupted
//!   field — a dead disk under Theorem 6's "one field per disk" layout —
//!   is identified by its missing slot and reconstructed from parity.
//! * **Case (a)** (blocks hold `Ω(log n)` keys): membership and the head
//!   pointer live in a Section 4.1 dictionary, and the fields carry only
//!   `[occupied:1][unary pointer][data…]`: the unary value is the stripe
//!   *delta* to the key's next field, `0` marks the tail, and the rest of
//!   the field is record data — "the fraction of an array field dedicated
//!   to pointer data will vary among fields".

use pdm::bits::{bits_for, BitReader, BitWriter};
use pdm::{Word, WORD_BITS};

/// Case (b) field format with per-field slot indexes and XOR parity.
///
/// The `m = ⌈2d/3⌉` fields of a key hold `m−1` data chunks (slots
/// `0..m−1`) and one parity chunk (slot `m−1`, the XOR of all data
/// chunks), except in the degenerate `m = 1` case where the single field
/// carries the whole record and there is no parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseB {
    /// Identifier width `⌈lg n⌉`.
    pub id_bits: usize,
    /// Slot-index width `⌈lg m⌉`.
    pub slot_bits: usize,
    /// Chunk width `⌈σ/(m−1)⌉` (or `σ` when `m = 1`).
    pub chunk_bits: usize,
    /// Fields per key `m = ⌈2d/3⌉`.
    pub fields_per_key: usize,
    /// Record size `σ` in bits.
    pub sigma_bits: usize,
    /// Graph degree `d`.
    pub degree: usize,
}

/// A parsed case (b) field header: the owning key's identifier and the
/// slot index of the chunk it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldHeader {
    /// The identifier (construction rank) of the owning key.
    pub id: u64,
    /// Which of the key's `m` slots this field holds.
    pub slot: usize,
}

impl CaseB {
    /// Format for `n` keys with `σ = sigma_bits` on a degree-`d` graph.
    #[must_use]
    pub fn new(n: usize, sigma_bits: usize, degree: usize) -> Self {
        let fields_per_key = expander::params::fields_per_key(degree);
        let data_chunks = (fields_per_key - 1).max(1);
        CaseB {
            id_bits: bits_for(n.max(2) as u64),
            slot_bits: bits_for(fields_per_key.max(2) as u64),
            chunk_bits: sigma_bits.div_ceil(data_chunks),
            fields_per_key,
            sigma_bits,
            degree,
        }
    }

    /// Number of data-carrying chunks (`m−1`, or `1` when `m = 1`).
    #[must_use]
    pub fn data_chunks(&self) -> usize {
        (self.fields_per_key - 1).max(1)
    }

    /// Whether the format has a parity slot (`m ≥ 2`).
    #[must_use]
    pub fn has_parity(&self) -> bool {
        self.fields_per_key >= 2
    }

    /// Total bits per field.
    #[must_use]
    pub fn field_bits(&self) -> usize {
        1 + self.id_bits + self.slot_bits + self.chunk_bits
    }

    /// Bit `b` of data chunk `t` of `satellite` (bits past `σ` read 0).
    fn data_bit(&self, satellite: &[Word], t: usize, b: usize) -> bool {
        let bit = t * self.chunk_bits + b;
        bit < self.sigma_bits && (satellite[bit / WORD_BITS] >> (bit % WORD_BITS)) & 1 == 1
    }

    /// Bit `b` of the chunk at slot `t`: a data chunk for `t < m−1`, the
    /// XOR parity of all data chunks for `t = m−1`.
    fn chunk_bit(&self, satellite: &[Word], t: usize, b: usize) -> bool {
        if self.has_parity() && t == self.fields_per_key - 1 {
            (0..self.data_chunks()).fold(false, |acc, c| acc ^ self.data_bit(satellite, c, b))
        } else {
            self.data_bit(satellite, t, b)
        }
    }

    /// Encode slot `t` of `satellite` for the key with identifier `id`.
    #[must_use]
    pub fn encode(&self, id: u64, satellite: &[Word], t: usize) -> Vec<Word> {
        debug_assert!(t < self.fields_per_key);
        let mut w = BitWriter::new();
        w.write_bit(true); // present
        w.write_bits(id, self.id_bits);
        w.write_bits(t as u64, self.slot_bits);
        for b in 0..self.chunk_bits {
            w.write_bit(self.chunk_bit(satellite, t, b));
        }
        let mut words = w.into_words();
        words.resize(self.field_bits().div_ceil(WORD_BITS), 0);
        words
    }

    /// Parse a field's header. `None` for an unoccupied field (present bit
    /// clear — which is how an erased, all-zero field parses) or a field
    /// claiming an out-of-range slot (only possible under corruption).
    #[must_use]
    pub fn parse_header(&self, field: &[Word]) -> Option<FieldHeader> {
        let mut r = BitReader::new(field);
        if !r.read_bit() {
            return None;
        }
        let id = r.read_bits(self.id_bits);
        let slot = r.read_bits(self.slot_bits) as usize;
        (slot < self.fields_per_key).then_some(FieldHeader { id, slot })
    }

    /// Decode a lookup from the `d` fields of `Γ(x)` — the healthy-read
    /// path, equivalent to [`decode_erasure`](CaseB::decode_erasure) with
    /// no erasures.
    #[must_use]
    pub fn decode(&self, fields: &[Vec<Word>]) -> Option<(u64, Vec<Word>)> {
        self.decode_erasure(fields, &vec![false; fields.len()])
    }

    /// Decode a lookup when some probed fields are *erasures* — reads the
    /// disk layer reported unhealthy (dead disk, checksum mismatch), whose
    /// content arrives sanitized to zero. `erased[i]` flags field `i`.
    ///
    /// The majority rule is adapted for `e` erasures: an identifier with
    /// `c` surviving fields wins iff `2c > d − e` (a majority of the
    /// *readable* fields) **and** `12c > d` (still above the `ε·d < d/12`
    /// overlap bound, so no impostor key can be promoted by erasing the
    /// owner's fields). With `e = 0` this is exactly the paper's
    /// `c > d/2` rule.
    ///
    /// Chunks are placed by their explicit slot index; a single missing
    /// data chunk is reconstructed from the parity slot. Returns `None`
    /// when no identifier wins or more chunks are missing than parity can
    /// repair (fail closed: never fabricate satellite bits).
    #[must_use]
    pub fn decode_erasure(&self, fields: &[Vec<Word>], erased: &[bool]) -> Option<(u64, Vec<Word>)> {
        self.decode_detail(fields, erased).map(|(id, sat, _)| (id, sat))
    }

    /// [`decode_erasure`](CaseB::decode_erasure) plus a `repaired` flag:
    /// `true` when any of the winner's fields was missing (erased, wiped,
    /// or claimed by corruption) and the record was completed from parity
    /// — i.e. the answer is correct but the stored fields need repair.
    #[must_use]
    pub fn decode_detail(
        &self,
        fields: &[Vec<Word>],
        erased: &[bool],
    ) -> Option<(u64, Vec<Word>, bool)> {
        debug_assert_eq!(fields.len(), self.degree);
        debug_assert_eq!(erased.len(), fields.len());
        let e = erased.iter().filter(|&&x| x).count();
        // Parse surviving headers.
        let parsed: Vec<Option<FieldHeader>> = fields
            .iter()
            .zip(erased)
            .map(|(f, &gone)| if gone { None } else { self.parse_header(f) })
            .collect();
        // Majority identifier among survivors.
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for h in parsed.iter().flatten() {
            *counts.entry(h.id).or_insert(0) += 1;
        }
        let (&winner, &count) = counts.iter().max_by_key(|&(_, &c)| c)?;
        if 2 * count <= self.degree - e || 12 * count <= self.degree {
            return None;
        }
        // Collect the winner's chunks by slot.
        let mut chunks: Vec<Option<&Vec<Word>>> = vec![None; self.fields_per_key];
        for (f, h) in fields.iter().zip(&parsed) {
            if let Some(h) = h {
                if h.id == winner && chunks[h.slot].is_none() {
                    chunks[h.slot] = Some(f);
                }
            }
        }
        let missing: Vec<usize> = (0..self.data_chunks())
            .filter(|&t| chunks[t].is_none())
            .collect();
        let parity_slot = self.fields_per_key - 1;
        if missing.len() > 1
            || (missing.len() == 1 && !self.has_parity())
            || (missing.len() == 1 && chunks[parity_slot].is_none())
        {
            return None; // beyond single-erasure repair: fail closed
        }
        let repaired = chunks.iter().any(Option::is_none);
        // Merge chunks into the record, reconstructing at most one from
        // parity (missing data bit = parity bit XOR all other data bits).
        let mut out = vec![0 as Word; self.sigma_bits.div_ceil(WORD_BITS).max(1)];
        let chunk_payload = |f: &Vec<Word>, b: usize| {
            let mut r = BitReader::new(f);
            r.seek(1 + self.id_bits + self.slot_bits + b);
            r.read_bit()
        };
        for t in 0..self.data_chunks() {
            for b in 0..self.chunk_bits {
                let bit = t * self.chunk_bits + b;
                if bit >= self.sigma_bits {
                    break;
                }
                let val = match chunks[t] {
                    Some(f) => chunk_payload(f, b),
                    None => (0..self.fields_per_key)
                        .filter(|&s| s != t)
                        .filter_map(|s| chunks[s])
                        .fold(false, |acc, f| acc ^ chunk_payload(f, b)),
                };
                if val {
                    out[bit / WORD_BITS] |= 1 << (bit % WORD_BITS);
                }
            }
        }
        if self.sigma_bits == 0 {
            out.clear();
        }
        Some((winner, out, repaired))
    }
}

/// Case (a) / dynamic field format: occupied bit, unary stripe-delta
/// chain, then data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chain {
    /// Total bits per field.
    pub field_bits: usize,
    /// Record size `σ` in bits.
    pub sigma_bits: usize,
    /// Fields per key `m = ⌈2d/3⌉`.
    pub fields_per_key: usize,
    /// Graph degree `d`.
    pub degree: usize,
}

impl Chain {
    /// Format for `σ = sigma_bits` on a degree-`d` graph.
    ///
    /// Field size is `max(⌈σ/m⌉, d+2) + 4` bits: large enough that any
    /// single field can hold its worst-case unary delta (`≤ d-1` bits plus
    /// terminator and occupied bit) and that the `m` fields jointly hold
    /// `σ` data bits beside all pointer bits (the paper's "less than 2d
    /// bits per element" of pointer data).
    #[must_use]
    pub fn new(sigma_bits: usize, degree: usize) -> Self {
        let fields_per_key = expander::params::fields_per_key(degree);
        let field_bits = sigma_bits.div_ceil(fields_per_key).max(degree + 2) + 4;
        Chain {
            field_bits,
            sigma_bits,
            fields_per_key,
            degree,
        }
    }

    /// Words needed to hold one field.
    #[must_use]
    pub fn field_words(&self) -> usize {
        self.field_bits.div_ceil(WORD_BITS)
    }

    /// Encode the record into the fields at `stripes` (strictly
    /// increasing, length `m`). Returns `(stripe, field bits)` pairs.
    ///
    /// # Panics
    /// Panics if `stripes` is not strictly increasing, has the wrong
    /// length, or the data does not fit (impossible for parameters built
    /// by [`Chain::new`] — enforced by a debug assertion).
    #[must_use]
    pub fn encode(&self, stripes: &[usize], satellite: &[Word]) -> Vec<(usize, Vec<Word>)> {
        assert_eq!(stripes.len(), self.fields_per_key, "need m fields");
        assert!(
            stripes.windows(2).all(|w| w[0] < w[1]),
            "stripes must be strictly increasing"
        );
        assert!(*stripes.last().expect("non-empty") < self.degree);
        let mut out = Vec::with_capacity(stripes.len());
        let mut bit_cursor = 0usize;
        for (t, &stripe) in stripes.iter().enumerate() {
            let delta = if t + 1 < stripes.len() {
                stripes[t + 1] - stripes[t]
            } else {
                0
            };
            let mut w = BitWriter::new();
            w.write_bit(true); // occupied
            w.write_unary(delta as u64);
            let data_bits = self.field_bits - w.len_bits();
            for _ in 0..data_bits {
                let val = if bit_cursor < self.sigma_bits {
                    (satellite[bit_cursor / WORD_BITS] >> (bit_cursor % WORD_BITS)) & 1 == 1
                } else {
                    false
                };
                w.write_bit(val);
                bit_cursor += 1;
            }
            let mut words = w.into_words();
            words.resize(self.field_words(), 0);
            out.push((stripe, words));
        }
        debug_assert!(
            bit_cursor >= self.sigma_bits,
            "field capacity miscomputed: wrote {bit_cursor} of {} bits",
            self.sigma_bits
        );
        out
    }

    /// Whether a raw field is occupied.
    #[must_use]
    pub fn is_occupied(&self, field: &[Word]) -> bool {
        field[0] & 1 == 1
    }

    /// Decode a chain starting at `head_stripe`, given all `d` fields of
    /// `Γ(x)` indexed by stripe. Returns `None` on a malformed chain
    /// (e.g. an unoccupied link — the key was never stored here).
    #[must_use]
    pub fn decode(&self, head_stripe: usize, fields_by_stripe: &[Vec<Word>]) -> Option<Vec<Word>> {
        debug_assert_eq!(fields_by_stripe.len(), self.degree);
        let mut out = vec![0 as Word; self.sigma_bits.div_ceil(WORD_BITS).max(1)];
        let mut bit_cursor = 0usize;
        let mut stripe = head_stripe;
        for _hop in 0..self.fields_per_key {
            if stripe >= self.degree {
                return None;
            }
            let f = &fields_by_stripe[stripe];
            let mut r = BitReader::new(f);
            if !r.read_bit() {
                return None; // unoccupied link: not a valid chain
            }
            let delta = r.read_unary() as usize;
            let data_bits = self.field_bits - r.position();
            for _ in 0..data_bits {
                let bit = r.read_bit();
                if bit_cursor < self.sigma_bits {
                    if bit {
                        out[bit_cursor / WORD_BITS] |= 1 << (bit_cursor % WORD_BITS);
                    }
                    bit_cursor += 1;
                }
            }
            if delta == 0 {
                break;
            }
            stripe += delta;
        }
        if bit_cursor < self.sigma_bits {
            return None; // chain ended early
        }
        if self.sigma_bits == 0 {
            out.clear();
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat(words: usize, seed: u64) -> Vec<Word> {
        (0..words)
            .map(|i| expander::mix::mix64(seed.wrapping_add(i as u64)))
            .collect()
    }

    #[test]
    fn case_b_roundtrip() {
        let enc = CaseB::new(1000, 256, 15); // m = 10, chunks of 26 bits
        let satellite = sat(4, 7);
        // Simulate: key owns fields at stripes {0,1,2,4,5,7,8,10,12,14}.
        let owner_stripes = [0usize, 1, 2, 4, 5, 7, 8, 10, 12, 14];
        let mut fields = vec![vec![0; enc.field_bits().div_ceil(WORD_BITS)]; 15];
        for (t, &s) in owner_stripes.iter().enumerate() {
            fields[s] = enc.encode(123, &satellite, t);
        }
        // Unrelated keys occupy two other stripes.
        fields[3] = enc.encode(77, &sat(4, 9), 0);
        fields[6] = enc.encode(78, &sat(4, 10), 1);
        let (id, got) = enc.decode(&fields).expect("majority must be found");
        assert_eq!(id, 123);
        assert_eq!(got, satellite);
    }

    #[test]
    fn case_b_no_false_positive_without_majority() {
        let enc = CaseB::new(1000, 64, 15);
        let mut fields = vec![vec![0; enc.field_bits().div_ceil(WORD_BITS)]; 15];
        // Seven fields of id 5 (not a majority of 15), rest empty.
        for (t, f) in fields.iter_mut().enumerate().take(7) {
            *f = enc.encode(5, &sat(1, 3), t % enc.fields_per_key);
        }
        assert!(enc.decode(&fields).is_none());
    }

    #[test]
    fn case_b_zero_sigma() {
        let enc = CaseB::new(16, 0, 15);
        let mut fields = vec![vec![0; 1]; 15];
        for (t, &s) in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9].iter().enumerate() {
            fields[s] = enc.encode(3, &[], t);
        }
        let (id, got) = enc.decode(&fields).unwrap();
        assert_eq!(id, 3);
        assert!(got.is_empty());
    }

    #[test]
    fn case_b_single_erasure_recovers_exact_record() {
        let enc = CaseB::new(1000, 256, 15); // m = 10, 9 data chunks + parity
        let satellite = sat(4, 7);
        let owner_stripes = [0usize, 1, 2, 4, 5, 7, 8, 10, 12, 14];
        let base: Vec<Vec<Word>> = {
            let mut fields = vec![vec![0; enc.field_bits().div_ceil(WORD_BITS)]; 15];
            for (t, &s) in owner_stripes.iter().enumerate() {
                fields[s] = enc.encode(123, &satellite, t);
            }
            fields
        };
        // Erase each owner field in turn — including the parity field —
        // and require the exact record back every time.
        for &s in &owner_stripes {
            let mut fields = base.clone();
            fields[s] = vec![0; fields[s].len()]; // sanitized read
            let mut erased = vec![false; 15];
            erased[s] = true;
            let (id, got) = enc
                .decode_erasure(&fields, &erased)
                .expect("single erasure must be repairable");
            assert_eq!(id, 123);
            assert_eq!(got, satellite, "erasing stripe {s} corrupted the record");
        }
    }

    #[test]
    fn case_b_zeroed_field_without_erasure_flag_still_recovers() {
        // A wiped field parses as absent (present bit 0) even when the
        // caller has no health information — the explicit slot index
        // identifies the missing chunk and parity fills it in.
        let enc = CaseB::new(1000, 128, 15);
        let satellite = sat(2, 11);
        let owner_stripes = [0usize, 1, 2, 4, 5, 7, 8, 10, 12, 14];
        let mut fields = vec![vec![0; enc.field_bits().div_ceil(WORD_BITS)]; 15];
        for (t, &s) in owner_stripes.iter().enumerate() {
            fields[s] = enc.encode(9, &satellite, t);
        }
        fields[4] = vec![0; fields[4].len()]; // silently lost data chunk
        let (id, got) = enc.decode(&fields).expect("parity covers one loss");
        assert_eq!(id, 9);
        assert_eq!(got, satellite);
    }

    #[test]
    fn case_b_two_missing_chunks_fail_closed() {
        let enc = CaseB::new(1000, 128, 15);
        let satellite = sat(2, 5);
        let owner_stripes = [0usize, 1, 2, 4, 5, 7, 8, 10, 12, 14];
        let mut fields = vec![vec![0; enc.field_bits().div_ceil(WORD_BITS)]; 15];
        for (t, &s) in owner_stripes.iter().enumerate() {
            fields[s] = enc.encode(9, &satellite, t);
        }
        fields[1] = vec![0; fields[1].len()];
        fields[4] = vec![0; fields[4].len()];
        // Two data chunks gone: majority still holds (8 of 15) but the
        // value is unrecoverable — must return None, never garbage.
        assert!(enc.decode(&fields).is_none());
    }

    #[test]
    fn case_b_erasures_cannot_promote_an_impostor() {
        let enc = CaseB::new(1000, 64, 15);
        let mut fields = vec![vec![0; enc.field_bits().div_ceil(WORD_BITS)]; 15];
        // An impostor with a single shared field (the ε·d overlap bound);
        // 14 of 15 reads erased, so 2c > d − e would hold for c = 1.
        fields[0] = enc.encode(55, &sat(1, 1), 0);
        let erased: Vec<bool> = (0..15).map(|i| i != 0).collect();
        assert!(
            enc.decode_erasure(&fields, &erased).is_none(),
            "12c > d guard must reject a 1-field impostor"
        );
    }

    #[test]
    fn case_b_header_parses_slot_and_rejects_out_of_range() {
        let enc = CaseB::new(1000, 64, 15);
        let f = enc.encode(42, &sat(1, 2), 3);
        let h = enc.parse_header(&f).unwrap();
        assert_eq!(h.id, 42);
        assert_eq!(h.slot, 3);
        assert!(enc.parse_header(&vec![0; f.len()]).is_none());
        // Forge a field with slot = m (out of range).
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(42, enc.id_bits);
        w.write_bits(enc.fields_per_key as u64, enc.slot_bits);
        for _ in 0..enc.chunk_bits {
            w.write_bit(false);
        }
        let mut forged = w.into_words();
        forged.resize(enc.field_bits().div_ceil(WORD_BITS), 0);
        assert!(enc.parse_header(&forged).is_none());
    }

    #[test]
    fn chain_roundtrip() {
        let enc = Chain::new(300, 13); // m = 9
        let satellite = sat(5, 42);
        let stripes = [0usize, 1, 3, 4, 6, 8, 9, 11, 12];
        let encoded = enc.encode(&stripes, &satellite);
        let mut fields = vec![vec![0; enc.field_words()]; 13];
        for (s, bits) in &encoded {
            fields[*s] = bits.clone();
        }
        let got = enc.decode(0, &fields).expect("chain decodes");
        // Compare only the σ bits.
        for bit in 0..300 {
            assert_eq!(
                (got[bit / 64] >> (bit % 64)) & 1,
                (satellite[bit / 64] >> (bit % 64)) & 1,
                "bit {bit} differs"
            );
        }
    }

    #[test]
    fn chain_head_at_nonzero_stripe() {
        let enc = Chain::new(64, 13);
        let satellite = sat(1, 1);
        let stripes: Vec<usize> = (4..13).collect(); // m = 9 fields
        let encoded = enc.encode(&stripes, &satellite);
        let mut fields = vec![vec![0; enc.field_words()]; 13];
        for (s, bits) in &encoded {
            fields[*s] = bits.clone();
        }
        let got = enc.decode(4, &fields).unwrap();
        assert_eq!(got[0], satellite[0]);
    }

    #[test]
    fn chain_decode_rejects_unoccupied_head() {
        let enc = Chain::new(64, 13);
        let fields = vec![vec![0; enc.field_words()]; 13];
        assert!(enc.decode(0, &fields).is_none());
    }

    #[test]
    fn chain_occupancy_flag() {
        let enc = Chain::new(64, 13);
        let stripes: Vec<usize> = (0..9).collect();
        let encoded = enc.encode(&stripes, &sat(1, 2));
        assert!(enc.is_occupied(&encoded[0].1));
        assert!(!enc.is_occupied(&vec![0; enc.field_words()]));
    }

    #[test]
    fn chain_field_big_enough_for_worst_delta() {
        for d in [13usize, 16, 24, 48] {
            for sigma in [0usize, 1, 64, 1000] {
                let enc = Chain::new(sigma, d);
                // Worst chain: first and last stripes, delta d-1 in one hop
                // is impossible with m ≥ 2 hops, but delta up to
                // d - m + 1 happens; the field must hold occupied bit +
                // d bits of unary in the worst case.
                assert!(
                    enc.field_bits >= d + 2,
                    "d = {d}, σ = {sigma}: field {} bits too small",
                    enc.field_bits
                );
            }
        }
    }

    #[test]
    fn chain_total_capacity_covers_sigma() {
        for d in [13usize, 21, 33] {
            for sigma in [1usize, 100, 777, 4096] {
                let enc = Chain::new(sigma, d);
                let m = enc.fields_per_key;
                // Worst-case pointer bits: deltas sum ≤ d-1, m terminators,
                // m occupied bits.
                let overhead = (d - 1) + 2 * m;
                assert!(
                    m * enc.field_bits >= sigma + overhead,
                    "d = {d}, σ = {sigma}: capacity short"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn chain_rejects_unsorted_stripes() {
        let enc = Chain::new(64, 13);
        let mut stripes: Vec<usize> = (0..9).collect();
        stripes.swap(0, 1);
        let _ = enc.encode(&stripes, &sat(1, 0));
    }
}
