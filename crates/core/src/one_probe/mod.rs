//! The Section 4.2 one-probe static dictionary (Theorem 6) and its
//! machinery.
//!
//! * [`encoding`] — the two field formats: case (b)'s
//!   identifier-plus-chunk fields decoded by majority, and case (a)'s
//!   unary-coded relative-pointer chains ("the differences are stored in
//!   unary format, and a 0-bit separates this pointer data from the
//!   record data. The tail field just starts with a 0-bit.").
//! * [`construct`] — the unique-neighbor assignment: both the simple
//!   recursive `O(n)`-I/O peeling and the paper's *improved* sort-based
//!   construction running entirely through I/O-accounted external sorts.
//! * [`static_dict`] — [`OneProbeStatic`], tying it together: one
//!   parallel I/O per lookup, construction cost `O(sort(n·d))`.

pub mod construct;
pub mod encoding;
pub mod head_model;
pub mod static_dict;

pub use head_model::HeadModelOneProbe;
pub use static_dict::{OneProbeStatic, OneProbeVariant};
