//! The parallel disk *head* model variant of the one-probe dictionary.
//!
//! Section 5's closing remark: "Like all mentioned explicit expander
//! constructions, our construction does not yield a striped expander. If
//! we implement the described dictionaries in the parallel disk head
//! model, we do not need the striped property. To get an algorithm for
//! the parallel disk model we may stripe an expander in a trivial manner
//! ... This incurs a factor d increase in the size of the right part of
//! the expander, and hence a factor d larger external memory space usage."
//!
//! [`HeadModelOneProbe`] is that first option: a Theorem 6(b) dictionary
//! over an **unstriped** expander, with fields laid out flat across the
//! `D` heads. In the head model any `d ≤ D` blocks cost one parallel I/O
//! wherever they sit, so lookups stay one probe — and the factor-`d`
//! striping overhead disappears. The SEC5b experiment quantifies the
//! space difference against the striped PDM build.

use crate::config::DictParams;
use crate::layout::{DiskAllocator, Region};
use crate::one_probe::encoding::CaseB;
use crate::traits::{DictError, LookupOutcome};
use expander::NeighborFn;
use pdm::bits::{copy_bits, extract_bits};
use pdm::{BlockAddr, DiskArray, Model, ReadOptions, Word, WORD_BITS};

/// Flat (unstriped) field storage: field `y` lives in global block
/// `y / fields_per_block`, placed round-robin across the disks.
#[derive(Debug)]
struct FlatFields {
    region: Region,
    field_bits: usize,
    fields_per_block: usize,
    num_fields: usize,
}

impl FlatFields {
    fn create(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        width: usize,
        num_fields: usize,
        field_bits: usize,
    ) -> Result<Self, DictError> {
        let block_bits = disks.block_words() * WORD_BITS;
        if field_bits == 0 || field_bits > block_bits {
            return Err(DictError::UnsupportedParams(format!(
                "field of {field_bits} bits cannot fit a block of {block_bits} bits"
            )));
        }
        let fields_per_block = block_bits / field_bits;
        let blocks = num_fields.div_ceil(fields_per_block);
        let blocks_per_disk = blocks.div_ceil(width);
        let region = alloc.alloc(disks, first_disk, width, blocks_per_disk);
        Ok(FlatFields {
            region,
            field_bits,
            fields_per_block,
            num_fields,
        })
    }

    fn addr_of(&self, y: usize) -> BlockAddr {
        debug_assert!(y < self.num_fields);
        let g = y / self.fields_per_block;
        self.region
            .addr(g % self.region.disks, g / self.region.disks)
    }

    fn bit_offset(&self, y: usize) -> usize {
        (y % self.fields_per_block) * self.field_bits
    }

    fn space_words(&self, disks: &DiskArray) -> usize {
        self.region.total_blocks() * disks.block_words()
    }
}

/// Theorem 6(b) over an unstriped expander in the parallel disk head
/// model.
#[derive(Debug)]
pub struct HeadModelOneProbe<G: NeighborFn> {
    graph: G,
    fields: FlatFields,
    enc: CaseB,
    n: usize,
    sigma_words: usize,
}

impl<G: NeighborFn> HeadModelOneProbe<G> {
    /// Build over `graph` (striped or not) on a disk array that **must**
    /// use [`Model::ParallelDiskHead`] with `D ≥ d` heads.
    ///
    /// Construction uses the recursive unique-neighbor assignment
    /// (Lemmas 4–5) computed in memory; the I/O-accounted sort-based
    /// construction is exercised by the striped variant, and this model's
    /// point is lookup cost and space, which are reported exactly.
    pub fn build(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        first_disk: usize,
        params: &DictParams,
        graph: G,
        entries: &[(u64, Vec<Word>)],
    ) -> Result<Self, DictError> {
        if disks.config().model != Model::ParallelDiskHead {
            return Err(DictError::UnsupportedParams(
                "unstriped one-probe dictionaries need the parallel disk head model; use \
                 OneProbeStatic with a striped expander for the parallel disk model"
                    .into(),
            ));
        }
        if disks.config().disks < graph.degree() {
            return Err(DictError::UnsupportedParams(format!(
                "need D ≥ d = {} heads, have {}",
                graph.degree(),
                disks.config().disks
            )));
        }
        let n = entries.len().max(1);
        let sigma_words = params.satellite_words;
        if entries.iter().any(|(_, s)| s.len() != sigma_words) {
            return Err(DictError::UnsupportedParams(
                "all satellites must have the configured width".into(),
            ));
        }
        let m = expander::params::fields_per_key(graph.degree());
        let enc = CaseB::new(n, sigma_words * WORD_BITS, graph.degree());
        let width = disks.config().disks - first_disk;
        let fields = FlatFields::create(
            disks,
            alloc,
            first_disk,
            width,
            graph.right_size(),
            enc.field_bits(),
        )?;

        // Rank assignment (case (b) identifiers) by sorted key order.
        let mut keys: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        let rank_of = |key: u64| keys.binary_search(&key).expect("present") as u64;
        let by_key: std::collections::HashMap<u64, &Vec<Word>> =
            entries.iter().map(|(k, s)| (*k, s)).collect();

        // Unique-neighbor peeling over the raw (unstriped) graph.
        let rounds = expander::unique::peel(&graph, &keys, m)
            .map_err(|e| DictError::ExpansionFailure(e.to_string()))?;
        for round in &rounds {
            for a in round {
                let satellite = by_key[&a.key];
                let rank = rank_of(a.key);
                for (t, &y) in a.fields.iter().enumerate() {
                    let bits = enc.encode(rank, satellite, t);
                    let addr = fields.addr_of(y);
                    let mut block = disks.read_block(addr);
                    copy_bits(&mut block, fields.bit_offset(y), &bits, 0, enc.field_bits());
                    disks.write_block(addr, &block);
                }
            }
        }
        Ok(HeadModelOneProbe {
            graph,
            fields,
            enc,
            n: entries.len(),
            sigma_words,
        })
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Space in words — compare with the striped build's factor-`d` more.
    #[must_use]
    pub fn space_words(&self, disks: &DiskArray) -> usize {
        self.fields.space_words(disks)
    }

    /// One-probe lookup: `d` blocks anywhere cost `⌈d/D⌉` head-model
    /// parallel I/Os — 1 when `D ≥ d`.
    pub fn lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        let scope = disks.begin_op();
        // Canonical (ascending) field order: the construction assigns
        // chunk t to the t-th *smallest* assigned vertex, and without
        // stripes the edge order is arbitrary, so sort before decoding.
        let mut ys = self.graph.neighbors(key);
        ys.sort_unstable();
        let addrs: Vec<BlockAddr> = ys.iter().map(|&y| self.fields.addr_of(y)).collect();
        let blocks = disks.read(&addrs, ReadOptions::default()).into_blocks();
        let raw: Vec<Vec<Word>> = ys
            .iter()
            .zip(&blocks)
            .map(|(&y, b)| extract_bits(b, self.fields.bit_offset(y), self.enc.field_bits()))
            .collect();
        let satellite = self.enc.decode(&raw).map(|(_, mut s)| {
            s.truncate(self.sigma_words);
            s.resize(self.sigma_words, 0);
            s
        });
        LookupOutcome::new(satellite, disks.end_op(scope))
    }

    /// Cost-only accessor used by experiments: the lookup's worst case is
    /// `⌈d / D⌉` by the head-model batch rule.
    #[must_use]
    pub fn lookup_bound(&self, disks: &DiskArray) -> u64 {
        (self.graph.degree() as u64).div_ceil(disks.config().disks as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expander::semi_explicit::{SemiExplicitConfig, SemiExplicitExpander};
    use expander::SeededExpander;
    use pdm::PdmConfig;

    fn entries(n: usize, sigma: usize, universe: u64) -> Vec<(u64, Vec<Word>)> {
        (0..n as u64)
            .map(|i| {
                let k = i.wrapping_mul(0x9E37_79B9) % universe;
                (k, vec![k; sigma])
            })
            .collect()
    }

    #[test]
    fn rejects_parallel_disk_model() {
        let mut disks = DiskArray::new(PdmConfig::new(16, 64), 0);
        let mut alloc = DiskAllocator::new(16);
        let g = SeededExpander::new(1 << 24, 1024, 13, 1);
        let params = DictParams::new(10, 1 << 24, 1).with_degree(13);
        let err = HeadModelOneProbe::build(
            &mut disks,
            &mut alloc,
            0,
            &params,
            g,
            &entries(10, 1, 1 << 24),
        )
        .unwrap_err();
        assert!(err.to_string().contains("head model"), "{err}");
    }

    #[test]
    fn one_probe_lookups_over_unstriped_semi_explicit_graph() {
        // The §5 end state: semi-explicit expander, NO striping, head model.
        let semi = SemiExplicitExpander::build(SemiExplicitConfig {
            universe: 1 << 20,
            capacity: 200,
            beta: 0.5,
            epsilon: 1.0 / 12.0,
            seed: 0x8EAD,
            stage_degree_cap: 6,
        })
        .unwrap();
        let d = semi.degree();
        let cfg = PdmConfig::new(d, 64).with_model(Model::ParallelDiskHead);
        let mut disks = DiskArray::new(cfg, 0);
        let mut alloc = DiskAllocator::new(d);
        let es = entries(200, 2, 1 << 20);
        let params = DictParams::new(200, 1 << 20, 2).with_degree(d);
        let dict = HeadModelOneProbe::build(&mut disks, &mut alloc, 0, &params, semi, &es).unwrap();
        assert_eq!(dict.lookup_bound(&disks), 1);
        for (k, s) in &es {
            let out = dict.lookup(&mut disks, *k);
            assert_eq!(out.satellite.as_ref(), Some(s), "key {k}");
            assert_eq!(out.cost.parallel_ios, 1, "head-model one-probe violated");
        }
        // Misses are refused by the majority rule.
        let present: std::collections::HashSet<u64> = es.iter().map(|&(k, _)| k).collect();
        for probe in (0..(1u64 << 20)).step_by(2049) {
            if !present.contains(&probe) {
                assert!(
                    !dict.lookup(&mut disks, probe).found(),
                    "false positive {probe}"
                );
            }
        }
    }

    #[test]
    fn unstriped_build_saves_factor_d_space() {
        // Same graph, striped vs flat: the striped build's field array is
        // ~d× larger (the §5 trade).
        let semi = SemiExplicitExpander::build(SemiExplicitConfig {
            universe: 1 << 20,
            capacity: 128,
            beta: 0.5,
            epsilon: 1.0 / 12.0,
            seed: 0x8EAE,
            stage_degree_cap: 6,
        })
        .unwrap();
        let d = semi.degree();
        let v_unstriped = semi.right_size();
        let striped = expander::TriviallyStriped::new(semi.clone());
        assert_eq!(striped.right_size(), v_unstriped * d);

        let cfg = PdmConfig::new(d, 64).with_model(Model::ParallelDiskHead);
        let mut disks = DiskArray::new(cfg, 0);
        let mut alloc = DiskAllocator::new(d);
        let es = entries(128, 1, 1 << 20);
        let params = DictParams::new(128, 1 << 20, 1).with_degree(d);
        let flat = HeadModelOneProbe::build(&mut disks, &mut alloc, 0, &params, semi, &es).unwrap();

        let mut disks2 = DiskArray::new(PdmConfig::new(d, 64), 0);
        let mut alloc2 = DiskAllocator::new(d);
        let (striped_dict, _) = crate::one_probe::OneProbeStatic::build_with_graph(
            &mut disks2,
            &mut alloc2,
            0,
            &params,
            crate::one_probe::OneProbeVariant::CaseB,
            striped,
            &es,
        )
        .unwrap();
        let flat_space = flat.space_words(&disks);
        let striped_space = striped_dict.space_words(&disks2);
        assert!(
            striped_space >= flat_space * (d / 2),
            "striping should cost ~d× space: flat {flat_space}, striped {striped_space}, d {d}"
        );
    }

    #[test]
    fn works_with_plain_seeded_graph_too() {
        let g = SeededExpander::new(1 << 24, 8 * 150, 13, 0x8EAF);
        let cfg = PdmConfig::new(13, 64).with_model(Model::ParallelDiskHead);
        let mut disks = DiskArray::new(cfg, 0);
        let mut alloc = DiskAllocator::new(13);
        let es = entries(150, 1, 1 << 24);
        let params = DictParams::new(150, 1 << 24, 1).with_degree(13);
        let dict = HeadModelOneProbe::build(&mut disks, &mut alloc, 0, &params, g, &es).unwrap();
        for (k, s) in &es {
            assert_eq!(dict.lookup(&mut disks, *k).satellite.as_ref(), Some(s));
        }
    }
}
