//! Unique-neighbor assignment: the `O(n)`-I/O recursive peeling and the
//! paper's *improved* sort-based construction.
//!
//! The improved construction (Theorem 6, "Improving the construction")
//! works in rounds over the not-yet-assigned records:
//!
//! 1. emit all pairs `(y, x)` for `x` in the current set, `y ∈ Γ(x)`,
//! 2. sort by `y` and keep the runs of length one — the *unique
//!    neighbors* `Φ(S)`, each paired with its only left neighbor,
//! 3. sort those by `x` and keep the keys with at least `m = ⌈2d/3⌉`
//!    unique neighbors (`S'` of Lemma 5, `λ = 1/3`),
//! 4. merge-join `S'` with the (key-sorted) record array to attach
//!    satellite data, emitting `(field index, field contents)` pairs into
//!    a global array `B`,
//! 5. recurse on `S ∖ S'` — geometrically smaller by Lemma 5, so the
//!    total cost telescopes,
//! 6. finally sort `B` by field index and fill the array `A` streaming.
//!
//! Every step is an external sort or a streamed scan on
//! [`pdm::RecordFile`]s, so the measured parallel-I/O cost is the real
//! thing the THM6 experiment compares against `sort(n·d)`.

use crate::fields::FieldArray;
use crate::traits::DictError;
use expander::NeighborFn;
use pdm::{external_sort, DiskArray, KeyedRecord, OpCost, RecordFile, RecordLayout, Word, WriteOptions};

/// Statistics from a sorted construction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructStats {
    /// Peeling rounds executed.
    pub rounds: usize,
    /// Total parallel-I/O cost (everything after the input file existed).
    pub cost: OpCost,
    /// Number of field writes emitted into `B`.
    pub fields_written: usize,
}

/// In-memory reference assignment (no I/O accounting): thin wrapper over
/// the `expander` crate's peeling. Used for cross-checks and tests.
pub fn in_memory_assign<G: NeighborFn>(
    graph: &G,
    keys: &[u64],
    fields_per_key: usize,
) -> Result<std::collections::HashMap<u64, Vec<usize>>, DictError> {
    let rounds = expander::unique::peel(graph, keys, fields_per_key)
        .map_err(|e| DictError::ExpansionFailure(e.to_string()))?;
    Ok(expander::unique::assignments_by_key(&rounds))
}

/// The sort-based construction. `encode(key, rank, stripes, satellite)`
/// produces the `(stripe, field-bits)` pairs to store for one key, where
/// `rank` is the key's index in the sorted key order (the case (b)
/// identifier) and `stripes` are the key's `m` assigned stripes in
/// increasing order.
///
/// Field contents are written into `fields`; the caller's closure can
/// additionally capture per-key metadata (e.g. the case (a) head
/// pointers).
pub fn sorted_construct<G: NeighborFn, F>(
    disks: &mut DiskArray,
    graph: &G,
    fields: &FieldArray,
    entries: &[(u64, Vec<Word>)],
    fields_per_key: usize,
    field_words: usize,
    mut encode: F,
) -> Result<ConstructStats, DictError>
where
    F: FnMut(u64, u64, &[usize], &[Word]) -> Vec<(usize, Vec<Word>)>,
{
    let n = entries.len();
    let sigma_words = entries.first().map_or(0, |(_, s)| s.len());
    if entries.iter().any(|(_, s)| s.len() != sigma_words) {
        return Err(DictError::UnsupportedParams(
            "all records must have equal satellite width".into(),
        ));
    }

    // The input array of records, as Theorem 6 assumes it is given
    // ("an array of records split across the disks").
    let rec_layout = RecordLayout::keyed(sigma_words);
    let mut input = RecordFile::allocate_at_end(disks, rec_layout, n);
    input.write_all(
        disks,
        &entries
            .iter()
            .map(|(k, s)| KeyedRecord::new(*k, s.clone()))
            .collect::<Vec<_>>(),
    );

    let scope = disks.begin_op();

    // Sort the input by key; ranks (case (b) identifiers) are the sorted
    // positions. Carry the rank with each record: (key, [rank, satellite…]).
    let sorted = external_sort(disks, &input).output;
    let ranked_layout = RecordLayout::keyed(1 + sigma_words);
    let mut current = RecordFile::allocate_at_end(disks, ranked_layout, n);
    {
        let mut reader = sorted.reader();
        let mut writer = current.writer();
        let mut rank = 0u64;
        let mut prev: Option<u64> = None;
        while let Some(r) = reader.next(disks) {
            if prev == Some(r.key) {
                return Err(DictError::DuplicateKey(r.key));
            }
            prev = Some(r.key);
            let mut sat = Vec::with_capacity(1 + sigma_words);
            sat.push(rank);
            sat.extend_from_slice(&r.satellite);
            writer.push(disks, &KeyedRecord::new(r.key, sat));
            rank += 1;
        }
        current = writer.finish(disks);
    }

    // Global output array B: (fill-order key, field words).
    let b_layout = RecordLayout::keyed(field_words);
    let b_capacity = n * fields_per_key;
    let mut b_file = RecordFile::allocate_at_end(disks, b_layout, b_capacity);
    let mut b_writer = b_file.writer();
    let mut fields_written = 0usize;

    let mut rounds = 0usize;
    while !current.is_empty() {
        rounds += 1;
        if rounds > 64 {
            return Err(DictError::ExpansionFailure(format!(
                "peeling failed to converge after {rounds} rounds ({} keys left)",
                current.len()
            )));
        }
        let cur_n = current.len();

        // (1) pairs (y, x).
        let pair_layout = RecordLayout::keyed(1);
        let mut pairs = RecordFile::allocate_at_end(disks, pair_layout, cur_n * graph.degree());
        {
            let mut reader = current.reader();
            let mut writer = pairs.writer();
            while let Some(r) = reader.next(disks) {
                for y in graph.neighbors(r.key) {
                    writer.push(disks, &KeyedRecord::new(y as u64, vec![r.key]));
                }
            }
            pairs = writer.finish(disks);
        }

        // (2) sort by y; keep singleton runs -> (x, y).
        let pairs_sorted = external_sort(disks, &pairs).output;
        let mut uniques = RecordFile::allocate_at_end(disks, pair_layout, pairs_sorted.len());
        {
            let mut reader = pairs_sorted.reader();
            let mut writer = uniques.writer();
            let mut run: Option<(u64, u64, usize)> = None; // (y, x, count)
            let flush = |w: &mut pdm::file::RecordFileWriter,
                         d: &mut DiskArray,
                         run: &Option<(u64, u64, usize)>| {
                if let Some((y, x, 1)) = run {
                    w.push(d, &KeyedRecord::new(*x, vec![*y]));
                }
            };
            while let Some(r) = reader.next(disks) {
                match &mut run {
                    Some((y, _, count)) if *y == r.key => *count += 1,
                    _ => {
                        flush(&mut writer, disks, &run);
                        run = Some((r.key, r.satellite[0], 1));
                    }
                }
            }
            flush(&mut writer, disks, &run);
            uniques = writer.finish(disks);
        }

        // (3) sort by x; (4) merge-join with `current` (also x-sorted).
        let uniques_sorted = external_sort(disks, &uniques).output;
        let mut leftovers = RecordFile::allocate_at_end(disks, ranked_layout, cur_n);
        {
            let mut urd = uniques_sorted.reader();
            let mut crd = current.reader();
            let mut lwriter = leftovers.writer();
            let mut pending: Option<KeyedRecord> = urd.next(disks);
            while let Some(rec) = crd.next(disks) {
                // Gather this key's unique neighbors (global indices).
                let mut ys: Vec<usize> = Vec::new();
                while let Some(u) = &pending {
                    if u.key != rec.key {
                        debug_assert!(
                            u.key > rec.key,
                            "unique list has key {} not in current set",
                            u.key
                        );
                        break;
                    }
                    ys.push(u.satellite[0] as usize);
                    pending = urd.next(disks);
                }
                ys.sort_unstable();
                if ys.len() >= fields_per_key {
                    ys.truncate(fields_per_key);
                    let stripes: Vec<usize> = ys.iter().map(|&y| graph.stripe_of(y).0).collect();
                    debug_assert!(stripes.windows(2).all(|w| w[0] < w[1]));
                    let rank = rec.satellite[0];
                    let satellite = &rec.satellite[1..];
                    for (stripe, bits) in encode(rec.key, rank, &stripes, satellite) {
                        let j = {
                            // Recover the within-stripe index from ys.
                            let t = stripes.iter().position(|&s| s == stripe).expect("stripe");
                            graph.stripe_of(ys[t]).1
                        };
                        let fill_key = fields.fill_order_key((stripe, j));
                        let mut w = bits;
                        w.resize(field_words, 0);
                        b_writer.push(disks, &KeyedRecord::new(fill_key, w));
                        fields_written += 1;
                    }
                } else {
                    lwriter.push(disks, &rec);
                }
            }
            leftovers = lwriter.finish(disks);
        }
        if leftovers.len() == cur_n {
            return Err(DictError::ExpansionFailure(format!(
                "peeling round {rounds} made no progress with {cur_n} keys (expansion failure)"
            )));
        }
        current = leftovers;
    }

    // (6) sort B by fill key and fill the array A streaming: one block
    // image at a time, flushed in rows of `d` blocks (one per disk) so a
    // full row costs one parallel I/O.
    b_file = b_writer.finish(disks);
    let b_sorted = external_sort(disks, &b_file).output;
    {
        let mut reader = b_sorted.reader();
        let bw = disks.block_words();
        let mut row: Option<u64> = None;
        let mut images: std::collections::BTreeMap<usize, Vec<Word>> =
            std::collections::BTreeMap::new();
        let flush = |d: &mut DiskArray,
                     images: &mut std::collections::BTreeMap<usize, Vec<Word>>,
                     row: u64| {
            if images.is_empty() {
                return;
            }
            let writes: Vec<(pdm::BlockAddr, Vec<Word>)> = images
                .iter()
                .map(|(&stripe, img)| (fields.addr_of_row(stripe, row as usize), img.clone()))
                .collect();
            let refs: Vec<(pdm::BlockAddr, &[Word])> =
                writes.iter().map(|(a, w)| (*a, w.as_slice())).collect();
            d.write(&refs, WriteOptions::default());
            images.clear();
        };
        while let Some(rec) = reader.next(disks) {
            let r = fields.row_of_fill_key(rec.key);
            if row != Some(r) {
                if let Some(prev) = row {
                    flush(disks, &mut images, prev);
                }
                row = Some(r);
            }
            let (stripe, j) = fields.pos_from_fill_key(rec.key);
            // Patch the field at its offset within the row's block image.
            let img = images.entry(stripe).or_insert_with(|| vec![0; bw]);
            let j_in_block = j % fields.fields_per_block();
            fields.patch((stripe, j_in_block), img, &rec.satellite);
        }
        if let Some(prev) = row {
            flush(disks, &mut images, prev);
        }
    }

    Ok(ConstructStats {
        rounds,
        cost: disks.end_op(scope),
        fields_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DiskAllocator;
    use expander::SeededExpander;
    use pdm::PdmConfig;

    fn setup(n: usize, d: usize, field_bits: usize) -> (DiskArray, SeededExpander, FieldArray) {
        let mut disks = DiskArray::new(PdmConfig::new(d, 32), 0);
        let mut alloc = DiskAllocator::new(d);
        let stripe = (8 * n).max(4);
        let graph = SeededExpander::new(1 << 30, stripe, d, 11);
        let fields = FieldArray::create(&mut disks, &mut alloc, 0, d, stripe, field_bits).unwrap();
        (disks, graph, fields)
    }

    #[test]
    fn in_memory_assign_gives_m_fields_each() {
        let d = 13;
        let (_, graph, _) = setup(100, d, 64);
        let keys: Vec<u64> = (0..100).map(|i| i * 97).collect();
        let m = expander::params::fields_per_key(d);
        let assign = in_memory_assign(&graph, &keys, m).unwrap();
        assert_eq!(assign.len(), 100);
        for f in assign.values() {
            assert_eq!(f.len(), m);
        }
    }

    #[test]
    fn sorted_construct_writes_all_fields() {
        let d = 13;
        let n = 60;
        let m = expander::params::fields_per_key(d);
        let (mut disks, graph, fields) = setup(n, d, 64);
        let entries: Vec<(u64, Vec<Word>)> = (0..n as u64).map(|k| (k * 13 + 1, vec![k])).collect();
        let mut heads = std::collections::HashMap::new();
        let stats = sorted_construct(
            &mut disks,
            &graph,
            &fields,
            &entries,
            m,
            1,
            |key, rank, stripes, _sat| {
                heads.insert(key, stripes[0]);
                // Store the rank in every field (trivial encoding).
                stripes.iter().map(|&s| (s, vec![rank])).collect()
            },
        )
        .unwrap();
        assert_eq!(stats.fields_written, n * m);
        assert_eq!(heads.len(), n);
        assert!(stats.cost.parallel_ios > 0);
        assert!(stats.rounds >= 1);
    }

    #[test]
    fn sorted_and_in_memory_agree_on_validity() {
        // Both assignments must give each key m fields that are genuine
        // neighbors, pairwise disjoint across keys.
        let d = 13;
        let n = 80;
        let m = expander::params::fields_per_key(d);
        let (mut disks, graph, fields) = setup(n, d, 64);
        let entries: Vec<(u64, Vec<Word>)> = (0..n as u64).map(|k| (k * 7 + 3, vec![0])).collect();
        let mut assigned: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        sorted_construct(
            &mut disks,
            &graph,
            &fields,
            &entries,
            m,
            1,
            |key, _rank, stripes, _| {
                assigned.insert(key, stripes.to_vec());
                stripes.iter().map(|&s| (s, vec![0])).collect()
            },
        )
        .unwrap();
        let mut used = std::collections::HashSet::new();
        for (key, stripes) in &assigned {
            assert_eq!(stripes.len(), m);
            let neighbors = graph.neighbors(*key);
            for &s in stripes {
                let y = neighbors[s];
                assert_eq!(graph.stripe_of(y).0, s);
                assert!(used.insert(y), "field {y} assigned to two keys");
            }
        }
    }

    #[test]
    fn duplicate_keys_detected() {
        let d = 13;
        let (mut disks, graph, fields) = setup(10, d, 64);
        let entries = vec![(5u64, vec![0]), (5u64, vec![1])];
        let err = sorted_construct(&mut disks, &graph, &fields, &entries, 9, 1, |_, _, s, _| {
            s.iter().map(|&x| (x, vec![0])).collect()
        })
        .unwrap_err();
        assert!(matches!(err, DictError::DuplicateKey(5)));
    }

    #[test]
    fn empty_input_is_fine() {
        let d = 13;
        let (mut disks, graph, fields) = setup(4, d, 64);
        let stats = sorted_construct(&mut disks, &graph, &fields, &[], 9, 1, |_, _, s, _| {
            s.iter().map(|&x| (x, vec![0])).collect()
        })
        .unwrap();
        assert_eq!(stats.fields_written, 0);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn construction_cost_scales_like_sorting() {
        // cost(construct) should stay within a constant factor of
        // sort(n·d) as n grows — the Theorem 6 claim.
        let d = 13;
        let m = expander::params::fields_per_key(d);
        let mut ratios = Vec::new();
        for n in [64usize, 256] {
            let (mut disks, graph, fields) = setup(n, d, 64);
            let entries: Vec<(u64, Vec<Word>)> =
                (0..n as u64).map(|k| (k * 31 + 7, vec![k])).collect();
            let stats = sorted_construct(
                &mut disks,
                &graph,
                &fields,
                &entries,
                m,
                1,
                |_, rank, stripes, _| stripes.iter().map(|&s| (s, vec![rank])).collect(),
            )
            .unwrap();
            let sort_bound = pdm::sort_io_bound(disks.config(), n * d, 2).max(1);
            ratios.push(stats.cost.parallel_ios as f64 / sort_bound as f64);
        }
        let growth = ratios[1] / ratios[0];
        assert!(
            growth < 3.0,
            "construction/sort ratio grew {growth}× from n=64 to n=256: {ratios:?}"
        );
    }
}
