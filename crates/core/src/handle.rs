//! Adapters presenting the externally-disked front-ends through the unified
//! [`Dict`] trait.
//!
//! `BasicDict`, `DynamicDict`, `OneProbeStatic`, and `WideDict` take their
//! [`DiskArray`] as an explicit argument on every call — the right shape for
//! composition (the rebuild wrapper runs two structures on one array), but
//! not object-safe. [`DictHandle`] pairs one such structure with an owned
//! array and implements [`Dict`] once, generically, over the small
//! [`RawDict`] vocabulary each front-end supplies. Metrics recording lives
//! here too, so every front-end is instrumented by the same code path.

use crate::basic::BasicDict;
use crate::dynamic::DynamicDict;
use crate::one_probe::OneProbeStatic;
use crate::traits::{Dict, DictError, LookupOutcome, OpRecorder};
use crate::wide::WideDict;
use expander::NeighborFn;
use pdm::metrics::{IoMetricsSink, MetricsRegistry};
use pdm::{DiskArray, OpCost, ScrubReport, Word};
use std::sync::Arc;

/// The per-front-end vocabulary [`DictHandle`] adapts to [`Dict`].
///
/// Mirrors the front-ends' inherent methods with the [`DiskArray`] passed
/// explicitly; the handle owns the array and threads it through. Batch
/// methods default to sequential loops so front-ends without a native batch
/// engine (currently `WideDict`) participate unchanged.
pub trait RawDict {
    /// Stable front-end tag; see [`Dict::kind`].
    fn raw_kind(&self) -> &'static str;

    /// Keys stored.
    fn raw_len(&self) -> usize;

    /// Maximum keys (built key-set size for static structures).
    fn raw_capacity(&self) -> usize;

    /// Look up `key` on `disks`.
    fn raw_lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome;

    /// Insert `key` on `disks`.
    ///
    /// # Errors
    /// See [`DictError`].
    fn raw_insert(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
        satellite: &[Word],
    ) -> Result<OpCost, DictError>;

    /// Delete `key` on `disks`.
    ///
    /// # Errors
    /// Static structures report [`DictError::UnsupportedParams`].
    fn raw_delete(&mut self, disks: &mut DiskArray, key: u64)
        -> Result<(bool, OpCost), DictError>;

    /// Batched lookup; defaults to a sequential loop.
    fn raw_lookup_batch(
        &self,
        disks: &mut DiskArray,
        keys: &[u64],
    ) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let mut results = Vec::with_capacity(keys.len());
        let mut cost = OpCost::default();
        for &key in keys {
            let out = self.raw_lookup(disks, key);
            cost = cost.plus(out.cost);
            results.push(out.satellite);
        }
        (results, cost)
    }

    /// Batched insert; defaults to a sequential loop.
    fn raw_insert_batch(
        &mut self,
        disks: &mut DiskArray,
        entries: &[(u64, Vec<Word>)],
    ) -> (Vec<Result<(), DictError>>, OpCost) {
        let mut results = Vec::with_capacity(entries.len());
        let mut cost = OpCost::default();
        for (key, satellite) in entries {
            match self.raw_insert(disks, *key, satellite) {
                Ok(c) => {
                    cost = cost.plus(c);
                    results.push(Ok(()));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        (results, cost)
    }

    /// Report front-end-specific shape gauges as `(name, value)` pairs
    /// (e.g. `BasicDict`'s `max_bucket_load`, the quantity Lemma 3 bounds).
    /// Reads must be free (peeks), not charged I/O.
    fn raw_gauges(&self, disks: &DiskArray, out: &mut Vec<(&'static str, u64)>) {
        let _ = (disks, out);
    }

    /// Verify-and-repair pass; defaults to the disk-level checksum scan.
    /// Front-ends with field-level redundancy (one-probe case (b))
    /// override this to additionally rewrite damaged fields from the
    /// surviving replicas.
    fn raw_scrub(&self, disks: &mut DiskArray) -> ScrubReport {
        disks.scrub_verify()
    }

    /// Reconcile in-memory counters with a journal recovery replay
    /// ([`DiskArray::recover`]). Default: nothing to reconcile —
    /// front-ends whose counters a replayed intent changes (the dynamic
    /// dictionary) override this with their delta application.
    fn raw_recover_reconcile(&mut self, report: &pdm::RecoveryReport) {
        let _ = report;
    }

    /// The metadata checkpoint to persist when truncating the journal
    /// after recovery; empty when the front-end keeps no replay-sensitive
    /// counters.
    fn raw_checkpoint_meta(&self) -> Vec<Word> {
        Vec::new()
    }
}

impl RawDict for BasicDict {
    fn raw_kind(&self) -> &'static str {
        "basic"
    }
    fn raw_len(&self) -> usize {
        self.len()
    }
    fn raw_capacity(&self) -> usize {
        self.config().capacity
    }
    fn raw_lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        self.lookup(disks, key)
    }
    fn raw_insert(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
        satellite: &[Word],
    ) -> Result<OpCost, DictError> {
        self.insert(disks, key, satellite)
    }
    fn raw_delete(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
    ) -> Result<(bool, OpCost), DictError> {
        Ok(self.delete(disks, key))
    }
    fn raw_lookup_batch(
        &self,
        disks: &mut DiskArray,
        keys: &[u64],
    ) -> (Vec<Option<Vec<Word>>>, OpCost) {
        self.lookup_batch(disks, keys)
    }
    fn raw_insert_batch(
        &mut self,
        disks: &mut DiskArray,
        entries: &[(u64, Vec<Word>)],
    ) -> (Vec<Result<(), DictError>>, OpCost) {
        self.insert_batch(disks, entries)
    }
    fn raw_gauges(&self, disks: &DiskArray, out: &mut Vec<(&'static str, u64)>) {
        out.push(("max_bucket_load", self.max_load_peek(disks) as u64));
        out.push(("buckets", self.buckets() as u64));
    }
}

impl RawDict for DynamicDict {
    fn raw_kind(&self) -> &'static str {
        "dynamic"
    }
    fn raw_len(&self) -> usize {
        self.len()
    }
    fn raw_capacity(&self) -> usize {
        self.capacity()
    }
    fn raw_lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        self.lookup(disks, key)
    }
    fn raw_insert(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
        satellite: &[Word],
    ) -> Result<OpCost, DictError> {
        self.insert(disks, key, satellite)
    }
    fn raw_delete(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
    ) -> Result<(bool, OpCost), DictError> {
        Ok(self.delete(disks, key))
    }
    fn raw_lookup_batch(
        &self,
        disks: &mut DiskArray,
        keys: &[u64],
    ) -> (Vec<Option<Vec<Word>>>, OpCost) {
        self.lookup_batch(disks, keys)
    }
    fn raw_insert_batch(
        &mut self,
        disks: &mut DiskArray,
        entries: &[(u64, Vec<Word>)],
    ) -> (Vec<Result<(), DictError>>, OpCost) {
        self.insert_batch(disks, entries)
    }
    fn raw_gauges(&self, _disks: &DiskArray, out: &mut Vec<(&'static str, u64)>) {
        out.push(("levels", self.num_levels() as u64));
        out.push(("insertions", self.insertions() as u64));
    }
    fn raw_recover_reconcile(&mut self, report: &pdm::RecoveryReport) {
        self.apply_replay(report);
    }
    fn raw_checkpoint_meta(&self) -> Vec<Word> {
        self.checkpoint_meta()
    }
}

impl<G: NeighborFn> RawDict for OneProbeStatic<G> {
    fn raw_kind(&self) -> &'static str {
        "one_probe"
    }
    fn raw_len(&self) -> usize {
        self.len()
    }
    fn raw_capacity(&self) -> usize {
        self.len()
    }
    fn raw_lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        self.lookup(disks, key)
    }
    fn raw_insert(
        &mut self,
        _disks: &mut DiskArray,
        _key: u64,
        _satellite: &[Word],
    ) -> Result<OpCost, DictError> {
        Err(DictError::UnsupportedParams(
            "OneProbeStatic is a static structure; rebuild it to change the key set".to_string(),
        ))
    }
    fn raw_delete(
        &mut self,
        _disks: &mut DiskArray,
        _key: u64,
    ) -> Result<(bool, OpCost), DictError> {
        Err(DictError::UnsupportedParams(
            "OneProbeStatic is a static structure; rebuild it to change the key set".to_string(),
        ))
    }
    fn raw_lookup_batch(
        &self,
        disks: &mut DiskArray,
        keys: &[u64],
    ) -> (Vec<Option<Vec<Word>>>, OpCost) {
        self.lookup_batch(disks, keys)
    }
    fn raw_scrub(&self, disks: &mut DiskArray) -> ScrubReport {
        self.scrub(disks)
    }
}

impl RawDict for WideDict {
    fn raw_kind(&self) -> &'static str {
        "wide"
    }
    fn raw_len(&self) -> usize {
        self.len()
    }
    fn raw_capacity(&self) -> usize {
        self.capacity()
    }
    fn raw_lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        self.lookup(disks, key)
    }
    fn raw_insert(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
        satellite: &[Word],
    ) -> Result<OpCost, DictError> {
        self.insert(disks, key, satellite)
    }
    fn raw_delete(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
    ) -> Result<(bool, OpCost), DictError> {
        Ok(self.delete(disks, key))
    }
    fn raw_gauges(&self, _disks: &DiskArray, out: &mut Vec<(&'static str, u64)>) {
        out.push(("bandwidth_words", self.bandwidth_words() as u64));
    }
}

/// A front-end paired with its owned [`DiskArray`], presenting [`Dict`].
///
/// ```
/// use pdm::{DiskArray, PdmConfig};
/// use pdm_dict::basic::BasicDictConfig;
/// use pdm_dict::layout::DiskAllocator;
/// use pdm_dict::{BasicDict, Dict, DictHandle};
///
/// let mut disks = DiskArray::new(PdmConfig::new(8, 32), 64);
/// let mut alloc = DiskAllocator::new(disks.disks());
/// let cfg = BasicDictConfig::log_load(128, 1 << 20, 8, 1, 42);
/// let dict = BasicDict::create(&mut disks, &mut alloc, 0, cfg).unwrap();
/// let mut handle = DictHandle::new(dict, disks);
/// let dyn_dict: &mut dyn Dict = &mut handle;
/// dyn_dict.insert(7, &[99]).unwrap();
/// assert_eq!(dyn_dict.lookup(7).satellite, Some(vec![99]));
/// ```
#[derive(Debug)]
pub struct DictHandle<T: RawDict> {
    dict: T,
    disks: DiskArray,
    metrics: Option<OpRecorder>,
}

/// [`BasicDict`] behind the unified trait.
pub type BasicHandle = DictHandle<BasicDict>;
/// [`DynamicDict`] behind the unified trait.
pub type DynamicHandle = DictHandle<DynamicDict>;
/// [`OneProbeStatic`] behind the unified trait.
pub type OneProbeHandle = DictHandle<OneProbeStatic>;
/// [`WideDict`] behind the unified trait.
pub type WideHandle = DictHandle<WideDict>;

impl<T: RawDict> DictHandle<T> {
    /// Pair `dict` with the `disks` it was created on.
    #[must_use]
    pub fn new(dict: T, disks: DiskArray) -> Self {
        DictHandle {
            dict,
            disks,
            metrics: None,
        }
    }

    /// The wrapped front-end.
    #[must_use]
    pub fn dict(&self) -> &T {
        &self.dict
    }

    /// Mutable access to the wrapped front-end (crash tests restore a
    /// metadata snapshot through it).
    pub fn dict_mut(&mut self) -> &mut T {
        &mut self.dict
    }

    /// The owned disk array.
    #[must_use]
    pub fn disk_array(&self) -> &DiskArray {
        &self.disks
    }

    /// Split back into the front-end and its array.
    #[must_use]
    pub fn into_parts(self) -> (T, DiskArray) {
        (self.dict, self.disks)
    }
}

impl<T: RawDict> Dict for DictHandle<T> {
    fn kind(&self) -> &'static str {
        self.dict.raw_kind()
    }

    fn len(&self) -> usize {
        self.dict.raw_len()
    }

    fn capacity(&self) -> usize {
        self.dict.raw_capacity()
    }

    fn lookup(&mut self, key: u64) -> LookupOutcome {
        let out = self.dict.raw_lookup(&mut self.disks, key);
        if let Some(m) = &self.metrics {
            m.record_lookup(&out);
        }
        out
    }

    fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<OpCost, DictError> {
        let result = self.dict.raw_insert(&mut self.disks, key, satellite);
        if let Some(m) = &self.metrics {
            m.record_insert(&result);
        }
        result
    }

    fn delete(&mut self, key: u64) -> Result<(bool, OpCost), DictError> {
        let result = self.dict.raw_delete(&mut self.disks, key);
        if let Some(m) = &self.metrics {
            m.record_delete(&result);
        }
        result
    }

    fn lookup_batch(&mut self, keys: &[u64]) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let (results, cost) = self.dict.raw_lookup_batch(&mut self.disks, keys);
        if let Some(m) = &self.metrics {
            m.record_lookup_batch(keys.len(), cost);
        }
        (results, cost)
    }

    fn insert_batch(&mut self, entries: &[(u64, Vec<Word>)]) -> (Vec<Result<(), DictError>>, OpCost) {
        let (results, cost) = self.dict.raw_insert_batch(&mut self.disks, entries);
        if let Some(m) = &self.metrics {
            m.record_insert_batch(entries.len(), cost);
        }
        (results, cost)
    }

    fn scrub(&mut self) -> ScrubReport {
        let report = self.dict.raw_scrub(&mut self.disks);
        if let Some(m) = &self.metrics {
            m.record_scrub(&report);
        }
        report
    }

    fn recover(&mut self) -> pdm::RecoveryReport {
        let report = self.disks.recover();
        self.dict.raw_recover_reconcile(&report);
        // Truncate: with counters reconciled, nothing in the ring needs
        // to survive another crash-before-next-op.
        self.checkpoint();
        report
    }

    fn checkpoint(&mut self) -> bool {
        if !self.disks.journal_enabled() {
            return false;
        }
        let meta = self.dict.raw_checkpoint_meta();
        self.disks.journal_checkpoint(&meta);
        true
    }

    fn set_metrics(&mut self, registry: Option<Arc<MetricsRegistry>>) {
        match registry {
            Some(registry) => {
                self.disks.set_io_sink(Some(Arc::new(IoMetricsSink::new(
                    &registry,
                    self.disks.disks(),
                ))));
                self.metrics = Some(OpRecorder::new(registry, self.dict.raw_kind()));
            }
            None => {
                self.disks.set_io_sink(None);
                self.metrics = None;
            }
        }
    }

    fn refresh_gauges(&mut self) {
        let Some(m) = &self.metrics else { return };
        let kind = self.dict.raw_kind();
        m.set_shape(kind, self.dict.raw_len(), self.dict.raw_capacity());
        let mut extra = Vec::new();
        self.dict.raw_gauges(&self.disks, &mut extra);
        for (name, value) in extra {
            m.registry
                .gauge(&format!("dict_{name}"), &[("dict", kind)])
                .set(value as i64);
        }
    }

    fn disks(&self) -> Option<&DiskArray> {
        Some(&self.disks)
    }

    fn disks_mut(&mut self) -> Option<&mut DiskArray> {
        Some(&mut self.disks)
    }
}
