//! Global rebuilding: the fully dynamic, unbounded-capacity dictionary.
//!
//! The Section 4 preamble: "the dictionary problem is a decomposable
//! search problem, so we can apply standard, worst-case efficient global
//! rebuilding techniques (see \[Overmars–van Leeuwen\]) to get fully dynamic
//! dictionaries, without an upper bound on the size of the key set, and
//! with support for deletions. ... The global rebuilding technique needed
//! keeps two data structures active at any time, which can be queried in
//! parallel. ... The amount of space used and the number of disks increase
//! by a constant factor compared to the basic structure."
//!
//! [`Dictionary`] owns a disk array of `4d` disks: two side-by-side slots
//! of `2d` disks, each able to hold one [`DynamicDict`]. When the active
//! structure fills past 3/4 of its capacity (or empties far below it), a
//! replacement of capacity `2·live` starts in the other slot; every
//! subsequent operation migrates a few membership buckets' worth of keys,
//! so the rebuild finishes long before the new structure can fill and no
//! single operation ever pays more than a constant number of extra I/Os —
//! the worst-case spreading the paper gets from Overmars–van Leeuwen.
//!
//! During a rebuild, lookups consult the new structure first and fall back
//! to the old (both cost `O(1)` worst case); deletions apply to both.
//! Migrated keys are *copied*, not moved — consistent with the paper's
//! "no piece of data is ever moved" discipline — and the old slot is
//! abandoned wholesale when the migration completes.

use crate::config::DictParams;
use crate::dynamic::DynamicDict;
use crate::layout::DiskAllocator;
use crate::traits::{Dict, DictError, LookupOutcome, OpRecorder, Provenance};
use pdm::metrics::{Counter, Gauge, Histogram, IoMetricsSink, MetricsRegistry};
use pdm::{DiskArray, IoStats, OpCost, PdmConfig, ScrubReport, Word};
use std::sync::Arc;

/// Buckets migrated per operation during a rebuild. Each bucket holds
/// `Θ(log n)` keys, so this finishes a rebuild after `O(v / RATE)` =
/// `O(n / log n)` operations — far fewer than the `n/2` inserts needed to
/// fill the replacement.
const MIGRATE_BUCKETS_PER_OP: usize = 2;

/// A fully dynamic dictionary with no capacity bound and deletions,
/// built from [`DynamicDict`] via incremental global rebuilding.
///
/// ```
/// use pdm_dict::{DictParams, Dictionary};
///
/// let params = DictParams::new(256, 1 << 40, 2)
///     .with_degree(20)
///     .with_epsilon(0.5)
///     .with_seed(7);
/// let mut dict = Dictionary::new(params, 128)?;
/// dict.insert(42, &[1, 2])?;
/// assert_eq!(dict.lookup(42).satellite, Some(vec![1, 2]));
/// assert_eq!(dict.lookup(43).cost.parallel_ios, 1); // miss: exactly 1 I/O
/// let (was_present, _) = dict.delete(42)?;
/// assert!(was_present);
/// # Ok::<(), pdm_dict::DictError>(())
/// ```
///
/// `Clone` deep-copies the owned disk array — crash tests clone the
/// whole dictionary as a metadata snapshot and then swap the crashed
/// disk image in via [`Dict::disks_mut`].
#[derive(Debug, Clone)]
pub struct Dictionary {
    disks: DiskArray,
    alloc: DiskAllocator,
    template: DictParams,
    active: DynamicDict,
    building: Option<Building>,
    min_capacity: usize,
    rebuilds: usize,
    metrics: Option<RebuildMetrics>,
}

/// Pre-resolved metric handles for the rebuild wrapper: the shared per-op
/// recorder plus rebuild-pacing instruments.
#[derive(Debug, Clone)]
struct RebuildMetrics {
    recorder: OpRecorder,
    /// Counter of completed rebuilds (`dict_rebuilds_total`).
    rebuilds: Arc<Counter>,
    /// Histogram of keys migrated per operation (`dict_migrated_keys_per_op`)
    /// — the pacing knob `MIGRATE_BUCKETS_PER_OP` controls. The paper's
    /// worst-case spreading argument is exactly that this stays `O(log n)`.
    migrated_per_op: Arc<Histogram>,
    /// 1 while a rebuild is in flight (`dict_rebuild_active`).
    active: Arc<Gauge>,
}

#[derive(Debug, Clone)]
struct Building {
    dict: DynamicDict,
    /// Next membership bucket of the old structure to migrate.
    cursor: usize,
    /// Keys currently present in BOTH structures (copied, old not yet
    /// abandoned) — needed for exact `len()` accounting.
    copied: usize,
}

impl Dictionary {
    /// Create a dictionary with `block_words`-word blocks. `params`
    /// supplies the universe, satellite width, degree, ɛ and the *initial*
    /// capacity (the structure grows past it by rebuilding).
    ///
    /// # Errors
    /// Returns [`DictError::UnsupportedParams`] when
    /// `params.capacity < DictParams::MIN_REBUILD_CAPACITY`: below that
    /// floor the replacement structure built mid-rebuild is too small to
    /// absorb the keys still migrating plus concurrent traffic, and inserts
    /// fail mid-rebuild with a confusing `CapacityExhausted` (the known
    /// floor from the batch-engine work). Rejecting the parameters up front
    /// turns that latent failure into an immediate, actionable error.
    pub fn new(params: DictParams, block_words: usize) -> Result<Self, DictError> {
        params.validate_rebuild_capacity()?;
        let d = params.degree;
        let cfg = PdmConfig::new(4 * d, block_words);
        let mut disks = DiskArray::new(cfg, 0);
        let mut alloc = DiskAllocator::new(4 * d);
        let mut active = DynamicDict::create(&mut disks, &mut alloc, 0, params)?;
        // Two structures share the one journal during rebuilds, so no
        // single structure's counters may own the superblock checkpoint.
        active.checkpoint_owner = false;
        Ok(Dictionary {
            disks,
            alloc,
            template: params,
            active,
            building: None,
            min_capacity: params.capacity,
            rebuilds: 0,
            metrics: None,
        })
    }

    /// Install (or remove) an I/O event sink on the owned disk array —
    /// used by [`crate::ShardedDictionary`] to hook its shards' disks into
    /// one registry without duplicating per-op recording.
    pub fn set_io_sink(&mut self, sink: Option<Arc<dyn pdm::metrics::IoEventSink>>) {
        self.disks.set_io_sink(sink);
    }

    /// Live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.building {
            // During a rebuild every live key is in active ∪ building and
            // exactly the `copied` keys are in both (inclusion–exclusion).
            Some(b) => self.active.len() + b.dict.len() - b.copied,
            None => self.active.len(),
        }
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether an incremental rebuild is in flight.
    #[must_use]
    pub fn is_rebuilding(&self) -> bool {
        self.building.is_some()
    }

    /// Completed rebuilds.
    #[must_use]
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Current capacity of the active structure.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.active.capacity()
    }

    /// Global I/O counters of the owned disk array.
    #[must_use]
    pub fn io_stats(&self) -> IoStats {
        self.disks.stats()
    }

    /// Access the owned disk array (diagnostics).
    #[must_use]
    pub fn disks(&self) -> &DiskArray {
        &self.disks
    }

    /// Lookup. `O(1)` I/Os worst case (at most two structure probes
    /// during a rebuild).
    pub fn lookup(&mut self, key: u64) -> LookupOutcome {
        let scope = self.disks.begin_op();
        // A degraded miss in the replacement cannot prove absence (a key
        // inserted mid-rebuild lives only there), so the damage taints
        // whatever the fallback probe reports.
        let mut tainted = false;
        if let Some(b) = &self.building {
            let out = b.dict.lookup(&mut self.disks, key);
            if out.found() {
                return LookupOutcome {
                    satellite: out.satellite,
                    cost: self.disks.end_op(scope),
                    provenance: out.provenance,
                };
            }
            tainted = !out.is_exact();
        }
        let out = self.active.lookup(&mut self.disks, key);
        let provenance = if tainted {
            Provenance::Degraded
        } else {
            out.provenance
        };
        LookupOutcome {
            satellite: out.satellite,
            cost: self.disks.end_op(scope),
            provenance,
        }
    }

    /// Batched lookup: the replacement (if a rebuild is in flight) is
    /// probed for all keys as one batch; the active structure is then
    /// probed, as a second batch, only for the keys the replacement
    /// missed. Results are byte-identical to calling [`Self::lookup`]
    /// per key.
    pub fn lookup_batch(&mut self, keys: &[u64]) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let scope = self.disks.begin_op();
        let mut results: Vec<Option<Vec<Word>>> = vec![None; keys.len()];
        let mut remaining: Vec<usize> = (0..keys.len()).collect();
        if let Some(b) = &self.building {
            let (found, _) = b.dict.lookup_batch(&mut self.disks, keys);
            remaining.clear();
            for (i, f) in found.into_iter().enumerate() {
                match f {
                    Some(s) => results[i] = Some(s),
                    None => remaining.push(i),
                }
            }
        }
        if !remaining.is_empty() {
            let misses: Vec<u64> = remaining.iter().map(|&i| keys[i]).collect();
            let (found, _) = self.active.lookup_batch(&mut self.disks, &misses);
            for (&i, f) in remaining.iter().zip(found) {
                results[i] = f;
            }
        }
        (results, self.disks.end_op(scope))
    }

    /// Batched insert. Outside a rebuild window the whole remaining batch
    /// goes to the active structure as one [`DynamicDict::insert_batch`];
    /// once the active structure runs out of budget (or a rebuild is
    /// already in flight) keys fall back to the sequential path one at a
    /// time, which starts the replacement and preserves the
    /// per-operation migration pacing (`MIGRATE_BUCKETS_PER_OP`).
    ///
    /// Correctness of the fallback relies on [`DynamicDict::insert_batch`]
    /// **stopping at the first budget error**: the failed key and its
    /// successors are guaranteed uncommitted, so re-routing them through
    /// the sequential path can never re-insert a key the batch already
    /// stored (which would surface as a spurious
    /// [`DictError::DuplicateKey`]).
    pub fn insert_batch(&mut self, entries: &[(u64, Vec<Word>)]) -> (Vec<Result<(), DictError>>, OpCost) {
        let scope = self.disks.begin_op();
        let mut results: Vec<Result<(), DictError>> = Vec::with_capacity(entries.len());
        let mut idx = 0;
        while idx < entries.len() {
            if self.building.is_some() {
                // Migration pacing dominates during a rebuild; route keys
                // through the sequential path one at a time.
                let (key, sat) = &entries[idx];
                results.push(self.insert(*key, sat).map(|_| ()));
                idx += 1;
                continue;
            }
            let (res, _) = self.active.insert_batch(&mut self.disks, &entries[idx..]);
            let mut consumed = 0;
            for r in res {
                match r {
                    // Out of budget: the batch stopped here without
                    // committing this key or any successor, so they all
                    // safely re-route through the sequential path, which
                    // starts the replacement.
                    Err(
                        DictError::CapacityExhausted { .. } | DictError::LevelsExhausted { .. },
                    ) => break,
                    r => {
                        results.push(r);
                        consumed += 1;
                    }
                }
            }
            idx += consumed;
            if consumed == 0 {
                if let Err(e) = self.start_rebuild() {
                    results.push(Err(e));
                    idx += 1;
                }
                continue;
            }
            if let Err(e) = self.maybe_start_rebuild() {
                if idx < entries.len() {
                    results.push(Err(e));
                    idx += 1;
                }
            }
        }
        (results, self.disks.end_op(scope))
    }

    /// Insert. Averages `2 + ɛ` I/Os outside rebuild windows; `O(1)`
    /// worst case always (insert + bounded migration work).
    pub fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<OpCost, DictError> {
        let scope = self.disks.begin_op();
        if self.building.is_none() {
            match self.active.insert(&mut self.disks, key, satellite) {
                Ok(_) => {
                    self.advance_rebuild()?;
                    self.maybe_start_rebuild()?;
                    return Ok(self.disks.end_op(scope));
                }
                // The active structure ran out of budget (capacity or
                // expander headroom): start the replacement immediately and
                // route this insert there. This is how the wrapper absorbs
                // the sampled expander's rare local failures too.
                Err(DictError::CapacityExhausted { .. } | DictError::LevelsExhausted { .. }) => {
                    self.start_rebuild()?;
                }
                Err(e) => return Err(e),
            }
        }
        // A rebuild is in flight: new keys go to the replacement. Reject
        // duplicates still sitting in the old structure.
        if self.active.lookup(&mut self.disks, key).found() {
            return Err(DictError::DuplicateKey(key));
        }
        let b = self.building.as_mut().expect("rebuild in flight");
        b.dict.insert(&mut self.disks, key, satellite)?;
        self.advance_rebuild()?;
        Ok(self.disks.end_op(scope))
    }

    /// Delete. Applies to both structures during a rebuild. Returns
    /// whether the key was present.
    pub fn delete(&mut self, key: u64) -> Result<(bool, OpCost), DictError> {
        let scope = self.disks.begin_op();
        let mut was_building = false;
        if let Some(b) = &mut self.building {
            let (w, _) = b.dict.delete(&mut self.disks, key);
            was_building = w;
        }
        let (was_active, _) = self.active.delete(&mut self.disks, key);
        if was_active && was_building {
            // The key had been copied: it is gone from both, so it no
            // longer double-counts.
            if let Some(b) = &mut self.building {
                b.copied -= 1;
            }
        }
        let was = was_active || was_building;
        self.advance_rebuild()?;
        self.maybe_start_rebuild()?;
        Ok((was, self.disks.end_op(scope)))
    }

    fn maybe_start_rebuild(&mut self) -> Result<(), DictError> {
        if self.building.is_some() {
            return Ok(());
        }
        let live = self.active.len();
        let cap = self.active.capacity();
        // Grow when live keys OR the insertion budget (deletions leave
        // their fields behind) approach capacity; shrink when mostly empty.
        let grow = 4 * live >= 3 * cap || 4 * self.active.insertions() >= 3 * cap;
        let shrink = cap > self.min_capacity && 8 * live < cap;
        if !(grow || shrink) {
            return Ok(());
        }
        self.start_rebuild()
    }

    fn start_rebuild(&mut self) -> Result<(), DictError> {
        debug_assert!(self.building.is_none());
        let live = self.active.len();
        let new_cap = (2 * live).max(self.min_capacity);
        let params = DictParams {
            capacity: new_cap,
            ..self.template
        };
        // Alternate slots: the replacement goes to whichever half the
        // active structure does not occupy. Slot parity = rebuild count.
        let d = self.template.degree;
        let first_disk = if self.rebuilds.is_multiple_of(2) {
            2 * d
        } else {
            0
        };
        let mut dict = DynamicDict::create(&mut self.disks, &mut self.alloc, first_disk, params)?;
        dict.checkpoint_owner = false;
        self.building = Some(Building {
            dict,
            cursor: 0,
            copied: 0,
        });
        Ok(())
    }

    fn advance_rebuild(&mut self) -> Result<(), DictError> {
        let Some(mut b) = self.building.take() else {
            return Ok(());
        };
        let copied_before = b.copied;
        let total = self.active.membership_buckets();
        for _ in 0..MIGRATE_BUCKETS_PER_OP {
            if b.cursor >= total {
                break;
            }
            let keys = self.active.scan_bucket(&mut self.disks, b.cursor);
            b.cursor += 1;
            for key in keys {
                if b.dict.lookup(&mut self.disks, key).found() {
                    continue; // deleted-and-reinserted during the rebuild
                }
                let out = self.active.lookup(&mut self.disks, key);
                let Some(sat) = out.satellite else {
                    continue; // deleted from active since the scan
                };
                // Stamp migration copies distinctly (META_MIGRATE): on a
                // replay after a crash, `recover` must bump `copied` for
                // them — a plain insert's replay must not.
                b.dict.insert_meta_op = crate::dynamic::META_MIGRATE;
                let res = b.dict.insert(&mut self.disks, key, &sat);
                b.dict.insert_meta_op = crate::dynamic::META_INSERT;
                res?;
                b.copied += 1;
            }
        }
        let finished = b.cursor >= total;
        if let Some(m) = &self.metrics {
            m.migrated_per_op.observe((b.copied - copied_before) as u64);
            if finished {
                m.rebuilds.inc();
            }
            m.active.set(i64::from(!finished));
        }
        if finished {
            // Swap: the replacement becomes active; the old slot is
            // abandoned (space accounting notes live structures only).
            self.active = b.dict;
            self.rebuilds += 1;
            self.building = None;
        } else {
            self.building = Some(b);
        }
        Ok(())
    }

    /// Space of the live structure(s), in words.
    #[must_use]
    pub fn live_space_words(&self) -> usize {
        let mut s = self.active.space_words(&self.disks);
        if let Some(b) = &self.building {
            s += b.dict.space_words(&self.disks);
        }
        s
    }
}

impl Dict for Dictionary {
    fn kind(&self) -> &'static str {
        "rebuild"
    }

    fn len(&self) -> usize {
        Dictionary::len(self)
    }

    fn capacity(&self) -> usize {
        Dictionary::capacity(self)
    }

    fn lookup(&mut self, key: u64) -> LookupOutcome {
        let out = Dictionary::lookup(self, key);
        if let Some(m) = &self.metrics {
            m.recorder.record_lookup(&out);
        }
        out
    }

    fn insert(&mut self, key: u64, satellite: &[Word]) -> Result<OpCost, DictError> {
        let result = Dictionary::insert(self, key, satellite);
        if let Some(m) = &self.metrics {
            m.recorder.record_insert(&result);
        }
        result
    }

    fn delete(&mut self, key: u64) -> Result<(bool, OpCost), DictError> {
        let result = Dictionary::delete(self, key);
        if let Some(m) = &self.metrics {
            m.recorder.record_delete(&result);
        }
        result
    }

    fn lookup_batch(&mut self, keys: &[u64]) -> (Vec<Option<Vec<Word>>>, OpCost) {
        let (results, cost) = Dictionary::lookup_batch(self, keys);
        if let Some(m) = &self.metrics {
            m.recorder.record_lookup_batch(keys.len(), cost);
        }
        (results, cost)
    }

    fn insert_batch(&mut self, entries: &[(u64, Vec<Word>)]) -> (Vec<Result<(), DictError>>, OpCost) {
        let (results, cost) = Dictionary::insert_batch(self, entries);
        if let Some(m) = &self.metrics {
            m.recorder.record_insert_batch(entries.len(), cost);
        }
        (results, cost)
    }

    fn scrub(&mut self) -> ScrubReport {
        // Both slots live on the one owned array, so the disk-level walk
        // covers the active structure and any in-flight replacement.
        let report = self.disks.scrub_verify();
        if let Some(m) = &self.metrics {
            m.recorder.record_scrub(&report);
        }
        report
    }

    fn recover(&mut self) -> pdm::RecoveryReport {
        let report = self.disks.recover();
        // Replayed intents carry their owner's tag; each structure
        // consumes only its own deltas. Migration copies additionally
        // re-enter the wrapper's double-count.
        if let Some(b) = &mut self.building {
            let btag = b.dict.meta_tag();
            let migrated = report
                .replayed
                .iter()
                .filter(|i| {
                    i.seq > b.dict.journal_seq
                        && i.meta.first() == Some(&btag)
                        && i.meta.get(1) == Some(&crate::dynamic::META_MIGRATE)
                })
                .count();
            b.dict.apply_replay(&report);
            b.copied += migrated;
        }
        self.active.apply_replay(&report);
        self.checkpoint();
        report
    }

    fn checkpoint(&mut self) -> bool {
        if !self.disks.journal_enabled() {
            return false;
        }
        // Neither structure's counters own the shared superblock (see
        // `checkpoint_owner`), so the wrapper truncates with empty meta.
        self.disks.journal_checkpoint(&[]);
        true
    }

    fn set_metrics(&mut self, registry: Option<Arc<MetricsRegistry>>) {
        match registry {
            Some(registry) => {
                self.disks.set_io_sink(Some(Arc::new(IoMetricsSink::new(
                    &registry,
                    self.disks.disks(),
                ))));
                self.metrics = Some(RebuildMetrics {
                    recorder: OpRecorder::new(registry.clone(), "rebuild"),
                    rebuilds: registry.counter("dict_rebuilds_total", &[("dict", "rebuild")]),
                    migrated_per_op: registry
                        .histogram("dict_migrated_keys_per_op", &[("dict", "rebuild")]),
                    active: registry.gauge("dict_rebuild_active", &[("dict", "rebuild")]),
                });
            }
            None => {
                self.disks.set_io_sink(None);
                self.metrics = None;
            }
        }
    }

    fn refresh_gauges(&mut self) {
        let Some(m) = &self.metrics else { return };
        m.recorder
            .set_shape("rebuild", Dictionary::len(self), Dictionary::capacity(self));
        m.active.set(i64::from(self.is_rebuilding()));
        m.recorder
            .registry
            .gauge("dict_levels", &[("dict", "rebuild")])
            .set(self.active.num_levels() as i64);
    }

    fn disks(&self) -> Option<&DiskArray> {
        Some(&self.disks)
    }

    fn disks_mut(&mut self) -> Option<&mut DiskArray> {
        Some(&mut self.disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(capacity: usize, sigma: usize) -> DictParams {
        DictParams::new(capacity, 1 << 40, sigma)
            .with_degree(20)
            .with_epsilon(0.5)
            .with_seed(0xFEED)
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut dict = Dictionary::new(params(64, 1), 64).unwrap();
        for k in 0..1000u64 {
            dict.insert(k * 3 + 1, &[k]).unwrap();
        }
        assert_eq!(dict.len(), 1000);
        assert!(dict.capacity() >= 1000);
        assert!(dict.rebuilds() >= 1, "must have rebuilt at least once");
        for k in 0..1000u64 {
            assert_eq!(dict.lookup(k * 3 + 1).satellite, Some(vec![k]), "key {k}");
        }
    }

    #[test]
    fn lookups_work_mid_rebuild() {
        let mut dict = Dictionary::new(params(64, 1), 64).unwrap();
        let mut checked_mid_rebuild = false;
        for k in 0..500u64 {
            dict.insert(k, &[k]).unwrap();
            if dict.is_rebuilding() && !checked_mid_rebuild {
                checked_mid_rebuild = true;
                for probe in 0..=k {
                    assert_eq!(
                        dict.lookup(probe).satellite,
                        Some(vec![probe]),
                        "mid-rebuild lookup of {probe}"
                    );
                }
            }
        }
        assert!(checked_mid_rebuild, "test never observed a rebuild window");
    }

    #[test]
    fn deletes_survive_rebuilds() {
        let mut dict = Dictionary::new(params(64, 1), 64).unwrap();
        for k in 0..600u64 {
            dict.insert(k, &[k]).unwrap();
            if k % 3 == 0 {
                let (was, _) = dict.delete(k).unwrap();
                assert!(was, "delete of fresh key {k}");
            }
        }
        for k in 0..600u64 {
            let found = dict.lookup(k).found();
            assert_eq!(found, k % 3 != 0, "key {k}");
        }
        assert_eq!(dict.len(), 400);
    }

    #[test]
    fn delete_then_reinsert_during_rebuilds() {
        let mut dict = Dictionary::new(params(32, 1), 64).unwrap();
        for round in 0..5u64 {
            for k in 0..200u64 {
                let _ = dict.delete(k);
                dict.insert(k, &[round]).unwrap();
            }
        }
        for k in 0..200u64 {
            assert_eq!(dict.lookup(k).satellite, Some(vec![4]), "key {k}");
        }
    }

    #[test]
    fn duplicate_rejected_across_structures() {
        let mut dict = Dictionary::new(params(64, 0), 64).unwrap();
        for k in 0..100u64 {
            dict.insert(k, &[]).unwrap();
        }
        for k in 0..100u64 {
            assert!(
                matches!(dict.insert(k, &[]), Err(DictError::DuplicateKey(_))),
                "duplicate {k} accepted"
            );
        }
        assert_eq!(dict.len(), 100);
    }

    #[test]
    fn worst_case_op_cost_is_bounded() {
        let mut dict = Dictionary::new(params(64, 1), 64).unwrap();
        let mut worst = 0u64;
        for k in 0..2000u64 {
            let c = dict.insert(k, &[k]).unwrap();
            worst = worst.max(c.parallel_ios);
        }
        // Insert + duplicate check + bounded migration work: each bucket
        // migrated holds O(log n) keys, each moved with O(1) I/Os.
        assert!(
            worst < 200,
            "single-operation worst case {worst} suspiciously large"
        );
        // And lookups stay constant even at 2000 keys.
        let mut lookup_worst = 0;
        for k in 0..2000u64 {
            lookup_worst = lookup_worst.max(dict.lookup(k).cost.parallel_ios);
        }
        assert!(lookup_worst <= 4, "lookup worst {lookup_worst}");
    }

    #[test]
    fn batch_budget_error_does_not_double_insert_successors() {
        // A key whose retrieval fields are exhausted (the deterministic
        // stand-in for a sampled-expander local failure) makes the active
        // structure fail with LevelsExhausted mid-batch. The batch stops
        // there, so the wrapper re-routes the failed key and its
        // successors through the rebuild path; none of them were
        // committed by the batch, so none may come back as a spurious
        // DuplicateKey or end up stored twice.
        let mut dict = Dictionary::new(params(64, 1), 64).unwrap();
        let victim = 1_000u64;
        dict.active.exhaust_key_fields(&mut dict.disks, victim);
        for k in 0..10u64 {
            dict.insert(k, &[k]).unwrap();
        }
        assert!(!dict.is_rebuilding());
        let mut batch: Vec<(u64, Vec<Word>)> = vec![(victim, vec![victim])];
        batch.extend((2_000..2_020u64).map(|k| (k, vec![k])));
        let (res, _) = dict.insert_batch(&batch);
        assert_eq!(res.len(), batch.len());
        for (i, r) in res.iter().enumerate() {
            assert!(r.is_ok(), "fresh key {} rejected: {r:?}", batch[i].0);
        }
        assert!(dict.rebuilds() > 0 || dict.is_rebuilding(), "victim must have forced a rebuild");
        assert_eq!(dict.len(), 10 + batch.len());
        for (k, sat) in &batch {
            assert_eq!(dict.lookup(*k).satellite, Some(sat.clone()), "key {k}");
        }
        for k in 0..10u64 {
            assert_eq!(dict.lookup(k).satellite, Some(vec![k]), "pre-key {k}");
        }
    }

    #[test]
    fn shrinks_after_mass_deletion() {
        let mut dict = Dictionary::new(params(64, 0), 64).unwrap();
        for k in 0..800u64 {
            dict.insert(k, &[]).unwrap();
        }
        let big_cap = dict.capacity();
        for k in 0..795u64 {
            dict.delete(k).unwrap();
        }
        // Trigger further ops to let the shrink rebuild complete.
        for k in 10_000..10_050u64 {
            dict.insert(k, &[]).unwrap();
        }
        assert!(
            dict.capacity() < big_cap,
            "capacity {} did not shrink from {big_cap}",
            dict.capacity()
        );
        assert_eq!(dict.len(), 5 + 50);
        for k in 795..800u64 {
            assert!(dict.lookup(k).found());
        }
    }

    #[test]
    fn empty_dictionary_behaves() {
        let mut dict = Dictionary::new(params(16, 2), 64).unwrap();
        assert!(dict.is_empty());
        assert!(!dict.lookup(5).found());
        let (was, _) = dict.delete(5).unwrap();
        assert!(!was);
    }
}
