//! Constant-I/O bucket dictionaries for the small-`B` regime.
//!
//! Section 4.1: "even without making any constraints on B, we can achieve
//! a constant lookup and insertion time by using an atomic heap \[8, 9\] in
//! each bucket. This makes the implementation more complicated; also,
//! one-probe lookups are not possible in this case."
//!
//! Atomic heaps (Fredman–Willard) are *internal-memory* structures whose
//! constant-time claim is about RAM operations; what the PDM charges is
//! I/Os. [`MicroDict`] reproduces the I/O behaviour the paper needs: a
//! bucket's records are spread over several leaf blocks by a seeded
//! sub-hash, so a lookup or insertion touches **one** leaf block no matter
//! how large the bucket is (`O(1)` I/Os with no constraint on `B`), while
//! one-probe semantics are indeed lost — the caller must first know which
//! bucket to ask, and the probe is per-bucket. The CPU-side constant time
//! of the atomic heap is simulated, not reproduced; see DESIGN.md's
//! substitution table.

use crate::bucket::BucketCodec;
use crate::layout::{DiskAllocator, Region};
use crate::traits::{DictError, LookupOutcome};
use expander::mix::mix64;
use pdm::{BlockAddr, DiskArray, OpCost, Word};

/// A multi-block bucket dictionary with `O(1)`-I/O operations.
#[derive(Debug, Clone)]
pub struct MicroDict {
    region: Region,
    codec: BucketCodec,
    leaves: usize,
    seed: u64,
    len: usize,
    capacity: usize,
}

impl MicroDict {
    /// Create on one disk with `leaves` leaf blocks. Total capacity is
    /// sized at a quarter of the raw slot count to keep leaf overflow
    /// negligible (the sub-hash is balls-into-bins, so leaves need slack).
    pub fn create(
        disks: &mut DiskArray,
        alloc: &mut DiskAllocator,
        disk: usize,
        leaves: usize,
        payload_words: usize,
        seed: u64,
    ) -> Result<Self, DictError> {
        if leaves == 0 {
            return Err(DictError::UnsupportedParams(
                "need at least one leaf block".into(),
            ));
        }
        let codec = BucketCodec::new(payload_words);
        let slots_per_leaf = codec.capacity(disks.block_words());
        if slots_per_leaf == 0 {
            return Err(DictError::UnsupportedParams(format!(
                "block of {} words cannot hold a slot of {} words",
                disks.block_words(),
                codec.slot_words()
            )));
        }
        let region = alloc.alloc(disks, disk, 1, leaves);
        Ok(MicroDict {
            region,
            codec,
            leaves,
            seed,
            len: 0,
            capacity: leaves * slots_per_leaf / 4,
        })
    }

    /// Live records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity (a quarter of the raw slot count).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn leaf_of(&self, key: u64) -> BlockAddr {
        let leaf = (mix64(self.seed ^ key) % self.leaves as u64) as usize;
        self.region.addr(0, leaf)
    }

    /// Lookup: exactly one block read, independent of bucket size.
    pub fn lookup(&self, disks: &mut DiskArray, key: u64) -> LookupOutcome {
        let scope = disks.begin_op();
        let block = disks.read_block(self.leaf_of(key));
        LookupOutcome::new(self.codec.find(&block, key), disks.end_op(scope))
    }

    /// Insert: one read + one write, independent of bucket size.
    pub fn insert(
        &mut self,
        disks: &mut DiskArray,
        key: u64,
        payload: &[Word],
    ) -> Result<OpCost, DictError> {
        if payload.len() != self.codec.payload_words {
            return Err(DictError::SatelliteWidth {
                expected: self.codec.payload_words,
                got: payload.len(),
            });
        }
        if self.len >= self.capacity {
            return Err(DictError::CapacityExhausted {
                capacity: self.capacity,
            });
        }
        let scope = disks.begin_op();
        let addr = self.leaf_of(key);
        let mut block = disks.read_block(addr);
        if self.codec.find(&block, key).is_some() {
            return Err(DictError::DuplicateKey(key));
        }
        if !self.codec.insert(&mut block, key, payload) {
            // The sub-hash missed its balance (possible, rare): surface it.
            return Err(DictError::BucketOverflow { key });
        }
        disks.write_block(addr, &block);
        self.len += 1;
        Ok(disks.end_op(scope))
    }

    /// Delete (tombstone): one read + one write when present.
    pub fn delete(&mut self, disks: &mut DiskArray, key: u64) -> (bool, OpCost) {
        let scope = disks.begin_op();
        let addr = self.leaf_of(key);
        let mut block = disks.read_block(addr);
        if self.codec.delete(&mut block, key) {
            disks.write_block(addr, &block);
            self.len -= 1;
            (true, disks.end_op(scope))
        } else {
            (false, disks.end_op(scope))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::PdmConfig;

    fn setup(block_words: usize, leaves: usize) -> (DiskArray, MicroDict) {
        let mut disks = DiskArray::new(PdmConfig::new(2, block_words), 0);
        let mut alloc = DiskAllocator::new(2);
        let dict = MicroDict::create(&mut disks, &mut alloc, 0, leaves, 1, 9).unwrap();
        (disks, dict)
    }

    #[test]
    fn constant_io_even_with_tiny_blocks() {
        // B = 32 words: below log2(n)·slot_words; ops must be O(1) I/Os.
        let (mut disks, mut dict) = setup(32, 64);
        for k in 0..dict.capacity() as u64 {
            let cost = dict.insert(&mut disks, k, &[k]).unwrap();
            assert_eq!(cost.parallel_ios, 2);
        }
        for k in 0..dict.capacity() as u64 {
            let out = dict.lookup(&mut disks, k);
            assert_eq!(out.satellite, Some(vec![k]));
            assert_eq!(out.cost.parallel_ios, 1);
        }
    }

    #[test]
    fn delete_and_miss() {
        let (mut disks, mut dict) = setup(8, 16);
        dict.insert(&mut disks, 4, &[1]).unwrap();
        assert!(dict.lookup(&mut disks, 4).found());
        let (was, cost) = dict.delete(&mut disks, 4);
        assert!(was);
        assert_eq!(cost.parallel_ios, 2);
        assert!(!dict.lookup(&mut disks, 4).found());
        let (absent, cost2) = dict.delete(&mut disks, 4);
        assert!(!absent);
        assert_eq!(cost2.parallel_ios, 1);
    }

    #[test]
    fn capacity_enforced() {
        let (mut disks, mut dict) = setup(8, 4);
        for k in 0..dict.capacity() as u64 {
            dict.insert(&mut disks, k, &[0]).unwrap();
        }
        assert!(dict.insert(&mut disks, 999, &[0]).is_err());
    }

    #[test]
    fn rejects_block_too_small_for_slot() {
        let mut disks = DiskArray::new(PdmConfig::new(1, 2), 0);
        let mut alloc = DiskAllocator::new(1);
        // slot = 2 + 4 payload words = 6 > B = 2.
        assert!(MicroDict::create(&mut disks, &mut alloc, 0, 4, 4, 0).is_err());
    }

    #[test]
    fn duplicate_rejected() {
        let (mut disks, mut dict) = setup(8, 16);
        dict.insert(&mut disks, 1, &[1]).unwrap();
        assert!(matches!(
            dict.insert(&mut disks, 1, &[2]),
            Err(DictError::DuplicateKey(1))
        ));
    }
}
