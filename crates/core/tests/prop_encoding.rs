//! Property-based tests of the one-probe field encodings — the
//! bit-level formats of Theorem 6 must round-trip for *every* parameter
//! combination, not just the ones the dictionaries happen to pick.

use pdm::{Word, WORD_BITS};
use pdm_dict::one_probe::encoding::{CaseB, Chain};
use proptest::prelude::*;

/// A strictly increasing selection of `m` stripes out of `d`.
fn stripes_strategy(d: usize, m: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::sample::subsequence((0..d).collect::<Vec<_>>(), m)
}

fn sigma_words(sigma_bits: usize) -> usize {
    sigma_bits.div_ceil(WORD_BITS).max(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Chain encoding round-trips for arbitrary degree, σ, stripe
    /// selection, and payload.
    #[test]
    fn chain_roundtrip(
        d in 13usize..40,
        sigma_bits in 0usize..600,
        seed in any::<u64>(),
    ) {
        let enc = Chain::new(sigma_bits, d);
        let m = enc.fields_per_key;
        prop_assume!(m <= d);
        // Deterministic stripe choice from the seed (any m-subset).
        let mut stripes: Vec<usize> = (0..d).collect();
        let mut s = seed;
        for i in (1..d).rev() {
            s = expander::mix::mix64(s);
            stripes.swap(i, (s % (i as u64 + 1)) as usize);
        }
        stripes.truncate(m);
        stripes.sort_unstable();

        let satellite: Vec<Word> = (0..sigma_words(sigma_bits) as u64)
            .map(|i| expander::mix::mix64(seed ^ i))
            .collect();
        let encoded = enc.encode(&stripes, &satellite);
        prop_assert_eq!(encoded.len(), m);
        let mut fields = vec![vec![0; enc.field_words()]; d];
        for (stripe, bits) in &encoded {
            fields[*stripe] = bits.clone();
        }
        let got = enc.decode(stripes[0], &fields).expect("valid chain decodes");
        for bit in 0..sigma_bits {
            prop_assert_eq!(
                (got[bit / WORD_BITS] >> (bit % WORD_BITS)) & 1,
                (satellite[bit / WORD_BITS] >> (bit % WORD_BITS)) & 1,
                "bit {} differs", bit
            );
        }
    }

    /// Every encoded chain field is marked occupied; zeroed fields are not.
    #[test]
    fn chain_occupancy_consistent(d in 13usize..30, sigma_bits in 0usize..200) {
        let enc = Chain::new(sigma_bits, d);
        let m = enc.fields_per_key;
        let stripes: Vec<usize> = (0..m).collect();
        let encoded = enc.encode(&stripes, &vec![0; sigma_words(sigma_bits)]);
        for (_, bits) in &encoded {
            prop_assert!(enc.is_occupied(bits));
        }
        prop_assert!(!enc.is_occupied(&vec![0; enc.field_words()]));
    }

    /// Case (b) round-trips under arbitrary interference from other keys'
    /// fields, as long as the owner holds a strict majority.
    #[test]
    fn case_b_roundtrip_with_interference(
        d in 13usize..32,
        n in 2usize..5000,
        sigma_bits_w in 0usize..6,
        id in 0u64..1000,
        other_id in 0u64..1000,
        seed in any::<u64>(),
        owner_stripes_seed in any::<u64>(),
    ) {
        let sigma_bits = sigma_bits_w * 64;
        let enc = CaseB::new(n.max(1001), sigma_bits, d);
        let m = enc.fields_per_key;
        prop_assume!(2 * m > d); // the majority premise
        prop_assume!(id != other_id);
        // Owner takes m stripes chosen from the seed.
        let mut all: Vec<usize> = (0..d).collect();
        let mut s = owner_stripes_seed;
        for i in (1..d).rev() {
            s = expander::mix::mix64(s);
            all.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let owner: Vec<usize> = {
            let mut v = all[..m].to_vec();
            v.sort_unstable();
            v
        };
        let satellite: Vec<Word> = (0..sigma_words(sigma_bits) as u64)
            .map(|i| expander::mix::mix64(seed ^ (i << 7)))
            .collect();
        let fw = enc.field_bits().div_ceil(WORD_BITS);
        let mut fields = vec![vec![0; fw]; d];
        for (t, &stripe) in owner.iter().enumerate() {
            fields[stripe] = enc.encode(id, &satellite, t);
        }
        // The remaining d - m stripes belong to one other key.
        let other_sat: Vec<Word> = vec![!0; sigma_words(sigma_bits)];
        for (t, stripe) in (0..d).filter(|s| !owner.contains(s)).enumerate() {
            fields[stripe] = enc.encode(other_id, &other_sat, t % m.max(1));
        }
        let (got_id, got_sat) = enc.decode(&fields).expect("majority holds");
        prop_assert_eq!(got_id, id);
        for bit in 0..sigma_bits {
            prop_assert_eq!(
                (got_sat[bit / WORD_BITS] >> (bit % WORD_BITS)) & 1,
                (satellite[bit / WORD_BITS] >> (bit % WORD_BITS)) & 1,
                "bit {} differs", bit
            );
        }
    }

    /// Without a majority, decode refuses — no matter how the minority
    /// identifiers are arranged.
    #[test]
    fn case_b_no_majority_no_answer(
        d in 13usize..32,
        split_seed in any::<u64>(),
    ) {
        let enc = CaseB::new(1000, 64, d);
        let fw = enc.field_bits().div_ceil(WORD_BITS);
        let mut fields = vec![vec![0; fw]; d];
        // Fill at most d/2 fields per identifier: no majority possible.
        let half = d / 2;
        let mut s = split_seed;
        for (i, field) in fields.iter_mut().enumerate().take(half) {
            s = expander::mix::mix64(s);
            *field = enc.encode(u64::from(i as u32 % 3), &[s], i % enc.fields_per_key);
        }
        prop_assert!(enc.decode(&fields).is_none());
    }
}

#[test]
fn stripes_strategy_is_used() {
    // Keep the helper exercised (subsequence draws are covered indirectly
    // by the seeded permutations above; this pins the helper's contract).
    let strat = stripes_strategy(10, 4);
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let tree = strat.new_tree(&mut runner).expect("tree");
    let v = proptest::strategy::ValueTree::current(&tree);
    assert_eq!(v.len(), 4);
    assert!(v.windows(2).all(|w| w[0] < w[1]));
}
