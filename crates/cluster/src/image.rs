//! Shard-image serialization: a frozen [`DiskArray`] as a flat byte
//! string, chunked over the wire by the migration opcodes.
//!
//! The image is the *whole physical medium* of a shard — dictionary
//! regions **and** the journal ring (the superblock checkpoint and any
//! in-flight intents). That is what makes re-replication "journaled
//! catch-up": the receiver pokes the blocks back verbatim and runs the
//! ordinary crash-recovery path ([`pdm_dict::DynamicDict::reopen`]),
//! which replays the ring exactly as a restart on the source would —
//! no bespoke migration protocol to trust, only the one recovery code
//! path that is already differentially tested.

use pdm::{BlockAddr, DiskArray, PdmConfig, Word};

/// Wire chunk size for migrating images: half the protocol's
/// [`pdm_server::protocol::MAX_FRAME`], leaving generous room for the
/// chunk header.
pub const CHUNK_BYTES: usize = 1 << 19;

/// Number of chunks a `len`-byte image travels as (at least 1, so an
/// empty image still completes the install handshake).
#[must_use]
pub fn chunks_of(len: usize) -> u32 {
    (len.div_ceil(CHUNK_BYTES)).max(1) as u32
}

/// The `chunk`-th slice of `bytes` (empty for the trailing chunk of an
/// empty image).
#[must_use]
pub fn chunk_slice(bytes: &[u8], chunk: u32) -> &[u8] {
    let start = (chunk as usize * CHUNK_BYTES).min(bytes.len());
    let end = (start + CHUNK_BYTES).min(bytes.len());
    &bytes[start..end]
}

/// Serialize a frozen disk array: `disks u32, block_words u32,
/// blocks_per_disk u32`, then every block's words in
/// `(disk, block)`-major order, little-endian.
///
/// # Panics
/// Panics if the disks are ragged (unequal block counts) — cluster
/// shards allocate full stripes only, so a ragged image indicates the
/// array is not a shard front.
#[must_use]
pub fn serialize_image(disks: &DiskArray) -> Vec<u8> {
    let snapshot = disks.snapshot();
    let d = snapshot.len();
    let blocks = snapshot.first().map_or(0, Vec::len);
    for (i, disk) in snapshot.iter().enumerate() {
        assert_eq!(
            disk.len(),
            blocks,
            "disk {i} has {} blocks, disk 0 has {blocks}: not a shard image",
            disk.len()
        );
    }
    let bw = disks.block_words();
    let mut out = Vec::with_capacity(12 + d * blocks * bw * 8);
    out.extend_from_slice(&(d as u32).to_le_bytes());
    out.extend_from_slice(&(bw as u32).to_le_bytes());
    out.extend_from_slice(&(blocks as u32).to_le_bytes());
    for disk in &snapshot {
        for block in disk {
            assert_eq!(block.len(), bw);
            for w in block.iter() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    out
}

/// Rebuild a disk array from [`serialize_image`] bytes.
///
/// # Errors
/// A human-readable description of any truncation or geometry
/// inconsistency (surfaced on the wire as a protocol error).
pub fn deserialize_image(bytes: &[u8]) -> Result<DiskArray, String> {
    let header = |at: usize| -> Result<u32, String> {
        bytes
            .get(at..at + 4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
            .ok_or_else(|| "image truncated in header".to_string())
    };
    let d = header(0)? as usize;
    let bw = header(4)? as usize;
    let blocks = header(8)? as usize;
    if d == 0 || bw == 0 {
        return Err(format!("degenerate image geometry: {d} disks × {bw} words"));
    }
    let body = &bytes[12..];
    let expect = d * blocks * bw * 8;
    if body.len() != expect {
        return Err(format!(
            "image body is {} bytes, geometry {d}×{blocks}×{bw} words needs {expect}",
            body.len()
        ));
    }
    let mut disks = DiskArray::new(PdmConfig::new(d, bw), blocks);
    let mut at = 0;
    let mut words = vec![0 as Word; bw];
    for disk in 0..d {
        for block in 0..blocks {
            for w in words.iter_mut() {
                *w = Word::from_le_bytes(body[at..at + 8].try_into().unwrap());
                at += 8;
            }
            disks.poke(BlockAddr::new(disk, block), &words);
        }
    }
    Ok(disks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrips_byte_identically() {
        let mut disks = DiskArray::new(PdmConfig::new(3, 8), 4);
        for d in 0..3 {
            for b in 0..4 {
                let words: Vec<Word> = (0..8).map(|w| (d * 100 + b * 10 + w) as Word).collect();
                disks.poke(BlockAddr::new(d, b), &words);
            }
        }
        let image = serialize_image(&disks);
        let back = deserialize_image(&image).unwrap();
        assert_eq!(disks.snapshot(), back.snapshot());
        assert_eq!(image, serialize_image(&back), "re-serialization identical");
    }

    #[test]
    fn empty_array_is_one_chunk() {
        let disks = DiskArray::new(PdmConfig::new(2, 8), 0);
        let image = serialize_image(&disks);
        assert_eq!(chunks_of(image.len()), 1);
        assert_eq!(chunk_slice(&image, 0), &image[..]);
        let back = deserialize_image(&image).unwrap();
        assert_eq!(back.snapshot(), disks.snapshot());
    }

    #[test]
    fn chunking_covers_the_image_exactly() {
        let bytes: Vec<u8> = (0..(CHUNK_BYTES * 2 + 37)).map(|i| i as u8).collect();
        let total = chunks_of(bytes.len());
        assert_eq!(total, 3);
        let mut rebuilt = Vec::new();
        for c in 0..total {
            rebuilt.extend_from_slice(chunk_slice(&bytes, c));
        }
        assert_eq!(rebuilt, bytes);
    }

    #[test]
    fn corrupt_images_are_typed_errors() {
        assert!(deserialize_image(&[1, 2, 3]).is_err());
        let mut disks = DiskArray::new(PdmConfig::new(2, 8), 1);
        disks.poke(BlockAddr::new(0, 0), &[7; 8]);
        let mut image = serialize_image(&disks);
        image.truncate(image.len() - 1);
        assert!(deserialize_image(&image).is_err());
        assert!(deserialize_image(&[0u8; 12]).is_err(), "zero disks");
    }
}
