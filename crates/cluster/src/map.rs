//! The epoch-versioned cluster map: which node holds which replica of
//! which shard.
//!
//! Placement is the paper's Section 3 discipline lifted to cluster
//! scale: every party holding the [`ClusterConfig`] computes the same
//! map as a pure function of `(seed, weights, epoch history)` — no
//! central directory, exactly as the dictionaries themselves avoid
//! per-key directories. Shards pick their `k` replica nodes by greedy
//! least-loaded choice among `d` integer-rendezvous candidates
//! ([`loadbalance::weighted`]); Lemma 3 is what keeps the greedy
//! deviation (and therefore the per-node shard count) tight.
//!
//! Epoch transitions are **incremental repairs**, not rebuilds: when a
//! node dies, only the replicas that lived on it re-place (bounded
//! movement — the dead node's fair share, ≈ `1/N` of all replicas); a
//! rejoining node pulls back only the slots a fresh build would hand
//! it. Every transition bumps [`ClusterMap::epoch`], and the serving
//! protocol carries the epoch so stale routing is a typed error
//! ([`pdm_server::ServeError::StaleEpoch`]), never a silent misread.

use loadbalance::weighted::{choose_replicas, WeightedNode};

/// Static cluster-wide configuration. Shared verbatim by every node and
/// every router; together with the epoch history it determines the
/// entire cluster layout, including each shard's dictionary parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Global shard count.
    pub shards: u32,
    /// Replicas per shard (`k`). Writes go to all trusted replicas.
    pub replication: usize,
    /// Candidate nodes considered per shard (`d ≥ k`).
    pub choices: usize,
    /// Seed of placement and of every shard's dictionary hashes.
    pub seed: u64,
    /// Capacity of each shard's dictionary.
    pub shard_capacity: usize,
    /// Key universe of each shard's dictionary.
    pub universe: u64,
    /// Satellite words per key.
    pub sigma: usize,
    /// Journal ring rows of each shard's dictionary (must be ≥ 1: the
    /// cluster tier relies on journaled re-replication).
    pub journal_rows: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 8,
            replication: 2,
            choices: 3,
            seed: 0xC10_5EED,
            shard_capacity: 1 << 12,
            universe: 1 << 21,
            sigma: 1,
            journal_rows: 2,
        }
    }
}

impl ClusterConfig {
    /// Dictionary parameters of one global shard — a pure function of
    /// the config, so any node can construct (or reopen) any shard's
    /// front without asking anyone.
    #[must_use]
    pub fn shard_params(&self, shard: u32) -> pdm_dict::DictParams {
        pdm_dict::DictParams::new(self.shard_capacity.max(4), self.universe, self.sigma)
            .with_degree(20)
            .with_epsilon(0.5)
            .with_seed(expander::mix::mix64(
                self.seed ^ (u64::from(shard) << 32) ^ 0x5AAD,
            ))
            .with_journal(self.journal_rows)
    }

    /// The global shard owning `key` (the same mix-based route the
    /// serving engine uses within a node).
    #[must_use]
    pub fn shard_of(&self, key: u64) -> u32 {
        (expander::mix::mix64(self.seed ^ key) % u64::from(self.shards)) as u32
    }
}

/// One node as the map tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeState {
    /// Capacity weight (≥ 1).
    pub weight: u32,
    /// Whether the map currently trusts the node with replicas.
    pub up: bool,
}

/// One replica relocation produced by an epoch transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// The shard whose replica moves.
    pub shard: u32,
    /// The node losing the replica.
    pub from: usize,
    /// The node gaining it (must be re-replicated before serving).
    pub to: usize,
}

/// The outcome of an epoch transition: the new epoch and the bounded
/// set of replica moves that realize it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapDelta {
    /// The epoch after the transition.
    pub epoch: u64,
    /// Every replica relocation. Shards not listed did not move.
    pub moves: Vec<ShardMove>,
}

impl MapDelta {
    /// Moved replicas as a fraction of all replicas — the quantity the
    /// Lemma 3 movement gate bounds by `1/N + slack`.
    #[must_use]
    pub fn movement_fraction(&self, shards: u32, k: usize) -> f64 {
        self.moves.len() as f64 / (f64::from(shards) * k as f64)
    }
}

/// The shard → replica-nodes map at one epoch.
#[derive(Debug, Clone)]
pub struct ClusterMap {
    cfg: ClusterConfig,
    epoch: u64,
    nodes: Vec<NodeState>,
    /// `replicas[shard]` = replica node indices; `[0]` is the primary.
    replicas: Vec<Vec<usize>>,
}

impl ClusterMap {
    /// Build the epoch-0 map for `weights.len()` nodes, all up.
    ///
    /// # Panics
    /// Panics if fewer than `k` nodes exist, `k > d`, or a weight is 0.
    #[must_use]
    pub fn build(cfg: ClusterConfig, weights: &[u32]) -> Self {
        assert!(
            weights.len() >= cfg.replication,
            "{} nodes cannot hold {} replicas",
            weights.len(),
            cfg.replication
        );
        let nodes: Vec<NodeState> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 1, "node weight must be at least 1");
                NodeState { weight: w, up: true }
            })
            .collect();
        let mut map = ClusterMap {
            cfg,
            epoch: 0,
            nodes,
            replicas: Vec::new(),
        };
        map.replicas = map.fresh_placement();
        map
    }

    /// The placement a from-scratch build over the *up* nodes yields.
    fn fresh_placement(&self) -> Vec<Vec<usize>> {
        let wnodes = self.weighted_nodes();
        let eligible: Vec<bool> = self.nodes.iter().map(|n| n.up).collect();
        let mut loads = vec![0u64; self.nodes.len()];
        (0..self.cfg.shards)
            .map(|s| {
                choose_replicas(
                    self.cfg.seed,
                    u64::from(s),
                    &wnodes,
                    &eligible,
                    &mut loads,
                    self.cfg.replication,
                    self.cfg.choices,
                )
                .unwrap_or_else(|| {
                    panic!(
                        "shard {s}: fewer than {} up nodes among top {}",
                        self.cfg.replication, self.cfg.choices
                    )
                })
            })
            .collect()
    }

    fn weighted_nodes(&self) -> Vec<WeightedNode> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| WeightedNode::new(i as u64, n.weight))
            .collect()
    }

    /// Current replica loads (replica count per node) over the live map.
    fn replica_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.nodes.len()];
        for replicas in &self.replicas {
            for &n in replicas {
                loads[n] += 1;
            }
        }
        loads
    }

    /// The map's epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The config the map was built from.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Node states.
    #[must_use]
    pub fn nodes(&self) -> &[NodeState] {
        &self.nodes
    }

    /// The ordered replicas of `shard` (primary first).
    #[must_use]
    pub fn replicas(&self, shard: u32) -> &[usize] {
        &self.replicas[shard as usize]
    }

    /// The primary node of `shard` (reads go here first).
    #[must_use]
    pub fn primary(&self, shard: u32) -> usize {
        self.replicas[shard as usize][0]
    }

    /// All shards with a replica on `node`.
    #[must_use]
    pub fn shards_on(&self, node: usize) -> Vec<u32> {
        (0..self.cfg.shards)
            .filter(|&s| self.replicas[s as usize].contains(&node))
            .collect()
    }

    /// Declare `node` dead: epoch bumps, and **only** the replicas that
    /// lived on it re-place — each onto the least-loaded of the shard's
    /// remaining rendezvous candidates. Replicas elsewhere do not move,
    /// so movement is exactly the dead node's replica count (its fair
    /// share, ≈ `1/N` of all replicas by the Lemma 3 balance).
    ///
    /// Every moved shard's new replica holds no data yet: the caller
    /// must re-replicate (see the router) before the epoch's map is
    /// fully redundant. Surviving replicas are promoted ahead of the
    /// new one, so reads stay exact meanwhile.
    ///
    /// # Panics
    /// Panics if the death leaves some shard with fewer than `k` up
    /// candidate nodes.
    pub fn mark_down(&mut self, node: usize) -> MapDelta {
        assert!(self.nodes[node].up, "node {node} is already down");
        self.nodes[node].up = false;
        self.epoch += 1;
        let wnodes = self.weighted_nodes();
        let mut loads = self.replica_loads();
        loads[node] = 0; // the dead node's replicas are gone
        let mut moves = Vec::new();
        for s in 0..self.cfg.shards {
            let replicas = &mut self.replicas[s as usize];
            let Some(pos) = replicas.iter().position(|&n| n == node) else {
                continue;
            };
            replicas.remove(pos);
            // Eligible: up nodes not already replicating this shard.
            let mut eligible: Vec<bool> = self.nodes.iter().map(|n| n.up).collect();
            for &r in replicas.iter() {
                eligible[r] = false;
            }
            let replacement = choose_replicas(
                self.cfg.seed,
                u64::from(s),
                &wnodes,
                &eligible,
                &mut loads,
                1,
                self.cfg.choices.max(self.nodes.len()),
            )
            .unwrap_or_else(|| {
                panic!(
                    "shard {s}: no up node left to re-place the replica lost with node {node}"
                )
            })[0];
            // Appended last: survivors stay ahead, so the primary always
            // has the data until re-replication completes.
            replicas.push(replacement);
            moves.push(ShardMove {
                shard: s,
                from: node,
                to: replacement,
            });
        }
        MapDelta {
            epoch: self.epoch,
            moves,
        }
    }

    /// Bring `node` back (after a restart, with **empty** disks): epoch
    /// bumps, and the node receives only the replica slots a fresh
    /// build over the now-up node set would hand it — each taken from
    /// the currently most-loaded replica of that shard. Movement is
    /// again the node's fair share.
    ///
    /// As with [`mark_down`](Self::mark_down), every move needs
    /// re-replication before the new replica serves; it is appended
    /// last so data-holding survivors stay ahead of it.
    pub fn mark_up(&mut self, node: usize) -> MapDelta {
        assert!(!self.nodes[node].up, "node {node} is already up");
        self.nodes[node].up = true;
        self.epoch += 1;
        let fresh = self.fresh_placement();
        let mut loads = self.replica_loads();
        let mut moves = Vec::new();
        for s in 0..self.cfg.shards {
            let wants = fresh[s as usize].contains(&node);
            let has = self.replicas[s as usize].contains(&node);
            if !wants || has {
                continue;
            }
            let replicas = &mut self.replicas[s as usize];
            // Relieve the replica with the most load per unit weight
            // (ties: last in failover order, so primaries move last).
            let victim_pos = (0..replicas.len())
                .max_by(|&a, &b| {
                    let (ra, rb) = (replicas[a], replicas[b]);
                    let wa = u128::from(self.nodes[ra].weight);
                    let wb = u128::from(self.nodes[rb].weight);
                    (u128::from(loads[ra]) * wb, a).cmp(&(u128::from(loads[rb]) * wa, b))
                })
                .expect("k >= 1");
            let victim = replicas.remove(victim_pos);
            loads[victim] -= 1;
            loads[node] += 1;
            replicas.push(node);
            moves.push(ShardMove {
                shard: s,
                from: victim,
                to: node,
            });
        }
        MapDelta {
            epoch: self.epoch,
            moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: u32, k: usize, d: usize) -> ClusterConfig {
        ClusterConfig {
            shards,
            replication: k,
            choices: d,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn build_is_deterministic_and_balanced() {
        let c = cfg(32, 2, 3);
        let a = ClusterMap::build(c, &[1, 1, 1, 1]);
        let b = ClusterMap::build(c, &[1, 1, 1, 1]);
        assert_eq!(a.replicas, b.replicas);
        assert_eq!(a.epoch(), 0);
        let loads = a.replica_loads();
        let total: u64 = loads.iter().sum();
        assert_eq!(total, 64);
        for &l in &loads {
            assert!((12..=20).contains(&l), "unbalanced: {loads:?}");
        }
        for s in 0..32 {
            let r = a.replicas(s);
            assert_eq!(r.len(), 2);
            assert_ne!(r[0], r[1]);
        }
    }

    #[test]
    fn mark_down_moves_only_the_dead_nodes_replicas() {
        let c = cfg(64, 2, 3);
        let mut m = ClusterMap::build(c, &[1, 1, 1, 1]);
        let before = m.replicas.clone();
        let dead_shards = m.shards_on(2);
        let delta = m.mark_down(2);
        assert_eq!(m.epoch(), 1);
        assert_eq!(delta.epoch, 1);
        assert_eq!(delta.moves.len(), dead_shards.len());
        for mv in &delta.moves {
            assert_eq!(mv.from, 2);
            assert_ne!(mv.to, 2);
        }
        // Untouched shards kept their exact replica lists.
        for s in 0..64u32 {
            if !dead_shards.contains(&s) {
                assert_eq!(m.replicas(s), &before[s as usize][..], "shard {s} moved");
            } else {
                assert!(!m.replicas(s).contains(&2));
                assert_eq!(m.replicas(s).len(), 2);
                // The survivor (data holder) is the primary.
                assert!(before[s as usize].contains(&m.primary(s)));
            }
        }
        // Movement bound: the dead node's fair share plus slack.
        let frac = delta.movement_fraction(64, 2);
        assert!(frac <= 1.0 / 4.0 + 0.10, "movement fraction {frac}");
    }

    #[test]
    fn mark_up_returns_only_the_fair_share() {
        let c = cfg(64, 2, 3);
        let mut m = ClusterMap::build(c, &[1, 1, 1, 1]);
        let _ = m.mark_down(1);
        let delta = m.mark_up(1);
        assert_eq!(m.epoch(), 2);
        for mv in &delta.moves {
            assert_eq!(mv.to, 1);
            assert!(m.replicas(mv.shard).contains(&1));
        }
        let frac = delta.movement_fraction(64, 2);
        assert!(frac <= 1.0 / 4.0 + 0.10, "movement fraction {frac}");
        // The node ends near its fair share of replicas.
        let loads = m.replica_loads();
        assert!(
            (20..=45).contains(&loads[1]),
            "rejoined node load {loads:?}"
        );
    }

    #[test]
    fn shard_of_covers_all_shards() {
        let c = cfg(8, 2, 3);
        let mut seen = [false; 8];
        for key in 0..1000u64 {
            seen[c.shard_of(key) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shard_params_differ_by_shard_and_share_geometry() {
        let c = ClusterConfig::default();
        let a = c.shard_params(0);
        let b = c.shard_params(1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.journal_rows, c.journal_rows);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn too_few_nodes_refused() {
        let _ = ClusterMap::build(cfg(4, 3, 3), &[1, 1]);
    }
}
