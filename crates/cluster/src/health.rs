//! Per-node health machinery: typed retry policies, a circuit breaker,
//! and the heartbeat failure detector.
//!
//! The router treats a remote node as a fallible component with two
//! failure speeds: *transient* (a dropped connection, one missed
//! deadline) and *systemic* (the node is gone). [`RetryPolicy`] absorbs
//! the first with bounded, exponentially backed-off attempts;
//! [`Breaker`] detects the second by counting consecutive failures and
//! — once open — keeps traffic away from the node until a cooldown
//! passes, after which a single half-open probe decides between closing
//! the breaker and re-opening it. The breaker is purely a *transport*
//! gate: a closed breaker says the node answers, not that it is
//! current. Durability trust is the router's separate sticky suspect
//! latch — a node whose breaker opened is latched and serves no reads
//! until it has been re-replicated, even after a probe closes the
//! breaker (see the router's durability invariant).
//!
//! Both of those are **reactive**: a node is only distrusted after a
//! client request fails into it. [`FailureDetector`] is the proactive
//! third leg, fed by the heartbeater's periodic probes (see
//! `crate::heartbeat`): consecutive missed probes raise a node's
//! suspicion level, and crossing the configured threshold flips it
//! [`Liveness::Alive`] → [`Liveness::Suspected`] — at which point the
//! heartbeater latches the router's sticky suspect *before* any client
//! write has to fail. The transition is one-way from the detector's
//! point of view (a node that answers probes again may still have
//! missed acknowledged writes while it was dark); only an explicit
//! [`clear`](FailureDetector::clear) — issued when the router re-images
//! the node — re-arms it.

use std::time::{Duration, Instant};

/// Bounded retry schedule with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). `1` means no retries.
    pub attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no retries, no waiting.
    #[must_use]
    pub const fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The delay to sleep before retry number `retry` (1-based: after
    /// the first failed attempt pass 1). Exponential in the retry
    /// number, capped at [`max_delay`](Self::max_delay).
    #[must_use]
    pub fn delay(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (retry - 1).min(16);
        self.base_delay
            .saturating_mul(factor)
            .min(self.max_delay)
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are refused until the cooldown passes.
    Open,
    /// Cooldown passed: exactly one probe request is allowed through;
    /// its outcome closes or re-opens the breaker.
    HalfOpen,
}

/// Consecutive-failure circuit breaker.
///
/// Not thread-safe by itself — the router keeps one per node behind its
/// node lock.
#[derive(Debug, Clone)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    consecutive_failures: u32,
    state: BreakerState,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

impl Breaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// allows a half-open probe `cooldown` after opening.
    ///
    /// # Panics
    /// Panics if `threshold == 0`.
    #[must_use]
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        assert!(threshold >= 1, "breaker threshold must be at least 1");
        Breaker {
            threshold,
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at: None,
            probe_in_flight: false,
        }
    }

    /// Current state, with the open → half-open transition applied if
    /// the cooldown has passed.
    pub fn state(&mut self) -> BreakerState {
        if self.state == BreakerState::Open {
            if let Some(at) = self.opened_at {
                if at.elapsed() >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_in_flight = false;
                }
            }
        }
        self.state
    }

    /// Whether a request may go to the node now. Closed: always.
    /// Open: no. Half-open: only the first caller (the probe).
    pub fn allow(&mut self) -> bool {
        match self.state() {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Record a successful request: closes the breaker and resets the
    /// failure count.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
        self.opened_at = None;
        self.probe_in_flight = false;
    }

    /// Record a failed request. From half-open this re-opens
    /// immediately; from closed it opens once the consecutive-failure
    /// threshold is reached.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold {
            self.state = BreakerState::Open;
            self.opened_at = Some(Instant::now());
            self.probe_in_flight = false;
        }
    }

    /// Force the breaker open (the router does this when it declares a
    /// node dead, so no traffic races the re-replication).
    pub fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.opened_at = Some(Instant::now());
        self.probe_in_flight = false;
        self.consecutive_failures = self.consecutive_failures.max(self.threshold);
    }

    /// Reset to closed (after a node has been restored and
    /// re-replicated).
    pub fn reset(&mut self) {
        self.record_success();
    }
}

/// A node's liveness as judged by the [`FailureDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Answering probes (or not yet probed).
    Alive,
    /// Crossed the consecutive-miss threshold; stays suspected until an
    /// explicit [`FailureDetector::clear`].
    Suspected,
}

/// Consecutive-miss heartbeat failure detector.
///
/// Deterministic in its inputs: feed it the same sequence of probe
/// outcomes and it makes the same judgements — no wall clock inside.
/// Time lives in the *prober* (which decides when a probe is a miss);
/// the detector only counts. Not thread-safe by itself — the
/// heartbeater owns one.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    suspect_after: u32,
    misses: Vec<u32>,
    states: Vec<Liveness>,
}

impl FailureDetector {
    /// A detector over `nodes` nodes that suspects a node after
    /// `suspect_after` consecutive missed probes.
    ///
    /// # Panics
    /// Panics if `suspect_after == 0`.
    #[must_use]
    pub fn new(nodes: usize, suspect_after: u32) -> Self {
        assert!(suspect_after >= 1, "suspect_after must be at least 1");
        FailureDetector {
            suspect_after,
            misses: vec![0; nodes],
            states: vec![Liveness::Alive; nodes],
        }
    }

    /// Record an answered probe. Resets the miss streak of an alive
    /// node; a suspected node **stays suspected** (it may have missed
    /// writes while dark — see the module docs).
    pub fn record_success(&mut self, node: usize) {
        if self.states[node] == Liveness::Alive {
            self.misses[node] = 0;
        }
    }

    /// Record a missed probe. Returns `true` exactly on the
    /// [`Liveness::Alive`] → [`Liveness::Suspected`] transition.
    pub fn record_miss(&mut self, node: usize) -> bool {
        if self.states[node] == Liveness::Suspected {
            return false;
        }
        self.misses[node] = self.misses[node].saturating_add(1);
        if self.misses[node] >= self.suspect_after {
            self.states[node] = Liveness::Suspected;
            return true;
        }
        false
    }

    /// The node's current judgement.
    #[must_use]
    pub fn liveness(&self, node: usize) -> Liveness {
        self.states[node]
    }

    /// The node's suspicion level: consecutive missed probes so far.
    #[must_use]
    pub fn suspicion(&self, node: usize) -> u32 {
        self.misses[node]
    }

    /// Re-arm `node` as alive with a clean slate (issued after the
    /// router re-images it via `restore_node`).
    pub fn clear(&mut self, node: usize) {
        self.misses[node] = 0;
        self.states[node] = Liveness::Alive;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_suspects_after_consecutive_misses_only() {
        let mut d = FailureDetector::new(2, 3);
        assert_eq!(d.liveness(0), Liveness::Alive);
        assert!(!d.record_miss(0));
        assert!(!d.record_miss(0));
        assert_eq!(d.suspicion(0), 2);
        d.record_success(0);
        assert_eq!(d.suspicion(0), 0, "a success resets an alive streak");
        assert!(!d.record_miss(0));
        assert!(!d.record_miss(0));
        assert!(d.record_miss(0), "third consecutive miss transitions");
        assert_eq!(d.liveness(0), Liveness::Suspected);
        assert_eq!(d.liveness(1), Liveness::Alive, "per-node state");
    }

    #[test]
    fn detector_suspicion_is_sticky_until_cleared() {
        let mut d = FailureDetector::new(1, 1);
        assert!(d.record_miss(0));
        assert!(!d.record_miss(0), "transition reported once");
        d.record_success(0);
        assert_eq!(
            d.liveness(0),
            Liveness::Suspected,
            "an answering probe does not clear suspicion"
        );
        d.clear(0);
        assert_eq!(d.liveness(0), Liveness::Alive);
        assert_eq!(d.suspicion(0), 0);
        assert!(d.record_miss(0), "re-armed after clear");
    }

    #[test]
    fn retry_delays_back_off_and_cap() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay(0), Duration::ZERO);
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(p.delay(10), Duration::from_millis(200), "capped");
        assert_eq!(RetryPolicy::none().attempts, 1);
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_after_cooldown() {
        let mut b = Breaker::new(3, Duration::from_millis(5));
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(6));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(), "one probe goes through");
        assert!(!b.allow(), "but only one");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        std::thread::sleep(Duration::from_millis(6));
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed, "good probe closes");
        assert!(b.allow());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = Breaker::new(2, Duration::from_secs(1));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn trip_forces_open() {
        let mut b = Breaker::new(5, Duration::from_secs(10));
        b.trip();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        b.reset();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
