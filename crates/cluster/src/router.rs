//! The client-side cluster router: quorum writes, failover reads,
//! health tracking, and the journaled re-replication driver.
//!
//! ## Durability invariant
//!
//! A write is acknowledged iff it was applied on **every replica the
//! router currently trusts** (map-up, not latched suspect) — at least
//! [`RouterConfig::write_quorum`] of them. Trust is **sticky**: the
//! moment a write proceeds without one of its routed replicas, or a
//! node's breaker crosses its failure threshold, that node is latched
//! *suspect* — it may have missed an acknowledged write, so it drops
//! out of both the read set and the write/ack set. The latch outlives
//! the breaker: a half-open probe may close the breaker for transport
//! purposes, but only [`fail_node`](ClusterRouter::fail_node) +
//! [`restore_node`](ClusterRouter::restore_node) (or
//! [`repair`](ClusterRouter::repair)) — which re-image the node from a
//! trusted survivor — clear it. Together: every acknowledged write
//! lives on every replica that can ever serve a read, so killing any
//! single node (with `k ≥ 2`) loses nothing acknowledged.
//!
//! ## Epoch discipline
//!
//! Requests carry the router's map epoch; a node that has seen a newer
//! epoch refuses with [`ServeError::StaleEpoch`], and the router
//! re-reads its map and retries. Combined with the per-shard fence
//! (ops share it, migration takes it exclusively), a write either
//! lands before a shard's image is frozen for re-replication (and so
//! travels inside the image) or routes under the new epoch to the new
//! replica set — never in between. This router assumes it is the only
//! epoch driver of its cluster.

use crate::health::{Breaker, BreakerState, RetryPolicy};
use crate::map::{ClusterConfig, ClusterMap, MapDelta};
use pdm::metrics::{Counter, MetricsRegistry};
use pdm::Word;
use pdm_cache::{CacheAnswer, CacheConfig, CacheCounters, HotCache};
use pdm_server::protocol::{WireRequest, WireResponse};
use pdm_server::{Op, Reply, ServeError, TcpClient};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::time::Duration;

/// Upper bound on threads driving independent shard re-replications in
/// parallel (see [`ClusterRouter::fail_node`]): every move in a map
/// delta touches a distinct shard, and the per-shard fences already
/// serialize each migration against that shard's operations, so the
/// moves are independent — the pool just bounds connection fan-out.
const MIGRATION_THREADS: usize = 4;

/// Router tuning.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Retry schedule per node per request.
    pub retry: RetryPolicy,
    /// Consecutive transport failures that open a node's breaker.
    pub breaker_threshold: u32,
    /// Cooldown before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Bound on each TCP connection attempt.
    pub connect_timeout: Duration,
    /// Per-request response deadline (a dead peer surfaces as
    /// [`ServeError::TimedOut`], never a hang).
    pub request_deadline: Duration,
    /// Minimum trusted-replica acks for a write to be acknowledged.
    pub write_quorum: usize,
    /// Optional client-side read-through cache (`None` disables it).
    ///
    /// Hits skip the network entirely. Soundness rests on three rules:
    /// entries are tagged with the map epoch they were filled under and
    /// the **whole cache is dropped the moment the router observes a
    /// newer epoch** (a failover or restore changed who holds the data,
    /// so nothing cached before the transition may be served after it);
    /// every *attempted* write — acked or refused — invalidates its
    /// key before the caller sees the outcome; and a routed read may
    /// fill the cache only if **no invalidation happened while it was
    /// on the wire** (a monotonic invalidation generation is
    /// snapshotted at probe time and re-checked at fill time, so a
    /// read that raced a concurrent write can never re-install the
    /// pre-write value it fetched). Misses are never cached here: the
    /// wire reply carries no degraded-read provenance, so the router
    /// has no absence certificate (see `pdm-cache`).
    pub read_cache: Option<CacheConfig>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            connect_timeout: Duration::from_millis(500),
            request_deadline: Duration::from_secs(5),
            write_quorum: 1,
            read_cache: None,
        }
    }
}

/// Cluster-level operation errors. Transport-level details stay inside
/// (the breaker consumed them); these are the outcomes a caller acts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Fewer trusted replicas acked than the write quorum requires.
    /// The write is **not** acknowledged (it may be partially applied;
    /// retrying is safe — a replica that did apply the insert answers
    /// the retry with a duplicate-key refusal, which the router counts
    /// as that replica's ack).
    NoQuorum {
        /// The shard addressed.
        shard: u32,
        /// Trusted replicas that acked.
        acked: usize,
        /// The configured quorum.
        needed: usize,
    },
    /// No trusted replica could serve the read.
    AllReplicasDown {
        /// The shard addressed.
        shard: u32,
    },
    /// A server-side typed error (dictionary errors pass through here).
    Serve(ServeError),
    /// Re-replication failed (source export or target install).
    Replication {
        /// The shard being re-replicated.
        shard: u32,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoQuorum {
                shard,
                acked,
                needed,
            } => write!(
                f,
                "shard {shard}: {acked} trusted replicas acked, quorum needs {needed}"
            ),
            ClusterError::AllReplicasDown { shard } => {
                write!(f, "shard {shard}: no trusted replica reachable")
            }
            ClusterError::Serve(e) => write!(f, "server error: {e}"),
            ClusterError::Replication { shard, detail } => {
                write!(f, "re-replication of shard {shard} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for ClusterError {
    fn from(e: ServeError) -> Self {
        ClusterError::Serve(e)
    }
}

/// Counters the chaos drills and benches read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Writes acknowledged under the durability invariant.
    pub writes_acked: u64,
    /// Writes refused (no quorum or typed server error).
    pub writes_refused: u64,
    /// Reads answered by the primary replica.
    pub reads_primary: u64,
    /// Reads answered by a non-primary replica after failover.
    pub reads_failover: u64,
    /// Reads answered from the client-side read cache (no network).
    pub reads_cached: u64,
    /// Transport-level failures absorbed (retries, breakers).
    pub transport_failures: u64,
    /// Suspect-latch transitions (false → true), however triggered:
    /// write-path misses, opened breakers, admin `fail_node`, or
    /// proactive heartbeat detection.
    pub suspects_latched: u64,
    /// Latches raised **proactively** by the heartbeat failure detector
    /// (before any client write failed into the node).
    pub heartbeat_detections: u64,
    /// Worst heartbeat detection latency observed, in milliseconds:
    /// first missed probe → suspect latch. Zero until a detection fires.
    pub detection_latency_ms_max: u64,
}

#[derive(Default)]
struct StatCells {
    writes_acked: AtomicU64,
    writes_refused: AtomicU64,
    reads_primary: AtomicU64,
    reads_failover: AtomicU64,
    reads_cached: AtomicU64,
    transport_failures: AtomicU64,
    suspects_latched: AtomicU64,
    heartbeat_detections: AtomicU64,
    detection_latency_ms_max: AtomicU64,
}

/// Pre-resolved registry handles mirroring [`RouterStats`], so the
/// Prometheus snapshot and the stats struct always agree (resolved once
/// in [`ClusterRouter::set_metrics`], updated lock-free on the paths).
struct RouterMetrics {
    writes_acked: Arc<Counter>,
    writes_refused: Arc<Counter>,
    reads_primary: Arc<Counter>,
    reads_failover: Arc<Counter>,
    reads_cached: Arc<Counter>,
    transport_failures: Arc<Counter>,
    suspect_transitions: Arc<Counter>,
    heartbeat_detections: Arc<Counter>,
}

struct NodeSlot {
    addr: SocketAddr,
    conn: Option<TcpClient>,
    breaker: Breaker,
}

/// The outcome of one node-level request attempt series.
enum NodeOutcome {
    /// A response crossed the wire (possibly a typed server error).
    Answered { resp: WireResponse },
    /// No response: breaker open, connect/request failures exhausted.
    Unreachable,
}

/// The report of one [`fail_node`](ClusterRouter::fail_node) /
/// [`restore_node`](ClusterRouter::restore_node) transition.
#[derive(Debug, Clone)]
pub struct ReplicationReport {
    /// The map transition driven.
    pub delta: MapDelta,
    /// Shards successfully re-replicated to their new replica.
    pub replicated: Vec<u32>,
    /// Shards whose re-replication failed, with details.
    pub failed: Vec<(u32, String)>,
}

/// The client-side read cache plus the map epoch its entries were
/// filled under (see [`RouterConfig::read_cache`] for the soundness
/// rules).
struct ReadCache {
    epoch: u64,
    /// Monotonic invalidation generation: bumped by every attempted
    /// write's invalidation and every epoch clear. A cache-missing
    /// lookup snapshots it before routing the read; the fill is refused
    /// if it moved meanwhile, because the fetched value may predate a
    /// write that already invalidated the key.
    inval_gen: u64,
    cache: HotCache,
}

/// The outcome of a read-cache probe: a hit to serve without touching
/// the network, or a miss carrying the invalidation-generation snapshot
/// the routed read must present back to
/// [`fill_cached`](ClusterRouter::fill_cached).
enum CacheProbe {
    /// Cached answer (`Some(sat)` present, `None` absent).
    Hit(Option<Vec<Word>>),
    /// Not cached; `gen` gates the eventual fill.
    Miss { gen: u64 },
}

/// The client-side router over a set of cluster nodes.
pub struct ClusterRouter {
    cluster: ClusterConfig,
    cfg: RouterConfig,
    map: Mutex<ClusterMap>,
    read_cache: Option<Mutex<ReadCache>>,
    nodes: Vec<Mutex<NodeSlot>>,
    /// Sticky needs-re-replication latch, one per node (see the module
    /// docs): set when a write proceeds without a routed replica or a
    /// breaker opens, cleared only by a re-imaging
    /// [`restore_node`](Self::restore_node).
    suspects: Vec<AtomicBool>,
    /// Per-shard fence: ops take it shared, migration exclusively.
    fences: Vec<RwLock<()>>,
    /// Serializes map transitions (fail/restore/repair).
    admin: Mutex<()>,
    stats: StatCells,
    metrics: OnceLock<RouterMetrics>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ClusterRouter {
    /// A router over nodes at `addrs` with capacity `weights`
    /// (`weights[i]` belongs to `addrs[i]`), building the epoch-0 map.
    ///
    /// # Panics
    /// Panics on the [`ClusterMap::build`] parameter violations, on
    /// `addrs.len() != weights.len()`, or a zero write quorum.
    #[must_use]
    pub fn new(
        cluster: ClusterConfig,
        addrs: &[SocketAddr],
        weights: &[u32],
        cfg: RouterConfig,
    ) -> Self {
        assert_eq!(addrs.len(), weights.len());
        assert!(cfg.write_quorum >= 1, "write quorum must be at least 1");
        let map = ClusterMap::build(cluster, weights);
        let nodes = addrs
            .iter()
            .map(|&addr| {
                Mutex::new(NodeSlot {
                    addr,
                    conn: None,
                    breaker: Breaker::new(cfg.breaker_threshold, cfg.breaker_cooldown),
                })
            })
            .collect();
        let fences = (0..cluster.shards).map(|_| RwLock::new(())).collect();
        let suspects = (0..addrs.len()).map(|_| AtomicBool::new(false)).collect();
        let read_cache = cfg.read_cache.map(|c| {
            Mutex::new(ReadCache {
                epoch: map.epoch(),
                inval_gen: 0,
                cache: HotCache::new(c),
            })
        });
        ClusterRouter {
            cluster,
            cfg,
            map: Mutex::new(map),
            read_cache,
            nodes,
            suspects,
            fences,
            admin: Mutex::new(()),
            stats: StatCells::default(),
            metrics: OnceLock::new(),
        }
    }

    /// Mirror this router's counters into `registry` (names prefixed
    /// `cluster_router_`), so a Prometheus / JSON snapshot agrees with
    /// [`stats`](Self::stats). Resolves the handles once; a second call
    /// is a no-op.
    pub fn set_metrics(&self, registry: &MetricsRegistry) {
        let _ = self.metrics.set(RouterMetrics {
            writes_acked: registry.counter("cluster_router_writes_acked", &[]),
            writes_refused: registry.counter("cluster_router_writes_refused", &[]),
            reads_primary: registry.counter("cluster_router_reads", &[("path", "primary")]),
            reads_failover: registry.counter("cluster_router_reads", &[("path", "failover")]),
            reads_cached: registry.counter("cluster_router_reads", &[("path", "cached")]),
            transport_failures: registry.counter("cluster_router_transport_failures", &[]),
            suspect_transitions: registry.counter("cluster_router_suspect_transitions", &[]),
            heartbeat_detections: registry.counter("cluster_router_heartbeat_detections", &[]),
        });
    }

    /// Bump one stats cell and its mirrored registry counter (if
    /// [`set_metrics`](Self::set_metrics) installed one).
    fn bump(&self, cell: &AtomicU64, pick: fn(&RouterMetrics) -> &Counter) {
        cell.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            pick(m).inc();
        }
    }

    /// The shared cluster config.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The router's current map epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        lock(&self.map).epoch()
    }

    /// A snapshot of the current cluster map.
    #[must_use]
    pub fn map_snapshot(&self) -> ClusterMap {
        lock(&self.map).clone()
    }

    /// Current breaker state of `node`.
    #[must_use]
    pub fn node_health(&self, node: usize) -> BreakerState {
        lock(&self.nodes[node]).breaker.state()
    }

    /// Whether `node` is latched suspect: it may have missed an
    /// acknowledged write, so it serves no reads and counts toward no
    /// write quorum — whatever its breaker says — until
    /// [`restore_node`](Self::restore_node) re-images it.
    #[must_use]
    pub fn node_suspect(&self, node: usize) -> bool {
        self.suspects[node].load(Ordering::Acquire)
    }

    /// Point `node` at a new address (a restarted process rarely comes
    /// back on the same port). Drops any cached connection. Callers
    /// restoring a node should prefer
    /// [`restore_node`](Self::restore_node), which folds the re-address
    /// in.
    pub fn set_node_addr(&self, node: usize, addr: SocketAddr) {
        let mut slot = lock(&self.nodes[node]);
        slot.addr = addr;
        slot.conn = None;
    }

    /// The address the router currently dials for `node`.
    #[must_use]
    pub fn node_addr(&self, node: usize) -> SocketAddr {
        lock(&self.nodes[node]).addr
    }

    /// Number of nodes this router was built over.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            writes_acked: self.stats.writes_acked.load(Ordering::Relaxed),
            writes_refused: self.stats.writes_refused.load(Ordering::Relaxed),
            reads_primary: self.stats.reads_primary.load(Ordering::Relaxed),
            reads_failover: self.stats.reads_failover.load(Ordering::Relaxed),
            reads_cached: self.stats.reads_cached.load(Ordering::Relaxed),
            transport_failures: self.stats.transport_failures.load(Ordering::Relaxed),
            suspects_latched: self.stats.suspects_latched.load(Ordering::Relaxed),
            heartbeat_detections: self.stats.heartbeat_detections.load(Ordering::Relaxed),
            detection_latency_ms_max: self.stats.detection_latency_ms_max.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------- ops

    /// Insert `key` with satellite words; acknowledged under the
    /// durability invariant.
    ///
    /// Inserts are **idempotent**: a replica's duplicate-key refusal
    /// certifies the key is already durably present there and counts as
    /// that replica's ack, so retrying after a [`ClusterError::NoQuorum`]
    /// (or re-inserting an existing key) acknowledges cleanly. The
    /// stored satellite is whatever the first successful insert wrote —
    /// a duplicate ack does not overwrite it.
    ///
    /// # Errors
    /// [`ClusterError::NoQuorum`] when too few trusted replicas acked;
    /// [`ClusterError::Serve`] for typed server refusals.
    pub fn insert(&self, key: u64, satellite: &[Word]) -> Result<(), ClusterError> {
        match self.write(key, Op::Insert(key, satellite.to_vec()))? {
            Reply::Inserted => Ok(()),
            other => Err(ClusterError::Serve(ServeError::Protocol(format!(
                "insert answered {other:?}"
            )))),
        }
    }

    /// Delete `key`; returns whether it had been present. Acknowledged
    /// under the durability invariant.
    ///
    /// # Errors
    /// As [`insert`](Self::insert).
    pub fn delete(&self, key: u64) -> Result<bool, ClusterError> {
        match self.write(key, Op::Delete(key))? {
            Reply::Deleted(was) => Ok(was),
            other => Err(ClusterError::Serve(ServeError::Protocol(format!(
                "delete answered {other:?}"
            )))),
        }
    }

    /// Look up `key`: primary replica first, automatic failover to the
    /// remaining replicas (degraded but exact — every trusted replica
    /// holds every acknowledged write).
    ///
    /// # Errors
    /// [`ClusterError::AllReplicasDown`] when no trusted replica
    /// answers; [`ClusterError::Serve`] for typed server errors.
    pub fn lookup(&self, key: u64) -> Result<Option<Vec<Word>>, ClusterError> {
        let fill_gen = match self.probe_cached(key) {
            CacheProbe::Hit(hit) => {
                self.bump(&self.stats.reads_cached, |m| &m.reads_cached);
                return Ok(hit);
            }
            CacheProbe::Miss { gen } => gen,
        };
        let shard = self.cluster.shard_of(key);
        let fence = self.fences[shard as usize]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let mut refreshes = 0;
        'epoch: loop {
            let (epoch, replicas) = self.route(shard);
            for (i, &node) in replicas.iter().enumerate() {
                let req = WireRequest::ShardOp {
                    shard,
                    epoch,
                    op: Op::Lookup(key),
                };
                match self.request_on_node(node, &req) {
                    NodeOutcome::Answered { resp } => match resp {
                        WireResponse::Reply(Reply::Lookup(sat)) => {
                            if i == 0 {
                                self.bump(&self.stats.reads_primary, |m| &m.reads_primary);
                            } else {
                                self.bump(&self.stats.reads_failover, |m| &m.reads_failover);
                            }
                            self.fill_cached(key, sat.as_deref(), epoch, fill_gen);
                            return Ok(sat);
                        }
                        WireResponse::Err(ServeError::StaleEpoch { .. }) if refreshes < 3 => {
                            refreshes += 1;
                            continue 'epoch;
                        }
                        // A replica the node does not (yet) host: fail
                        // over like an unreachable one.
                        WireResponse::Err(ServeError::WrongShard { .. }) => {}
                        WireResponse::Err(e) => return Err(ClusterError::Serve(e)),
                        other => {
                            return Err(ClusterError::Serve(ServeError::Protocol(format!(
                                "lookup answered {other:?}"
                            ))))
                        }
                    },
                    NodeOutcome::Unreachable => {}
                }
            }
            drop(fence);
            return Err(ClusterError::AllReplicasDown { shard });
        }
    }

    /// Consult the read cache. A hit is served without touching the
    /// network; a miss carries the invalidation-generation snapshot
    /// gating the eventual fill. Observing a map epoch newer than the
    /// cache's tag drops every entry first — a failover or restore
    /// changed who holds the data, so nothing cached before the
    /// transition survives it. With the cache disabled the probe is a
    /// plain miss (the fill is a no-op, so the token is moot).
    fn probe_cached(&self, key: u64) -> CacheProbe {
        let Some(rc) = &self.read_cache else {
            return CacheProbe::Miss { gen: 0 };
        };
        let current = self.epoch();
        let mut rc = lock(rc);
        if rc.epoch != current {
            rc.cache.clear();
            rc.epoch = current;
            rc.inval_gen += 1;
        }
        match rc.cache.probe(key) {
            CacheAnswer::Hit(sat) => CacheProbe::Hit(Some(sat)),
            CacheAnswer::NegativeHit => CacheProbe::Hit(None),
            CacheAnswer::Miss => CacheProbe::Miss { gen: rc.inval_gen },
        }
    }

    /// Offer a routed lookup's answer to the read cache, tagged with the
    /// `epoch` it was routed under and the invalidation generation `gen`
    /// its probe snapshotted. Refused unless that epoch is still the one
    /// the cache is synced to (epochs are monotone, so a stale tag can
    /// never come back) **and** no invalidation ran since the probe — a
    /// concurrent write may have applied on the replicas and invalidated
    /// the key while this read was on the wire, in which case the value
    /// it fetched predates the write and caching it would serve the
    /// stale answer until the next write or epoch bump. Misses pass
    /// `certified_absent = false`: the wire reply carries no provenance,
    /// so absence is never cached at this tier.
    fn fill_cached(&self, key: u64, satellite: Option<&[Word]>, epoch: u64, gen: u64) {
        let Some(rc) = &self.read_cache else { return };
        if self.epoch() != epoch {
            return;
        }
        let mut rc = lock(rc);
        if rc.epoch == epoch && rc.inval_gen == gen {
            rc.cache.fill(key, satellite, false);
        }
    }

    /// Drop whatever the read cache holds for `key` — called for every
    /// *attempted* write before its outcome reaches the caller (a
    /// refused write may still have applied on some replica). Bumps the
    /// invalidation generation so every read that left for the network
    /// before this point is refused its fill (see
    /// [`fill_cached`](Self::fill_cached)) — the bump is unconditional
    /// because the attempted write, not the entry's residency, is what
    /// makes in-flight reads untrustworthy.
    fn invalidate_cached(&self, key: u64) {
        if let Some(rc) = &self.read_cache {
            let mut rc = lock(rc);
            rc.inval_gen += 1;
            rc.cache.invalidate(key);
        }
    }

    /// Read-cache counter snapshot, `None` when the cache is disabled.
    #[must_use]
    pub fn read_cache_counters(&self) -> Option<CacheCounters> {
        self.read_cache.as_ref().map(|rc| lock(rc).cache.counters())
    }

    /// The mutating-op common path (see the module docs for the
    /// durability invariant): route the op, then drop the key from the
    /// read cache before the caller sees any outcome — acked or refused,
    /// the write may have physically applied somewhere.
    fn write(&self, key: u64, op: Op) -> Result<Reply, ClusterError> {
        let result = self.write_routed(key, op);
        self.invalidate_cached(key);
        result
    }

    fn write_routed(&self, key: u64, op: Op) -> Result<Reply, ClusterError> {
        let shard = self.cluster.shard_of(key);
        let fence = self.fences[shard as usize]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let mut refreshes = 0;
        let reply = 'epoch: loop {
            let (epoch, replicas) = self.route(shard);
            let mut acked = 0usize;
            let mut reply: Option<Reply> = None;
            for &node in &replicas {
                let req = WireRequest::ShardOp {
                    shard,
                    epoch,
                    op: op.clone(),
                };
                match self.request_on_node(node, &req) {
                    NodeOutcome::Answered { resp } => match resp {
                        WireResponse::Reply(r) => {
                            acked += 1;
                            reply.get_or_insert(r);
                        }
                        // A duplicate-key refusal certifies the key is
                        // already durably present on this replica — the
                        // ack of an idempotent insert (a caller retry
                        // after NoQuorum, a transport or stale-epoch
                        // retry, or a plain re-insert).
                        WireResponse::Err(ServeError::Dict(
                            pdm_dict::DictError::DuplicateKey(_),
                        )) if matches!(op, Op::Insert(..)) => {
                            acked += 1;
                            reply.get_or_insert(Reply::Inserted);
                        }
                        WireResponse::Err(ServeError::StaleEpoch { .. }) if refreshes < 3 => {
                            refreshes += 1;
                            continue 'epoch;
                        }
                        // A replica the node does not (yet) host — the
                        // re-replication window. Not an ack, but not
                        // fatal either: the shard fence guarantees the
                        // pending image (frozen only after this write
                        // applied on the survivors) carries the write
                        // to it, so the quorum check decides.
                        WireResponse::Err(ServeError::WrongShard { .. }) => {}
                        WireResponse::Err(e) => {
                            self.bump(&self.stats.writes_refused, |m| &m.writes_refused);
                            return Err(ClusterError::Serve(e));
                        }
                        other => {
                            self.bump(&self.stats.writes_refused, |m| &m.writes_refused);
                            return Err(ClusterError::Serve(ServeError::Protocol(format!(
                                "write answered {other:?}"
                            ))));
                        }
                    },
                    // The write proceeds without this routed replica: it
                    // is missing acknowledged writes from here on, so
                    // latch it out of the read/ack sets until
                    // re-imaged (the durability invariant).
                    NodeOutcome::Unreachable => self.mark_suspect(node),
                }
            }
            if acked < self.cfg.write_quorum {
                self.bump(&self.stats.writes_refused, |m| &m.writes_refused);
                drop(fence);
                return Err(ClusterError::NoQuorum {
                    shard,
                    acked,
                    needed: self.cfg.write_quorum,
                });
            }
            break reply.expect("acked >= 1 implies a reply");
        };
        self.bump(&self.stats.writes_acked, |m| &m.writes_acked);
        Ok(reply)
    }

    /// Map snapshot for one shard: (epoch, trusted replicas — map-up
    /// and not latched suspect — in failover order).
    fn route(&self, shard: u32) -> (u64, Vec<usize>) {
        let map = lock(&self.map);
        let replicas = map
            .replicas(shard)
            .iter()
            .copied()
            .filter(|&n| map.nodes()[n].up && !self.suspects[n].load(Ordering::Acquire))
            .collect();
        (map.epoch(), replicas)
    }

    /// Latch `node` suspect: it stops serving reads and counting toward
    /// write quorums until a re-imaging restore clears it.
    fn mark_suspect(&self, node: usize) {
        if !self.suspects[node].swap(true, Ordering::AcqRel) {
            self.bump(&self.stats.suspects_latched, |m| &m.suspect_transitions);
        }
    }

    /// Proactively latch `node` suspect — the heartbeat failure
    /// detector's entry point (see `crate::heartbeat`), fired *before*
    /// any client write has to fail into the node. Latch-only by
    /// design: the breaker stays untouched (transport state and
    /// durability trust are separate), but routing
    /// excludes the node immediately, so no further write is ever
    /// acknowledged through it. Cleared like every latch, by a
    /// re-imaging [`restore_node`](Self::restore_node).
    pub fn suspect_node(&self, node: usize) {
        self.mark_suspect(node);
    }

    /// Record a completed proactive detection (heartbeat internal):
    /// `latency_ms` is first missed probe → suspect latch.
    pub(crate) fn note_detection(&self, latency_ms: u64) {
        self.bump(&self.stats.heartbeat_detections, |m| &m.heartbeat_detections);
        self.stats
            .detection_latency_ms_max
            .fetch_max(latency_ms, Ordering::Relaxed);
    }

    /// One request against one node with retries, breaker accounting,
    /// and lazy (re)connection.
    ///
    /// The node's slot lock is held only to consult the breaker and to
    /// take or return the cached connection — never across connects,
    /// request deadlines, or backoff sleeps — so a slow node delays
    /// only its own request series, not every concurrent router op
    /// that targets it.
    fn request_on_node(&self, node: usize, req: &WireRequest) -> NodeOutcome {
        for attempt in 0..self.cfg.retry.attempts {
            if attempt > 0 {
                std::thread::sleep(self.cfg.retry.delay(attempt));
            }
            // Lease: breaker check + connection grab under a brief lock.
            let (addr, leased) = {
                let mut slot = lock(&self.nodes[node]);
                if !slot.breaker.allow() {
                    return NodeOutcome::Unreachable;
                }
                (slot.addr, slot.conn.take())
            };
            let mut conn = match leased.filter(|c| !c.is_poisoned()) {
                Some(c) => c,
                None => {
                    let fresh = TcpClient::connect_timeout(addr, self.cfg.connect_timeout)
                        .and_then(|mut c| {
                            c.set_deadline(Some(self.cfg.request_deadline))?;
                            Ok(c)
                        });
                    match fresh {
                        Ok(c) => c,
                        Err(_) => {
                            self.note_transport_failure(node);
                            continue;
                        }
                    }
                }
            };
            match conn.request(req) {
                Ok(resp) => {
                    let mut slot = lock(&self.nodes[node]);
                    slot.breaker.record_success();
                    // Return the lease — unless the node was re-addressed
                    // meanwhile or a concurrent series already parked a
                    // connection.
                    if slot.addr == addr && slot.conn.is_none() {
                        slot.conn = Some(conn);
                    }
                    return NodeOutcome::Answered { resp };
                }
                // Transport-level failure: the leased connection is
                // useless (timed out → poisoned, or the stream broke);
                // drop it and let the next attempt reconnect.
                Err(_) => self.note_transport_failure(node),
            }
        }
        NodeOutcome::Unreachable
    }

    fn note_transport_failure(&self, node: usize) {
        let mut slot = lock(&self.nodes[node]);
        slot.breaker.record_failure();
        // A node that just crossed its failure threshold may already
        // have missed writes it was routed for; latch it out of the
        // read/ack sets until it is re-imaged.
        if slot.breaker.state() == BreakerState::Open {
            self.mark_suspect(node);
        }
        drop(slot);
        self.bump(&self.stats.transport_failures, |m| &m.transport_failures);
    }

    // ------------------------------------------------- map transitions

    /// Declare `node` dead: trip its breaker, bump the map epoch
    /// (moving only the dead node's replicas — the Lemma 3 bounded
    /// movement), broadcast the new epoch, and re-replicate every moved
    /// shard from its surviving primary onto its new replica.
    ///
    /// # Errors
    /// Never fails as a whole; per-shard re-replication failures are
    /// reported in [`ReplicationReport::failed`].
    #[allow(clippy::missing_panics_doc)] // map invariants, not runtime conditions
    pub fn fail_node(&self, node: usize) -> Result<ReplicationReport, ClusterError> {
        let _admin = lock(&self.admin);
        {
            let mut slot = lock(&self.nodes[node]);
            slot.breaker.trip();
            slot.conn = None;
        }
        self.mark_suspect(node);
        let delta = lock(&self.map).mark_down(node);
        self.broadcast_epoch(delta.epoch);
        self.drive_moves(delta)
    }

    /// Bring a restarted (empty) `node` back at `addr`: re-point the
    /// router at the reborn process (folding in
    /// [`set_node_addr`](Self::set_node_addr), which callers used to
    /// have to remember separately), bump the epoch, hand the node back
    /// only its fair share of replica slots, re-replicate them onto it
    /// from their current primaries, and reset its breaker and suspect
    /// latch.
    ///
    /// Clearing the latch before the images install is safe: until a
    /// shard's image lands, the node answers its operations with
    /// `WrongShard`, which reads fail over past and writes skip — and
    /// the shard fence guarantees any write skipped this way is frozen
    /// into the image that follows it.
    ///
    /// # Errors
    /// As [`fail_node`](Self::fail_node).
    pub fn restore_node(
        &self,
        node: usize,
        addr: SocketAddr,
    ) -> Result<ReplicationReport, ClusterError> {
        self.set_node_addr(node, addr);
        self.restore_node_in_place(node)
    }

    /// [`restore_node`](Self::restore_node) for a node that came back
    /// on its **existing** address (a healed partition rather than a
    /// restarted process).
    ///
    /// # Errors
    /// As [`fail_node`](Self::fail_node).
    #[allow(clippy::missing_panics_doc)]
    pub fn restore_node_in_place(&self, node: usize) -> Result<ReplicationReport, ClusterError> {
        let _admin = lock(&self.admin);
        let delta = lock(&self.map).mark_up(node);
        {
            let mut slot = lock(&self.nodes[node]);
            slot.breaker.reset();
            slot.conn = None;
        }
        self.suspects[node].store(false, Ordering::Release);
        self.broadcast_epoch(delta.epoch);
        self.drive_moves(delta)
    }

    /// Declare dead every map-up node the request path latched suspect
    /// and drive the repairs. Returns one report per node declared
    /// dead.
    ///
    /// Selection is on the **sticky** latch, not the breaker's
    /// transient state: a breaker half-opens once its cooldown passes,
    /// but a node that missed writes stays suspect until re-imaged, so
    /// `repair` finds it no matter when it is called.
    ///
    /// # Errors
    /// Per-shard failures are inside the reports; the call itself does
    /// not fail.
    pub fn repair(&self) -> Result<Vec<ReplicationReport>, ClusterError> {
        let suspects: Vec<usize> = {
            let map = lock(&self.map);
            (0..self.nodes.len())
                .filter(|&n| map.nodes()[n].up && self.suspects[n].load(Ordering::Acquire))
                .collect()
        };
        suspects.into_iter().map(|n| self.fail_node(n)).collect()
    }

    /// Best-effort epoch broadcast to every up node (a node that misses
    /// it learns the epoch piggybacked on the next request).
    fn broadcast_epoch(&self, epoch: u64) {
        let up: Vec<usize> = {
            let map = lock(&self.map);
            (0..self.nodes.len()).filter(|&n| map.nodes()[n].up).collect()
        };
        for node in up {
            let _ = self.request_on_node(node, &WireRequest::EpochSet { epoch });
        }
    }

    /// Drive every move of a map delta. Each move targets a distinct
    /// shard (a delta moves at most one replica per shard) and
    /// [`re_replicate`](Self::re_replicate) runs under that shard's
    /// exclusive fence, so the moves are independent: they run on a
    /// small thread pool ([`MIGRATION_THREADS`]) instead of serially.
    /// The report lists shards in ascending order regardless of
    /// completion order.
    fn drive_moves(&self, delta: MapDelta) -> Result<ReplicationReport, ClusterError> {
        let results: Mutex<Vec<(u32, Result<(), ClusterError>)>> =
            Mutex::new(Vec::with_capacity(delta.moves.len()));
        let next = AtomicUsize::new(0);
        let workers = MIGRATION_THREADS.min(delta.moves.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(mv) = delta.moves.get(i) else { break };
                    let outcome = self.re_replicate(mv.shard, mv.to);
                    lock(&results).push((mv.shard, outcome));
                });
            }
        });
        let mut results = results.into_inner().unwrap_or_else(PoisonError::into_inner);
        results.sort_by_key(|&(shard, _)| shard);
        let mut replicated = Vec::new();
        let mut failed = Vec::new();
        for (shard, outcome) in results {
            match outcome {
                Ok(()) => replicated.push(shard),
                Err(e) => failed.push((shard, e.to_string())),
            }
        }
        Ok(ReplicationReport {
            delta,
            replicated,
            failed,
        })
    }

    /// Copy `shard`'s frozen image from its first trusted replica (a
    /// data holder — new replicas are appended behind the survivors,
    /// and a suspect holder may be missing acknowledged writes, so it
    /// is never a source) onto `target`, under the shard's exclusive
    /// fence.
    fn re_replicate(&self, shard: u32, target: usize) -> Result<(), ClusterError> {
        let _fence = self.fences[shard as usize]
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let source = {
            let map = lock(&self.map);
            map.replicas(shard)
                .iter()
                .copied()
                .find(|&n| n != target && !self.suspects[n].load(Ordering::Acquire))
        };
        let Some(source) = source else {
            return Err(ClusterError::Replication {
                shard,
                detail: "no trusted surviving data holder \
                         (k = 1 cannot re-replicate; suspect replicas are not trusted sources)"
                    .into(),
            });
        };
        let fail = |detail: String| ClusterError::Replication { shard, detail };

        // Pull the frozen image from the source, chunk by chunk.
        let mut image = Vec::new();
        let mut chunk = 0u32;
        loop {
            let req = WireRequest::MigrateExport { shard, chunk };
            let NodeOutcome::Answered { resp } = self.request_on_node(source, &req) else {
                return Err(fail(format!("source node {source} unreachable")));
            };
            match resp {
                WireResponse::ExportChunk {
                    total,
                    chunk: c,
                    bytes,
                } => {
                    if c != chunk {
                        return Err(fail(format!("export answered chunk {c}, wanted {chunk}")));
                    }
                    image.extend_from_slice(&bytes);
                    chunk += 1;
                    if chunk == total {
                        break;
                    }
                }
                WireResponse::Err(e) => return Err(fail(format!("export: {e}"))),
                other => return Err(fail(format!("export answered {other:?}"))),
            }
        }

        // Push it into the target.
        let total = crate::image::chunks_of(image.len());
        for c in 0..total {
            let req = WireRequest::MigrateInstall {
                shard,
                total,
                chunk: c,
                bytes: crate::image::chunk_slice(&image, c).to_vec(),
            };
            let NodeOutcome::Answered { resp } = self.request_on_node(target, &req) else {
                return Err(fail(format!("target node {target} unreachable")));
            };
            match resp {
                WireResponse::InstallOk { installed } => {
                    if (c + 1 == total) != installed {
                        return Err(fail(format!(
                            "install chunk {c}/{total} answered installed={installed}"
                        )));
                    }
                }
                WireResponse::Err(e) => return Err(fail(format!("install: {e}"))),
                other => return Err(fail(format!("install answered {other:?}"))),
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRouter")
            .field("epoch", &self.epoch())
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A router whose read cache admits on first fill; the addresses are
    /// never dialed (these tests drive the cache helpers directly).
    fn cached_router() -> ClusterRouter {
        let cfg = RouterConfig {
            read_cache: Some(CacheConfig::default().with_admit_threshold(1)),
            ..RouterConfig::default()
        };
        let addrs: Vec<SocketAddr> = vec![
            "127.0.0.1:1".parse().unwrap(),
            "127.0.0.1:2".parse().unwrap(),
        ];
        ClusterRouter::new(ClusterConfig::default(), &addrs, &[1, 1], cfg)
    }

    /// The fill/invalidate race: a lookup misses the cache and routes to
    /// the replicas; while it is on the wire a write applies and
    /// invalidates the key; the value the lookup fetched (pre-write)
    /// must not enter the cache, or every later lookup — including the
    /// writer's own — would serve it under an unchanged epoch.
    #[test]
    fn racing_fill_after_invalidation_is_refused() {
        let router = cached_router();
        let epoch = router.epoch();

        // Reader probes: miss, snapshotting the invalidation generation.
        let CacheProbe::Miss { gen } = router.probe_cached(7) else {
            panic!("empty cache must miss");
        };
        // A concurrent write lands on the replicas in the window.
        router.invalidate_cached(7);
        // The reader returns with the pre-write value: refused.
        router.fill_cached(7, Some(&[0xDEAD]), epoch, gen);
        assert!(
            matches!(router.probe_cached(7), CacheProbe::Miss { .. }),
            "stale pre-write value must not become a cache hit"
        );

        // Without a racing invalidation the same sequence fills fine.
        let CacheProbe::Miss { gen } = router.probe_cached(7) else {
            panic!("refused fill must leave the key non-resident");
        };
        router.fill_cached(7, Some(&[0xBEEF]), epoch, gen);
        match router.probe_cached(7) {
            CacheProbe::Hit(Some(sat)) => assert_eq!(sat, vec![0xBEEF]),
            _ => panic!("un-raced fill must become a hit"),
        }
    }

    /// The generation bump is keyed to the *attempted* write, not to the
    /// key's residency: invalidating a key that was never cached still
    /// refuses every in-flight fill (of any key) snapshotted before it.
    #[test]
    fn invalidation_of_absent_key_still_fences_fills() {
        let router = cached_router();
        let epoch = router.epoch();
        let CacheProbe::Miss { gen } = router.probe_cached(1) else {
            panic!("empty cache must miss");
        };
        router.invalidate_cached(2);
        router.fill_cached(1, Some(&[11]), epoch, gen);
        assert!(
            matches!(router.probe_cached(1), CacheProbe::Miss { .. }),
            "per-cache generation is conservative across keys"
        );
    }
}
