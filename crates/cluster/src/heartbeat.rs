//! Proactive failure detection: a heartbeater thread per router.
//!
//! PR 8's router distrusts a node only *reactively* — after a client
//! write fails into its breaker. The [`Heartbeater`] closes that gap:
//! a background thread pings every map-up, not-yet-suspect node's
//! existing health opcode (`Ping`) on a configurable interval, feeding
//! the outcomes to the deterministic
//! [`crate::health::FailureDetector`]. When a node
//! crosses the consecutive-miss threshold, the heartbeater latches the
//! router's sticky suspect via
//! [`ClusterRouter::suspect_node`] — **before** any client write had to
//! fail — and, if configured, triggers
//! [`ClusterRouter::repair`] immediately instead of waiting for
//! breaker thresholds on the request path.
//!
//! Detection latency (first missed probe → suspect latch) is bounded by
//! `suspect_after × (interval + probe_timeout)`; with the default
//! `probe_timeout ≤ interval / 3` and `suspect_after = 2` it stays
//! under three probe intervals, the bound the `netchaos` bench gates.
//!
//! The heartbeater owns its probe connections (one cached
//! [`TcpClient`] per node, separate from the router's request-path
//! slots) so probe traffic never competes for a node's connection
//! lease, and a wedged probe can only stall the heartbeat thread, not
//! client requests. Probes are wall-clock scheduled, so drills that
//! must replay bit-identically (two runs, equal [`RouterStats`]) run
//! without a heartbeater; the detector itself stays deterministic in
//! its probe outcomes.
//!
//! [`RouterStats`]: crate::router::RouterStats

use crate::health::{FailureDetector, Liveness};
use crate::router::ClusterRouter;
use pdm::metrics::{Counter, Histogram, MetricsRegistry};
use pdm_server::TcpClient;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the heartbeat thread sleeps per wait slice, so stop
/// requests are honored promptly even with long probe intervals.
const STOP_POLL: Duration = Duration::from_millis(20);

/// Heartbeater tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Probe period: every node is pinged once per interval.
    pub interval: Duration,
    /// Per-probe bound (connect + request). A probe that outlives it is
    /// a miss. Keep it at or below `interval / 3` so detection stays
    /// within the three-interval bound (see the [module docs](self)).
    pub probe_timeout: Duration,
    /// Consecutive missed probes before a node is suspected.
    pub suspect_after: u32,
    /// Drive [`ClusterRouter::repair`] as soon as a detection latches a
    /// suspect (re-replicating its shards onto survivors), instead of
    /// leaving the repair to an operator.
    pub auto_repair: bool,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(150),
            suspect_after: 2,
            auto_repair: false,
        }
    }
}

/// Counters the heartbeater maintains (drill- and bench-readable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeartbeatStats {
    /// Probes answered in time.
    pub probes_ok: u64,
    /// Probes missed (connect failure, timeout, or typed error).
    pub probes_missed: u64,
    /// Alive → suspected detections fired.
    pub detections: u64,
    /// Latency of the most recent detection, in milliseconds (first
    /// missed probe → suspect latch). Zero until a detection fires.
    pub last_detection_latency_ms: u64,
}

#[derive(Default)]
struct HbCells {
    probes_ok: AtomicU64,
    probes_missed: AtomicU64,
    detections: AtomicU64,
    last_detection_latency_ms: AtomicU64,
}

/// Pre-resolved registry handles for probe/detection observability.
struct HbMetrics {
    probe_rtt_us: Arc<Histogram>,
    probes_missed: Arc<Counter>,
    detection_latency_ms: Arc<Histogram>,
}

/// The background probe thread (see the [module docs](self)). Stops on
/// [`stop`](Heartbeater::stop) or drop.
pub struct Heartbeater {
    stop: Arc<AtomicBool>,
    cells: Arc<HbCells>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeater {
    /// Start probing every node of `router` per `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg.suspect_after == 0` or the probe thread cannot be
    /// spawned.
    #[must_use]
    pub fn start(router: Arc<ClusterRouter>, cfg: HeartbeatConfig) -> Self {
        Self::start_inner(router, cfg, None)
    }

    /// Like [`start`](Self::start), additionally exporting a probe RTT
    /// histogram (`cluster_heartbeat_probe_rtt_us`), a missed-probe
    /// counter (`cluster_heartbeat_probes_missed`) and a
    /// detection-latency histogram
    /// (`cluster_heartbeat_detection_latency_ms`) through `registry`.
    /// Pair it with [`ClusterRouter::set_metrics`] on the same registry
    /// so suspect transitions land there too.
    ///
    /// # Panics
    /// As [`start`](Self::start).
    #[must_use]
    pub fn start_with_metrics(
        router: Arc<ClusterRouter>,
        cfg: HeartbeatConfig,
        registry: &MetricsRegistry,
    ) -> Self {
        let metrics = HbMetrics {
            probe_rtt_us: registry.histogram("cluster_heartbeat_probe_rtt_us", &[]),
            probes_missed: registry.counter("cluster_heartbeat_probes_missed", &[]),
            detection_latency_ms: registry.histogram("cluster_heartbeat_detection_latency_ms", &[]),
        };
        Self::start_inner(router, cfg, Some(metrics))
    }

    fn start_inner(
        router: Arc<ClusterRouter>,
        cfg: HeartbeatConfig,
        metrics: Option<HbMetrics>,
    ) -> Self {
        assert!(cfg.suspect_after >= 1, "suspect_after must be at least 1");
        let stop = Arc::new(AtomicBool::new(false));
        let cells = Arc::new(HbCells::default());
        let handle = {
            let stop = Arc::clone(&stop);
            let cells = Arc::clone(&cells);
            std::thread::Builder::new()
                .name("pdm-heartbeat".into())
                .spawn(move || heartbeat_loop(&router, cfg, &stop, &cells, metrics.as_ref()))
                .expect("spawn heartbeat thread")
        };
        Heartbeater {
            stop,
            cells,
            handle: Some(handle),
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> HeartbeatStats {
        HeartbeatStats {
            probes_ok: self.cells.probes_ok.load(Ordering::Relaxed),
            probes_missed: self.cells.probes_missed.load(Ordering::Relaxed),
            detections: self.cells.detections.load(Ordering::Relaxed),
            last_detection_latency_ms: self.cells.last_detection_latency_ms.load(Ordering::Relaxed),
        }
    }

    /// Stop the probe thread, join it, and return the final counter
    /// snapshot (nothing moves after the join, so the numbers are safe
    /// to compare against other sinks).
    pub fn stop(mut self) -> HeartbeatStats {
        self.stop_inner();
        self.stats()
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Heartbeater {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl std::fmt::Debug for Heartbeater {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heartbeater")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

fn heartbeat_loop(
    router: &ClusterRouter,
    cfg: HeartbeatConfig,
    stop: &AtomicBool,
    cells: &HbCells,
    metrics: Option<&HbMetrics>,
) {
    let n = router.node_count();
    let mut detector = FailureDetector::new(n, cfg.suspect_after);
    let mut conns: Vec<Option<TcpClient>> = (0..n).map(|_| None).collect();
    let mut first_miss: Vec<Option<Instant>> = vec![None; n];
    while !stop.load(Ordering::Acquire) {
        let tick = Instant::now();
        let map = router.map_snapshot();
        for node in 0..n {
            if stop.load(Ordering::Acquire) {
                return;
            }
            if !map.nodes()[node].up {
                continue;
            }
            if router.node_suspect(node) {
                // Latched by the request path or an admin transition;
                // nothing for a probe to add.
                continue;
            }
            if detector.liveness(node) == Liveness::Suspected {
                // The router restored (re-imaged) the node since our
                // detection — re-arm with a clean slate.
                detector.clear(node);
                first_miss[node] = None;
            }
            let t0 = Instant::now();
            if probe(&mut conns[node], router, node, cfg.probe_timeout) {
                cells.probes_ok.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics {
                    let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                    m.probe_rtt_us.observe(us);
                }
                detector.record_success(node);
                first_miss[node] = None;
            } else {
                cells.probes_missed.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics {
                    m.probes_missed.inc();
                }
                conns[node] = None;
                let since = *first_miss[node].get_or_insert(t0);
                if detector.record_miss(node) {
                    router.suspect_node(node);
                    let latency =
                        u64::try_from(since.elapsed().as_millis()).unwrap_or(u64::MAX);
                    router.note_detection(latency);
                    cells.detections.fetch_add(1, Ordering::Relaxed);
                    cells
                        .last_detection_latency_ms
                        .store(latency, Ordering::Relaxed);
                    if let Some(m) = metrics {
                        m.detection_latency_ms.observe(latency);
                    }
                    if cfg.auto_repair {
                        let _ = router.repair();
                    }
                }
            }
        }
        // Sleep out the remainder of the interval in stop-aware slices.
        while tick.elapsed() < cfg.interval {
            if stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(STOP_POLL.min(cfg.interval.saturating_sub(tick.elapsed())));
        }
    }
}

/// One ping against `node`'s health opcode within `timeout`, reusing a
/// cached connection when one is alive.
fn probe(
    conn: &mut Option<TcpClient>,
    router: &ClusterRouter,
    node: usize,
    timeout: Duration,
) -> bool {
    if conn.as_ref().is_some_and(TcpClient::is_poisoned) {
        *conn = None;
    }
    let client = match conn {
        Some(c) => c,
        None => {
            let fresh = TcpClient::connect_timeout(router.node_addr(node), timeout)
                .and_then(|mut c| {
                    c.set_deadline(Some(timeout))?;
                    Ok(c)
                });
            match fresh {
                Ok(c) => conn.insert(c),
                Err(_) => return false,
            }
        }
    };
    client.ping().is_ok()
}
