//! A cluster node: several single-shard serving engines behind one TCP
//! listener speaking the shard-addressed wire protocol.
//!
//! Each hosted global shard gets its **own** [`ServeEngine`] (one
//! internal shard each). That keeps migration surgical: freezing a
//! shard for export quiesces exactly that engine, while every other
//! shard on the node keeps serving. The node constructs each shard's
//! dictionary deterministically from the shared [`ClusterConfig`] —
//! there is no provisioning step and no directory, in the paper's
//! spirit: any node can (re)build or adopt any shard from the config
//! plus, for adoption, a migrated image.
//!
//! Epoch discipline: the node remembers the highest cluster-map epoch
//! it has seen (learned from [`WireRequest::EpochSet`] or piggybacked
//! on any shard-addressed request) and refuses older routing with
//! [`ServeError::StaleEpoch`]. Requests for shards it does not host
//! answer [`ServeError::WrongShard`].

use crate::image::{chunk_slice, chunks_of, deserialize_image, serialize_image};
use crate::map::ClusterConfig;
use pdm::{DiskArray, JournalRegion, PdmConfig};
use pdm_dict::layout::DiskAllocator;
use pdm_dict::{Dict, DictHandle, DynamicDict};
use pdm_server::protocol::{
    decode_request, encode_response, read_frame_poll, write_frame, FrameRead, WireRequest,
    WireResponse,
};
use pdm_server::server::DEFAULT_READ_POLL;
use pdm_server::{DictClient, EngineConfig, Op, ServeEngine, ServeError};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning of one cluster node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Engine tuning applied to every hosted shard's engine.
    pub engine: EngineConfig,
    /// Connection read-poll (bounds node shutdown latency).
    pub read_poll: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            engine: EngineConfig::default(),
            read_poll: DEFAULT_READ_POLL,
        }
    }
}

struct ShardHost {
    engine: ServeEngine,
    client: DictClient,
}

struct ExportStage {
    bytes: Vec<u8>,
    total: u32,
}

struct InstallStage {
    total: u32,
    received: u32,
    bytes: Vec<u8>,
}

struct NodeInner {
    cluster: ClusterConfig,
    cfg: NodeConfig,
    epoch: AtomicU64,
    stop: AtomicBool,
    shards: Mutex<HashMap<u32, ShardHost>>,
    exports: Mutex<HashMap<u32, ExportStage>>,
    installs: Mutex<HashMap<u32, InstallStage>>,
}

/// Build one global shard's dictionary front from nothing but the
/// shared config — deterministic, so every party agrees on the layout.
///
/// # Panics
/// Panics if the config's dictionary parameters are rejected (they are
/// validated identically on every node, so this is a config bug, not a
/// runtime condition).
#[must_use]
pub fn build_shard(cluster: &ClusterConfig, shard: u32) -> Box<dyn Dict + Send> {
    let params = cluster.shard_params(shard);
    let nd = 2 * params.degree;
    let mut disks = DiskArray::new(PdmConfig::new(nd, 64), 0);
    let mut alloc = DiskAllocator::new(nd);
    let dict = DynamicDict::create(&mut disks, &mut alloc, 0, params)
        .unwrap_or_else(|e| panic!("shard {shard}: config yields invalid dictionary: {e}"));
    Box::new(DictHandle::new(dict, disks))
}

/// Adopt a migrated shard image: poke the blocks back and run the
/// ordinary crash-recovery reopen (journaled catch-up — the ring
/// travels inside the image).
///
/// # Errors
/// [`ServeError::Protocol`] on a malformed image,
/// [`ServeError::Dict`] when recovery rejects it.
pub fn install_shard(
    cluster: &ClusterConfig,
    shard: u32,
    image: &[u8],
) -> Result<Box<dyn Dict + Send>, ServeError> {
    let mut disks = deserialize_image(image)
        .map_err(|e| ServeError::Protocol(format!("shard {shard} image: {e}")))?;
    let mut alloc = DiskAllocator::new(disks.disks());
    // The journal ring is allocated first on every shard front, so it
    // deterministically sits at block 0 of every disk.
    let region = JournalRegion {
        first_block: 0,
        rows: cluster.journal_rows,
    };
    let (dict, _report) = DynamicDict::reopen(
        &mut disks,
        &mut alloc,
        0,
        cluster.shard_params(shard),
        region,
    )
    .map_err(ServeError::Dict)?;
    Ok(Box::new(DictHandle::new(dict, disks)))
}

/// A running cluster node.
pub struct ClusterNode {
    local_addr: SocketAddr,
    inner: Arc<NodeInner>,
    acceptor: JoinHandle<()>,
}

impl std::fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNode")
            .field("addr", &self.local_addr)
            .field("epoch", &self.inner.epoch.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl ClusterNode {
    /// Start a node hosting `shards` (each built empty from the
    /// config), listening on `addr` (`"127.0.0.1:0"` for an OS port).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        cluster: ClusterConfig,
        shards: &[u32],
        cfg: NodeConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let mut hosted = HashMap::new();
        for &s in shards {
            let dict = build_shard(&cluster, s);
            let engine = ServeEngine::new(vec![dict], cfg.engine);
            let client = engine.client();
            hosted.insert(s, ShardHost { engine, client });
        }
        let inner = Arc::new(NodeInner {
            cluster,
            cfg,
            epoch: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            shards: Mutex::new(hosted),
            exports: Mutex::new(HashMap::new()),
            installs: Mutex::new(HashMap::new()),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("pdm-cluster-node-{}", local_addr.port()))
                .spawn(move || accept_loop(&listener, &inner))?
        };
        Ok(ClusterNode {
            local_addr,
            inner,
            acceptor,
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The highest cluster-map epoch the node has seen.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Global shards currently hosted.
    #[must_use]
    pub fn hosted(&self) -> Vec<u32> {
        let mut shards: Vec<u32> = lock(&self.inner.shards).keys().copied().collect();
        shards.sort_unstable();
        shards
    }

    /// Kill the node as a failure drill: connections drop, the
    /// listener closes, and **all shard state is discarded** — exactly
    /// what a machine death looks like to the rest of the cluster. The
    /// node can only come back empty, via re-replication.
    pub fn kill(self) {
        self.teardown();
    }

    /// Graceful stop. Over the in-memory backend this equals
    /// [`kill`](Self::kill) (state is process-local either way); the
    /// distinct name keeps call sites honest about intent.
    pub fn shutdown(self) {
        self.teardown();
    }

    fn teardown(self) {
        self.inner.stop.store(true, Ordering::Release);
        // Unblock accept; if the connect fails the listener is gone.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.acceptor.join();
        // Drain engines so their worker threads exit; the returned
        // dictionaries are dropped — node state does not survive.
        let hosts = std::mem::take(&mut *lock(&self.inner.shards));
        for (_, host) in hosts {
            drop(host.engine.shutdown());
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn accept_loop(listener: &TcpListener, inner: &Arc<NodeInner>) {
    let connections: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name(format!("pdm-cluster-conn-{next_id}"))
            .spawn(move || {
                let _ = serve_connection(stream, &inner);
            });
        next_id += 1;
        if let Ok(handle) = handle {
            let mut conns = lock(&connections);
            conns.retain(|h| !h.is_finished());
            conns.push(handle);
        }
    }
    for handle in std::mem::take(&mut *lock(&connections)) {
        let _ = handle.join();
    }
}

fn serve_connection(stream: TcpStream, inner: &Arc<NodeInner>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(inner.cfg.read_poll))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let payload =
            match read_frame_poll(&mut reader, || inner.stop.load(Ordering::Acquire)) {
                Ok(FrameRead::Frame(payload)) => payload,
                Ok(FrameRead::Eof | FrameRead::Stopped) => return Ok(()),
                Ok(FrameRead::Idle) => continue,
                Err(e) => return Err(e),
            };
        let (response, drop_after) = match decode_request(&payload) {
            Ok(req) => (dispatch(inner, req), false),
            // After a framing error the stream position is
            // untrustworthy: answer, then drop.
            Err(malformed) => (WireResponse::Err(malformed), true),
        };
        write_frame(&mut writer, &encode_response(&response))?;
        if drop_after {
            return Ok(());
        }
    }
}

fn dispatch(inner: &Arc<NodeInner>, req: WireRequest) -> WireResponse {
    match req {
        WireRequest::Ping => WireResponse::Pong,
        WireRequest::Status => WireResponse::NodeStatus {
            epoch: inner.epoch.load(Ordering::Acquire),
            shards: {
                let mut s: Vec<u32> = lock(&inner.shards).keys().copied().collect();
                s.sort_unstable();
                s
            },
        },
        WireRequest::EpochSet { epoch } => {
            inner.epoch.fetch_max(epoch, Ordering::AcqRel);
            WireResponse::EpochOk
        }
        WireRequest::ShardOp { shard, epoch, op } => shard_op(inner, shard, epoch, op),
        WireRequest::MigrateExport { shard, chunk } => export_chunk(inner, shard, chunk),
        WireRequest::MigrateInstall {
            shard,
            total,
            chunk,
            bytes,
        } => install_chunk(inner, shard, total, chunk, &bytes),
        // A bare (unaddressed) dictionary op is a routing bug on a
        // multi-tenant node: refuse typed rather than guess a shard.
        WireRequest::Op(_) => WireResponse::Err(ServeError::Protocol(
            "cluster nodes require shard-addressed operations".into(),
        )),
    }
}

fn shard_op(inner: &Arc<NodeInner>, shard: u32, epoch: u64, op: Op) -> WireResponse {
    // Piggybacked epoch: learn newer, refuse older.
    let node_epoch = inner.epoch.fetch_max(epoch, Ordering::AcqRel);
    if epoch < node_epoch {
        return WireResponse::Err(ServeError::StaleEpoch {
            request: epoch,
            node: node_epoch,
        });
    }
    // Reject out-of-universe keys here with a typed error: the
    // dictionary treats them as a caller contract violation (panic),
    // and a panicking shard worker would leave the reply slot forever
    // empty.
    let key = op.key();
    if key >= inner.cluster.universe {
        return WireResponse::Err(ServeError::Dict(pdm_dict::DictError::UnsupportedParams(
            format!(
                "key {key} outside the cluster universe of size {}",
                inner.cluster.universe
            ),
        )));
    }
    let Some(client) = lock(&inner.shards).get(&shard).map(|h| h.client.clone()) else {
        return WireResponse::Err(ServeError::WrongShard { shard });
    };
    // Bounded wait (engine deadline + slack): a healthy engine always
    // answers within its deadline, so hitting the bound means the shard
    // worker died — degrade to a typed timeout instead of wedging this
    // connection (and with it node teardown) forever.
    let bound = inner.cfg.engine.deadline + Duration::from_secs(1);
    match client.submit(op).map(|p| p.wait_timeout(bound)) {
        Ok(Some(Ok(reply))) => WireResponse::Reply(reply),
        Ok(Some(Err(e))) => WireResponse::Err(e),
        Ok(None) => WireResponse::Err(ServeError::TimedOut),
        Err(e) => WireResponse::Err(e),
    }
}

fn export_chunk(inner: &Arc<NodeInner>, shard: u32, chunk: u32) -> WireResponse {
    let mut exports = lock(&inner.exports);
    if chunk == 0 {
        // (Re-)freeze: quiesce exactly this shard's engine — drain,
        // checkpoint, snapshot — then put it back in service on the
        // same dictionary.
        let Some(host) = lock(&inner.shards).remove(&shard) else {
            return WireResponse::Err(ServeError::WrongShard { shard });
        };
        let mut dicts = host.engine.shutdown();
        let dict = dicts.pop().expect("single-shard engine returns its dict");
        let image = serialize_image(dict.disks().expect("shard fronts own their disks"));
        let engine = ServeEngine::new(vec![dict], inner.cfg.engine);
        let client = engine.client();
        lock(&inner.shards).insert(shard, ShardHost { engine, client });
        let total = chunks_of(image.len());
        exports.insert(shard, ExportStage { bytes: image, total });
    }
    let Some(stage) = exports.get(&shard) else {
        return WireResponse::Err(ServeError::Protocol(format!(
            "no staged export for shard {shard} (start at chunk 0)"
        )));
    };
    if chunk >= stage.total {
        return WireResponse::Err(ServeError::Protocol(format!(
            "chunk {chunk} out of range (total {})",
            stage.total
        )));
    }
    let resp = WireResponse::ExportChunk {
        total: stage.total,
        chunk,
        bytes: chunk_slice(&stage.bytes, chunk).to_vec(),
    };
    if chunk + 1 == stage.total {
        exports.remove(&shard);
    }
    resp
}

fn install_chunk(
    inner: &Arc<NodeInner>,
    shard: u32,
    total: u32,
    chunk: u32,
    bytes: &[u8],
) -> WireResponse {
    let image = {
        let mut installs = lock(&inner.installs);
        if chunk == 0 {
            installs.insert(
                shard,
                InstallStage {
                    total,
                    received: 0,
                    bytes: Vec::new(),
                },
            );
        }
        let Some(stage) = installs.get_mut(&shard) else {
            return WireResponse::Err(ServeError::Protocol(format!(
                "no staged install for shard {shard} (start at chunk 0)"
            )));
        };
        if total != stage.total || chunk != stage.received {
            let err = format!(
                "install chunk {chunk}/{total} does not continue {}/{}",
                stage.received, stage.total
            );
            installs.remove(&shard);
            return WireResponse::Err(ServeError::Protocol(err));
        }
        stage.bytes.extend_from_slice(bytes);
        stage.received += 1;
        if stage.received < stage.total {
            return WireResponse::InstallOk { installed: false };
        }
        installs.remove(&shard).expect("just present").bytes
    };
    match install_shard(&inner.cluster, shard, &image) {
        Ok(dict) => {
            let engine = ServeEngine::new(vec![dict], inner.cfg.engine);
            let client = engine.client();
            // Replace any previous incarnation of the shard; drain its
            // engine so worker threads exit.
            if let Some(old) = lock(&inner.shards).insert(shard, ShardHost { engine, client }) {
                drop(old.engine.shutdown());
            }
            WireResponse::InstallOk { installed: true }
        }
        Err(e) => WireResponse::Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_server::protocol::{read_frame, WireRequest, WireResponse};
    use pdm_server::{Reply, TcpClient};

    fn small_cluster() -> ClusterConfig {
        ClusterConfig {
            shards: 4,
            shard_capacity: 256,
            ..ClusterConfig::default()
        }
    }

    fn fast_node() -> NodeConfig {
        NodeConfig {
            read_poll: Duration::from_millis(5),
            ..NodeConfig::default()
        }
    }

    #[test]
    fn shard_ops_roundtrip_with_epoch_and_shard_typing() {
        let cluster = small_cluster();
        let node = ClusterNode::start("127.0.0.1:0", cluster, &[0, 2], fast_node()).unwrap();
        let mut c = TcpClient::connect(node.local_addr()).unwrap();

        // Status reflects hosting.
        match c.request(&WireRequest::Status).unwrap() {
            WireResponse::NodeStatus { epoch, shards } => {
                assert_eq!(epoch, 0);
                assert_eq!(shards, vec![0, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }

        // A hosted shard serves.
        let req = WireRequest::ShardOp {
            shard: 2,
            epoch: 0,
            op: Op::Insert(7, vec![42]),
        };
        assert_eq!(
            c.request(&req).unwrap(),
            WireResponse::Reply(Reply::Inserted)
        );

        // An unhosted shard is a typed refusal.
        let req = WireRequest::ShardOp {
            shard: 1,
            epoch: 0,
            op: Op::Lookup(7),
        };
        assert_eq!(
            c.request(&req).unwrap(),
            WireResponse::Err(ServeError::WrongShard { shard: 1 })
        );

        // Raising the epoch makes old routing stale.
        assert_eq!(
            c.request(&WireRequest::EpochSet { epoch: 3 }).unwrap(),
            WireResponse::EpochOk
        );
        assert_eq!(node.epoch(), 3);
        let req = WireRequest::ShardOp {
            shard: 2,
            epoch: 1,
            op: Op::Lookup(7),
        };
        assert_eq!(
            c.request(&req).unwrap(),
            WireResponse::Err(ServeError::StaleEpoch { request: 1, node: 3 })
        );

        // Current-epoch requests still serve, and piggybacked newer
        // epochs are learned.
        let req = WireRequest::ShardOp {
            shard: 2,
            epoch: 5,
            op: Op::Lookup(7),
        };
        assert_eq!(
            c.request(&req).unwrap(),
            WireResponse::Reply(Reply::Lookup(Some(vec![42])))
        );
        assert_eq!(node.epoch(), 5);

        node.shutdown();
    }

    #[test]
    fn export_install_replicates_byte_identically() {
        let cluster = small_cluster();
        let source =
            ClusterNode::start("127.0.0.1:0", cluster, &[1], fast_node()).unwrap();
        let target = ClusterNode::start("127.0.0.1:0", cluster, &[], fast_node()).unwrap();
        let mut sc = TcpClient::connect(source.local_addr()).unwrap();
        let mut tc = TcpClient::connect(target.local_addr()).unwrap();

        for key in 0..50u64 {
            let req = WireRequest::ShardOp {
                shard: 1,
                epoch: 0,
                op: Op::Insert(key, vec![key ^ 0xA5]),
            };
            assert_eq!(
                sc.request(&req).unwrap(),
                WireResponse::Reply(Reply::Inserted)
            );
        }

        // Pull the frozen image chunk by chunk.
        let mut image = Vec::new();
        let mut chunk = 0u32;
        loop {
            let req = WireRequest::MigrateExport { shard: 1, chunk };
            let (total, bytes) = match sc.request(&req).unwrap() {
                WireResponse::ExportChunk { total, chunk: c, bytes } => {
                    assert_eq!(c, chunk);
                    (total, bytes)
                }
                other => panic!("unexpected {other:?}"),
            };
            image.extend_from_slice(&bytes);
            chunk += 1;
            if chunk == total {
                break;
            }
        }

        // Push it into the target.
        let total = chunks_of(image.len());
        for c in 0..total {
            let req = WireRequest::MigrateInstall {
                shard: 1,
                total,
                chunk: c,
                bytes: chunk_slice(&image, c).to_vec(),
            };
            let installed = match tc.request(&req).unwrap() {
                WireResponse::InstallOk { installed } => installed,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(installed, c + 1 == total);
        }
        assert_eq!(target.hosted(), vec![1]);

        // The replica answers exactly.
        for key in 0..50u64 {
            let req = WireRequest::ShardOp {
                shard: 1,
                epoch: 0,
                op: Op::Lookup(key),
            };
            assert_eq!(
                tc.request(&req).unwrap(),
                WireResponse::Reply(Reply::Lookup(Some(vec![key ^ 0xA5])))
            );
        }

        // Byte identity: both replicas export the same frozen image.
        let re_export = |c: &mut TcpClient| {
            let mut img = Vec::new();
            let mut chunk = 0u32;
            loop {
                let req = WireRequest::MigrateExport { shard: 1, chunk };
                match c.request(&req).unwrap() {
                    WireResponse::ExportChunk { total, bytes, .. } => {
                        img.extend_from_slice(&bytes);
                        chunk += 1;
                        if chunk == total {
                            return img;
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        };
        assert_eq!(
            re_export(&mut sc),
            re_export(&mut tc),
            "replica images diverge"
        );

        source.shutdown();
        target.shutdown();
    }

    #[test]
    fn malformed_frames_answer_typed_then_drop() {
        let cluster = small_cluster();
        let node = ClusterNode::start("127.0.0.1:0", cluster, &[0], fast_node()).unwrap();
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        write_frame(&mut stream, &[0xEE, 1, 2]).unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("typed answer");
        assert!(matches!(
            pdm_server::protocol::decode_response(&payload).unwrap(),
            WireResponse::Err(ServeError::Protocol(_))
        ));
        assert!(read_frame(&mut stream).unwrap().is_none(), "then dropped");
        node.shutdown();
    }
}
