//! `pdm-cluster`: a replicated cluster tier over the PDM serving
//! engine's wire protocol.
//!
//! The PDM paper's Section 3 balances *blocks over disks* with a
//! deterministic d-choice function; this crate lifts the same function
//! one level up and balances *shards over nodes*:
//!
//! - [`map`] — the epoch-versioned [`ClusterMap`]: every shard placed
//!   on `k` replica nodes by deterministic weighted d-choice over
//!   [`loadbalance::weighted`] rendezvous ranks. Node death and revival
//!   bump the epoch and move only the affected node's fair share of
//!   replicas — the cluster analogue of the paper's Lemma 3 bounded
//!   movement.
//! - [`router`] — the client-side [`ClusterRouter`]: writes go to every
//!   trusted replica and ack on quorum, reads hit the primary and fail
//!   over; permanent death drives journaled re-replication onto the
//!   epoch+1 map.
//! - [`node`] — the server-side [`ClusterNode`]: one single-shard
//!   serving engine per hosted shard, shard-addressed and
//!   epoch-checked operations, and the migration opcodes that export /
//!   install frozen shard images.
//! - [`health`] — typed [`RetryPolicy`], per-node circuit [`Breaker`],
//!   and the consecutive-miss [`FailureDetector`].
//! - [`heartbeat`] — the proactive [`Heartbeater`]: periodic health
//!   probes feed the failure detector and latch the router's sticky
//!   suspect *before* any client write fails.
//! - [`image`] — whole-medium shard-image serialization (journal ring
//!   included), so a migrated shard is recovered on the target by the
//!   ordinary crash-recovery path.
//!
//! ```no_run
//! use pdm_cluster::{ClusterConfig, ClusterNode, ClusterRouter, NodeConfig, RouterConfig};
//!
//! let cfg = ClusterConfig { shards: 8, replication: 2, ..ClusterConfig::default() };
//! let map = pdm_cluster::ClusterMap::build(cfg, &[1, 1, 1, 1]);
//! let nodes: Vec<ClusterNode> = (0..4)
//!     .map(|n| {
//!         ClusterNode::start("127.0.0.1:0", cfg, &map.shards_on(n), NodeConfig::default())
//!             .unwrap()
//!     })
//!     .collect();
//! let addrs: Vec<_> = nodes.iter().map(|n| n.local_addr()).collect();
//! let router = ClusterRouter::new(cfg, &addrs, &[1, 1, 1, 1], RouterConfig::default());
//! router.insert(42, &[7]).unwrap();
//! assert_eq!(router.lookup(42).unwrap(), Some(vec![7]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod heartbeat;
pub mod image;
pub mod map;
pub mod node;
pub mod router;

pub use health::{Breaker, BreakerState, FailureDetector, Liveness, RetryPolicy};
pub use heartbeat::{HeartbeatConfig, Heartbeater, HeartbeatStats};
pub use image::{deserialize_image, serialize_image, CHUNK_BYTES};
pub use map::{ClusterConfig, ClusterMap, MapDelta, NodeState, ShardMove};
pub use node::{ClusterNode, NodeConfig};
pub use router::{ClusterError, ClusterRouter, ReplicationReport, RouterConfig, RouterStats};
