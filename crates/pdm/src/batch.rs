//! Batched I/O execution: pack many block requests into parallel rounds.
//!
//! The paper's efficiency claims are *bandwidth* claims: with `k = d/2`
//! choices the basic dictionary sustains `O(BD/log N)` bandwidth
//! (Section 4.1), and the one-probe structure answers a lookup in a
//! single parallel I/O (Theorem 6). Both are statements about how many
//! independent operations can share one parallel I/O round across the
//! `D` disks. This module supplies the machinery that turns per-operation
//! probing into round-sharing execution:
//!
//! * [`BatchPlan`] — takes any multiset of [`BlockAddr`] requests,
//!   deduplicates them, and greedily packs the unique blocks into rounds
//!   that touch each disk at most once. The number of rounds equals the
//!   maximum number of unique blocks on any one disk — exactly the
//!   `ParallelDisk` model cost [`DiskArray`] charges for the batch, so
//!   the greedy schedule is optimal for that model.
//! * [`BatchReads`] — the result of executing a read plan, mapping each
//!   original request (duplicates included) back to its block image.
//! * [`BatchExecutor`] — a read-cache + staged-write layer for batched
//!   *updates*: reads are served from the cache at access time (so a key
//!   later in the batch observes the staged writes of earlier keys, and
//!   batched execution is byte-identical to sequential), and all dirty
//!   blocks are flushed in one planned write batch on
//!   [`commit`](BatchExecutor::commit).
//!
//! The win is deduplication: `m` lookups that would sequentially touch
//! `m · d'` blocks collapse to at most `min(m·d', blocks in the
//! structure)` unique blocks, spread over `D` disks — so the charged
//! cost per lookup drops toward the paper's `⌈m·d'/D⌉ / m` as batches
//! share buckets.

use crate::disk::{BlockAddr, DiskArray, ReadOptions, WriteOptions};
use crate::integrity::BlockHealth;
use crate::metrics::IoEvent;
use crate::stats::OpCost;
use crate::Word;
use std::collections::HashMap;

/// A deduplicated, round-scheduled set of block requests.
///
/// Round `r` holds the `r`-th unique block of every disk (in first-seen
/// order), so each round touches each disk at most once and the round
/// count is the per-disk maximum — the `ParallelDisk` batch cost.
///
/// ```
/// use pdm::{BatchPlan, BlockAddr};
/// let plan = BatchPlan::new(4, &[
///     BlockAddr::new(0, 0),
///     BlockAddr::new(0, 1),
///     BlockAddr::new(1, 0),
///     BlockAddr::new(0, 0), // duplicate: shares the first request's slot
/// ]);
/// assert_eq!(plan.num_requests(), 4);
/// assert_eq!(plan.num_unique_blocks(), 3);
/// assert_eq!(plan.num_rounds(), 2); // disk 0 holds two unique blocks
/// ```
#[derive(Debug, Clone)]
pub struct BatchPlan {
    disks: usize,
    /// Unique addresses in first-seen order.
    unique: Vec<BlockAddr>,
    /// `slot[i]` = index into `unique` serving request `i`.
    slot: Vec<usize>,
    /// `rounds[r]` = indices into `unique`, at most one per disk.
    rounds: Vec<Vec<usize>>,
}

impl BatchPlan {
    /// Plan `requests` against an array of `disks` disks.
    ///
    /// Duplicates are coalesced onto one unique block; requests keep
    /// their identity through [`BatchReads`].
    ///
    /// # Panics
    /// Panics if `disks == 0` or any request names a disk `>= disks`.
    #[must_use]
    pub fn new(disks: usize, requests: &[BlockAddr]) -> Self {
        assert!(disks > 0, "need at least one disk");
        let mut index: HashMap<BlockAddr, usize> = HashMap::with_capacity(requests.len());
        let mut unique = Vec::new();
        let mut slot = Vec::with_capacity(requests.len());
        let mut per_disk = vec![0usize; disks];
        let mut rounds: Vec<Vec<usize>> = Vec::new();
        for &a in requests {
            assert!(
                a.disk < disks,
                "disk index {} out of range (D = {disks})",
                a.disk
            );
            let idx = *index.entry(a).or_insert_with(|| {
                let idx = unique.len();
                unique.push(a);
                let r = per_disk[a.disk];
                per_disk[a.disk] += 1;
                if rounds.len() <= r {
                    rounds.push(Vec::new());
                }
                rounds[r].push(idx);
                idx
            });
            slot.push(idx);
        }
        BatchPlan {
            disks,
            unique,
            slot,
            rounds,
        }
    }

    /// Number of disks this plan schedules over.
    #[must_use]
    pub fn disks(&self) -> usize {
        self.disks
    }

    /// Number of original requests (duplicates included).
    #[must_use]
    pub fn num_requests(&self) -> usize {
        self.slot.len()
    }

    /// Number of distinct blocks touched.
    #[must_use]
    pub fn num_unique_blocks(&self) -> usize {
        self.unique.len()
    }

    /// Number of parallel rounds — the maximum number of unique blocks
    /// on any single disk, which is also the `ParallelDisk` model cost
    /// of executing the plan.
    #[must_use]
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The unique blocks, in first-seen order.
    #[must_use]
    pub fn unique_blocks(&self) -> &[BlockAddr] {
        &self.unique
    }

    /// The addresses scheduled in round `r` (each on a distinct disk).
    ///
    /// # Panics
    /// Panics if `r >= num_rounds()`.
    #[must_use]
    pub fn round(&self, r: usize) -> Vec<BlockAddr> {
        self.rounds[r].iter().map(|&i| self.unique[i]).collect()
    }

    /// Execute the plan as one charged read batch over the unique blocks,
    /// recording the scheduled rounds.
    ///
    /// In the `ParallelDisk` model the charge equals
    /// [`num_rounds`](BatchPlan::num_rounds); in the `ParallelDiskHead`
    /// model the charge may be lower (heads pack same-disk blocks).
    pub fn execute_read(&self, disks: &mut DiskArray) -> BatchReads {
        self.execute_read_verified(disks)
    }

    /// [`execute_read`](BatchPlan::execute_read) with per-block
    /// [`BlockHealth`] recorded in the returned [`BatchReads`] (see
    /// [`BatchReads::health`]). Failed blocks are sanitized to zeros, as
    /// in a verified [`DiskArray::read`].
    pub fn execute_read_verified(&self, disks: &mut DiskArray) -> BatchReads {
        let out = disks.read(&self.unique, ReadOptions::verified());
        let (blocks, healths) = (out.blocks, out.healths);
        disks.record_rounds(self.num_rounds() as u64);
        for round in &self.rounds {
            disks.emit_io_event(IoEvent::RoundScheduled {
                blocks: round.len() as u64,
            });
        }
        BatchReads {
            blocks,
            healths,
            slot: self.slot.clone(),
        }
    }

    /// Execute the plan through a **shared** reference: returns the reads
    /// plus the cost the batch would be charged, without touching the
    /// global counters (see [`DiskArray::read_shared`]).
    ///
    /// Callers that want the cost recorded pass the returned [`OpCost`]
    /// to [`DiskArray::charge_cost`] and the round count to
    /// [`DiskArray::record_rounds`].
    #[must_use]
    pub fn execute_read_shared(&self, disks: &DiskArray) -> (BatchReads, OpCost) {
        let out = disks.read_shared(&self.unique, ReadOptions::verified());
        (
            BatchReads {
                blocks: out.blocks,
                healths: out.healths,
                slot: self.slot.clone(),
            },
            out.cost,
        )
    }
}

/// Blocks produced by executing a read [`BatchPlan`], addressable by
/// original request index (duplicates resolve to the same block image).
#[derive(Debug, Clone)]
pub struct BatchReads {
    /// Unique blocks, aligned with `BatchPlan::unique_blocks`.
    blocks: Vec<Vec<Word>>,
    /// Health per unique block, aligned with `blocks`.
    healths: Vec<BlockHealth>,
    slot: Vec<usize>,
}

impl BatchReads {
    /// Number of original requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slot.len()
    }

    /// Whether the plan had no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slot.is_empty()
    }

    /// The block serving request `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> &[Word] {
        &self.blocks[self.slot[i]]
    }

    /// Clone the blocks serving a contiguous request range — the shape
    /// dictionary decode paths expect for one operation's probes.
    ///
    /// # Panics
    /// Panics if the range exceeds `len()`.
    #[must_use]
    pub fn gather(&self, range: std::ops::Range<usize>) -> Vec<Vec<Word>> {
        range.map(|i| self.blocks[self.slot[i]].clone()).collect()
    }

    /// The health of the block serving request `i` (as observed when the
    /// plan executed).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn health(&self, i: usize) -> BlockHealth {
        self.healths[self.slot[i]]
    }

    /// The healths of the blocks serving a contiguous request range.
    ///
    /// # Panics
    /// Panics if the range exceeds `len()`.
    #[must_use]
    pub fn gather_healths(&self, range: std::ops::Range<usize>) -> Vec<BlockHealth> {
        range.map(|i| self.healths[self.slot[i]]).collect()
    }

    /// Whether every block serving the request range read cleanly.
    ///
    /// # Panics
    /// Panics if the range exceeds `len()`.
    #[must_use]
    pub fn range_ok(&self, mut range: std::ops::Range<usize>) -> bool {
        range.all(|i| self.healths[self.slot[i]].is_ok())
    }
}

/// A read-cache + staged-write layer executing batched updates with
/// sequential semantics.
///
/// Lifecycle: [`prefetch`](BatchExecutor::prefetch) the addresses the
/// batch will touch (one planned read batch), process each operation
/// against [`get`](BatchExecutor::get) /
/// [`stage_write`](BatchExecutor::stage_write) (reads observe earlier
/// staged writes — exactly what sequential execution would see), then
/// [`commit`](BatchExecutor::commit) to flush all dirty blocks as one
/// planned write batch. Dropping the executor without committing
/// discards staged writes.
///
/// ```
/// use pdm::{BatchExecutor, BlockAddr, DiskArray, PdmConfig};
/// let mut disks = DiskArray::new(PdmConfig::new(2, 4), 2);
/// let a = BlockAddr::new(0, 0);
/// let mut ex = BatchExecutor::new(&mut disks);
/// ex.prefetch(&[a]);
/// let mut block = ex.get(a).to_vec();
/// block[0] = 7;
/// ex.stage_write(a, block);
/// assert_eq!(ex.get(a)[0], 7, "reads observe staged writes");
/// let cost = ex.commit();
/// assert_eq!(cost.block_writes, 1);
/// assert_eq!(disks.peek(a)[0], 7);
/// ```
#[derive(Debug)]
pub struct BatchExecutor<'a> {
    disks: &'a mut DiskArray,
    cache: HashMap<BlockAddr, Vec<Word>>,
    /// Dirty addresses in first-staged order (each appears once).
    dirty: Vec<BlockAddr>,
}

impl<'a> BatchExecutor<'a> {
    /// Start a batch over `disks`.
    pub fn new(disks: &'a mut DiskArray) -> Self {
        BatchExecutor {
            disks,
            cache: HashMap::new(),
            dirty: Vec::new(),
        }
    }

    /// The disk array geometry (for planning probe addresses).
    #[must_use]
    pub fn disks(&self) -> &DiskArray {
        self.disks
    }

    /// Read every not-yet-cached address in `addrs` as one planned batch,
    /// charging its model cost.
    pub fn prefetch(&mut self, addrs: &[BlockAddr]) {
        let missing: Vec<BlockAddr> = addrs
            .iter()
            .copied()
            .filter(|a| !self.cache.contains_key(a))
            .collect();
        let hits = (addrs.len() - missing.len()) as u64;
        if hits > 0 {
            self.disks.emit_io_event(IoEvent::CacheHit { blocks: hits });
        }
        if missing.is_empty() {
            return;
        }
        let plan = BatchPlan::new(self.disks.disks(), &missing);
        self.disks.emit_io_event(IoEvent::CacheMiss {
            blocks: plan.num_unique_blocks() as u64,
        });
        let reads = plan.execute_read(self.disks);
        for (i, &a) in plan.unique_blocks().iter().enumerate() {
            self.cache.insert(a, reads.blocks[i].clone());
        }
    }

    /// The current image of `addr`: staged write if any, else cached
    /// read. A miss falls back to a charged single-block read (counted
    /// as its own round), so under-prefetching stays correct — just
    /// costlier.
    pub fn get(&mut self, addr: BlockAddr) -> &[Word] {
        if self.cache.contains_key(&addr) {
            self.disks.emit_io_event(IoEvent::CacheHit { blocks: 1 });
        } else {
            self.disks.emit_io_event(IoEvent::CacheMiss { blocks: 1 });
            let block = self.disks.read_block(addr);
            self.disks.record_rounds(1);
            self.cache.insert(addr, block);
        }
        &self.cache[&addr]
    }

    /// Clone the current images of several addresses (cache misses are
    /// charged individually, as in [`get`](BatchExecutor::get)).
    pub fn get_many(&mut self, addrs: &[BlockAddr]) -> Vec<Vec<Word>> {
        self.prefetch(addrs);
        addrs.iter().map(|&a| self.cache[&a].clone()).collect()
    }

    /// [`get_many`](BatchExecutor::get_many) with each address's current
    /// [`BlockHealth`] reported alongside. Blocks staged for writing in
    /// this batch report `Ok` (their image is ours, not the disk's);
    /// other blocks report [`DiskArray::block_health`] — note a cached
    /// image may have been sanitized by an *earlier* window even if the
    /// health has since recovered; call
    /// [`refresh`](BatchExecutor::refresh) to re-read such blocks.
    pub fn get_many_verified(
        &mut self,
        addrs: &[BlockAddr],
    ) -> (Vec<Vec<Word>>, Vec<BlockHealth>) {
        // Health is sampled BEFORE the prefetch so it reflects the clock
        // the read executes at (the read itself advances the clock).
        let healths = addrs
            .iter()
            .map(|a| {
                if self.dirty.contains(a) {
                    BlockHealth::Ok
                } else {
                    self.disks.block_health(*a)
                }
            })
            .collect();
        (self.get_many(addrs), healths)
    }

    /// Drop the cached images of the non-dirty addresses in `addrs` and
    /// re-read them from disk as one planned, verified batch (advancing
    /// the fault clocks, so a transient window can clear). Returns the
    /// health per address; dirty (staged) addresses are left untouched
    /// and report `Ok`. This is the retry primitive for degraded reads.
    pub fn refresh(&mut self, addrs: &[BlockAddr]) -> Vec<BlockHealth> {
        let retry: Vec<BlockAddr> = addrs
            .iter()
            .copied()
            .filter(|a| !self.dirty.contains(a))
            .collect();
        let mut fresh: HashMap<BlockAddr, BlockHealth> = HashMap::new();
        if !retry.is_empty() {
            let plan = BatchPlan::new(self.disks.disks(), &retry);
            let reads = plan.execute_read_verified(self.disks);
            for (i, &a) in plan.unique_blocks().iter().enumerate() {
                self.cache.insert(a, reads.blocks[i].clone());
                fresh.insert(a, reads.healths[i]);
            }
        }
        addrs
            .iter()
            .map(|a| fresh.get(a).copied().unwrap_or(BlockHealth::Ok))
            .collect()
    }

    /// Stage a full-block write. Subsequent reads of `addr` within this
    /// batch observe `data`; disk content changes only on
    /// [`commit`](BatchExecutor::commit).
    ///
    /// # Panics
    /// Panics if `data` is not exactly one block wide — partial writes
    /// would need the current block content merged in, and every writer
    /// in this workspace produces full-block images.
    pub fn stage_write(&mut self, addr: BlockAddr, data: Vec<Word>) {
        assert_eq!(
            data.len(),
            self.disks.block_words(),
            "batch staging requires full-block images"
        );
        if !self.dirty.contains(&addr) {
            self.dirty.push(addr);
        }
        self.cache.insert(addr, data);
    }

    /// Number of distinct blocks currently staged for writing.
    #[must_use]
    pub fn staged_writes(&self) -> usize {
        self.dirty.len()
    }

    /// Flush all staged writes as one planned write batch and return its
    /// cost (zero if nothing was staged).
    ///
    /// Consumes the executor, so write faults that fire mid-commit cannot
    /// be retried through it; use
    /// [`commit_checked`](BatchExecutor::commit_checked) when a fault
    /// plan may be active.
    pub fn commit(mut self) -> OpCost {
        self.commit_checked().cost
    }

    /// Flush all staged writes as one planned, **checked** write batch.
    ///
    /// The report lists which blocks landed and which failed (dropped on
    /// a dead disk, or torn). Failed blocks **stay dirty** with their
    /// staged images intact, so the commit never silently half-applies:
    /// a later `commit_checked` retries exactly the lost writes (a torn
    /// write is one-shot, so its retry lands; a dead disk keeps failing
    /// until the plan is cleared).
    ///
    /// The physical write order is **canonical**: staged blocks are
    /// flushed sorted by `(disk, block)`, regardless of staging order.
    /// PR 1's in-memory model made the order unobservable; with crash
    /// points (`Fault::CrashPoint`) the prefix that survives a crash *is*
    /// observable, and sorting pins it so the exhaustive crash matrix is
    /// deterministic across platforms and hash-map iteration orders.
    ///
    /// When the underlying array has a journal enabled
    /// ([`DiskArray::journal_enabled`]) the whole commit is recorded as
    /// one intent entry before any in-place write, making it atomic
    /// under crashes; use
    /// [`commit_checked_with_meta`](BatchExecutor::commit_checked_with_meta)
    /// to attach the owner's replay metadata to that entry.
    pub fn commit_checked(&mut self) -> CommitReport {
        self.commit_checked_with_meta(&[])
    }

    /// [`commit_checked`](BatchExecutor::commit_checked), attaching
    /// `meta` to the journal intent entry (ignored without a journal).
    pub fn commit_checked_with_meta(&mut self, meta: &[Word]) -> CommitReport {
        let scope = self.disks.begin_op();
        let mut landed = Vec::new();
        let mut failed = Vec::new();
        if !self.dirty.is_empty() {
            // Satellite fix: one canonical commit order (see above).
            self.dirty.sort_unstable();
            let plan = BatchPlan::new(self.disks.disks(), &self.dirty);
            let writes: Vec<(BlockAddr, &[Word])> = plan
                .unique_blocks()
                .iter()
                .map(|a| (*a, self.cache[a].as_slice()))
                .collect();
            let healths = if self.disks.journal_enabled() {
                self.disks.journaled_write_batch_checked(&writes, meta)
            } else {
                self.disks.write(&writes, WriteOptions::checked()).healths
            };
            self.disks.record_rounds(plan.num_rounds() as u64);
            for r in 0..plan.num_rounds() {
                self.disks.emit_io_event(IoEvent::RoundScheduled {
                    blocks: plan.rounds[r].len() as u64,
                });
            }
            self.disks.emit_io_event(IoEvent::BatchCommitted {
                dirty_blocks: plan.num_unique_blocks() as u64,
            });
            for (&a, h) in plan.unique_blocks().iter().zip(&healths) {
                if h.is_ok() {
                    landed.push(a);
                } else {
                    failed.push((a, *h));
                }
            }
            self.dirty.retain(|a| failed.iter().any(|(f, _)| f == a));
        }
        CommitReport {
            cost: self.disks.end_op(scope),
            landed,
            failed,
        }
    }
}

/// Outcome of [`BatchExecutor::commit_checked`]: which staged writes
/// landed, which failed (and why), and the I/O charged.
#[derive(Debug, Clone, Default)]
pub struct CommitReport {
    /// I/O cost of the commit batch.
    pub cost: OpCost,
    /// Blocks whose staged image reached the disk.
    pub landed: Vec<BlockAddr>,
    /// Blocks whose write failed; they remain staged (dirty) for retry.
    pub failed: Vec<(BlockAddr, BlockHealth)>,
}

impl CommitReport {
    /// Whether every staged write landed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Model, PdmConfig};

    fn array(disks: usize, blocks: usize) -> DiskArray {
        DiskArray::new(PdmConfig::new(disks, 4), blocks)
    }

    #[test]
    fn empty_plan_is_free() {
        let mut disks = array(4, 4);
        let plan = BatchPlan::new(4, &[]);
        assert_eq!(plan.num_rounds(), 0);
        assert_eq!(plan.num_unique_blocks(), 0);
        let before = disks.stats();
        let reads = plan.execute_read(&mut disks);
        assert!(reads.is_empty());
        let cost = disks.stats().since(&before);
        assert_eq!(cost.parallel_ios, 0);
        assert_eq!(cost.block_reads, 0);
        assert_eq!(disks.stats().batches, 0, "empty plan issues no batch");
        assert_eq!(disks.stats().rounds, 0);
    }

    #[test]
    fn striped_plan_costs_one_round() {
        let mut disks = array(4, 4);
        let addrs: Vec<_> = (0..4).map(|d| BlockAddr::new(d, 1)).collect();
        let plan = BatchPlan::new(4, &addrs);
        assert_eq!(plan.num_rounds(), 1);
        let before = disks.stats();
        plan.execute_read(&mut disks);
        let cost = disks.stats().since(&before);
        assert_eq!(cost.parallel_ios, 1);
        assert_eq!(cost.block_reads, 4);
        assert_eq!(disks.stats().rounds, 1);
    }

    #[test]
    fn skewed_plan_serializes_on_one_disk() {
        let mut disks = array(4, 8);
        let addrs: Vec<_> = (0..5).map(|b| BlockAddr::new(2, b)).collect();
        let plan = BatchPlan::new(4, &addrs);
        assert_eq!(plan.num_rounds(), 5);
        let before = disks.stats();
        plan.execute_read(&mut disks);
        let cost = disks.stats().since(&before);
        assert_eq!(cost.parallel_ios, 5, "all blocks on one disk serialize");
        assert_eq!(disks.stats().rounds, 5);
    }

    #[test]
    fn duplicates_coalesce_to_one_block() {
        let mut disks = array(4, 4);
        disks.poke(BlockAddr::new(1, 0), &[9; 4]);
        let a = BlockAddr::new(1, 0);
        let plan = BatchPlan::new(4, &[a, a, a, a]);
        assert_eq!(plan.num_requests(), 4);
        assert_eq!(plan.num_unique_blocks(), 1);
        assert_eq!(plan.num_rounds(), 1);
        let before = disks.stats();
        let reads = plan.execute_read(&mut disks);
        let cost = disks.stats().since(&before);
        assert_eq!(cost.parallel_ios, 1, "four requests, one block, one round");
        assert_eq!(cost.block_reads, 1);
        for i in 0..4 {
            assert_eq!(reads.get(i), &[9; 4]);
        }
    }

    #[test]
    fn rounds_touch_each_disk_at_most_once() {
        let addrs = [
            BlockAddr::new(0, 0),
            BlockAddr::new(0, 1),
            BlockAddr::new(0, 2),
            BlockAddr::new(1, 0),
            BlockAddr::new(2, 0),
            BlockAddr::new(2, 1),
        ];
        let plan = BatchPlan::new(4, &addrs);
        assert_eq!(plan.num_rounds(), 3, "disk 0 has three unique blocks");
        let mut seen = 0usize;
        for r in 0..plan.num_rounds() {
            let round = plan.round(r);
            let mut disks_in_round: Vec<usize> = round.iter().map(|a| a.disk).collect();
            let len = disks_in_round.len();
            disks_in_round.dedup();
            assert_eq!(disks_in_round.len(), len, "round {r} repeats a disk");
            seen += len;
        }
        assert_eq!(seen, plan.num_unique_blocks(), "every block is scheduled");
    }

    #[test]
    fn round_count_is_optimal_per_disk_max() {
        // Mixed shape: per-disk unique counts 3 / 1 / 2 / 0 → 3 rounds.
        let addrs = [
            BlockAddr::new(0, 0),
            BlockAddr::new(0, 5),
            BlockAddr::new(0, 7),
            BlockAddr::new(1, 1),
            BlockAddr::new(2, 0),
            BlockAddr::new(2, 3),
            BlockAddr::new(0, 0), // duplicate
        ];
        let plan = BatchPlan::new(4, &addrs);
        assert_eq!(plan.num_rounds(), 3);
        let mut disks = array(4, 8);
        let before = disks.stats();
        plan.execute_read(&mut disks);
        assert_eq!(
            disks.stats().since(&before).parallel_ios,
            plan.num_rounds() as u64,
            "ParallelDisk charge equals the scheduled round count"
        );
    }

    #[test]
    fn head_model_can_beat_round_count() {
        let cfg = PdmConfig::new(4, 4).with_model(Model::ParallelDiskHead);
        let mut disks = DiskArray::new(cfg, 8);
        let addrs: Vec<_> = (0..3).map(|b| BlockAddr::new(0, b)).collect();
        let plan = BatchPlan::new(4, &addrs);
        assert_eq!(plan.num_rounds(), 3);
        let before = disks.stats();
        plan.execute_read(&mut disks);
        assert_eq!(
            disks.stats().since(&before).parallel_ios,
            1,
            "disk heads pack same-disk blocks below the round count"
        );
    }

    #[test]
    fn shared_execution_matches_charged_execution() {
        let mut disks = array(4, 4);
        disks.poke(BlockAddr::new(3, 2), &[4; 4]);
        let addrs = [BlockAddr::new(3, 2), BlockAddr::new(0, 0), BlockAddr::new(3, 2)];
        let plan = BatchPlan::new(4, &addrs);
        let (shared, cost) = plan.execute_read_shared(&disks);
        let before = disks.stats();
        let charged = plan.execute_read(&mut disks);
        assert_eq!(disks.stats().since(&before), cost);
        for i in 0..addrs.len() {
            assert_eq!(shared.get(i), charged.get(i));
        }
        disks.charge_cost(cost);
        disks.record_rounds(plan.num_rounds() as u64);
        assert_eq!(disks.stats().rounds, 2 * plan.num_rounds() as u64);
    }

    #[test]
    fn gather_returns_per_request_blocks() {
        let mut disks = array(2, 4);
        disks.poke(BlockAddr::new(0, 1), &[1; 4]);
        disks.poke(BlockAddr::new(1, 1), &[2; 4]);
        let addrs = [BlockAddr::new(0, 1), BlockAddr::new(1, 1), BlockAddr::new(0, 1)];
        let reads = BatchPlan::new(2, &addrs).execute_read(&mut disks);
        assert_eq!(reads.gather(0..2), vec![vec![1; 4], vec![2; 4]]);
        assert_eq!(reads.gather(2..3), vec![vec![1; 4]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plan_rejects_out_of_range_disks() {
        let _ = BatchPlan::new(2, &[BlockAddr::new(2, 0)]);
    }

    #[test]
    fn executor_reads_observe_staged_writes() {
        let mut disks = array(2, 4);
        let a = BlockAddr::new(0, 0);
        let b = BlockAddr::new(1, 0);
        let mut ex = BatchExecutor::new(&mut disks);
        ex.prefetch(&[a, b]);
        assert_eq!(ex.get(a), &[0; 4]);
        ex.stage_write(a, vec![5; 4]);
        assert_eq!(ex.get(a), &[5; 4], "read-your-writes within the batch");
        assert_eq!(ex.get(b), &[0; 4], "other blocks unaffected");
        assert_eq!(disks.peek(a), &[0; 4], "disk unchanged before commit");
    }

    #[test]
    fn executor_commit_flushes_once() {
        let mut disks = array(4, 4);
        let addrs: Vec<_> = (0..4).map(|d| BlockAddr::new(d, 0)).collect();
        let mut ex = BatchExecutor::new(&mut disks);
        ex.prefetch(&addrs);
        for (i, &a) in addrs.iter().enumerate() {
            let mut img = ex.get(a).to_vec();
            img[0] = i as Word + 1;
            ex.stage_write(a, img);
            // Restage the same block: still one write.
            let img = ex.get(a).to_vec();
            ex.stage_write(a, img);
        }
        assert_eq!(ex.staged_writes(), 4);
        let cost = ex.commit();
        assert_eq!(cost.parallel_ios, 1, "four dirty blocks, four disks, one round");
        assert_eq!(cost.block_writes, 4);
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(disks.peek(a)[0], i as Word + 1);
        }
    }

    #[test]
    fn executor_drop_discards_staged_writes() {
        let mut disks = array(2, 4);
        let a = BlockAddr::new(0, 0);
        {
            let mut ex = BatchExecutor::new(&mut disks);
            ex.stage_write(a, vec![7; 4]);
        }
        assert_eq!(disks.peek(a), &[0; 4]);
    }

    #[test]
    fn executor_miss_falls_back_to_single_read() {
        let mut disks = array(2, 4);
        let before = disks.stats();
        let mut ex = BatchExecutor::new(&mut disks);
        let _ = ex.get(BlockAddr::new(1, 1));
        let _ = ex.get(BlockAddr::new(1, 1)); // cached: no second charge
        let cost = disks.stats().since(&before);
        assert_eq!(cost.parallel_ios, 1);
        assert_eq!(cost.block_reads, 1);
        assert_eq!(disks.stats().rounds, 1);
    }

    #[test]
    fn executor_prefetch_skips_cached_blocks() {
        let mut disks = array(2, 4);
        let a = BlockAddr::new(0, 0);
        let b = BlockAddr::new(1, 0);
        let mut ex = BatchExecutor::new(&mut disks);
        ex.prefetch(&[a]);
        let before = ex.disks().stats();
        ex.prefetch(&[a, b]);
        let cost = ex.disks().stats().since(&before);
        assert_eq!(cost.block_reads, 1, "only the uncached block is read");
        let empty_before = ex.disks().stats();
        ex.prefetch(&[a, b]);
        assert_eq!(ex.disks().stats(), empty_before, "fully cached: free");
    }

    #[test]
    fn executor_commit_cost_scopes_cleanly() {
        let mut disks = array(4, 4);
        let scope = disks.begin_op();
        let mut ex = BatchExecutor::new(&mut disks);
        ex.prefetch(&[BlockAddr::new(0, 0), BlockAddr::new(1, 0)]);
        ex.stage_write(BlockAddr::new(0, 0), vec![1; 4]);
        let write_cost = ex.commit();
        let total = disks.end_op(scope);
        assert_eq!(write_cost.parallel_ios, 1);
        assert_eq!(total.parallel_ios, 2, "one read round plus one write round");
        assert_eq!(disks.stats().rounds, 2);
    }

    #[test]
    fn noop_hook_adds_zero_counted_work() {
        use crate::metrics::NoopSink;
        use std::sync::Arc;

        // The same plan executed with a no-op sink installed and with no
        // sink at all must produce identical IoStats: hooks observe costs,
        // they never add any.
        let run = |sink: bool| {
            let mut disks = array(4, 8);
            if sink {
                disks.set_io_sink(Some(Arc::new(NoopSink)));
            }
            let addrs = [
                BlockAddr::new(0, 0),
                BlockAddr::new(0, 1),
                BlockAddr::new(1, 0),
                BlockAddr::new(2, 3),
                BlockAddr::new(0, 0),
            ];
            let plan = BatchPlan::new(4, &addrs);
            let reads = plan.execute_read(&mut disks);
            let imgs: Vec<Vec<Word>> = (0..reads.len()).map(|i| reads.get(i).to_vec()).collect();
            let mut ex = BatchExecutor::new(&mut disks);
            ex.prefetch(&addrs);
            let img = ex.get(addrs[0]).to_vec();
            ex.stage_write(addrs[0], img);
            let _ = ex.commit();
            (disks.stats(), imgs)
        };
        let (with_hooks, reads_hooked) = run(true);
        let (without_hooks, reads_bare) = run(false);
        assert_eq!(with_hooks, without_hooks, "hooks must not change IoStats");
        assert_eq!(reads_hooked, reads_bare);
    }

    #[test]
    fn metrics_sink_observes_executor_traffic() {
        use crate::metrics::{
            IoMetricsSink, MetricsRegistry, CACHE_EVENTS_TOTAL, COMMIT_DIRTY_BLOCKS, ROUNDS_TOTAL,
            ROUND_WIDTH,
        };
        use std::sync::Arc;

        let reg = Arc::new(MetricsRegistry::new());
        let mut disks = array(4, 8);
        disks.set_io_sink(Some(Arc::new(IoMetricsSink::new(&reg, 4))));
        let a = BlockAddr::new(0, 0);
        let b = BlockAddr::new(1, 0);
        let mut ex = BatchExecutor::new(&mut disks);
        ex.prefetch(&[a, b]); // two misses, one round of width 2
        ex.prefetch(&[a, b]); // two hits
        let img = ex.get(a).to_vec(); // one hit
        ex.stage_write(a, img);
        let _ = ex.commit(); // one dirty block, one write round
        let s = reg.snapshot();
        assert_eq!(s.counter(CACHE_EVENTS_TOTAL, &[("event", "miss")]), Some(2));
        assert_eq!(s.counter(CACHE_EVENTS_TOTAL, &[("event", "hit")]), Some(3));
        assert_eq!(s.counter(ROUNDS_TOTAL, &[]), Some(2));
        let widths = s.histogram(ROUND_WIDTH, &[]).unwrap();
        assert_eq!(widths.count, 2);
        assert_eq!(widths.max, 2);
        assert_eq!(s.histogram(COMMIT_DIRTY_BLOCKS, &[]).unwrap().sum, 1);
    }

    #[test]
    #[should_panic(expected = "full-block images")]
    fn executor_rejects_partial_writes() {
        let mut disks = array(2, 4);
        let mut ex = BatchExecutor::new(&mut disks);
        ex.stage_write(BlockAddr::new(0, 0), vec![1, 2]);
    }

    #[test]
    fn commit_checked_keeps_torn_writes_dirty_until_they_land() {
        // Regression for partial commits: a torn-write fault mid-commit
        // must be reported, keep the block staged, and succeed on retry.
        use crate::fault::FaultPlan;
        use crate::integrity::BlockHealth;

        let mut disks = array(4, 4);
        disks.enable_integrity();
        disks.set_fault_plan(FaultPlan::new().torn_write(1, 0));
        let a = BlockAddr::new(0, 0);
        let b = BlockAddr::new(1, 0);
        let mut ex = BatchExecutor::new(&mut disks);
        ex.prefetch(&[a, b]);
        ex.stage_write(a, vec![7; 4]);
        ex.stage_write(b, vec![8; 4]);
        let report = ex.commit_checked();
        assert_eq!(report.landed, vec![a]);
        assert_eq!(report.failed, vec![(b, BlockHealth::TornWrite)]);
        assert!(!report.is_clean());
        assert_eq!(ex.staged_writes(), 1, "failed write stays dirty");
        assert_eq!(ex.get(b), &[8; 4], "staged image intact for retry");
        let retry = ex.commit_checked();
        assert!(retry.is_clean());
        assert_eq!(retry.landed, vec![b]);
        assert_eq!(ex.staged_writes(), 0);
        assert_eq!(disks.peek(a), &[7; 4]);
        assert_eq!(disks.peek(b), &[8; 4]);
        assert_eq!(disks.scrub_verify().checksum_failures, 0);
    }

    #[test]
    fn commit_checked_reports_dead_disk_drops() {
        use crate::fault::FaultPlan;
        use crate::integrity::BlockHealth;

        let mut disks = array(4, 4);
        disks.set_fault_plan(FaultPlan::new().dead_disk(2));
        let dead = BlockAddr::new(2, 1);
        let live = BlockAddr::new(3, 1);
        let mut ex = BatchExecutor::new(&mut disks);
        ex.stage_write(dead, vec![5; 4]);
        ex.stage_write(live, vec![6; 4]);
        let report = ex.commit_checked();
        assert_eq!(report.landed, vec![live]);
        assert_eq!(report.failed, vec![(dead, BlockHealth::DiskDead)]);
        assert_eq!(ex.staged_writes(), 1, "dead-disk write stays dirty");
        // Replacement disk arrives: the retried commit lands.
        ex.disks.clear_fault_plan();
        let retry = ex.commit_checked();
        assert!(retry.is_clean());
        assert_eq!(disks.peek(dead), &[5; 4]);
    }

    #[test]
    fn refresh_rereads_past_a_transient_window() {
        use crate::fault::FaultPlan;
        use crate::integrity::BlockHealth;

        let mut disks = array(2, 4);
        let a = BlockAddr::new(0, 0);
        disks.write_block(a, &[3; 4]);
        // The next (= first since install) read batch on disk 0 fails.
        disks.set_fault_plan(FaultPlan::new().transient_read(0, 0, 1));
        let mut ex = BatchExecutor::new(&mut disks);
        let (blocks, healths) = ex.get_many_verified(&[a]);
        assert_eq!(healths, vec![BlockHealth::TransientError]);
        assert_eq!(blocks[0], vec![0; 4], "window active: sanitized");
        let healths = ex.refresh(&[a]);
        assert_eq!(healths, vec![BlockHealth::Ok], "retry cleared the window");
        assert_eq!(ex.get(a), &[3; 4], "cache now holds the real content");
    }

    #[test]
    fn commit_order_is_canonical_disk_then_block() {
        use crate::fault::FaultPlan;

        // Stage in a deliberately scrambled order, crash after j writes,
        // and check that exactly the first j blocks in (disk, block)
        // order landed — the order PR 4 pins for the crash matrix.
        let staged = [
            BlockAddr::new(2, 1),
            BlockAddr::new(0, 3),
            BlockAddr::new(1, 0),
            BlockAddr::new(0, 1),
            BlockAddr::new(2, 0),
        ];
        let mut canonical = staged;
        canonical.sort_unstable();
        for j in 0..=staged.len() as u64 {
            let mut disks = array(4, 4);
            disks.set_fault_plan(FaultPlan::new().crash_after(j));
            let mut ex = BatchExecutor::new(&mut disks);
            for (i, &a) in staged.iter().enumerate() {
                ex.stage_write(a, vec![10 + i as Word; 4]);
            }
            let _ = ex.commit_checked();
            disks.clear_fault_plan();
            for (rank, &a) in canonical.iter().enumerate() {
                let want_landed = (rank as u64) < j;
                let landed = disks.peek(a) != [0; 4];
                assert_eq!(
                    landed, want_landed,
                    "crash after {j}: canonical rank {rank} ({a:?})"
                );
            }
        }
    }

    #[test]
    fn journaled_commit_is_atomic_under_any_crash_point() {
        use crate::fault::FaultPlan;
        use crate::journal::JournalRegion;

        // 3 staged blocks => 3 payload slots + head + 3 in-place = 7
        // physical writes. Every crash point must leave all-or-nothing.
        let targets = [
            BlockAddr::new(0, 1),
            BlockAddr::new(1, 2),
            BlockAddr::new(2, 0),
        ];
        for k in 0..=7u64 {
            let mut disks = DiskArray::new(PdmConfig::new(4, 16), 8);
            disks.enable_journal(JournalRegion {
                first_block: 4,
                rows: 3,
            });
            disks.set_fault_plan(FaultPlan::new().crash_after(k));
            let mut ex = BatchExecutor::new(&mut disks);
            for (i, &a) in targets.iter().enumerate() {
                ex.stage_write(a, vec![100 + i as Word; 16]);
            }
            let _ = ex.commit_checked_with_meta(&[k]);
            disks.clear_fault_plan();
            let report = disks.recover();
            let committed = report.replayed.iter().any(|e| e.meta == vec![k]);
            for (i, &a) in targets.iter().enumerate() {
                let want: Vec<Word> = if committed {
                    vec![100 + i as Word; 16]
                } else {
                    vec![0; 16]
                };
                assert_eq!(disks.read_block(a), want, "crash after {k} ({a:?})");
            }
        }
    }
}
