//! Write-ahead intent journal: crash-consistent multi-block commits.
//!
//! The PDM write primitive is block-atomic (a physical block write either
//! lands fully or not at all — torn writes are a separate, checksummed
//! fault), but every interesting mutation in this workspace writes
//! *several* blocks: a `DynamicDict` insert touches membership **and**
//! field blocks, a `BatchExecutor` commit flushes a whole staged set, a
//! scrub repair re-encodes a stripe. A crash between the first and last
//! write of such a group leaves the image in a state no decoder is
//! specified for. The journal closes that gap with a classic redo
//! (intent) log, striped across the disks and checksummed through the
//! same [`BlockCodec`](crate::integrity::BlockCodec) seam as the
//! integrity layer:
//!
//! 1. **Append**: the op's new block images are written to consecutive
//!    journal slots, followed by a *descriptor* (op seq, per-target
//!    `(disk, block, checksum)` triples, and a small opaque metadata
//!    payload owned by the calling dictionary), **descriptor last**.
//!    Physical writes land in batch slice order, so the descriptor — the
//!    single atomicity point — exists on disk only if every payload
//!    image before it landed.
//! 2. **Apply**: the same images are written in place.
//! 3. **Truncate**: a superblock recording the highest applied seq (plus
//!    the owner's metadata checkpoint) is rewritten *lazily*, every
//!    [`GROUP_COMMIT_EVERY`] ops or under ring pressure — the group
//!    commit that keeps the journal's amortized cost at one parallel I/O
//!    per op.
//!
//! [`DiskArray::recover`] is the other half: scan the ring, discard
//! descriptors that are stale (seq ≤ superblock) or incomplete (missing
//! descriptor, payload image whose checksum does not match its triple),
//! and **replay** intact newer intents in seq order. Replay rewrites
//! absolute images, so it is idempotent: recovering twice, or recovering
//! an intent whose in-place writes had already landed, converges to the
//! same state. An op is therefore atomic under any crash point: before
//! its descriptor lands it rolls back (no in-place write has happened,
//! in-flight journal slots are garbage), after it lands it rolls
//! forward.
//!
//! The journal is **opt-in** (`None` costs one branch per write batch)
//! and its placement is the caller's job: allocate
//! [`JournalRegion::rows`] blocks on *every* disk through the same
//! allocator that lays out the dictionaries — before any dictionary
//! structures for growing fronts, or appended past the high-water mark
//! via [`DiskArray::enable_journal_appended`] for frozen layouts.
//!
//! While a journal is enabled, **every** mutation of journal-protected
//! structures must route through
//! [`DiskArray::journaled_write_batch_checked`]: replay rewrites old
//! images over any unjournaled in-place change, so mixing the two on the
//! same blocks would let recovery undo an acknowledged op.

use crate::disk::{BlockAddr, DiskArray, ReadOptions, WriteOptions};
use crate::integrity::BlockHealth;
use crate::metrics::IoEvent;
use crate::stats::OpCost;
use crate::Word;
use std::collections::VecDeque;

/// `"PDMJSUP1"` — superblock magic.
const SUPER_MAGIC: Word = 0x5044_4D4A_5355_5031;
/// `"PDMJHED1"` — entry-descriptor magic.
const HEAD_MAGIC: Word = 0x5044_4D4A_4845_4431;
/// `"PDMJCON1"` — descriptor-continuation magic.
const CONT_MAGIC: Word = 0x5044_4D4A_434F_4E31;
/// On-disk format version recorded in the superblock.
const VERSION: Word = 1;

/// A sealed intent found during the ring scan, pending replay:
/// `(seq, head slot, target images, owner metadata, slots consumed)`.
type CandidateEntry = (u64, usize, Vec<(BlockAddr, Vec<Word>)>, Vec<Word>, usize);

/// Superblock rewrites are amortized over this many journaled ops (the
/// group-commit factor). Recovery replays at most this many extra
/// already-applied intents — harmless, because replay is idempotent.
pub const GROUP_COMMIT_EVERY: u64 = 8;

/// Placement of the journal ring: `rows` blocks on **every** disk,
/// starting at block `first_block`. Slot `g` of the ring lives at disk
/// `g mod D`, block `first_block + g / D` — consecutive slots land on
/// consecutive disks, so appending a `k`-slot entry costs
/// `ceil((k+1)/D)` parallel I/Os (one, for every op the paper's
/// structures perform).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRegion {
    /// First block index of the ring on every disk.
    pub first_block: usize,
    /// Blocks per disk reserved for the ring.
    pub rows: usize,
}

impl JournalRegion {
    /// Total ring slots (superblock included).
    #[must_use]
    pub fn slots(&self, disks: usize) -> usize {
        self.rows * disks
    }

    /// Address of global ring slot `g` (slot 0 is the superblock).
    #[must_use]
    pub fn slot_addr(&self, g: usize, disks: usize) -> BlockAddr {
        BlockAddr::new(g % disks, self.first_block + g / disks)
    }
}

/// One intact intent replayed by [`DiskArray::recover`], in the order it
/// was applied. Dictionaries use the `meta` payload (opaque to the disk
/// layer) to reconcile their in-memory counters with the replay — see
/// `Dict::recover` in `pdm-dict`.
#[derive(Debug, Clone)]
pub struct ReplayedIntent {
    /// The entry's journal sequence number (also its op id).
    pub seq: u64,
    /// The opaque metadata words the appender recorded with the intent.
    pub meta: Vec<Word>,
    /// The in-place blocks the replay rewrote.
    pub targets: Vec<BlockAddr>,
}

/// Outcome of a [`DiskArray::recover`] pass.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Ring slots scanned (0 when no journal is enabled).
    pub scanned_slots: u64,
    /// Intact intents replayed, oldest first.
    pub replayed: Vec<ReplayedIntent>,
    /// Descriptors discarded: stale (already truncated), incomplete
    /// (payload missing or mismatched — the crash hit mid-append, the op
    /// rolls back), or targeting blocks outside the current geometry.
    pub discarded: u64,
    /// Intents that could not be fully replayed because in-place writes
    /// failed (e.g. a still-dead disk). They stay in the ring; a later
    /// `recover` after the hardware is replaced retries them.
    pub stalled: u64,
    /// In-place blocks rewritten by the replay.
    pub blocks_rewritten: u64,
    /// I/O charged for the scan plus the replay.
    pub cost: OpCost,
}

impl RecoveryReport {
    /// Whether the pass found nothing to do (clean shutdown).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.replayed.is_empty() && self.discarded == 0 && self.stalled == 0
    }
}

/// In-memory journal cursor state (`DiskArray::journal`).
#[derive(Debug, Clone)]
pub(crate) struct JournalState {
    region: JournalRegion,
    /// Seq the next appended entry receives (seqs start at 1).
    next_seq: u64,
    /// Data-slot index (0-based, superblock excluded) of the next append.
    next_slot: usize,
    /// Highest seq whose in-place writes have been issued (in memory —
    /// runs ahead of the superblock by up to the group-commit factor).
    applied: u64,
    /// Highest applied seq the on-disk superblock records.
    persisted: u64,
    /// Latest metadata checkpoint supplied by the owner
    /// ([`DiskArray::journal_set_meta`]); persisted with the next
    /// superblock rewrite.
    meta: Vec<Word>,
    /// Entries appended but not yet covered by a persisted truncation:
    /// `(seq, slots)` in append order. Their slots must not be reused.
    live: VecDeque<(u64, usize)>,
    appends_since_persist: u64,
    /// Seq of the most recent append (0 = none since enable/reopen).
    last_seq: u64,
    /// Oversized entries written directly, bypassing the ring.
    bypassed: u64,
    /// Set by `reopen_journal`: cursors are unknown until `recover`
    /// scans the ring.
    needs_scan: bool,
}

impl JournalState {
    fn live_slots(&self) -> usize {
        self.live.iter().map(|&(_, n)| n).sum()
    }
}

/// Build a sealed journal block: `words` padded to `B`, with the last
/// word set to the codec checksum of the rest (salted by `addr`).
fn seal(disks: &DiskArray, addr: BlockAddr, mut words: Vec<Word>) -> Vec<Word> {
    let b = disks.block_words();
    assert!(words.len() < b, "journal block layout overflows B = {b}");
    words.resize(b, 0);
    let sum = disks.block_codec().checksum(addr, &words);
    *words.last_mut().expect("B >= 1") = sum;
    words
}

/// Verify a sealed journal block; returns `false` for garbage.
fn seal_ok(disks: &DiskArray, addr: BlockAddr, block: &[Word]) -> bool {
    let b = disks.block_words();
    if block.len() != b {
        return false;
    }
    let mut tmp = block.to_vec();
    let stored = tmp[b - 1];
    tmp[b - 1] = 0;
    disks.block_codec().checksum(addr, &tmp) == stored
}

/// Descriptor-head triples capacity for a metadata payload of `m` words.
fn head_triples(block_words: usize, m: usize) -> usize {
    (block_words - 1).saturating_sub(3 + m) / 3
}

/// Continuation-block triples capacity.
fn cont_triples(block_words: usize) -> usize {
    (block_words - 1).saturating_sub(3) / 3
}

fn pack_counts(k: usize, conts: usize, meta_len: usize) -> Word {
    debug_assert!(k <= 0xFFFF && conts <= 0xFFFF && meta_len <= 0xFFFF);
    (k as Word) | ((conts as Word) << 16) | ((meta_len as Word) << 32)
}

fn unpack_counts(w: Word) -> (usize, usize, usize) {
    (
        (w & 0xFFFF) as usize,
        ((w >> 16) & 0xFFFF) as usize,
        ((w >> 32) & 0xFFFF) as usize,
    )
}

impl DiskArray {
    /// Format and enable a write-ahead intent journal over `region`.
    ///
    /// The region's blocks must already exist on every disk (allocate
    /// them through the same allocator that lays out the dictionaries,
    /// **before** any structure that may grow later, so nothing is ever
    /// placed on top of the ring). Writes the initial superblock (one
    /// charged block write).
    ///
    /// # Panics
    /// Panics if the geometry cannot hold a journal (`B < 8`, fewer than
    /// 3 data slots) or the region exceeds the current disk size.
    pub fn enable_journal(&mut self, region: JournalRegion) {
        let b = self.block_words();
        let d = self.disks();
        assert!(b >= 8, "journal needs B >= 8 words (B = {b})");
        assert!(
            region.rows >= 1 && region.slots(d) >= 4,
            "journal region too small: {region:?} on {d} disks"
        );
        for disk in 0..d {
            assert!(
                self.blocks_on(disk) >= region.first_block + region.rows,
                "journal region {region:?} exceeds disk {disk} ({} blocks)",
                self.blocks_on(disk)
            );
        }
        self.journal = Some(JournalState {
            region,
            next_seq: 1,
            next_slot: 0,
            applied: 0,
            persisted: 0,
            meta: Vec::new(),
            live: VecDeque::new(),
            appends_since_persist: 0,
            last_seq: 0,
            bypassed: 0,
            needs_scan: false,
        });
        self.persist_superblock();
    }

    /// [`enable_journal`](DiskArray::enable_journal) for frozen layouts:
    /// grow every disk by `rows` blocks past the current high-water mark
    /// and put the ring there. Only safe when nothing else will allocate
    /// on this array afterwards (static dictionaries, post-build).
    pub fn enable_journal_appended(&mut self, rows: usize) -> JournalRegion {
        let first_block = (0..self.disks()).map(|d| self.blocks_on(d)).max().unwrap_or(0);
        self.grow(first_block + rows);
        let region = JournalRegion { first_block, rows };
        self.enable_journal(region);
        region
    }

    /// Attach to an existing journal without formatting it: reads the
    /// superblock (one charged read) and adopts its truncation point and
    /// metadata checkpoint. Cursors into the ring stay unknown until
    /// [`recover`](DiskArray::recover) scans it — appending before then
    /// panics. This is the reopen path after a crash.
    ///
    /// # Panics
    /// Panics if the region holds no valid superblock (the array was
    /// never journal-enabled there).
    pub fn reopen_journal(&mut self, region: JournalRegion) {
        let d = self.disks();
        let addr = region.slot_addr(0, d);
        let block = self
            .read(&[addr], ReadOptions::default())
            .into_blocks()
            .pop()
            .expect("one block");
        assert!(
            block[0] == SUPER_MAGIC && block[1] == VERSION,
            "no journal superblock at {addr:?}"
        );
        // Verify through a temporary state so `seal_ok` can borrow self.
        assert!(
            seal_ok(self, addr, &block),
            "journal superblock at {addr:?} fails its checksum"
        );
        let applied = block[2];
        let meta_len = block[3] as usize;
        let meta = block[4..4 + meta_len].to_vec();
        self.journal = Some(JournalState {
            region,
            next_seq: applied + 1,
            next_slot: 0,
            applied,
            persisted: applied,
            meta,
            live: VecDeque::new(),
            appends_since_persist: 0,
            last_seq: 0,
            bypassed: 0,
            needs_scan: true,
        });
    }

    /// Whether a journal is enabled on this array.
    #[must_use]
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// The enabled journal's region, if any.
    #[must_use]
    pub fn journal_region(&self) -> Option<JournalRegion> {
        self.journal.as_ref().map(|j| j.region)
    }

    /// Seq assigned to the most recent journaled write (0 if none since
    /// enable/reopen). Dictionaries record this as their replay
    /// watermark.
    #[must_use]
    pub fn last_journal_seq(&self) -> u64 {
        self.journal.as_ref().map_or(0, |j| j.last_seq)
    }

    /// Oversized entries that bypassed the ring (written in place,
    /// unprotected) because they needed more slots than the whole ring
    /// holds. Size the region so this stays 0.
    #[must_use]
    pub fn journal_bypassed(&self) -> u64 {
        self.journal.as_ref().map_or(0, |j| j.bypassed)
    }

    /// The metadata checkpoint currently associated with the journal
    /// (the owner's last [`journal_set_meta`](DiskArray::journal_set_meta)
    /// / [`journal_checkpoint`](DiskArray::journal_checkpoint), or after
    /// [`reopen_journal`](DiskArray::reopen_journal) the superblock's).
    #[must_use]
    pub fn journal_meta(&self) -> Vec<Word> {
        self.journal.as_ref().map_or_else(Vec::new, |j| j.meta.clone())
    }

    /// Stage the owner's metadata checkpoint (no I/O). The words are
    /// persisted together with the applied-seq watermark at the next
    /// superblock rewrite, so the pair `(checkpoint, applied seq)` on
    /// disk is always mutually consistent: the checkpoint reflects
    /// exactly the ops up to that seq, and newer intents still in the
    /// ring carry the deltas on top. Call it after every journaled op.
    ///
    /// # Panics
    /// Panics if `meta` does not fit the superblock (`B - 5` words).
    pub fn journal_set_meta(&mut self, meta: &[Word]) {
        let cap = self.block_words() - 5;
        assert!(
            meta.len() <= cap,
            "journal meta of {} words exceeds the superblock capacity {cap}",
            meta.len()
        );
        if let Some(j) = self.journal.as_mut() {
            j.meta = meta.to_vec();
        }
    }

    /// Persist a metadata checkpoint and truncate the journal **now**
    /// (one charged superblock write): every intent up to the current
    /// applied seq stops being replayable. Called by `Dict::recover`
    /// implementations once their in-memory state reflects the replay.
    pub fn journal_checkpoint(&mut self, meta: &[Word]) {
        self.journal_set_meta(meta);
        if self.journal.is_some() {
            self.persist_superblock();
        }
    }

    /// Rewrite the superblock with the current applied seq + metadata
    /// checkpoint, truncating every applied entry.
    fn persist_superblock(&mut self) {
        let Some(mut j) = self.journal.take() else {
            return;
        };
        let addr = j.region.slot_addr(0, self.disks());
        let mut words = vec![SUPER_MAGIC, VERSION, j.applied, j.meta.len() as Word];
        words.extend_from_slice(&j.meta);
        let image = seal(self, addr, words);
        self.write(&[(addr, &image)], WriteOptions::checked());
        j.persisted = j.applied;
        while j.live.front().is_some_and(|&(seq, _)| seq <= j.persisted) {
            j.live.pop_front();
        }
        j.appends_since_persist = 0;
        self.journal = Some(j);
    }

    /// A checked [`write`](DiskArray::write) with
    /// crash protection: the batch is recorded in the journal as one
    /// intent entry (images + checksummed descriptor, descriptor last),
    /// then applied in place, making the whole multi-block group atomic
    /// under any crash point — recovery replays it fully or rolls it
    /// back fully. `meta` is an opaque payload stored in the descriptor
    /// and handed back by [`recover`](DiskArray::recover) for the owner
    /// to reconcile its in-memory counters.
    ///
    /// Every payload must be a **full** block image (replay rewrites
    /// whole blocks). Without an enabled journal this degrades to a
    /// plain checked write. Entries larger than the whole ring bypass it
    /// (counted by [`journal_bypassed`](DiskArray::journal_bypassed)).
    ///
    /// # Panics
    /// Panics on out-of-range addresses, non-full-block payloads, more
    /// than `u16::MAX` targets, an oversized `meta`, or if called after
    /// [`reopen_journal`](DiskArray::reopen_journal) without an
    /// intervening [`recover`](DiskArray::recover).
    pub fn journaled_write_batch_checked(
        &mut self,
        writes: &[(BlockAddr, &[Word])],
        meta: &[Word],
    ) -> Vec<BlockHealth> {
        if self.journal.is_none() {
            return self.write(writes, WriteOptions::checked()).healths;
        }
        let b = self.block_words();
        let d = self.disks();
        for &(_, data) in writes {
            assert_eq!(data.len(), b, "journaled writes require full-block images");
        }
        assert!(writes.len() <= 0xFFFF, "too many targets for one intent");
        assert!(meta.len() <= 0xFFFF && meta.len() + 4 < b, "journal meta too large");
        {
            let j = self.journal.as_ref().expect("journal enabled");
            assert!(
                !j.needs_scan,
                "journal reopened but not recovered: call recover() first"
            );
        }
        let k = writes.len();
        let t_head = head_triples(b, meta.len());
        let t_cont = cont_triples(b);
        let conts = if k > t_head {
            (k - t_head).div_ceil(t_cont.max(1))
        } else {
            0
        };
        let n_slots = k + conts + 1;
        let data_slots = {
            let j = self.journal.as_ref().expect("journal enabled");
            j.region.slots(d) - 1
        };
        if n_slots > data_slots {
            let j = self.journal.as_mut().expect("journal enabled");
            j.bypassed += 1;
            return self.write(writes, WriteOptions::checked()).healths;
        }
        // Group commit: persist the (stale-by-design) truncation point
        // BEFORE this op when the schedule or ring pressure calls for
        // it, so the superblock never pairs a newer applied seq with an
        // older metadata checkpoint.
        {
            let j = self.journal.as_ref().expect("journal enabled");
            if j.appends_since_persist >= GROUP_COMMIT_EVERY
                || j.live_slots() + n_slots > data_slots
            {
                self.persist_superblock();
            }
        }
        let mut j = self.journal.take().expect("journal enabled");
        let seq = j.next_seq;
        // Build the entry: payload images, continuations, head LAST.
        let codec = self.block_codec().clone();
        let triples: Vec<(BlockAddr, Word)> = writes
            .iter()
            .map(|&(a, data)| (a, codec.checksum(a, data)))
            .collect();
        let slot_at = |i: usize| -> BlockAddr {
            let s = (j.next_slot + i) % data_slots;
            j.region.slot_addr(s + 1, d)
        };
        let mut images: Vec<(BlockAddr, Vec<Word>)> = Vec::with_capacity(n_slots);
        for (i, &(_, data)) in writes.iter().enumerate() {
            images.push((slot_at(i), data.to_vec()));
        }
        let head_take = k.min(t_head);
        for c in 0..conts {
            let addr = slot_at(k + c);
            let mut words = vec![CONT_MAGIC, seq, c as Word];
            for (a, sum) in triples
                .iter()
                .skip(head_take + c * t_cont)
                .take(t_cont)
            {
                words.extend_from_slice(&[a.disk as Word, a.block as Word, *sum]);
            }
            images.push((addr, seal(self, addr, words)));
        }
        let head_addr = slot_at(k + conts);
        let mut head = vec![HEAD_MAGIC, seq, pack_counts(k, conts, meta.len())];
        head.extend_from_slice(meta);
        for (a, sum) in triples.iter().take(head_take) {
            head.extend_from_slice(&[a.disk as Word, a.block as Word, *sum]);
        }
        images.push((head_addr, seal(self, head_addr, head)));
        let refs: Vec<(BlockAddr, &[Word])> =
            images.iter().map(|(a, v)| (*a, v.as_slice())).collect();
        self.write(&refs, WriteOptions::checked());
        // In-place apply. The intent exists on disk first, so a crash
        // anywhere in here rolls the whole group forward at recovery.
        let healths = self.write(writes, WriteOptions::checked()).healths;
        j.next_seq += 1;
        j.next_slot = (j.next_slot + n_slots) % data_slots;
        j.applied = seq;
        j.last_seq = seq;
        j.live.push_back((seq, n_slots));
        j.appends_since_persist += 1;
        self.journal = Some(j);
        self.emit_io_event(IoEvent::JournalAppend {
            blocks: n_slots as u64,
            targets: k as u64,
        });
        healths
    }

    /// Crash recovery: scan the journal ring, discard stale or
    /// incomplete intents, and replay intact ones newer than the
    /// superblock's truncation point, oldest first (idempotent redo of
    /// absolute block images). Also drops the entire verified-once clean
    /// cache — replay rewrites blocks underneath any prior verification,
    /// so nothing read before the crash may be trusted without
    /// re-verification.
    ///
    /// Does **not** truncate: the replayed intents stay replayable until
    /// the owner confirms its in-memory state with
    /// [`journal_checkpoint`](DiskArray::journal_checkpoint), so a crash
    /// *during* recovery just recovers again. Without an enabled journal
    /// this only invalidates the clean cache.
    pub fn recover(&mut self) -> RecoveryReport {
        let Some(mut j) = self.journal.take() else {
            self.invalidate_verified();
            return RecoveryReport::default();
        };
        let scope = self.begin_op();
        let d = self.disks();
        let b = self.block_words();
        let data_slots = j.region.slots(d) - 1;
        let addrs: Vec<BlockAddr> = (0..data_slots)
            .map(|s| j.region.slot_addr(s + 1, d))
            .collect();
        let slots = self.read(&addrs, ReadOptions::default()).into_blocks();
        let mut report = RecoveryReport {
            scanned_slots: data_slots as u64 + 1,
            ..RecoveryReport::default()
        };
        let mut entries: Vec<CandidateEntry> = Vec::new();
        let mut max_seal_valid: Option<(u64, usize)> = None;
        for (h, block) in slots.iter().enumerate() {
            if block[0] != HEAD_MAGIC || !seal_ok(self, addrs[h], block) {
                continue;
            }
            let seq = block[1];
            if max_seal_valid.is_none_or(|(s, _)| seq > s) {
                max_seal_valid = Some((seq, h));
            }
            if seq <= j.persisted {
                continue; // truncated: already applied and checkpointed
            }
            let (k, conts, meta_len) = unpack_counts(block[2]);
            let n_slots = k + conts + 1;
            if n_slots > data_slots || 3 + meta_len + 3 * k.min(head_triples(b, meta_len)) > b - 1
            {
                report.discarded += 1;
                continue;
            }
            let meta = block[3..3 + meta_len].to_vec();
            let slot_of = |i: usize| (h + data_slots - (n_slots - 1) + i) % data_slots;
            // Collect the triples: head first, then continuations.
            let t_head = head_triples(b, meta_len);
            let head_take = k.min(t_head);
            let t_cont = cont_triples(b);
            let mut triples: Vec<(BlockAddr, Word)> = Vec::with_capacity(k);
            let mut at = 3 + meta_len;
            for _ in 0..head_take {
                triples.push((
                    BlockAddr::new(block[at] as usize, block[at + 1] as usize),
                    block[at + 2],
                ));
                at += 3;
            }
            let mut intact = true;
            for c in 0..conts {
                let cs = slot_of(k + c);
                let cb = &slots[cs];
                if cb[0] != CONT_MAGIC
                    || cb[1] != seq
                    || cb[2] != c as Word
                    || !seal_ok(self, addrs[cs], cb)
                {
                    intact = false;
                    break;
                }
                let take = (k - head_take - c * t_cont).min(t_cont);
                let mut cat = 3;
                for _ in 0..take {
                    triples.push((
                        BlockAddr::new(cb[cat] as usize, cb[cat + 1] as usize),
                        cb[cat + 2],
                    ));
                    cat += 3;
                }
            }
            if !intact || triples.len() != k {
                report.discarded += 1;
                continue;
            }
            // Validate every payload image against its recorded checksum
            // (also proves the image itself landed before the crash) and
            // the target against the current geometry.
            let mut writes: Vec<(BlockAddr, Vec<Word>)> = Vec::with_capacity(k);
            for (i, &(target, sum)) in triples.iter().enumerate() {
                let ps = slot_of(i);
                let image = &slots[ps];
                if target.disk >= d
                    || target.block >= self.blocks_on(target.disk)
                    || self.block_codec().checksum(target, image) != sum
                {
                    intact = false;
                    break;
                }
                writes.push((target, image.clone()));
            }
            if !intact {
                report.discarded += 1;
                continue;
            }
            entries.push((seq, h, writes, meta, n_slots));
        }
        entries.sort_by_key(|&(seq, ..)| seq);
        let mut clean_prefix = true;
        j.live.clear();
        for (seq, _, writes, meta, n_slots) in entries {
            let refs: Vec<(BlockAddr, &[Word])> =
                writes.iter().map(|(a, v)| (*a, v.as_slice())).collect();
            let healths = self.write(&refs, WriteOptions::checked()).healths;
            let landed = healths.iter().all(|h| h.is_ok());
            if landed {
                report.blocks_rewritten += writes.len() as u64;
                report.replayed.push(ReplayedIntent {
                    seq,
                    meta,
                    targets: writes.iter().map(|&(a, _)| a).collect(),
                });
                if clean_prefix {
                    j.applied = seq;
                }
            } else {
                report.stalled += 1;
                clean_prefix = false;
            }
            j.live.push_back((seq, n_slots));
        }
        // Reconstruct the cursors past everything the ring has seen —
        // including stale or discarded descriptors, whose seqs must
        // never be reissued.
        if let Some((max_seq, h)) = max_seal_valid {
            j.next_seq = j.next_seq.max(max_seq + 1);
            j.next_slot = (h + 1) % data_slots;
        }
        j.next_seq = j.next_seq.max(j.applied + 1);
        j.needs_scan = false;
        // Last, so even blocks the scan itself verified are distrusted:
        // nothing observed before this point may skip re-verification.
        self.invalidate_verified();
        report.cost = self.end_op(scope);
        self.journal = Some(j);
        self.emit_io_event(IoEvent::Recovery {
            replayed: report.replayed.len() as u64,
            discarded: report.discarded,
            blocks_rewritten: report.blocks_rewritten,
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;
    use crate::fault::FaultPlan;

    const B: usize = 16;

    fn array() -> DiskArray {
        // 4 disks × 16-word blocks; 8 data blocks + journal rows.
        let mut disks = DiskArray::new(PdmConfig::new(4, B), 12);
        disks.enable_journal(JournalRegion {
            first_block: 8,
            rows: 4,
        });
        disks
    }

    fn img(tag: Word) -> Vec<Word> {
        (0..B as Word).map(|i| tag * 1000 + i).collect()
    }

    #[test]
    fn journaled_write_lands_and_reads_back() {
        let mut disks = array();
        let a = BlockAddr::new(1, 2);
        let data = img(7);
        let healths = disks.journaled_write_batch_checked(&[(a, &data)], &[42]);
        assert!(healths.iter().all(|h| h.is_ok()));
        assert_eq!(disks.read_block(a), data);
        assert_eq!(disks.last_journal_seq(), 1);
        assert_eq!(disks.journal_bypassed(), 0);
    }

    #[test]
    fn recover_on_clean_array_is_a_noop() {
        let mut disks = array();
        let a = BlockAddr::new(0, 0);
        disks.journaled_write_batch_checked(&[(a, &img(1))], &[]);
        // The entry is applied but not yet truncated, so it replays
        // (idempotent: same image).
        let report = disks.recover();
        assert_eq!(report.replayed.len(), 1);
        assert_eq!(report.discarded, 0);
        assert_eq!(disks.read_block(a), img(1));
        // Checkpoint truncates; the next recovery is clean.
        disks.journal_checkpoint(&[9, 9]);
        let report = disks.recover();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn crash_before_descriptor_rolls_back() {
        let mut disks = array();
        let a = BlockAddr::new(2, 3);
        disks.write_block(a, &img(1));
        disks.journal_checkpoint(&[]);
        // Entry = 2 payloads + head = 3 slot writes, then 2 in-place.
        // Crash after 1 write: only the first payload slot lands.
        disks.set_fault_plan(FaultPlan::new().crash_after(1));
        let b2 = BlockAddr::new(3, 4);
        disks.journaled_write_batch_checked(&[(a, &img(2)), (b2, &img(3))], &[]);
        assert!(disks.crash_fired());
        disks.clear_fault_plan();
        let report = disks.recover();
        assert!(report.replayed.is_empty(), "{report:?}");
        assert_eq!(disks.read_block(a), img(1), "in-place state untouched");
    }

    #[test]
    fn crash_after_descriptor_rolls_forward() {
        let mut disks = array();
        let a = BlockAddr::new(2, 3);
        let b2 = BlockAddr::new(3, 4);
        disks.write_block(a, &img(1));
        disks.journal_checkpoint(&[]);
        // 3 journal slot writes land; both in-place writes are lost.
        disks.set_fault_plan(FaultPlan::new().crash_after(3));
        disks.journaled_write_batch_checked(&[(a, &img(2)), (b2, &img(3))], &[5]);
        disks.clear_fault_plan();
        assert_eq!(disks.read_block(a), img(1), "apply was dropped");
        let report = disks.recover();
        assert_eq!(report.replayed.len(), 1);
        assert_eq!(report.replayed[0].meta, vec![5]);
        assert_eq!(report.blocks_rewritten, 2);
        assert_eq!(disks.read_block(a), img(2));
        assert_eq!(disks.read_block(b2), img(3));
    }

    #[test]
    fn every_crash_point_is_all_or_nothing() {
        // The miniature exhaustive crash matrix at the disk layer.
        let targets = [BlockAddr::new(0, 1), BlockAddr::new(0, 2), BlockAddr::new(1, 5)];
        // 3 payloads + 1 head + 3 in-place = 7 writes.
        for k in 0..=7u64 {
            let mut disks = array();
            for &t in &targets {
                disks.write_block(t, &img(100));
            }
            disks.journal_checkpoint(&[]);
            disks.set_fault_plan(FaultPlan::new().crash_after(k));
            let old = img(100);
            let new: Vec<Vec<Word>> = (0..3).map(|i| img(200 + i)).collect();
            let writes: Vec<(BlockAddr, &[Word])> = targets
                .iter()
                .zip(&new)
                .map(|(&a, v)| (a, v.as_slice()))
                .collect();
            disks.journaled_write_batch_checked(&writes, &[k]);
            disks.clear_fault_plan();
            let report = disks.recover();
            let committed = report.replayed.iter().any(|e| e.meta == vec![k]);
            for (i, &t) in targets.iter().enumerate() {
                let got = disks.read_block(t);
                if committed {
                    assert_eq!(got, new[i], "crash at {k}: partial commit");
                } else {
                    assert_eq!(got, old, "crash at {k}: partial rollback");
                }
            }
            // k >= 4 means the descriptor landed: must roll forward.
            assert_eq!(committed, k >= 4, "crash at {k}");
        }
    }

    #[test]
    fn reopen_recovers_in_flight_intents() {
        let mut disks = array();
        let a = BlockAddr::new(1, 1);
        disks.journaled_write_batch_checked(&[(a, &img(4))], &[]);
        disks.journal_set_meta(&[11, 22]);
        // Crash with the intent applied but untruncated; a new process
        // reopens from the medium alone.
        let region = disks.journal_region().unwrap();
        let mut reopened = disks.clone();
        reopened.journal = None;
        reopened.reopen_journal(region);
        assert_eq!(
            reopened.journal_meta(),
            Vec::<Word>::new(),
            "unpersisted meta is lost with the process"
        );
        let report = reopened.recover();
        assert_eq!(report.replayed.len(), 1);
        assert_eq!(reopened.read_block(a), img(4));
        // Seqs continue past everything the ring has seen.
        reopened.journaled_write_batch_checked(&[(a, &img(5))], &[]);
        assert_eq!(reopened.last_journal_seq(), 2);
    }

    #[test]
    fn group_commit_truncates_lazily_and_meta_stays_paired() {
        let mut disks = array();
        let a = BlockAddr::new(0, 3);
        for i in 0..GROUP_COMMIT_EVERY + 2 {
            disks.journaled_write_batch_checked(&[(a, &img(i))], &[]);
            disks.journal_set_meta(&[i]);
        }
        // The superblock was rewritten at some op boundary; reopen sees
        // a checkpoint k paired with applied seq k (entries k+1.. replay).
        let region = disks.journal_region().unwrap();
        let mut reopened = disks.clone();
        reopened.reopen_journal(region);
        let meta = reopened.journal_meta();
        let report = reopened.recover();
        let persisted_ops = meta.first().map_or(0, |&m| m + 1);
        let newest_replayed = report.replayed.last().expect("untruncated tail").seq;
        assert_eq!(
            persisted_ops + report.replayed.len() as u64,
            newest_replayed,
            "checkpoint {meta:?} + replayed deltas must reach the newest op"
        );
        assert_eq!(reopened.read_block(a), img(GROUP_COMMIT_EVERY + 1));
    }

    #[test]
    fn ring_wrap_reuses_slots_without_losing_live_entries() {
        let mut disks = array();
        // 4×4 ring = 15 data slots; each single-block entry takes 2.
        // 40 ops force several wraps and several forced truncations.
        for i in 0..40u64 {
            let a = BlockAddr::new((i % 4) as usize, (i % 8) as usize);
            disks.journaled_write_batch_checked(&[(a, &img(i))], &[i]);
        }
        let report = disks.recover();
        assert!(report.replayed.len() <= 8, "only the untruncated tail replays");
        assert_eq!(
            disks.read_block(BlockAddr::new(3, 7)),
            img(39),
            "latest images survive replay"
        );
    }

    #[test]
    fn continuation_descriptors_cover_wide_entries() {
        // 16-word blocks hold 4 head triples; 9 targets need conts.
        let mut disks = DiskArray::new(PdmConfig::new(4, B), 16);
        disks.enable_journal(JournalRegion {
            first_block: 8,
            rows: 8,
        });
        let writes: Vec<(BlockAddr, Vec<Word>)> = (0..9)
            .map(|i| (BlockAddr::new(i % 4, i / 4), img(i as Word)))
            .collect();
        let refs: Vec<(BlockAddr, &[Word])> =
            writes.iter().map(|(a, v)| (*a, v.as_slice())).collect();
        // Crash right before the head: everything rolls back.
        disks.set_fault_plan(FaultPlan::new().crash_after(11));
        disks.journaled_write_batch_checked(&refs, &[]);
        disks.clear_fault_plan();
        let report = disks.recover();
        assert!(report.replayed.is_empty(), "{report:?}");
        // Retry with no crash, then verify replay covers all 9 targets.
        disks.journaled_write_batch_checked(&refs, &[7]);
        let report = disks.recover();
        let wide = report.replayed.iter().find(|e| e.meta == vec![7]).unwrap();
        assert_eq!(wide.targets.len(), 9);
        for (a, v) in &writes {
            assert_eq!(&disks.read_block(*a), v);
        }
    }

    #[test]
    fn oversized_entries_bypass_the_ring() {
        let mut disks = DiskArray::new(PdmConfig::new(2, B), 40);
        disks.enable_journal(JournalRegion {
            first_block: 36,
            rows: 2,
        });
        let writes: Vec<(BlockAddr, Vec<Word>)> = (0..30)
            .map(|i| (BlockAddr::new(i % 2, i / 2), img(i as Word)))
            .collect();
        let refs: Vec<(BlockAddr, &[Word])> =
            writes.iter().map(|(a, v)| (*a, v.as_slice())).collect();
        let healths = disks.journaled_write_batch_checked(&refs, &[]);
        assert!(healths.iter().all(|h| h.is_ok()));
        assert_eq!(disks.journal_bypassed(), 1);
        assert_eq!(disks.read_block(BlockAddr::new(0, 0)), img(0));
    }

    #[test]
    fn recover_drops_the_verified_clean_cache() {
        let mut disks = array();
        let a = BlockAddr::new(1, 4);
        disks.write_block(a, &img(3));
        disks.enable_integrity();
        let _ = disks.read(&[a, BlockAddr::new(0, 0)], ReadOptions::verified());
        assert!(disks.verified_clean_blocks() > 0);
        let _ = disks.recover();
        assert_eq!(
            disks.verified_clean_blocks(),
            0,
            "recovery must distrust every pre-crash verification"
        );
    }

    #[test]
    fn journal_overhead_is_about_one_io_per_op() {
        let mut plain = DiskArray::new(PdmConfig::new(8, B), 16);
        let mut journaled = DiskArray::new(PdmConfig::new(8, B), 16);
        journaled.enable_journal_appended(4);
        let base = journaled.stats().parallel_ios;
        for i in 0..32u64 {
            let writes: Vec<(BlockAddr, Vec<Word>)> = (0..3)
                .map(|t| (BlockAddr::new(((i + t) % 8) as usize, (i % 16) as usize), img(t)))
                .collect();
            let refs: Vec<(BlockAddr, &[Word])> =
                writes.iter().map(|(a, v)| (*a, v.as_slice())).collect();
            plain.write(&refs, WriteOptions::checked());
            journaled.journaled_write_batch_checked(&refs, &[]);
        }
        let plain_ios = plain.stats().parallel_ios;
        let extra = journaled.stats().parallel_ios - base - plain_ios;
        // 32 ops: ~1 I/O per append + ~1/8 amortized superblock.
        assert!(
            extra <= 32 + 32 / GROUP_COMMIT_EVERY + 2,
            "journal overhead too high: {extra} extra parallel I/Os over {plain_ios}"
        );
    }
}
