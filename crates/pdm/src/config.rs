//! Model geometry: number of disks, block size, internal memory, and the
//! model variant (parallel disk vs. parallel disk head).

/// Which two-level model charges the I/Os.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Model {
    /// The parallel disk model of Vitter and Shriver: `D` independent disks,
    /// one parallel I/O moves **at most one** block per disk. A batch that
    /// touches `c_i` blocks on disk `i` costs `max_i c_i` parallel I/Os.
    #[default]
    ParallelDisk,
    /// The parallel disk *head* model of Aggarwal and Vitter: one disk with
    /// `D` read/write heads, so **any** `D` blocks can be moved in one
    /// parallel I/O regardless of their placement. A batch of `t` blocks
    /// costs `ceil(t / D)` parallel I/Os. The paper notes this model is
    /// stronger and "fails to model existing hardware"; it is needed only by
    /// the non-striped semi-explicit expanders of Section 5.
    ParallelDiskHead,
}

/// Geometry of a simulated parallel disk system.
///
/// `D = disks`, `B = block_words` follow the paper's notation. The optional
/// internal memory capacity `mem_words` (`M` in the literature) is consumed
/// by [`crate::sort`] to size merge fan-ins and by callers that want to
/// enforce the "hash function description fits in internal memory"
/// discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PdmConfig {
    /// Number of disks, `D`.
    pub disks: usize,
    /// Words per block, `B`.
    pub block_words: usize,
    /// Internal memory capacity in words, `M`. Defaults to `64 · B · D`,
    /// comfortably `Ω(B·D)` as external-memory algorithms require.
    pub mem_words: usize,
    /// Which model charges the I/Os.
    pub model: Model,
}

impl PdmConfig {
    /// Create a configuration with `disks` disks of `block_words`-word
    /// blocks, default internal memory, in the parallel disk model.
    ///
    /// # Panics
    /// Panics if `disks == 0` or `block_words == 0`.
    #[must_use]
    pub fn new(disks: usize, block_words: usize) -> Self {
        assert!(disks > 0, "a parallel disk system needs at least one disk");
        assert!(block_words > 0, "blocks must hold at least one word");
        Self {
            disks,
            block_words,
            mem_words: 64 * disks * block_words,
            model: Model::ParallelDisk,
        }
    }

    /// Builder-style override of the internal memory capacity (in words).
    ///
    /// # Panics
    /// Panics if `mem_words < 2 * disks * block_words`: external memory
    /// algorithms need room for at least two stripes in memory.
    #[must_use]
    pub fn with_mem_words(mut self, mem_words: usize) -> Self {
        assert!(
            mem_words >= 2 * self.disks * self.block_words,
            "internal memory must hold at least two stripes (2·B·D = {} words)",
            2 * self.disks * self.block_words
        );
        self.mem_words = mem_words;
        self
    }

    /// Builder-style override of the model variant.
    #[must_use]
    pub fn with_model(mut self, model: Model) -> Self {
        self.model = model;
        self
    }

    /// Words moved by one full-width parallel I/O: `B · D`.
    #[must_use]
    pub fn stripe_words(&self) -> usize {
        self.disks * self.block_words
    }

    /// The parallel I/O cost of a batch given how many blocks it touches on
    /// each disk (`per_disk[i]` = block count on disk `i`).
    #[must_use]
    pub fn batch_cost(&self, per_disk: &[usize]) -> u64 {
        match self.model {
            Model::ParallelDisk => per_disk.iter().copied().max().unwrap_or(0) as u64,
            Model::ParallelDiskHead => {
                let total: usize = per_disk.iter().sum();
                (total.div_ceil(self.disks)) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = PdmConfig::new(8, 32);
        assert_eq!(cfg.disks, 8);
        assert_eq!(cfg.block_words, 32);
        assert_eq!(cfg.stripe_words(), 256);
        assert_eq!(cfg.model, Model::ParallelDisk);
        assert!(cfg.mem_words >= 2 * cfg.stripe_words());
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        let _ = PdmConfig::new(0, 32);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_block_rejected() {
        let _ = PdmConfig::new(4, 0);
    }

    #[test]
    fn batch_cost_parallel_disk_is_per_disk_max() {
        let cfg = PdmConfig::new(4, 8);
        assert_eq!(cfg.batch_cost(&[0, 0, 0, 0]), 0);
        assert_eq!(cfg.batch_cost(&[1, 1, 1, 1]), 1);
        assert_eq!(cfg.batch_cost(&[3, 1, 0, 0]), 3);
    }

    #[test]
    fn batch_cost_head_model_is_ceil_total_over_d() {
        let cfg = PdmConfig::new(4, 8).with_model(Model::ParallelDiskHead);
        assert_eq!(cfg.batch_cost(&[3, 1, 0, 0]), 1);
        assert_eq!(cfg.batch_cost(&[3, 2, 0, 0]), 2);
        assert_eq!(cfg.batch_cost(&[4, 4, 4, 4]), 4);
    }

    #[test]
    #[should_panic(expected = "two stripes")]
    fn tiny_memory_rejected() {
        let _ = PdmConfig::new(4, 8).with_mem_words(10);
    }
}
