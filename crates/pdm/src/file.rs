//! Record files: arrays of fixed-width records striped across the disks.
//!
//! A [`RecordFile`] occupies a stripe-aligned region of the striped word
//! space and stores records contiguously, each record undivided (it never
//! straddles a *stripe* boundary check is not needed — records may cross
//! block boundaries, which is harmless because readers stream whole
//! stripes). Streaming readers and writers buffer one stripe of memory and
//! therefore cost one parallel I/O per `B·D` words moved — the optimal
//! scanning rate in the model.
//!
//! Record files append past the current high-water mark of the array, the
//! same end-of-disk discipline [`DiskArray::enable_journal_appended`]
//! uses for a late-added intent journal ring (see [`crate::journal`]);
//! the two therefore never collide as long as each is placed before the
//! other starts writing. Streaming writes themselves bypass the journal —
//! a torn bulk load is rebuilt by rerunning the load, not replayed.

use crate::disk::DiskArray;
use crate::record::{KeyedRecord, RecordLayout};
use crate::stats::OpCost;
use crate::stripe::StripedView;
use crate::Word;

/// A fixed-width record array striped across the disks.
#[derive(Debug, Clone)]
pub struct RecordFile {
    layout: RecordLayout,
    base_word: usize,
    len_records: usize,
    capacity_records: usize,
}

impl RecordFile {
    /// Allocate a file with room for `capacity_records` records at the
    /// current end of the disk array, growing the disks as needed
    /// (allocation itself performs no I/O).
    #[must_use]
    pub fn allocate_at_end(
        disks: &mut DiskArray,
        layout: RecordLayout,
        capacity_records: usize,
    ) -> Self {
        let sw = disks.config().stripe_words();
        let cur_stripes = (0..disks.disks())
            .map(|d| disks.blocks_on(d))
            .min()
            .unwrap_or(0);
        let need_words = capacity_records * layout.width_words;
        let need_stripes = need_words.div_ceil(sw);
        disks.grow(cur_stripes + need_stripes);
        RecordFile {
            layout,
            base_word: cur_stripes * sw,
            len_records: 0,
            capacity_records,
        }
    }

    /// The record layout.
    #[must_use]
    pub fn layout(&self) -> RecordLayout {
        self.layout
    }

    /// Number of records currently in the file.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len_records
    }

    /// Whether the file holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len_records == 0
    }

    /// Maximum number of records the file can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity_records
    }

    /// First word (in striped space) of record `i`.
    fn word_of(&self, i: usize) -> usize {
        self.base_word + i * self.layout.width_words
    }

    /// Overwrite the file contents with `records` (streamed, one parallel
    /// I/O per stripe written).
    ///
    /// # Panics
    /// Panics if `records.len() > capacity` or any record has the wrong
    /// width.
    pub fn write_all(&mut self, disks: &mut DiskArray, records: &[KeyedRecord]) {
        assert!(
            records.len() <= self.capacity_records,
            "file capacity {} exceeded by {} records",
            self.capacity_records,
            records.len()
        );
        let mut writer = RecordFileWriter::new(self.clone_for_rewrite());
        for r in records {
            writer.push(disks, r);
        }
        *self = writer.finish(disks);
    }

    fn clone_for_rewrite(&self) -> RecordFile {
        RecordFile {
            len_records: 0,
            ..self.clone()
        }
    }

    /// Read the whole file (streamed, **shared**): any number of readers
    /// can scan concurrently holding only `&DiskArray`. The scan's cost
    /// is *not* charged to the array; callers that account I/O use
    /// [`read_range_shared`](RecordFile::read_range_shared) (or a
    /// [`reader`](RecordFile::reader)) and pass the returned cost to
    /// [`DiskArray::charge_cost`].
    #[must_use]
    pub fn read_all(&self, disks: &DiskArray) -> Vec<KeyedRecord> {
        self.read_range_shared(disks, 0, self.len_records).0
    }

    /// Read `count` records starting at index `start` through a shared
    /// reference, returning the records plus the parallel-I/O cost the
    /// scan would be charged.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn read_range_shared(
        &self,
        disks: &DiskArray,
        start: usize,
        count: usize,
    ) -> (Vec<KeyedRecord>, OpCost) {
        assert!(
            start + count <= self.len_records,
            "range {}..{} out of bounds (len {})",
            start,
            start + count,
            self.len_records
        );
        if count == 0 {
            return (Vec::new(), OpCost::default());
        }
        let w = self.layout.width_words;
        let (words, cost) = StripedView::read_words_shared(disks, self.word_of(start), count * w);
        (
            words.chunks_exact(w).map(KeyedRecord::decode).collect(),
            cost,
        )
    }

    /// Read `count` records starting at index `start`, charging the scan
    /// to the array (streamed, batched).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read_range(
        &self,
        disks: &mut DiskArray,
        start: usize,
        count: usize,
    ) -> Vec<KeyedRecord> {
        let (records, cost) = self.read_range_shared(disks, start, count);
        if count > 0 {
            disks.charge_cost(cost);
        }
        records
    }

    /// Open a streaming reader over the whole file.
    #[must_use]
    pub fn reader(&self) -> RecordFileReader {
        RecordFileReader {
            file: self.clone(),
            next_record: 0,
            buf: Vec::new(),
            buf_first_record: 0,
            pending_cost: OpCost::default(),
        }
    }

    /// Open a streaming writer that overwrites this file from the start.
    #[must_use]
    pub fn writer(&self) -> RecordFileWriter {
        RecordFileWriter::new(self.clone_for_rewrite())
    }
}

/// Streaming reader: buffers one stripe's worth of records at a time, so a
/// full scan costs `⌈len·width / (B·D)⌉` parallel I/Os.
///
/// Reads go through the **shared** path, so any number of readers can
/// stream the same array concurrently holding only `&DiskArray`. The
/// scan's cost accumulates inside the reader; an owner that accounts
/// I/O drains it with [`take_cost`](RecordFileReader::take_cost) (or
/// [`charge_to`](RecordFileReader::charge_to)) once it regains `&mut`.
#[derive(Debug)]
pub struct RecordFileReader {
    file: RecordFile,
    next_record: usize,
    buf: Vec<KeyedRecord>,
    buf_first_record: usize,
    pending_cost: OpCost,
}

impl RecordFileReader {
    /// Next record, or `None` at end of file.
    pub fn next(&mut self, disks: &DiskArray) -> Option<KeyedRecord> {
        if self.next_record >= self.file.len_records {
            return None;
        }
        let idx = self.next_record;
        if self.buf.is_empty() || idx >= self.buf_first_record + self.buf.len() {
            // Refill: read up to one stripe of records.
            let sw = disks.config().stripe_words();
            let per_stripe = (sw / self.file.layout.width_words).max(1);
            let count = per_stripe.min(self.file.len_records - idx);
            let (buf, cost) = self.file.read_range_shared(disks, idx, count);
            self.buf = buf;
            self.pending_cost = self.pending_cost.plus(cost);
            self.buf_first_record = idx;
        }
        self.next_record += 1;
        Some(self.buf[idx - self.buf_first_record].clone())
    }

    /// Records remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.file.len_records - self.next_record
    }

    /// Drain the cost accumulated by refills since the last drain.
    #[must_use]
    pub fn take_cost(&mut self) -> OpCost {
        std::mem::take(&mut self.pending_cost)
    }

    /// Charge the accumulated cost to `disks` (no-op when nothing is
    /// pending, so it is safe to call after every scan loop).
    pub fn charge_to(&mut self, disks: &mut DiskArray) {
        let cost = self.take_cost();
        if cost != OpCost::default() {
            disks.charge_cost(cost);
        }
    }
}

/// Streaming writer: buffers one stripe and flushes it with one parallel
/// I/O when full. Call [`finish`](RecordFileWriter::finish) to flush the
/// tail and obtain the updated file handle.
#[derive(Debug)]
pub struct RecordFileWriter {
    file: RecordFile,
    buf: Vec<Word>,
    flushed_words: usize,
}

impl RecordFileWriter {
    fn new(file: RecordFile) -> Self {
        RecordFileWriter {
            file,
            buf: Vec::new(),
            flushed_words: 0,
        }
    }

    /// Append one record.
    ///
    /// # Panics
    /// Panics if the record width mismatches the layout or capacity is
    /// exceeded.
    pub fn push(&mut self, disks: &mut DiskArray, record: &KeyedRecord) {
        assert_eq!(
            1 + record.satellite.len(),
            self.file.layout.width_words,
            "record width mismatch"
        );
        assert!(
            self.file.len_records < self.file.capacity_records,
            "file capacity {} exceeded",
            self.file.capacity_records
        );
        self.buf.extend_from_slice(&record.to_words());
        self.file.len_records += 1;
        let sw = disks.config().stripe_words();
        while self.buf.len() >= sw {
            let stripe: Vec<Word> = self.buf.drain(..sw).collect();
            StripedView::new(disks).write_words(self.file.base_word + self.flushed_words, &stripe);
            self.flushed_words += sw;
        }
    }

    /// Flush the tail and return the completed file handle.
    pub fn finish(self, disks: &mut DiskArray) -> RecordFile {
        if !self.buf.is_empty() {
            StripedView::new(disks)
                .write_words(self.file.base_word + self.flushed_words, &self.buf);
        }
        self.file
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;

    fn recs(n: usize, sat: usize) -> Vec<KeyedRecord> {
        (0..n)
            .map(|i| KeyedRecord::new(i as Word * 7 % 101, vec![i as Word; sat]))
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut disks = DiskArray::new(PdmConfig::new(4, 8), 1);
        let mut f = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(2), 50);
        let rs = recs(50, 2);
        f.write_all(&mut disks, &rs);
        assert_eq!(f.read_all(&disks), rs);
        assert_eq!(f.len(), 50);
    }

    #[test]
    fn scan_costs_one_io_per_stripe() {
        let mut disks = DiskArray::new(PdmConfig::new(4, 8), 0);
        // stripe = 32 words; records of 4 words -> 8 records per stripe.
        let mut f = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(3), 64);
        f.write_all(&mut disks, &recs(64, 3));
        let written = disks.stats().parallel_ios;
        assert_eq!(written, 8); // 64 records * 4 words / 32 per stripe
        let (records, cost) = f.read_range_shared(&disks, 0, f.len());
        assert_eq!(records.len(), 64);
        assert_eq!(cost.parallel_ios, 8);
        assert_eq!(
            disks.stats().parallel_ios,
            written,
            "shared scans charge nothing until the owner does"
        );
        disks.charge_cost(cost);
        assert_eq!(disks.stats().parallel_ios - written, 8);
    }

    #[test]
    fn streaming_reader_matches_bulk_read() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let mut f = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(1), 21);
        let rs = recs(21, 1);
        f.write_all(&mut disks, &rs);
        let mut reader = f.reader();
        let mut got = Vec::new();
        while let Some(r) = reader.next(&disks) {
            got.push(r);
        }
        assert_eq!(got, rs);
        assert_eq!(reader.remaining(), 0);
        let scanned = disks.stats().parallel_ios;
        let pending = reader.take_cost();
        assert!(pending.parallel_ios > 0, "refills accumulate cost");
        disks.charge_cost(pending);
        assert!(disks.stats().parallel_ios > scanned);
        reader.charge_to(&mut disks); // drained: charging again is a no-op
        assert_eq!(reader.take_cost(), OpCost::default());
    }

    #[test]
    fn streaming_writer_matches_write_all() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let f = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(1), 10);
        let rs = recs(10, 1);
        let mut w = f.writer();
        for r in &rs {
            w.push(&mut disks, r);
        }
        let f = w.finish(&mut disks);
        assert_eq!(f.read_all(&disks), rs);
    }

    #[test]
    fn two_files_do_not_overlap() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let mut f1 = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(0), 16);
        let mut f2 = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(0), 16);
        let r1 = recs(16, 0);
        let r2: Vec<KeyedRecord> = (100..116).map(|k| KeyedRecord::new(k, vec![])).collect();
        f1.write_all(&mut disks, &r1);
        f2.write_all(&mut disks, &r2);
        assert_eq!(f1.read_all(&disks), r1);
        assert_eq!(f2.read_all(&disks), r2);
    }

    #[test]
    fn read_range_subset() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let mut f = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(1), 30);
        let rs = recs(30, 1);
        f.write_all(&mut disks, &rs);
        assert_eq!(f.read_range(&mut disks, 10, 5), &rs[10..15]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_capacity_panics() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let mut f = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(0), 4);
        f.write_all(&mut disks, &recs(5, 0));
    }

    #[test]
    fn empty_file() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let f = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(0), 4);
        assert!(f.is_empty());
        assert!(f.read_all(&disks).is_empty());
        assert_eq!(disks.stats().parallel_ios, 0);
    }
}
