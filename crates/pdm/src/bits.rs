//! Bit-level encoding: fixed-width fields and unary-coded integers.
//!
//! The one-probe dictionary of Theorem 6 packs, into each array field,
//! either a `⌈lg n⌉`-bit identifier (case b) or a unary-coded relative
//! pointer terminated by a 0-bit (case a), followed by record data. This
//! module provides the bit writer/reader those encodings are built on.
//!
//! Bits are numbered LSB-first within each word; a [`BitWriter`] appends
//! bits and produces a word vector, a [`BitReader`] consumes them in the
//! same order.

use crate::{Word, WORD_BITS};

/// Append-only bit buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    words: Vec<Word>,
    len_bits: usize,
}

impl BitWriter {
    /// Empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bits written so far.
    #[must_use]
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Append the low `n` bits of `value` (LSB first), `0 ≤ n ≤ 64`.
    ///
    /// # Panics
    /// Panics if `n > 64` or if `value` has bits above position `n`.
    pub fn write_bits(&mut self, value: u64, n: usize) {
        assert!(
            n <= WORD_BITS,
            "cannot write more than {WORD_BITS} bits at once"
        );
        if n < WORD_BITS {
            assert!(value >> n == 0, "value {value:#x} does not fit in {n} bits");
        }
        let mut remaining = n;
        let mut v = value;
        while remaining > 0 {
            let word_idx = self.len_bits / WORD_BITS;
            let bit_idx = self.len_bits % WORD_BITS;
            if word_idx == self.words.len() {
                self.words.push(0);
            }
            let room = WORD_BITS - bit_idx;
            let take = remaining.min(room);
            let mask = if take == WORD_BITS {
                !0
            } else {
                (1u64 << take) - 1
            };
            self.words[word_idx] |= (v & mask) << bit_idx;
            v = if take == WORD_BITS { 0 } else { v >> take };
            self.len_bits += take;
            remaining -= take;
        }
    }

    /// Append one bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Append `k` in unary: `k` 1-bits followed by a terminating 0-bit
    /// (the encoding of the case (a) pointer deltas; "a 0-bit separates
    /// this pointer data from the record data").
    pub fn write_unary(&mut self, k: u64) {
        for _ in 0..k {
            self.write_bit(true);
        }
        self.write_bit(false);
    }

    /// Finish, returning the packed words (zero-padded to a word boundary).
    #[must_use]
    pub fn into_words(self) -> Vec<Word> {
        self.words
    }
}

/// Sequential bit reader over packed words.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    words: &'a [Word],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Reader starting at bit 0 of `words`.
    #[must_use]
    pub fn new(words: &'a [Word]) -> Self {
        BitReader { words, pos_bits: 0 }
    }

    /// Current bit position.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos_bits
    }

    /// Bits available to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.words.len() * WORD_BITS - self.pos_bits
    }

    /// Read `n` bits (LSB first), `0 ≤ n ≤ 64`.
    ///
    /// # Panics
    /// Panics if fewer than `n` bits remain.
    pub fn read_bits(&mut self, n: usize) -> u64 {
        assert!(n <= WORD_BITS);
        assert!(
            n <= self.remaining(),
            "bit buffer underflow: want {n}, have {}",
            self.remaining()
        );
        let mut out = 0u64;
        let mut got = 0usize;
        while got < n {
            let word_idx = self.pos_bits / WORD_BITS;
            let bit_idx = self.pos_bits % WORD_BITS;
            let room = WORD_BITS - bit_idx;
            let take = (n - got).min(room);
            let mask = if take == WORD_BITS {
                !0
            } else {
                (1u64 << take) - 1
            };
            let chunk = (self.words[word_idx] >> bit_idx) & mask;
            out |= chunk << got;
            self.pos_bits += take;
            got += take;
        }
        out
    }

    /// Read one bit.
    pub fn read_bit(&mut self) -> bool {
        self.read_bits(1) == 1
    }

    /// Read a unary-coded integer (count of 1-bits before the 0 terminator).
    ///
    /// # Panics
    /// Panics if the buffer ends before a terminator.
    pub fn read_unary(&mut self) -> u64 {
        let mut k = 0;
        while self.read_bit() {
            k += 1;
        }
        k
    }

    /// Jump to an absolute bit position.
    ///
    /// # Panics
    /// Panics if `pos` is beyond the buffer.
    pub fn seek(&mut self, pos: usize) {
        assert!(
            pos <= self.words.len() * WORD_BITS,
            "seek to {pos} beyond buffer of {} bits",
            self.words.len() * WORD_BITS
        );
        self.pos_bits = pos;
    }
}

/// Copy `len` bits from `src` (starting at bit `src_off`) into `dst`
/// (starting at bit `dst_off`). Both offsets are LSB-first positions in
/// their word buffers; regions must not exceed the buffers.
///
/// # Panics
/// Panics if either range is out of bounds.
pub fn copy_bits(dst: &mut [Word], dst_off: usize, src: &[Word], src_off: usize, len: usize) {
    assert!(
        src_off + len <= src.len() * WORD_BITS,
        "source range exceeds buffer"
    );
    assert!(
        dst_off + len <= dst.len() * WORD_BITS,
        "destination range exceeds buffer"
    );
    let mut reader = BitReader::new(src);
    reader.seek(src_off);
    let mut pos = dst_off;
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(WORD_BITS);
        let chunk = reader.read_bits(take);
        // Write chunk into dst at bit `pos`.
        let mut written = 0;
        let mut v = chunk;
        while written < take {
            let w = pos / WORD_BITS;
            let b = pos % WORD_BITS;
            let room = WORD_BITS - b;
            let now = (take - written).min(room);
            let mask = if now == WORD_BITS {
                !0
            } else {
                (1u64 << now) - 1
            };
            dst[w] = (dst[w] & !(mask << b)) | ((v & mask) << b);
            v = if now == WORD_BITS { 0 } else { v >> now };
            pos += now;
            written += now;
        }
        remaining -= take;
    }
}

/// Extract `len` bits starting at `off` into a fresh word vector (bits at
/// position 0 of the result).
#[must_use]
pub fn extract_bits(src: &[Word], off: usize, len: usize) -> Vec<Word> {
    let mut out = vec![0 as Word; len.div_ceil(WORD_BITS).max(1)];
    if len > 0 {
        copy_bits(&mut out, 0, src, off, len);
    }
    out
}

/// Number of bits needed to store values `0..n` (i.e. `⌈lg n⌉`, with the
/// convention that one value still needs 1 bit so decoding is well-formed).
#[must_use]
pub fn bits_for(n: u64) -> usize {
    if n <= 2 {
        1
    } else {
        (WORD_BITS - (n - 1).leading_zeros() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 5);
        let words = w.into_words();
        let mut r = BitReader::new(&words);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(32), 0xDEADBEEF);
        assert_eq!(r.read_bits(1), 1);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.read_bits(5), 0);
    }

    #[test]
    fn unary_roundtrip() {
        let mut w = BitWriter::new();
        for k in [0u64, 1, 5, 13, 0, 63] {
            w.write_unary(k);
        }
        let words = w.into_words();
        let mut r = BitReader::new(&words);
        for k in [0u64, 1, 5, 13, 0, 63] {
            assert_eq!(r.read_unary(), k);
        }
    }

    #[test]
    fn crossing_word_boundary() {
        let mut w = BitWriter::new();
        w.write_bits(0, 60);
        w.write_bits(0b1111, 4); // ends word 0 exactly
        w.write_bits(0b1010, 4); // starts word 1
        let words = w.into_words();
        assert_eq!(words.len(), 2);
        let mut r = BitReader::new(&words);
        let _ = r.read_bits(60);
        assert_eq!(r.read_bits(4), 0b1111);
        assert_eq!(r.read_bits(4), 0b1010);
    }

    #[test]
    fn straddling_write() {
        let mut w = BitWriter::new();
        w.write_bits(0, 61);
        w.write_bits(0b101101, 6); // straddles words 0 and 1
        let words = w.into_words();
        let mut r = BitReader::new(&words);
        let _ = r.read_bits(61);
        assert_eq!(r.read_bits(6), 0b101101);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let words = [0u64];
        let mut r = BitReader::new(&words);
        let _ = r.read_bits(60);
        let _ = r.read_bits(60);
    }

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
        assert_eq!(bits_for(1 << 40), 40);
    }

    #[test]
    fn seek_repositions() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0xCD, 8);
        let words = w.into_words();
        let mut r = BitReader::new(&words);
        r.seek(8);
        assert_eq!(r.read_bits(8), 0xCD);
        r.seek(0);
        assert_eq!(r.read_bits(8), 0xAB);
    }

    #[test]
    #[should_panic(expected = "beyond buffer")]
    fn seek_out_of_bounds_panics() {
        let words = [0u64];
        let mut r = BitReader::new(&words);
        r.seek(65);
    }

    #[test]
    fn copy_bits_roundtrip_unaligned() {
        let mut src = vec![0u64; 3];
        {
            let mut w = BitWriter::new();
            w.write_bits(0, 7);
            w.write_bits(0x1234_5678_9ABC, 48);
            let ws = w.into_words();
            src[..ws.len()].copy_from_slice(&ws);
        }
        let mut dst = vec![0u64; 3];
        copy_bits(&mut dst, 61, &src, 7, 48); // straddles dst words 0..2
        let got = extract_bits(&dst, 61, 48);
        assert_eq!(got[0], 0x1234_5678_9ABC);
    }

    #[test]
    fn copy_bits_preserves_surroundings() {
        let src = [u64::MAX];
        let mut dst = vec![0u64; 1];
        copy_bits(&mut dst, 4, &src, 0, 8);
        assert_eq!(dst[0], 0xFF0);
        // Overwrite part of it with zeros; neighbors must survive.
        let zeros = [0u64];
        copy_bits(&mut dst, 6, &zeros, 0, 4);
        assert_eq!(dst[0], 0b1100_0011_0000);
    }

    #[test]
    fn extract_bits_zero_len() {
        let src = [0xFFu64];
        assert_eq!(extract_bits(&src, 3, 0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn copy_bits_bounds_checked() {
        let src = [0u64];
        let mut dst = vec![0u64; 1];
        copy_bits(&mut dst, 0, &src, 32, 40);
    }

    #[test]
    fn position_and_remaining() {
        let mut w = BitWriter::new();
        w.write_bits(7, 3);
        let words = w.into_words();
        let mut r = BitReader::new(&words);
        assert_eq!(r.remaining(), 64);
        let _ = r.read_bits(3);
        assert_eq!(r.position(), 3);
        assert_eq!(r.remaining(), 61);
    }
}
