//! Internal-memory accounting in words.
//!
//! Section 5 of the paper budgets the semi-explicit expander construction at
//! `O(N^β)` words of internal memory; [`MemTracker`] lets constructions
//! charge and release words against a capacity and records the peak.

/// Error returned when an allocation would exceed the configured capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Words requested by the failed allocation.
    pub requested: usize,
    /// Words still available.
    pub available: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "internal memory exhausted: requested {} words, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Tracks internal memory usage in words against a capacity.
#[derive(Debug, Clone)]
pub struct MemTracker {
    capacity: usize,
    used: usize,
    peak: usize,
}

impl MemTracker {
    /// Tracker with the given capacity in words.
    #[must_use]
    pub fn new(capacity_words: usize) -> Self {
        MemTracker {
            capacity: capacity_words,
            used: 0,
            peak: 0,
        }
    }

    /// Tracker with unlimited capacity (still records the peak).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::new(usize::MAX)
    }

    /// Capacity in words.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently allocated words.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used
    }

    /// Peak allocation seen so far.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Charge `words`; fails if capacity would be exceeded.
    pub fn alloc(&mut self, words: usize) -> Result<(), OutOfMemory> {
        let available = self.capacity - self.used;
        if words > available {
            return Err(OutOfMemory {
                requested: words,
                available,
            });
        }
        self.used += words;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Release `words`.
    ///
    /// # Panics
    /// Panics if more is released than was allocated.
    pub fn free(&mut self, words: usize) {
        assert!(
            words <= self.used,
            "freeing {} words but only {} allocated",
            words,
            self.used
        );
        self.used -= words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut m = MemTracker::new(100);
        m.alloc(60).unwrap();
        m.alloc(40).unwrap();
        assert_eq!(m.used(), 100);
        assert_eq!(m.peak(), 100);
        m.free(50);
        assert_eq!(m.used(), 50);
        assert_eq!(m.peak(), 100);
    }

    #[test]
    fn over_allocation_fails_cleanly() {
        let mut m = MemTracker::new(10);
        m.alloc(8).unwrap();
        let err = m.alloc(5).unwrap_err();
        assert_eq!(err.requested, 5);
        assert_eq!(err.available, 2);
        assert_eq!(m.used(), 8, "failed alloc must not change usage");
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut m = MemTracker::new(10);
        m.free(1);
    }

    #[test]
    fn unlimited_tracks_peak() {
        let mut m = MemTracker::unlimited();
        m.alloc(1 << 40).unwrap();
        assert_eq!(m.peak(), 1 << 40);
    }

    #[test]
    fn error_displays() {
        let e = OutOfMemory {
            requested: 5,
            available: 2,
        };
        assert!(e.to_string().contains("requested 5"));
    }
}
