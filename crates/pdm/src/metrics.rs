//! Observability: I/O event hooks, counters/gauges/histograms, and exports.
//!
//! The paper's guarantees are statements about *distributions* — Lemma 3
//! bounds the maximum bucket load, Theorem 6 promises every lookup finishes
//! in **one** parallel I/O, Theorem 7 bounds amortized update cost — so the
//! monotone totals in [`crate::stats::IoStats`] cannot confirm them. This
//! module adds the missing layer:
//!
//! * [`IoEvent`] / [`IoEventSink`] — a hook seam the [`crate::disk::DiskArray`]
//!   and [`crate::batch::BatchExecutor`] fire on every batched read/write,
//!   scheduled round, cache hit/miss, and commit. The default is **no sink
//!   at all** (an `Option` that is `None`), so un-instrumented runs pay a
//!   single branch per batch and zero allocation.
//! * [`Counter`], [`Gauge`], [`Histogram`] — lock-free atomic instruments.
//!   Histograms use log₂ buckets, the right shape for cost tails: the
//!   interesting questions are "is p99 exactly 1?" and "how heavy is the
//!   tail?", not fine-grained linear resolution.
//! * [`MetricsRegistry`] — a name+label keyed registry with Prometheus-style
//!   text export ([`MetricsRegistry::to_prometheus`]) and a JSON snapshot
//!   export ([`MetricsRegistry::to_json`]). Handles are `Arc`s: callers
//!   resolve once and update on the hot path without touching the registry
//!   lock.
//! * [`IoMetricsSink`] — a ready-made [`IoEventSink`] that routes every
//!   event into a registry through pre-resolved handles (per-disk block
//!   counters for the imbalance metric, round-width and batch-size
//!   histograms, cache hit/miss counters).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ histogram buckets: bucket `0` holds the value `0`, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`, up to `u64::MAX` in bucket 64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// One I/O event fired by the disk array or the batch engine.
///
/// Events borrow scratch state from the emitter (`per_disk` points at the
/// cost-accounting scratch buffer), so sinks must copy anything they keep.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum IoEvent<'a> {
    /// A batched read was charged: `per_disk[d]` blocks touched on disk `d`,
    /// `blocks` in total, costing `parallel_ios` parallel I/Os.
    BatchRead {
        /// Blocks touched per disk (length = `D`).
        per_disk: &'a [usize],
        /// Total blocks read in the batch.
        blocks: u64,
        /// Model cost charged for the batch.
        parallel_ios: u64,
    },
    /// A batched write was charged; fields as in [`IoEvent::BatchRead`].
    BatchWrite {
        /// Blocks touched per disk (length = `D`).
        per_disk: &'a [usize],
        /// Total blocks written in the batch.
        blocks: u64,
        /// Model cost charged for the batch.
        parallel_ios: u64,
    },
    /// The batch engine recorded `rounds` scheduled parallel rounds.
    RoundsScheduled {
        /// Number of rounds just recorded.
        rounds: u64,
    },
    /// One scheduled parallel round moved `blocks` blocks (its *width*).
    RoundScheduled {
        /// Blocks moved in this round across all disks.
        blocks: u64,
    },
    /// `blocks` requested blocks were served from the executor's read cache.
    CacheHit {
        /// Number of requests satisfied without touching a disk.
        blocks: u64,
    },
    /// `blocks` distinct blocks had to be fetched from the disks.
    CacheMiss {
        /// Number of distinct blocks fetched.
        blocks: u64,
    },
    /// The executor committed its staged writes in one batch.
    BatchCommitted {
        /// Number of dirty blocks flushed.
        dirty_blocks: u64,
    },
    /// One intent entry was appended to the write-ahead journal.
    JournalAppend {
        /// Journal slots (blocks) the entry occupied: payload images plus
        /// descriptor block(s).
        blocks: u64,
        /// In-place blocks the entry protects.
        targets: u64,
    },
    /// A [`recover`](crate::DiskArray::recover) pass finished.
    Recovery {
        /// Intact intents replayed (idempotent redo).
        replayed: u64,
        /// Partial / stale intents discarded (rolled back).
        discarded: u64,
        /// In-place blocks rewritten by the replay.
        blocks_rewritten: u64,
    },
}

/// A sink for [`IoEvent`]s.
///
/// Implementations must be cheap and non-blocking: events fire on the I/O
/// hot path. [`IoMetricsSink`] is the standard implementation; [`NoopSink`]
/// exists for tests that want a sink installed but no recording.
pub trait IoEventSink: Send + Sync {
    /// Observe one event.
    fn on_io(&self, event: IoEvent<'_>);
}

/// An [`IoEventSink`] that ignores every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl IoEventSink for NoopSink {
    fn on_io(&self, _event: IoEvent<'_>) {}
}

/// A monotone atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Create a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the gauge.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adjust the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket index for `value`: `0 → 0`, otherwise `⌊log₂ value⌋ + 1`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log₂-bucketed histogram of `u64` observations.
///
/// Updates are lock-free atomic adds. Bucket `0` holds the exact value `0`
/// and bucket `1` the exact value `1`, so the low end of a parallel-I/O cost
/// distribution — the part the paper makes exact claims about — is recorded
/// without rounding: a lookup histogram whose p99 reports `1` really did
/// satisfy 99% of lookups in at most one parallel I/O.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Create an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Capture a consistent-enough point-in-time copy. (Individual loads are
    /// relaxed; the simulator is effectively single-writer per histogram.)
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with summary queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative), length
    /// [`HISTOGRAM_BUCKETS`].
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 if empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// True if nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value (0.0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile, reported as the **inclusive upper bound** of
    /// the bucket holding that rank. `q` is in `[0, 1]`. Because buckets `0`
    /// and `1` are exact, `percentile(0.99) == 1` proves at least 99% of
    /// observations were `≤ 1`. Returns 0 for an empty snapshot.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the observed maximum (the top bucket's
                // nominal bound can be far above it).
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot into this one (bucket-wise sum, max of maxes).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Key of a metric: name plus sorted label pairs.
type MetricKey = (String, Vec<(String, String)>);

fn key_of(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

/// A registry of named, labeled metrics.
///
/// `counter` / `gauge` / `histogram` get-or-create an instrument and return
/// an `Arc` handle; hot paths keep the handle and never re-enter the
/// registry. Exports walk the registry under its lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
}

fn lock_map<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panic while holding the lock cannot leave a metric map in a broken
    // state (all updates are single inserts), so poisoning is ignorable.
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl MetricsRegistry {
    /// Create an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name{labels}`.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        lock_map(&self.counters)
            .entry(key_of(name, labels))
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name{labels}`.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        lock_map(&self.gauges)
            .entry(key_of(name, labels))
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name{labels}`.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        lock_map(&self.histograms)
            .entry(key_of(name, labels))
            .or_default()
            .clone()
    }

    /// Snapshot every metric, sorted by name then labels.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock_map(&self.counters)
            .iter()
            .map(|((name, labels), c)| MetricValue {
                name: name.clone(),
                labels: labels.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = lock_map(&self.gauges)
            .iter()
            .map(|((name, labels), g)| GaugeValue {
                name: name.clone(),
                labels: labels.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = lock_map(&self.histograms)
            .iter()
            .map(|((name, labels), h)| HistogramValue {
                name: name.clone(),
                labels: labels.clone(),
                snapshot: h.snapshot(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Render every metric in the Prometheus text exposition format.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// Render every metric as a JSON document (see
    /// [`MetricsSnapshot::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// One exported counter sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricValue {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Counter value.
    pub value: u64,
}

/// One exported gauge sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeValue {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Gauge value.
    pub value: i64,
}

/// One exported histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramValue {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The histogram's data.
    pub snapshot: HistogramSnapshot,
}

/// A full point-in-time export of a [`MetricsRegistry`]. This structure (not
/// any ad-hoc counter) is what tests and the workload-replay bench read:
/// the JSON artifact is rendered from exactly this data.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name then labels.
    pub counters: Vec<MetricValue>,
    /// All gauges, sorted by name then labels.
    pub gauges: Vec<GaugeValue>,
    /// All histograms, sorted by name then labels.
    pub histograms: Vec<HistogramValue>,
}

fn label_match(labels: &[(String, String)], want: &[(&str, &str)]) -> bool {
    want.iter()
        .all(|&(k, v)| labels.iter().any(|(lk, lv)| lk == k && lv == v))
}

impl MetricsSnapshot {
    /// Find a counter by name and a (subset of) labels.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && label_match(&c.labels, labels))
            .map(|c| c.value)
    }

    /// Sum of every counter named `name` whose labels include `labels` —
    /// the aggregation across the label dimensions left unspecified (e.g.
    /// total ops across `outcome`s, total blocks across `disk`s). `None`
    /// if nothing matches.
    #[must_use]
    pub fn counter_sum(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let mut found = false;
        let mut sum = 0;
        for c in &self.counters {
            if c.name == name && label_match(&c.labels, labels) {
                found = true;
                sum += c.value;
            }
        }
        found.then_some(sum)
    }

    /// Find a gauge by name and a (subset of) labels.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && label_match(&g.labels, labels))
            .map(|g| g.value)
    }

    /// Find a histogram by name and a (subset of) labels.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && label_match(&h.labels, labels))
            .map(|h| &h.snapshot)
    }

    /// Disk imbalance over the counters named `name` that carry a `disk`
    /// label: `max / mean` of the per-disk values. `None` if there are no
    /// such counters or all are zero. A perfectly striped workload reports
    /// 1.0; the paper's deterministic balancing keeps this near 1.
    #[must_use]
    pub fn imbalance(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let per_disk: Vec<u64> = self
            .counters
            .iter()
            .filter(|c| {
                c.name == name
                    && label_match(&c.labels, labels)
                    && c.labels.iter().any(|(k, _)| k == "disk")
            })
            .map(|c| c.value)
            .collect();
        let total: u64 = per_disk.iter().sum();
        if per_disk.is_empty() || total == 0 {
            return None;
        }
        let mean = total as f64 / per_disk.len() as f64;
        let max = *per_disk.iter().max().expect("non-empty") as f64;
        Some(max / mean)
    }

    /// Render in the Prometheus text exposition format: counters and gauges
    /// as single samples, histograms as cumulative `_bucket{le=...}` series
    /// plus `_sum` and `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(out, "{} {}", prom_series(&c.name, &c.labels, &[]), c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "{} {}", prom_series(&g.name, &g.labels, &[]), g.value);
        }
        for h in &self.histograms {
            let mut cum = 0u64;
            for (i, &b) in h.snapshot.buckets.iter().enumerate() {
                cum += b;
                if b == 0 && i != 0 {
                    continue; // keep the export readable: skip interior empties
                }
                let le = if i >= 64 {
                    "+Inf".to_string()
                } else {
                    bucket_upper_bound(i).to_string()
                };
                let series = prom_series(
                    &format!("{}_bucket", h.name),
                    &h.labels,
                    &[("le", le.as_str())],
                );
                let _ = writeln!(out, "{series} {cum}");
            }
            let series = prom_series(
                &format!("{}_bucket", h.name),
                &h.labels,
                &[("le", "+Inf")],
            );
            let _ = writeln!(out, "{series} {}", h.snapshot.count);
            let _ = writeln!(
                out,
                "{} {}",
                prom_series(&format!("{}_sum", h.name), &h.labels, &[]),
                h.snapshot.sum
            );
            let _ = writeln!(
                out,
                "{} {}",
                prom_series(&format!("{}_count", h.name), &h.labels, &[]),
                h.snapshot.count
            );
        }
        out
    }

    /// Render as a JSON document:
    ///
    /// ```json
    /// {"counters": [{"name": "...", "labels": {...}, "value": 0}],
    ///  "gauges":   [{"name": "...", "labels": {...}, "value": 0}],
    ///  "histograms": [{"name": "...", "labels": {...}, "count": 0, "sum": 0,
    ///                  "max": 0, "mean": 0.0, "p50": 0, "p99": 0,
    ///                  "buckets": [{"le": 1, "count": 3}]}]}
    /// ```
    ///
    /// Hand-rolled so the `pdm` crate stays dependency-free; names and label
    /// values are escaped per JSON string rules.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json_str(&c.name),
                json_labels(&c.labels),
                c.value
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json_str(&g.name),
                json_labels(&g.labels),
                g.value
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let s = &h.snapshot;
            let _ = write!(
                out,
                "{sep}    {{\"name\": {}, \"labels\": {}, \"count\": {}, \"sum\": {}, \
                 \"max\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
                json_str(&h.name),
                json_labels(&h.labels),
                s.count,
                s.sum,
                s.max,
                json_f64(s.mean()),
                s.percentile(0.50),
                s.percentile(0.99),
            );
            let mut first = true;
            for (bi, &b) in s.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"le\": {}, \"count\": {b}}}",
                    bucket_upper_bound(bi)
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_str(k), json_str(v));
    }
    out.push('}');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn prom_series(name: &str, labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
    }
    out.push('}');
    out
}

/// Metric name for total parallel I/Os, labeled `op ∈ {read, write}`.
pub const PARALLEL_IOS_TOTAL: &str = "pdm_parallel_ios_total";
/// Metric name for per-disk block counts, labeled `disk`, `op`.
pub const DISK_BLOCKS_TOTAL: &str = "pdm_disk_blocks_total";
/// Histogram of blocks per charged batch, labeled `op`.
pub const BATCH_BLOCKS: &str = "pdm_batch_blocks";
/// Counter of scheduled parallel rounds.
pub const ROUNDS_TOTAL: &str = "pdm_rounds_total";
/// Histogram of scheduled round widths (blocks moved per round).
pub const ROUND_WIDTH: &str = "pdm_round_width";
/// Counter of read-cache events, labeled `event ∈ {hit, miss}`.
pub const CACHE_EVENTS_TOTAL: &str = "pdm_cache_events_total";
/// Histogram of dirty blocks flushed per executor commit.
pub const COMMIT_DIRTY_BLOCKS: &str = "pdm_commit_dirty_blocks";
/// Counter of journal activity, labeled `stat ∈ {appends, slot_blocks,
/// target_blocks}`.
pub const JOURNAL_TOTAL: &str = "pdm_journal_total";
/// Counter of recovery activity, labeled `stat ∈ {runs, replayed,
/// discarded, blocks_rewritten}`.
pub const RECOVERY_TOTAL: &str = "pdm_recovery_total";
/// Histogram of in-place blocks rewritten per recovery pass.
pub const RECOVERY_BLOCKS: &str = "pdm_recovery_blocks";

/// The standard [`IoEventSink`]: routes events into a [`MetricsRegistry`].
///
/// All registry handles are resolved once at construction (including one
/// block counter per disk per direction), so observing an event is a handful
/// of relaxed atomic adds — no locks, no allocation, no formatting. This is
/// what keeps instrumented throughput within a few percent of the
/// uninstrumented baseline.
#[derive(Debug)]
pub struct IoMetricsSink {
    parallel_ios_read: Arc<Counter>,
    parallel_ios_write: Arc<Counter>,
    disk_blocks_read: Vec<Arc<Counter>>,
    disk_blocks_write: Vec<Arc<Counter>>,
    batch_blocks_read: Arc<Histogram>,
    batch_blocks_write: Arc<Histogram>,
    rounds: Arc<Counter>,
    round_width: Arc<Histogram>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    commit_dirty: Arc<Histogram>,
    journal_appends: Arc<Counter>,
    journal_slot_blocks: Arc<Counter>,
    journal_target_blocks: Arc<Counter>,
    recovery_runs: Arc<Counter>,
    recovery_replayed: Arc<Counter>,
    recovery_discarded: Arc<Counter>,
    recovery_rewritten: Arc<Counter>,
    recovery_blocks: Arc<Histogram>,
}

impl IoMetricsSink {
    /// Build a sink over `registry` for a `disks`-disk array.
    #[must_use]
    pub fn new(registry: &MetricsRegistry, disks: usize) -> Self {
        let per_disk = |op: &str| -> Vec<Arc<Counter>> {
            (0..disks)
                .map(|d| {
                    let d = d.to_string();
                    registry.counter(DISK_BLOCKS_TOTAL, &[("disk", d.as_str()), ("op", op)])
                })
                .collect()
        };
        IoMetricsSink {
            parallel_ios_read: registry.counter(PARALLEL_IOS_TOTAL, &[("op", "read")]),
            parallel_ios_write: registry.counter(PARALLEL_IOS_TOTAL, &[("op", "write")]),
            disk_blocks_read: per_disk("read"),
            disk_blocks_write: per_disk("write"),
            batch_blocks_read: registry.histogram(BATCH_BLOCKS, &[("op", "read")]),
            batch_blocks_write: registry.histogram(BATCH_BLOCKS, &[("op", "write")]),
            rounds: registry.counter(ROUNDS_TOTAL, &[]),
            round_width: registry.histogram(ROUND_WIDTH, &[]),
            cache_hits: registry.counter(CACHE_EVENTS_TOTAL, &[("event", "hit")]),
            cache_misses: registry.counter(CACHE_EVENTS_TOTAL, &[("event", "miss")]),
            commit_dirty: registry.histogram(COMMIT_DIRTY_BLOCKS, &[]),
            journal_appends: registry.counter(JOURNAL_TOTAL, &[("stat", "appends")]),
            journal_slot_blocks: registry.counter(JOURNAL_TOTAL, &[("stat", "slot_blocks")]),
            journal_target_blocks: registry.counter(JOURNAL_TOTAL, &[("stat", "target_blocks")]),
            recovery_runs: registry.counter(RECOVERY_TOTAL, &[("stat", "runs")]),
            recovery_replayed: registry.counter(RECOVERY_TOTAL, &[("stat", "replayed")]),
            recovery_discarded: registry.counter(RECOVERY_TOTAL, &[("stat", "discarded")]),
            recovery_rewritten: registry.counter(RECOVERY_TOTAL, &[("stat", "blocks_rewritten")]),
            recovery_blocks: registry.histogram(RECOVERY_BLOCKS, &[]),
        }
    }

    fn per_disk(counters: &[Arc<Counter>], per_disk: &[usize]) {
        for (c, &n) in counters.iter().zip(per_disk) {
            if n > 0 {
                c.add(n as u64);
            }
        }
    }
}

impl IoEventSink for IoMetricsSink {
    fn on_io(&self, event: IoEvent<'_>) {
        match event {
            IoEvent::BatchRead {
                per_disk,
                blocks,
                parallel_ios,
            } => {
                self.parallel_ios_read.add(parallel_ios);
                Self::per_disk(&self.disk_blocks_read, per_disk);
                self.batch_blocks_read.observe(blocks);
            }
            IoEvent::BatchWrite {
                per_disk,
                blocks,
                parallel_ios,
            } => {
                self.parallel_ios_write.add(parallel_ios);
                Self::per_disk(&self.disk_blocks_write, per_disk);
                self.batch_blocks_write.observe(blocks);
            }
            IoEvent::RoundsScheduled { rounds } => self.rounds.add(rounds),
            IoEvent::RoundScheduled { blocks } => self.round_width.observe(blocks),
            IoEvent::CacheHit { blocks } => self.cache_hits.add(blocks),
            IoEvent::CacheMiss { blocks } => self.cache_misses.add(blocks),
            IoEvent::BatchCommitted { dirty_blocks } => self.commit_dirty.observe(dirty_blocks),
            IoEvent::JournalAppend { blocks, targets } => {
                self.journal_appends.inc();
                self.journal_slot_blocks.add(blocks);
                self.journal_target_blocks.add(targets);
            }
            IoEvent::Recovery {
                replayed,
                discarded,
                blocks_rewritten,
            } => {
                self.recovery_runs.inc();
                self.recovery_replayed.add(replayed);
                self.recovery_discarded.add(discarded);
                self.recovery_rewritten.add(blocks_rewritten);
                self.recovery_blocks.observe(blocks_rewritten);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_low_and_log2_high() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 4, 5, 127, 128, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_records_count_sum_max_and_percentiles() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(6);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 99 + 6);
        assert_eq!(s.max, 6);
        assert_eq!(s.percentile(0.50), 1);
        assert_eq!(s.percentile(0.99), 1, "99 of 100 observations are 1");
        assert_eq!(s.percentile(1.0), 6, "max is capped at the true maximum");
        assert!((s.mean() - 1.05).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(1);
        a.observe(3);
        b.observe(3);
        b.observe(200);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, 1 + 3 + 3 + 200);
        assert_eq!(m.max, 200);
        assert_eq!(m.buckets[bucket_index(3)], 2);
        assert_eq!(m.buckets[bucket_index(200)], 1);
        // Merging an empty snapshot is the identity.
        let before = m.clone();
        m.merge(&HistogramSnapshot::empty());
        assert_eq!(m, before);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("x_total", &[("op", "read")]);
        let c2 = reg.counter("x_total", &[("op", "read")]);
        c1.add(2);
        c2.inc();
        assert_eq!(c1.get(), 3);
        // Label order must not matter.
        let h1 = reg.histogram("h", &[("a", "1"), ("b", "2")]);
        let h2 = reg.histogram("h", &[("b", "2"), ("a", "1")]);
        h1.observe(5);
        assert_eq!(h2.snapshot().count, 1);
    }

    #[test]
    fn snapshot_lookup_and_imbalance() {
        let reg = MetricsRegistry::new();
        reg.counter(DISK_BLOCKS_TOTAL, &[("disk", "0"), ("op", "read")])
            .add(30);
        reg.counter(DISK_BLOCKS_TOTAL, &[("disk", "1"), ("op", "read")])
            .add(10);
        reg.gauge("g", &[]).set(-4);
        let s = reg.snapshot();
        assert_eq!(
            s.counter(DISK_BLOCKS_TOTAL, &[("disk", "0")]),
            Some(30)
        );
        assert_eq!(s.gauge("g", &[]), Some(-4));
        // max 30 / mean 20 = 1.5
        let imb = s.imbalance(DISK_BLOCKS_TOTAL, &[("op", "read")]).unwrap();
        assert!((imb - 1.5).abs() < 1e-9);
        assert_eq!(s.imbalance("absent", &[]), None);
    }

    #[test]
    fn prometheus_export_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("op", "read")]).add(7);
        let h = reg.histogram("cost", &[]);
        h.observe(1);
        h.observe(1);
        h.observe(5);
        let text = reg.to_prometheus();
        assert!(text.contains("c_total{op=\"read\"} 7"));
        assert!(text.contains("cost_bucket{le=\"1\"} 2"));
        assert!(text.contains("cost_bucket{le=\"7\"} 3"));
        assert!(text.contains("cost_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cost_sum 7"));
        assert!(text.contains("cost_count 3"));
    }

    #[test]
    fn json_export_shape_and_escaping() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("tag", "a\"b")]).inc();
        let h = reg.histogram("cost", &[("dict", "basic")]);
        h.observe(0);
        h.observe(1);
        let json = reg.to_json();
        assert!(json.contains("\"name\": \"c_total\""));
        assert!(json.contains("\\\"")); // the quote in the label value is escaped
        assert!(json.contains("\"p99\": 1"));
        assert!(json.contains("{\"le\": 0, \"count\": 1}"));
        assert!(json.contains("{\"le\": 1, \"count\": 1}"));
    }

    #[test]
    fn io_metrics_sink_routes_events() {
        let reg = MetricsRegistry::new();
        let sink = IoMetricsSink::new(&reg, 2);
        sink.on_io(IoEvent::BatchRead {
            per_disk: &[2, 1],
            blocks: 3,
            parallel_ios: 2,
        });
        sink.on_io(IoEvent::BatchWrite {
            per_disk: &[0, 1],
            blocks: 1,
            parallel_ios: 1,
        });
        sink.on_io(IoEvent::RoundsScheduled { rounds: 2 });
        sink.on_io(IoEvent::RoundScheduled { blocks: 2 });
        sink.on_io(IoEvent::RoundScheduled { blocks: 1 });
        sink.on_io(IoEvent::CacheHit { blocks: 4 });
        sink.on_io(IoEvent::CacheMiss { blocks: 1 });
        sink.on_io(IoEvent::BatchCommitted { dirty_blocks: 1 });
        let s = reg.snapshot();
        assert_eq!(s.counter(PARALLEL_IOS_TOTAL, &[("op", "read")]), Some(2));
        assert_eq!(s.counter(PARALLEL_IOS_TOTAL, &[("op", "write")]), Some(1));
        assert_eq!(
            s.counter(DISK_BLOCKS_TOTAL, &[("disk", "0"), ("op", "read")]),
            Some(2)
        );
        assert_eq!(
            s.counter(DISK_BLOCKS_TOTAL, &[("disk", "1"), ("op", "write")]),
            Some(1)
        );
        assert_eq!(s.counter(CACHE_EVENTS_TOTAL, &[("event", "hit")]), Some(4));
        assert_eq!(s.counter(ROUNDS_TOTAL, &[]), Some(2));
        assert_eq!(s.histogram(ROUND_WIDTH, &[]).unwrap().count, 2);
        assert_eq!(s.histogram(COMMIT_DIRTY_BLOCKS, &[]).unwrap().max, 1);
    }

    #[test]
    fn io_metrics_sink_routes_journal_and_recovery_events() {
        let reg = MetricsRegistry::new();
        let sink = IoMetricsSink::new(&reg, 2);
        sink.on_io(IoEvent::JournalAppend {
            blocks: 4,
            targets: 3,
        });
        sink.on_io(IoEvent::JournalAppend {
            blocks: 2,
            targets: 1,
        });
        sink.on_io(IoEvent::Recovery {
            replayed: 1,
            discarded: 2,
            blocks_rewritten: 3,
        });
        let s = reg.snapshot();
        assert_eq!(s.counter(JOURNAL_TOTAL, &[("stat", "appends")]), Some(2));
        assert_eq!(s.counter(JOURNAL_TOTAL, &[("stat", "slot_blocks")]), Some(6));
        assert_eq!(
            s.counter(JOURNAL_TOTAL, &[("stat", "target_blocks")]),
            Some(4)
        );
        assert_eq!(s.counter(RECOVERY_TOTAL, &[("stat", "runs")]), Some(1));
        assert_eq!(s.counter(RECOVERY_TOTAL, &[("stat", "replayed")]), Some(1));
        assert_eq!(s.counter(RECOVERY_TOTAL, &[("stat", "discarded")]), Some(2));
        assert_eq!(
            s.counter(RECOVERY_TOTAL, &[("stat", "blocks_rewritten")]),
            Some(3)
        );
        assert_eq!(s.histogram(RECOVERY_BLOCKS, &[]).unwrap().max, 3);
    }
}
