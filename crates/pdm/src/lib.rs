//! # `pdm` — a parallel disk model simulator
//!
//! This crate implements the *parallel disk model* (PDM) of Vitter and
//! Shriver ("Algorithms for parallel memory I: Two-level memories",
//! Algorithmica 1994), the cost model used throughout the SPAA'06 paper
//! *"Deterministic load balancing and dictionaries in the parallel disk
//! model"*.
//!
//! In the PDM there are `D` storage devices, each an array of blocks with
//! capacity for `B` data items (a data item is one machine word — large
//! enough to hold a key or a pointer). **One parallel I/O** retrieves (or
//! writes) one block from (or to) *each* of the `D` devices. The performance
//! of an algorithm is the number of parallel I/Os it performs.
//!
//! The simulator in this crate:
//!
//! * stores blocks of `B` words on `D` simulated disks ([`DiskArray`]),
//! * charges **exactly** the PDM cost for every batched access: a batch
//!   touching `c_i` blocks on disk `i` costs `max_i c_i` parallel I/Os
//!   (in the stronger *parallel disk head* model of Aggarwal–Vitter it
//!   costs `ceil(total / D)` instead — see [`Model`]),
//! * tracks per-operation costs through [`stats::OpScope`] so data
//!   structures can report worst-case and average I/Os per operation,
//! * offers a striped view ([`stripe::StripedView`]) treating the `D` disks
//!   as a single disk with logical block size `B·D`,
//! * provides an I/O-accounted external multiway mergesort ([`sort`]),
//!   the yardstick for the paper's Theorem 6 construction cost,
//! * accounts internal memory usage in words ([`memory::MemTracker`]) for
//!   the Section 5 semi-explicit expander budgets, and
//! * includes a bit-level encoder/decoder ([`bits`]) used by the one-probe
//!   dictionary field formats (identifiers, unary-coded pointer deltas).
//!
//! The simulator is deterministic and single-threaded by design: the paper's
//! claims are statements about I/O counts, and the simulator measures those
//! counts exactly and reproducibly.
//!
//! ## Quick example
//!
//! ```
//! use pdm::{DiskArray, PdmConfig, BlockAddr, ReadOptions, WriteOptions};
//!
//! let cfg = PdmConfig::new(4, 16); // D = 4 disks, B = 16 words per block
//! let mut disks = DiskArray::new(cfg, 8); // 8 blocks per disk
//!
//! // Writing one block on each of two different disks is ONE parallel I/O.
//! let a = BlockAddr::new(0, 3);
//! let b = BlockAddr::new(1, 5);
//! disks.write(&[(a, &vec![7; 16]), (b, &vec![9; 16])], WriteOptions::default());
//! assert_eq!(disks.stats().parallel_ios, 1);
//!
//! // Reading two blocks from the SAME disk costs two parallel I/Os.
//! let out = disks.read(&[BlockAddr::new(2, 0), BlockAddr::new(2, 1)], ReadOptions::default());
//! assert_eq!(out.blocks.len(), 2);
//! assert_eq!(disks.stats().parallel_ios, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod bits;
pub mod config;
pub mod disk;
pub mod fault;
pub mod file;
pub mod file_backend;
pub mod integrity;
pub mod journal;
pub mod memory;
pub mod metrics;
pub mod record;
pub mod sort;
pub mod stats;
pub mod stripe;

pub use backend::{BackendError, CompletionSet, FlushTicket, IoSubmission, MemBackend, StorageBackend};
pub use batch::{BatchExecutor, BatchPlan, BatchReads, CommitReport};
pub use config::{Model, PdmConfig};
pub use disk::{BlockAddr, DiskArray, IoOutcome, ReadOptions, WriteOptions};
pub use file_backend::{FileBackend, FileBackendOptions};
pub use fault::{Fault, FaultPlan};
pub use file::RecordFile;
pub use integrity::{BlockCodec, BlockHealth, IoFaultKind, MixCodec, ScrubReport};
pub use journal::{JournalRegion, RecoveryReport, ReplayedIntent, GROUP_COMMIT_EVERY};
pub use memory::MemTracker;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, IoEvent, IoEventSink, IoMetricsSink,
    MetricsRegistry, MetricsSnapshot, NoopSink,
};
pub use record::{KeyedRecord, RecordLayout};
pub use sort::{external_sort, external_sort_by, sort_io_bound, SortOutcome};
pub use stats::{CostProfile, IoStats, OpCost, OpScope};
pub use stripe::StripedView;

/// The machine word of the model; every "data item" is one word.
pub type Word = u64;

/// Number of bits in a [`Word`].
pub const WORD_BITS: usize = 64;
