//! Fixed-width records: a key word plus a fixed number of satellite words.
//!
//! This is the "standard representation" Theorem 6's improved construction
//! assumes for its input: "an array of records split across the disks, but
//! with individual records undivided".

use crate::Word;

/// Shape of the records in a [`crate::RecordFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLayout {
    /// Total words per record (key + satellite).
    pub width_words: usize,
}

impl RecordLayout {
    /// Layout for records of `1 + satellite_words` words.
    ///
    /// # Panics
    /// Panics if the resulting width is zero.
    #[must_use]
    pub fn keyed(satellite_words: usize) -> Self {
        RecordLayout {
            width_words: 1 + satellite_words,
        }
    }

    /// Satellite words per record.
    #[must_use]
    pub fn satellite_words(&self) -> usize {
        self.width_words - 1
    }
}

/// A decoded record: key in word 0, satellite data in the remaining words.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyedRecord {
    /// The key.
    pub key: Word,
    /// Associated (satellite) data.
    pub satellite: Vec<Word>,
}

impl KeyedRecord {
    /// Create a record.
    #[must_use]
    pub fn new(key: Word, satellite: Vec<Word>) -> Self {
        KeyedRecord { key, satellite }
    }

    /// Encode into `out` (must be exactly `1 + satellite.len()` words).
    ///
    /// # Panics
    /// Panics on a size mismatch.
    pub fn encode(&self, out: &mut [Word]) {
        assert_eq!(out.len(), 1 + self.satellite.len(), "record width mismatch");
        out[0] = self.key;
        out[1..].copy_from_slice(&self.satellite);
    }

    /// Encode into a fresh vector.
    #[must_use]
    pub fn to_words(&self) -> Vec<Word> {
        let mut out = vec![0; 1 + self.satellite.len()];
        self.encode(&mut out);
        out
    }

    /// Decode from a word slice (word 0 = key, rest = satellite).
    ///
    /// # Panics
    /// Panics if `words` is empty.
    #[must_use]
    pub fn decode(words: &[Word]) -> Self {
        assert!(!words.is_empty(), "a record has at least a key word");
        KeyedRecord {
            key: words[0],
            satellite: words[1..].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = KeyedRecord::new(42, vec![1, 2, 3]);
        let words = r.to_words();
        assert_eq!(words, vec![42, 1, 2, 3]);
        assert_eq!(KeyedRecord::decode(&words), r);
    }

    #[test]
    fn layout_width() {
        let l = RecordLayout::keyed(3);
        assert_eq!(l.width_words, 4);
        assert_eq!(l.satellite_words(), 3);
    }

    #[test]
    fn empty_satellite() {
        let r = KeyedRecord::new(7, vec![]);
        assert_eq!(r.to_words(), vec![7]);
        assert_eq!(KeyedRecord::decode(&[7]), r);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn encode_size_mismatch_panics() {
        let r = KeyedRecord::new(1, vec![2]);
        let mut out = [0; 5];
        r.encode(&mut out);
    }
}
