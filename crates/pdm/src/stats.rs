//! I/O accounting: global counters plus per-operation scopes.
//!
//! Dictionaries report their cost in *parallel I/Os per operation*; this
//! module provides the bookkeeping. [`IoStats`] is the monotone global
//! counter set owned by a [`crate::DiskArray`]; an [`OpScope`] snapshots the
//! counters so the cost of one logical operation (a lookup, an insertion,
//! a construction phase) can be extracted as an [`OpCost`] delta.

/// Monotone global I/O counters of a disk array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Parallel I/O steps charged so far (the PDM cost measure).
    pub parallel_ios: u64,
    /// Individual blocks read (across all disks).
    pub block_reads: u64,
    /// Individual blocks written (across all disks).
    pub block_writes: u64,
    /// Batched access calls issued (each ≥ 0 parallel I/Os).
    pub batches: u64,
    /// Parallel rounds scheduled by the batch engine ([`crate::batch`]).
    ///
    /// Unlike `parallel_ios`, which every access charges, this counter
    /// only moves when a [`crate::BatchPlan`] is executed (or a
    /// [`crate::BatchExecutor`] commits); in the `ParallelDisk` model the
    /// rounds recorded for a plan equal the parallel I/Os it charges.
    pub rounds: u64,
}

impl IoStats {
    /// Difference `self - earlier`, field-wise.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not actually earlier.
    #[must_use]
    pub fn since(&self, earlier: &IoStats) -> OpCost {
        debug_assert!(self.parallel_ios >= earlier.parallel_ios);
        let parallel_ios = self.parallel_ios - earlier.parallel_ios;
        OpCost {
            parallel_ios,
            block_reads: self.block_reads - earlier.block_reads,
            block_writes: self.block_writes - earlier.block_writes,
            sequential_ios: parallel_ios,
        }
    }
}

/// The I/O cost of one logical operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Parallel I/O steps.
    pub parallel_ios: u64,
    /// Blocks read.
    pub block_reads: u64,
    /// Blocks written.
    pub block_writes: u64,
    /// Parallel I/O steps if the independently-disked parts of the
    /// operation had run one after another. Equal to `parallel_ios` for
    /// operations on a single disk array; structures that fan one
    /// operation out over several *independent* arrays (e.g. a sharded
    /// dictionary's cross-shard batches) report the per-part **max** as
    /// `parallel_ios` and keep the per-part **sum** here.
    pub sequential_ios: u64,
}

impl OpCost {
    /// Sum of two costs (parts executed one after another on the same
    /// set of disks: both the parallel and the sequential measure add).
    #[must_use]
    pub fn plus(self, other: OpCost) -> OpCost {
        OpCost {
            parallel_ios: self.parallel_ios + other.parallel_ios,
            block_reads: self.block_reads + other.block_reads,
            block_writes: self.block_writes + other.block_writes,
            sequential_ios: self.sequential_ios + other.sequential_ios,
        }
    }

    /// Combine with a cost incurred on an **independent** disk group
    /// running concurrently: parallel steps take the max, block counts
    /// and the sequential measure add.
    #[must_use]
    pub fn alongside(self, other: OpCost) -> OpCost {
        OpCost {
            parallel_ios: self.parallel_ios.max(other.parallel_ios),
            block_reads: self.block_reads + other.block_reads,
            block_writes: self.block_writes + other.block_writes,
            sequential_ios: self.sequential_ios + other.sequential_ios,
        }
    }
}

/// Snapshot of counters at the start of a logical operation.
///
/// ```
/// use pdm::{DiskArray, PdmConfig, BlockAddr, ReadOptions};
/// let mut disks = DiskArray::new(PdmConfig::new(2, 4), 4);
/// let scope = disks.begin_op();
/// disks.read(&[BlockAddr::new(0, 0), BlockAddr::new(1, 0)], ReadOptions::default());
/// let cost = disks.end_op(scope);
/// assert_eq!(cost.parallel_ios, 1);
/// assert_eq!(cost.block_reads, 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OpScope {
    pub(crate) at: IoStats,
}

impl OpScope {
    /// Create a scope from a counter snapshot.
    #[must_use]
    pub fn at(stats: IoStats) -> Self {
        OpScope { at: stats }
    }

    /// Cost accumulated between the snapshot and `now`.
    #[must_use]
    pub fn cost(&self, now: IoStats) -> OpCost {
        now.since(&self.at)
    }
}

/// Accumulates per-operation costs into average / worst-case summaries.
///
/// Used by the benchmark harness and by dictionaries that expose their own
/// running cost profile (e.g. the Theorem 7 structure's `1 + ɛ` average).
#[derive(Debug, Clone, Default)]
pub struct CostProfile {
    /// Number of operations recorded.
    pub ops: u64,
    /// Total parallel I/Os over all recorded operations.
    pub total_parallel_ios: u64,
    /// Worst single-operation parallel I/O count.
    pub worst_parallel_ios: u64,
    /// Histogram: `histogram[c]` = number of ops that cost exactly `c`
    /// parallel I/Os (saturating at the last bucket).
    pub histogram: Vec<u64>,
}

impl CostProfile {
    /// Record one operation's cost.
    pub fn record(&mut self, cost: OpCost) {
        self.ops += 1;
        self.total_parallel_ios += cost.parallel_ios;
        self.worst_parallel_ios = self.worst_parallel_ios.max(cost.parallel_ios);
        let idx = cost.parallel_ios as usize;
        if self.histogram.len() <= idx {
            self.histogram.resize(idx + 1, 0);
        }
        self.histogram[idx] += 1;
    }

    /// Average parallel I/Os per operation (0 if none recorded).
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total_parallel_ios as f64 / self.ops as f64
        }
    }

    /// The `p`-th percentile (0 < p ≤ 100) of per-operation parallel
    /// I/Os, computed from the histogram (nearest-rank).
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.ops == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.ops as f64).ceil() as u64;
        let mut seen = 0u64;
        for (cost, &count) in self.histogram.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return cost as u64;
            }
        }
        self.worst_parallel_ios
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &CostProfile) {
        self.ops += other.ops;
        self.total_parallel_ios += other.total_parallel_ios;
        self.worst_parallel_ios = self.worst_parallel_ios.max(other.worst_parallel_ios);
        if self.histogram.len() < other.histogram.len() {
            self.histogram.resize(other.histogram.len(), 0);
        }
        for (i, c) in other.histogram.iter().enumerate() {
            self.histogram[i] += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = IoStats {
            parallel_ios: 10,
            block_reads: 20,
            block_writes: 5,
            batches: 7,
            rounds: 0,
        };
        let b = IoStats {
            parallel_ios: 14,
            block_reads: 26,
            block_writes: 6,
            batches: 9,
            rounds: 3,
        };
        let d = b.since(&a);
        assert_eq!(d.parallel_ios, 4);
        assert_eq!(d.block_reads, 6);
        assert_eq!(d.block_writes, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "parallel_ios >= earlier.parallel_ios")]
    fn since_rejects_reversed_snapshots_in_debug() {
        let earlier = IoStats {
            parallel_ios: 3,
            ..Default::default()
        };
        let later = IoStats {
            parallel_ios: 7,
            ..Default::default()
        };
        let _ = earlier.since(&later);
    }

    #[test]
    fn opcost_plus() {
        let a = OpCost {
            parallel_ios: 1,
            block_reads: 2,
            block_writes: 3,
            sequential_ios: 1,
        };
        let b = OpCost {
            parallel_ios: 10,
            block_reads: 20,
            block_writes: 30,
            sequential_ios: 10,
        };
        let c = a.plus(b);
        assert_eq!(c.parallel_ios, 11);
        assert_eq!(c.block_reads, 22);
        assert_eq!(c.block_writes, 33);
        assert_eq!(c.sequential_ios, 11);
    }

    #[test]
    fn opcost_alongside_takes_parallel_max_and_sequential_sum() {
        let a = OpCost {
            parallel_ios: 3,
            block_reads: 5,
            block_writes: 1,
            sequential_ios: 3,
        };
        let b = OpCost {
            parallel_ios: 2,
            block_reads: 4,
            block_writes: 0,
            sequential_ios: 2,
        };
        let c = a.alongside(b);
        assert_eq!(c.parallel_ios, 3, "independent groups overlap in time");
        assert_eq!(c.sequential_ios, 5, "the sum is retained");
        assert_eq!(c.block_reads, 9);
        assert_eq!(c.block_writes, 1);
    }

    #[test]
    fn profile_average_and_worst() {
        let mut p = CostProfile::default();
        for ios in [1u64, 1, 1, 5] {
            p.record(OpCost {
                parallel_ios: ios,
                ..Default::default()
            });
        }
        assert_eq!(p.ops, 4);
        assert!((p.average() - 2.0).abs() < 1e-12);
        assert_eq!(p.worst_parallel_ios, 5);
        assert_eq!(p.histogram[1], 3);
        assert_eq!(p.histogram[5], 1);
    }

    #[test]
    fn profile_merge() {
        let mut p = CostProfile::default();
        p.record(OpCost {
            parallel_ios: 2,
            ..Default::default()
        });
        let mut q = CostProfile::default();
        q.record(OpCost {
            parallel_ios: 4,
            ..Default::default()
        });
        p.merge(&q);
        assert_eq!(p.ops, 2);
        assert_eq!(p.total_parallel_ios, 6);
        assert_eq!(p.worst_parallel_ios, 4);
    }

    #[test]
    fn empty_profile_average_is_zero() {
        assert_eq!(CostProfile::default().average(), 0.0);
        assert_eq!(CostProfile::default().percentile(50.0), 0);
    }

    #[test]
    fn percentiles_from_histogram() {
        let mut p = CostProfile::default();
        for ios in [1u64; 90] {
            p.record(OpCost {
                parallel_ios: ios,
                ..Default::default()
            });
        }
        for ios in [7u64; 10] {
            p.record(OpCost {
                parallel_ios: ios,
                ..Default::default()
            });
        }
        assert_eq!(p.percentile(50.0), 1);
        assert_eq!(p.percentile(90.0), 1);
        assert_eq!(p.percentile(91.0), 7);
        assert_eq!(p.percentile(100.0), 7);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_bounds_checked() {
        let _ = CostProfile::default().percentile(0.0);
    }
}
