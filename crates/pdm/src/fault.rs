//! Deterministic fault injection beneath the disk array.
//!
//! A [`FaultPlan`] is a declarative list of [`Fault`]s installed on a
//! [`crate::DiskArray`] with [`crate::DiskArray::set_fault_plan`]. Every
//! fault is deterministic: the same plan against the same access sequence
//! produces the same failures, so a failing test seed replays exactly.
//!
//! Fault semantics (matching what real hardware does, scaled to the
//! simulator):
//!
//! * [`Fault::DeadDisk`] — the disk's data is destroyed **at install
//!   time** and, while the plan is active, reads of the disk report
//!   [`BlockHealth::DiskDead`](crate::integrity::BlockHealth) and writes
//!   to it are dropped (and reported failed by checked writes). Clearing
//!   the plan models swapping in a freshly formatted replacement disk:
//!   accesses succeed again, but the data is gone until a scrub rebuilds
//!   it from redundancy.
//! * [`Fault::TransientRead`] — a window of read errors on one disk,
//!   measured in *charged read batches touching that disk*: the
//!   `first_read`-th through `first_read + duration - 1`-th such batches
//!   see sanitized zeros and `TransientError` health. The data is intact,
//!   so a retry after the window succeeds — this is what the
//!   dictionaries' retry-once policy exercises.
//! * [`Fault::TornWrite`] — the `nth_write`-th charged write batch
//!   touching the disk writes only a **prefix** of the first payload it
//!   carries to that disk, then reports the block failed. With integrity
//!   enabled the sealed checksum covers the *intended* content, so an
//!   unchecked writer's torn block is caught at next read. One-shot: the
//!   fault consumes itself, so a retried write lands fully.
//! * [`Fault::BitRot`] — flips one bit of one block **at install time**
//!   without resealing its checksum: silent corruption that only
//!   integrity verification can see.
//! * [`Fault::CrashPoint`] — process death after the `k`-th physical
//!   block write: every write from index `k` on (counted globally, in
//!   each batch's slice order) is **silently dropped** — the dying
//!   process observes `Ok` health, exactly like a real crash where the
//!   acknowledgement never reaches anyone who could act on it. A plan
//!   with a crash point for every `k` in an operation's write sequence
//!   is an exhaustive *crash matrix* (the FoundationDB-style
//!   schedule-enumeration trick); see `DiskArray::recover` for the
//!   replay side.

/// One injected failure. See the [module docs](self) for exact semantics.
///
/// Marked `#[non_exhaustive]`: richer fault models (latency spikes,
/// misdirected writes, …) may be added without a semver break.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Destroy a disk: data zeroed at install, reads/writes fail while
    /// the plan is active.
    DeadDisk {
        /// The failed disk.
        disk: usize,
    },
    /// A window of failed reads on one disk (data intact underneath).
    TransientRead {
        /// The affected disk.
        disk: usize,
        /// Index (0-based) of the first failing charged read batch that
        /// touches this disk, counted from plan installation.
        first_read: u64,
        /// Number of consecutive failing read batches.
        duration: u64,
    },
    /// Tear one write: the `nth_write`-th charged write batch touching
    /// `disk` (0-based, counted from installation) writes only a prefix
    /// of the first block it carries to that disk.
    TornWrite {
        /// The affected disk.
        disk: usize,
        /// Which write batch to tear.
        nth_write: u64,
    },
    /// Flip one bit of one block at install time (silent bit rot).
    BitRot {
        /// The affected disk.
        disk: usize,
        /// The affected block on that disk.
        block: usize,
        /// Which bit of the block to flip (taken modulo the block's bit
        /// width at install).
        bit: u32,
    },
    /// Kill the virtual machine after the `after_writes`-th physical
    /// block write (0-based, counted globally from plan installation, in
    /// slice order within each write batch): that write and every later
    /// one are silently dropped. With several crash points the earliest
    /// wins.
    CrashPoint {
        /// Number of physical block writes that still land; write index
        /// `after_writes` is the first one lost.
        after_writes: u64,
    },
}

/// A deterministic, composable set of injected failures.
///
/// Built either explicitly with the fluent constructors or pseudo-randomly
/// (but reproducibly) from a seed with [`FaultPlan::random`].
///
/// ```
/// use pdm::FaultPlan;
/// let plan = FaultPlan::new()
///     .dead_disk(3)
///     .transient_read(1, 0, 2)
///     .torn_write(2, 0)
///     .bit_rot(0, 7, 13);
/// assert_eq!(plan.faults().len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a [`Fault::DeadDisk`].
    #[must_use]
    pub fn dead_disk(mut self, disk: usize) -> Self {
        self.faults.push(Fault::DeadDisk { disk });
        self
    }

    /// Add a [`Fault::TransientRead`].
    #[must_use]
    pub fn transient_read(mut self, disk: usize, first_read: u64, duration: u64) -> Self {
        self.faults.push(Fault::TransientRead {
            disk,
            first_read,
            duration,
        });
        self
    }

    /// Add a [`Fault::TornWrite`].
    #[must_use]
    pub fn torn_write(mut self, disk: usize, nth_write: u64) -> Self {
        self.faults.push(Fault::TornWrite { disk, nth_write });
        self
    }

    /// Add a [`Fault::BitRot`].
    #[must_use]
    pub fn bit_rot(mut self, disk: usize, block: usize, bit: u32) -> Self {
        self.faults.push(Fault::BitRot { disk, block, bit });
        self
    }

    /// Add a [`Fault::CrashPoint`]: the first `after_writes` physical
    /// block writes after installation land, everything later is lost.
    /// `FaultPlan::new().crash_after(k)` for every `k` in an operation's
    /// write sequence is the exhaustive crash matrix.
    #[must_use]
    pub fn crash_after(mut self, after_writes: u64) -> Self {
        self.faults.push(Fault::CrashPoint { after_writes });
        self
    }

    /// Add an already-constructed fault.
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// `count` pseudo-random faults over a `disks × blocks_per_disk`
    /// geometry, deterministic in `seed`. Dead disks are drawn from the
    /// mix like every other kind but capped at one so the plan never
    /// destroys more redundancy than the single-failure guarantees cover;
    /// ask for more explicitly via [`dead_disk`](FaultPlan::dead_disk).
    #[must_use]
    pub fn random(seed: u64, disks: usize, blocks_per_disk: usize, count: usize) -> Self {
        assert!(disks > 0, "need at least one disk");
        let mut state = seed ^ 0x5DEE_CE66_D051_F00D;
        let mut next = || {
            // SplitMix64: full-period, seed-deterministic.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        let mut dead_used = false;
        for _ in 0..count {
            let disk = (next() % disks as u64) as usize;
            let block = if blocks_per_disk == 0 {
                0
            } else {
                (next() % blocks_per_disk as u64) as usize
            };
            match next() % 4 {
                0 if !dead_used => {
                    dead_used = true;
                    plan = plan.dead_disk(disk);
                }
                1 => plan = plan.transient_read(disk, next() % 4, 1 + next() % 4),
                2 => plan = plan.torn_write(disk, next() % 4),
                _ => plan = plan.bit_rot(disk, block, (next() % 64) as u32),
            }
        }
        plan
    }

    /// The faults in this plan, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Runtime fault state held by a `DiskArray` while a plan is installed:
/// the plan plus per-disk access clocks and one-shot consumption flags.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Charged read batches that have touched each disk since install.
    reads_seen: Vec<u64>,
    /// Charged write batches that have touched each disk since install.
    writes_seen: Vec<u64>,
    /// Whether each `TornWrite` in `plan.faults` has fired (parallel
    /// vector; entries for other fault kinds stay `false`).
    torn_consumed: Vec<bool>,
    /// Per-disk dead flag (precomputed from the plan).
    dead: Vec<bool>,
    /// Physical block writes seen globally since install (crash points
    /// are measured on this clock).
    writes_total: u64,
    /// Earliest `CrashPoint` budget in the plan, if any.
    crash_after: Option<u64>,
    /// Whether the crash point has been reached.
    crashed: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, disks: usize) -> Self {
        let mut dead = vec![false; disks];
        for fault in plan.faults() {
            if let Fault::DeadDisk { disk } = *fault {
                assert!(disk < disks, "dead disk {disk} out of range (D = {disks})");
                dead[disk] = true;
            }
        }
        let torn_consumed = vec![false; plan.faults().len()];
        let crash_after = plan
            .faults()
            .iter()
            .filter_map(|f| match *f {
                Fault::CrashPoint { after_writes } => Some(after_writes),
                _ => None,
            })
            .min();
        FaultState {
            plan,
            reads_seen: vec![0; disks],
            writes_seen: vec![0; disks],
            torn_consumed,
            dead,
            writes_total: 0,
            crash_after,
            crashed: false,
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn is_dead(&self, disk: usize) -> bool {
        self.dead[disk]
    }

    /// Whether the `read_index`-th read batch on `disk` falls inside a
    /// transient-error window.
    pub(crate) fn transient_at(&self, disk: usize, read_index: u64) -> bool {
        self.plan.faults().iter().any(|f| {
            matches!(*f, Fault::TransientRead { disk: d, first_read, duration }
                if d == disk && read_index >= first_read && read_index < first_read + duration)
        })
    }

    /// Current read clock for `disk` (the index the *next* charged read
    /// batch touching it will carry).
    pub(crate) fn read_clock(&self, disk: usize) -> u64 {
        self.reads_seen[disk]
    }

    /// Advance the read clock of every disk marked in `touched`.
    pub(crate) fn tick_reads(&mut self, touched: &[usize]) {
        for (disk, &count) in touched.iter().enumerate() {
            if count > 0 {
                self.reads_seen[disk] += 1;
            }
        }
    }

    /// For each disk marked in `touched`: return its current write-batch
    /// index and advance its clock.
    pub(crate) fn tick_writes(&mut self, touched: &[usize]) -> Vec<u64> {
        let mut indexes = self.writes_seen.clone();
        for (disk, &count) in touched.iter().enumerate() {
            if count > 0 {
                indexes[disk] = self.writes_seen[disk];
                self.writes_seen[disk] += 1;
            }
        }
        indexes
    }

    /// Count one physical block write against the crash budget. Returns
    /// `true` when the write must be **dropped**: the crash point has
    /// been reached (this write's global index is `>= after_writes`).
    /// Without a crash point in the plan this only advances the clock.
    pub(crate) fn note_physical_write(&mut self) -> bool {
        let index = self.writes_total;
        self.writes_total += 1;
        if let Some(k) = self.crash_after {
            if index >= k {
                self.crashed = true;
                return true;
            }
        }
        false
    }

    /// Whether the plan's crash point has fired.
    pub(crate) fn crash_fired(&self) -> bool {
        self.crashed
    }

    /// If an unconsumed torn-write fault fires for `disk` at write-batch
    /// index `write_index`, consume it and report `true`.
    pub(crate) fn consume_torn(&mut self, disk: usize, write_index: u64) -> bool {
        for (i, fault) in self.plan.faults().iter().enumerate() {
            if self.torn_consumed[i] {
                continue;
            }
            if let Fault::TornWrite { disk: d, nth_write } = *fault {
                if d == disk && nth_write == write_index {
                    self.torn_consumed[i] = true;
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(42, 8, 16, 6);
        let b = FaultPlan::random(42, 8, 16, 6);
        let c = FaultPlan::random(43, 8, 16, 6);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should draw different plans");
        assert_eq!(a.faults().len(), 6);
        assert!(
            a.faults()
                .iter()
                .filter(|f| matches!(f, Fault::DeadDisk { .. }))
                .count()
                <= 1,
            "random plans cap dead disks at one"
        );
    }

    #[test]
    fn transient_window_bounds_are_half_open() {
        let state = FaultState::new(FaultPlan::new().transient_read(2, 3, 2), 4);
        assert!(!state.transient_at(2, 2));
        assert!(state.transient_at(2, 3));
        assert!(state.transient_at(2, 4));
        assert!(!state.transient_at(2, 5));
        assert!(!state.transient_at(1, 3), "other disks unaffected");
    }

    #[test]
    fn torn_write_is_one_shot() {
        let mut state = FaultState::new(FaultPlan::new().torn_write(1, 0), 4);
        assert!(!state.consume_torn(0, 0), "wrong disk");
        assert!(state.consume_torn(1, 0));
        assert!(!state.consume_torn(1, 0), "consumed");
    }

    #[test]
    fn crash_budget_drops_exactly_the_suffix() {
        let mut state = FaultState::new(FaultPlan::new().crash_after(2), 4);
        assert!(!state.note_physical_write(), "write 0 lands");
        assert!(!state.crash_fired());
        assert!(!state.note_physical_write(), "write 1 lands");
        assert!(state.note_physical_write(), "write 2 is the first lost");
        assert!(state.crash_fired());
        assert!(state.note_physical_write(), "everything after stays lost");
    }

    #[test]
    fn earliest_crash_point_wins() {
        let state = FaultState::new(FaultPlan::new().crash_after(7).crash_after(3), 2);
        assert_eq!(state.crash_after, Some(3));
    }

    #[test]
    fn crash_after_zero_drops_everything() {
        let mut state = FaultState::new(FaultPlan::new().crash_after(0), 2);
        assert!(state.note_physical_write());
    }

    #[test]
    fn read_clocks_advance_only_on_touched_disks() {
        let mut state = FaultState::new(FaultPlan::new(), 3);
        state.tick_reads(&[1, 0, 2]);
        state.tick_reads(&[0, 0, 1]);
        assert_eq!(state.read_clock(0), 1);
        assert_eq!(state.read_clock(1), 0);
        assert_eq!(state.read_clock(2), 2);
    }

    #[test]
    fn write_clocks_report_pre_increment_indexes() {
        let mut state = FaultState::new(FaultPlan::new(), 2);
        let first = state.tick_writes(&[1, 1]);
        let second = state.tick_writes(&[0, 3]);
        assert_eq!(first, vec![0, 0]);
        assert_eq!(second[1], 1);
    }
}
