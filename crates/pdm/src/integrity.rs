//! Block integrity: per-block checksums behind a [`BlockCodec`] seam,
//! health classification for reads and writes, and scrub reporting.
//!
//! The paper's structures never move data once written and tolerate
//! *absent* data gracefully (an all-zero block decodes as "unoccupied"
//! everywhere in this workspace). What they cannot tolerate on their own
//! is *wrong* data: a bit-rotted field or a torn write decodes as a
//! plausible-looking entry. This module closes that hole: when integrity
//! is enabled on a [`crate::DiskArray`], every block carries a sidecar
//! checksum sealed on the write path and verified on the read path.
//! A failed block is **sanitized** — returned as all zeros — so the
//! damage degrades into the absence the decoders already handle, and the
//! failure is reported out-of-band as a [`BlockHealth`].
//!
//! The checksum layout is deliberately hidden behind [`BlockCodec`]: the
//! default [`MixCodec`] keeps sums in a sidecar array (modelling a
//! reserved stripe; sidecar blocks are charged to scrub walks, not to
//! individual reads, because a production layout would reserve one word
//! *inside* each block). Alternative codecs can be installed with
//! [`crate::DiskArray::set_block_codec`].

use crate::disk::BlockAddr;
use crate::stats::OpCost;
use crate::Word;

/// What kind of I/O fault damaged a block — the typed payload carried by
/// dictionary-level `Io` errors and by [`BlockHealth`].
///
/// Marked `#[non_exhaustive]`: future fault models may add variants
/// without a semver break; match with a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// The whole disk is failed: reads return nothing, writes are dropped.
    DiskDead,
    /// A transient read error window is active on the disk; the data is
    /// intact and a retried read may succeed once the window passes.
    TransientError,
    /// The block's content does not match its sealed checksum (bit rot,
    /// or a torn write detected after the fact).
    ChecksumMismatch,
    /// A write was torn: only a prefix of the payload reached the disk.
    /// Reported on the **write** path; later reads of the block surface
    /// [`IoFaultKind::ChecksumMismatch`] instead.
    TornWrite,
    /// The storage backend rejected its configuration (e.g. a block-size
    /// change on reopen, or a missing disk file). Carried by
    /// [`crate::backend::BackendError`]; never reported per-block.
    Misconfigured,
}

impl IoFaultKind {
    /// Stable lowercase label (for metrics and JSON reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::DiskDead => "disk_dead",
            IoFaultKind::TransientError => "transient",
            IoFaultKind::ChecksumMismatch => "checksum_mismatch",
            IoFaultKind::TornWrite => "torn_write",
            IoFaultKind::Misconfigured => "misconfigured",
        }
    }
}

impl std::fmt::Display for IoFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Health of one block as observed by a verified read or checked write.
///
/// Precedence when several conditions hold at once: a dead disk masks a
/// transient window, which masks a checksum mismatch — the classification
/// reports the outermost failure.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockHealth {
    /// The block read (or wrote) cleanly.
    #[default]
    Ok,
    /// The block lives on a dead disk (read sanitized / write dropped).
    DiskDead,
    /// The disk is inside a transient-error window (read sanitized; the
    /// underlying data is intact, so a later retry may succeed).
    TransientError,
    /// The content failed checksum verification (read sanitized).
    ChecksumMismatch,
    /// The write was torn mid-block (only reported by checked writes).
    TornWrite,
}

impl BlockHealth {
    /// Whether the access succeeded.
    #[must_use]
    pub fn is_ok(self) -> bool {
        matches!(self, BlockHealth::Ok)
    }

    /// The fault kind, if the access failed.
    #[must_use]
    pub fn fault_kind(self) -> Option<IoFaultKind> {
        match self {
            BlockHealth::Ok => None,
            BlockHealth::DiskDead => Some(IoFaultKind::DiskDead),
            BlockHealth::TransientError => Some(IoFaultKind::TransientError),
            BlockHealth::ChecksumMismatch => Some(IoFaultKind::ChecksumMismatch),
            BlockHealth::TornWrite => Some(IoFaultKind::TornWrite),
        }
    }
}

/// The checksum seam: maps a block address plus content to one sealed
/// checksum word. Implementations must be pure functions of their inputs
/// (the same `(addr, data)` always yields the same sum) so that clones of
/// a [`crate::DiskArray`] verify identically.
pub trait BlockCodec: Send + Sync {
    /// Checksum `data` as the content of block `addr`.
    ///
    /// Binding the address in prevents a misdirected write (right data,
    /// wrong block) from verifying.
    fn checksum(&self, addr: BlockAddr, data: &[Word]) -> Word;
}

/// Default codec: a cheap multiply-xor mix over the address and content.
///
/// Not cryptographic — it models the CRC a real block device would carry,
/// costing a handful of cycles per word so checksummed reads stay well
/// inside the ≤ 10% overhead budget.
#[derive(Debug, Default, Clone, Copy)]
pub struct MixCodec;

impl BlockCodec for MixCodec {
    fn checksum(&self, addr: BlockAddr, data: &[Word]) -> Word {
        let mut h = 0x9E37_79B9_7F4A_7C15u64
            ^ (addr.disk as u64).wrapping_mul(0xA24B_AED4_963E_E407)
            ^ (addr.block as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
        for &w in data {
            h = (h ^ w).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
        }
        h
    }
}

/// Outcome of a scrub pass (a full verify walk, optionally with repair).
///
/// Produced by [`crate::DiskArray::scrub_verify`] and by the dictionary
/// front-ends' `scrub` methods; mergeable so sharded structures can
/// aggregate per-shard passes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Blocks whose health was checked.
    pub blocks_scanned: u64,
    /// Blocks that failed checksum verification during the walk.
    pub checksum_failures: u64,
    /// Blocks rewritten with repaired content.
    pub repaired_blocks: u64,
    /// Individual fields re-encoded from surviving redundancy.
    pub repaired_fields: u64,
    /// Keys whose damage exceeded the surviving redundancy (left as-is).
    pub unrepairable_keys: u64,
    /// I/O charged by the pass.
    pub cost: OpCost,
}

impl ScrubReport {
    /// Accumulate another pass into this report.
    pub fn merge(&mut self, other: &ScrubReport) {
        self.blocks_scanned += other.blocks_scanned;
        self.checksum_failures += other.checksum_failures;
        self.repaired_blocks += other.repaired_blocks;
        self.repaired_fields += other.repaired_fields;
        self.unrepairable_keys += other.unrepairable_keys;
        self.cost = self.cost.plus(other.cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_codec_is_deterministic_and_address_bound() {
        let c = MixCodec;
        let a = BlockAddr::new(1, 2);
        let data = [1u64, 2, 3];
        assert_eq!(c.checksum(a, &data), c.checksum(a, &data));
        assert_ne!(
            c.checksum(a, &data),
            c.checksum(BlockAddr::new(2, 1), &data),
            "same data on a different block must not verify"
        );
        assert_ne!(c.checksum(a, &data), c.checksum(a, &[1, 2, 4]));
    }

    #[test]
    fn health_classifies_fault_kinds() {
        assert!(BlockHealth::Ok.is_ok());
        assert_eq!(BlockHealth::Ok.fault_kind(), None);
        assert_eq!(
            BlockHealth::DiskDead.fault_kind(),
            Some(IoFaultKind::DiskDead)
        );
        assert_eq!(
            BlockHealth::ChecksumMismatch.fault_kind(),
            Some(IoFaultKind::ChecksumMismatch)
        );
        assert_eq!(IoFaultKind::TornWrite.label(), "torn_write");
    }

    #[test]
    fn scrub_reports_merge_fieldwise() {
        let mut a = ScrubReport {
            blocks_scanned: 10,
            checksum_failures: 2,
            repaired_blocks: 1,
            repaired_fields: 3,
            unrepairable_keys: 0,
            cost: OpCost {
                parallel_ios: 4,
                block_reads: 10,
                block_writes: 1,
                sequential_ios: 4,
            },
        };
        let b = ScrubReport {
            blocks_scanned: 5,
            checksum_failures: 1,
            repaired_blocks: 0,
            repaired_fields: 0,
            unrepairable_keys: 2,
            cost: OpCost {
                parallel_ios: 2,
                block_reads: 5,
                block_writes: 0,
                sequential_ios: 2,
            },
        };
        a.merge(&b);
        assert_eq!(a.blocks_scanned, 15);
        assert_eq!(a.checksum_failures, 3);
        assert_eq!(a.unrepairable_keys, 2);
        assert_eq!(a.cost.parallel_ios, 6);
        assert_eq!(a.cost.block_reads, 15);
    }
}
