//! `FileBackend`: one file plus one dedicated worker thread per "disk".
//!
//! This is the physical realization of the PDM: each simulated disk is a
//! regular file, and each file is owned by a persistent worker thread
//! with its own submission queue. A batch is split per disk, **issued to
//! every queue before any completion is joined**, so the per-disk device
//! waits overlap in real time — a D-disk parallel round takes roughly
//! one disk's latency, not D of them. That overlap is what the
//! `io_wallclock` bench measures and gates on.
//!
//! ## Layout
//!
//! A backend directory holds `meta` (text: magic, D, B, blocks per disk)
//! and `disk-<d>.bin` (blocks at stride `B · 8` bytes, words
//! little-endian). Files are fully materialized at create/grow time:
//! extent allocation is paid up front, so wall-clock measurements time
//! I/O, not filesystem metadata churn.
//!
//! ## Durability and `O_DIRECT`
//!
//! * [`FileBackendOptions::sync_on_write`] — the fsync-on-commit toggle:
//!   every write submission ends with `fdatasync` on each disk it
//!   touched. Independent of that toggle, a submission's `sync_after`
//!   (or [`StorageBackend::flush_begin`]) forces a barrier.
//! * [`FileBackendOptions::direct_io`] — open disk files with `O_DIRECT`
//!   (Linux): reads bypass the page cache and hit the device, which is
//!   what makes overlapped queues measurably faster than serial issue
//!   even on one CPU core. Requires the block size to be a multiple of
//!   4096 bytes (rejected with a typed [`BackendError`] otherwise);
//!   sub-block writes are performed as read-modify-write of the full
//!   block inside the worker.
//!
//! Open/create failures (missing disk file, geometry change on reopen,
//! unreadable meta) are **typed** [`BackendError`]s, not panics; runtime
//! I/O failures on a healthy backend (e.g. the filesystem disappearing
//! mid-run) abort the worker via panic, matching the in-memory backend's
//! "storage itself never fails" contract — *modelled* faults stay in the
//! fault-injection layer above.

use crate::backend::{BackendError, CompletionSet, FlushTicket, IoSubmission, StorageBackend};
use crate::disk::BlockAddr;
use crate::Word;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Mutex};
use std::thread::JoinHandle;

const META_MAGIC: &str = "pdm-file-backend v1";
const WORD_BYTES: usize = std::mem::size_of::<Word>();
const DIRECT_ALIGN: usize = 4096;

/// Configuration for [`FileBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileBackendOptions {
    /// `fdatasync` each touched disk at the end of every write
    /// submission (the fsync-on-commit toggle).
    pub sync_on_write: bool,
    /// Open disk files with `O_DIRECT` and do device-direct reads.
    /// Requires `B · 8` to be a multiple of 4096.
    pub direct_io: bool,
}

impl FileBackendOptions {
    /// Enable or disable fsync-on-commit.
    #[must_use]
    pub fn sync_on_write(mut self, on: bool) -> Self {
        self.sync_on_write = on;
        self
    }

    /// Enable or disable `O_DIRECT` device-direct reads.
    #[must_use]
    pub fn direct_io(mut self, on: bool) -> Self {
        self.direct_io = on;
        self
    }
}

/// One job for a disk worker: block reads (tagged with their result
/// slot), encoded block writes, and an optional durability barrier.
struct Job {
    reads: Vec<(usize, u64)>,
    writes: Vec<(u64, Vec<u8>)>,
    sync: bool,
    reply: mpsc::Sender<DiskReply>,
}

struct DiskReply {
    reads: Vec<(usize, Vec<Word>)>,
}

enum Cmd {
    Run(Job),
    Flush(mpsc::Sender<()>),
    Shutdown,
}

struct DiskWorker {
    tx: mpsc::Sender<Cmd>,
    join: Option<JoinHandle<()>>,
}

/// File-per-disk storage backend with one worker thread per disk.
///
/// See the [module docs](self) for layout, durability, and `O_DIRECT`
/// semantics. Construct with [`FileBackend::create`] (fresh directory)
/// or [`FileBackend::open`] (existing directory), then hand it to
/// [`crate::DiskArray::with_backend`].
pub struct FileBackend {
    dir: PathBuf,
    block_words: usize,
    blocks: usize,
    opts: FileBackendOptions,
    // Buffered main-thread handle per disk, for the uncharged hooks
    // (peek/poke/snapshot) and for grow; workers hold their own handles.
    control: Vec<File>,
    workers: Vec<DiskWorker>,
    // Wrapped in a Mutex only to keep the backend `Sync` for shared
    // readers; it is touched exclusively through `&mut self`.
    pending_flush: Mutex<Option<mpsc::Receiver<()>>>,
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .field("disks", &self.workers.len())
            .field("block_words", &self.block_words)
            .field("blocks", &self.blocks)
            .field("opts", &self.opts)
            .finish()
    }
}

fn io_err(disk: usize, what: &str, err: &std::io::Error) -> BackendError {
    BackendError::misconfigured(disk, format!("{what}: {err}"))
}

fn disk_path(dir: &Path, disk: usize) -> PathBuf {
    dir.join(format!("disk-{disk}.bin"))
}

/// A zeroed buffer of `len` bytes whose payload starts at an
/// `align`-aligned address (returned as `(buffer, offset)`); computing
/// the offset from the allocation address needs no unsafe code.
fn aligned_buf(len: usize, align: usize) -> (Vec<u8>, usize) {
    let v = vec![0u8; len + align];
    let addr = v.as_ptr() as usize;
    let off = (align - (addr % align)) % align;
    (v, off)
}

fn encode_words(words: &[Word]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * WORD_BYTES);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn decode_words(bytes: &[u8]) -> Vec<Word> {
    bytes
        .chunks_exact(WORD_BYTES)
        .map(|c| Word::from_le_bytes(c.try_into().expect("chunk is WORD_BYTES long")))
        .collect()
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
const O_DIRECT: i32 = 0x10000;
#[cfg(all(target_os = "linux", not(target_arch = "aarch64")))]
const O_DIRECT: i32 = 0x4000;

fn open_worker_file(path: &Path, direct: bool) -> std::io::Result<File> {
    let mut oo = OpenOptions::new();
    oo.read(true).write(true);
    #[cfg(target_os = "linux")]
    if direct {
        use std::os::unix::fs::OpenOptionsExt;
        oo.custom_flags(O_DIRECT);
    }
    #[cfg(not(target_os = "linux"))]
    let _ = direct; // no O_DIRECT off Linux; buffered I/O is still correct
    oo.open(path)
}

/// The worker loop: owns its disk's file handle, drains its queue, and
/// answers each job on the job's own reply channel (reads are performed
/// before writes; see the backend ordering contract).
fn worker_loop(file: File, block_bytes: usize, direct: bool, rx: mpsc::Receiver<Cmd>) {
    use std::os::unix::fs::FileExt;
    let (mut buf, off) = aligned_buf(block_bytes, DIRECT_ALIGN);
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Run(job) => {
                let mut reads = Vec::with_capacity(job.reads.len());
                for (slot, offset) in &job.reads {
                    let dst = &mut buf[off..off + block_bytes];
                    file.read_exact_at(dst, *offset).expect("disk file read");
                    reads.push((*slot, decode_words(dst)));
                }
                for (offset, bytes) in &job.writes {
                    if direct {
                        let dst = &mut buf[off..off + block_bytes];
                        if bytes.len() < block_bytes {
                            // Sub-block write under O_DIRECT: read-modify-
                            // write the full (aligned) block.
                            file.read_exact_at(dst, *offset).expect("disk file read");
                        }
                        dst[..bytes.len()].copy_from_slice(bytes);
                        file.write_all_at(dst, *offset).expect("disk file write");
                    } else {
                        file.write_all_at(bytes, *offset).expect("disk file write");
                    }
                }
                if job.sync {
                    file.sync_data().expect("disk file sync");
                }
                // A dropped array mid-reply is fine; ignore send errors.
                let _ = job.reply.send(DiskReply { reads });
            }
            Cmd::Flush(reply) => {
                file.sync_data().expect("disk file sync");
                let _ = reply.send(());
            }
            Cmd::Shutdown => break,
        }
    }
}

impl FileBackend {
    /// Create a fresh backend directory: `disks` files of
    /// `blocks_per_disk` zeroed, fully materialized blocks, plus the
    /// `meta` geometry record.
    ///
    /// # Errors
    /// Typed [`BackendError`] if the directory or files cannot be
    /// created, or `direct_io` is requested with a block size that is
    /// not a multiple of 4096 bytes.
    pub fn create(
        dir: impl AsRef<Path>,
        disks: usize,
        block_words: usize,
        blocks_per_disk: usize,
        opts: FileBackendOptions,
    ) -> Result<Self, BackendError> {
        let dir = dir.as_ref();
        Self::check_direct(block_words, opts)?;
        if disks == 0 || block_words == 0 {
            return Err(BackendError::misconfigured(
                0,
                format!("degenerate geometry: D = {disks}, B = {block_words}"),
            ));
        }
        std::fs::create_dir_all(dir).map_err(|e| io_err(0, "creating backend directory", &e))?;
        let block_bytes = block_words * WORD_BYTES;
        let zeros = vec![0u8; block_bytes.max(1) * blocks_per_disk.clamp(1, 1 << 20)];
        for d in 0..disks {
            let path = disk_path(dir, d);
            let mut f = File::create(&path).map_err(|e| io_err(d, "creating disk file", &e))?;
            // Materialize (not just set_len): pay extent allocation now.
            let mut remaining = block_bytes * blocks_per_disk;
            while remaining > 0 {
                let n = remaining.min(zeros.len());
                f.write_all(&zeros[..n])
                    .map_err(|e| io_err(d, "materializing disk file", &e))?;
                remaining -= n;
            }
            f.sync_all().map_err(|e| io_err(d, "syncing disk file", &e))?;
        }
        Self::write_meta(dir, disks, block_words, blocks_per_disk)?;
        Self::attach(dir.to_path_buf(), disks, block_words, blocks_per_disk, opts)
    }

    /// Open an existing backend directory, verifying the recorded
    /// geometry against the disk files actually present.
    ///
    /// # Errors
    /// Typed [`BackendError`] on a missing/corrupt `meta`, a **missing
    /// disk file**, or a disk file whose size disagrees with the meta
    /// geometry (e.g. the directory was written under a different block
    /// size). A block-size change on reopen surfaces either here (file
    /// size mismatch) or in [`crate::DiskArray::with_backend`] (config
    /// mismatch) — both as typed errors, never a panic.
    pub fn open(dir: impl AsRef<Path>, opts: FileBackendOptions) -> Result<Self, BackendError> {
        let dir = dir.as_ref();
        let (disks, block_words, blocks) = Self::read_meta(dir)?;
        Self::check_direct(block_words, opts)?;
        let expected_len = (block_words * WORD_BYTES * blocks) as u64;
        for d in 0..disks {
            let path = disk_path(dir, d);
            let md = std::fs::metadata(&path).map_err(|_| {
                BackendError::misconfigured(d, format!("missing disk file {}", path.display()))
            })?;
            if md.len() != expected_len {
                return Err(BackendError::misconfigured(
                    d,
                    format!(
                        "disk file {} is {} bytes but the meta geometry \
                         (B = {block_words} words, {blocks} blocks) needs {expected_len}",
                        path.display(),
                        md.len()
                    ),
                ));
            }
        }
        Self::attach(dir.to_path_buf(), disks, block_words, blocks, opts)
    }

    fn check_direct(block_words: usize, opts: FileBackendOptions) -> Result<(), BackendError> {
        if opts.direct_io && !(block_words * WORD_BYTES).is_multiple_of(DIRECT_ALIGN) {
            return Err(BackendError::misconfigured(
                0,
                format!(
                    "direct_io needs the block size ({} bytes) to be a multiple of {DIRECT_ALIGN}",
                    block_words * WORD_BYTES
                ),
            ));
        }
        Ok(())
    }

    fn write_meta(
        dir: &Path,
        disks: usize,
        block_words: usize,
        blocks: usize,
    ) -> Result<(), BackendError> {
        let body = format!("{META_MAGIC}\ndisks {disks}\nblock_words {block_words}\nblocks {blocks}\n");
        std::fs::write(dir.join("meta"), body).map_err(|e| io_err(0, "writing meta", &e))
    }

    fn read_meta(dir: &Path) -> Result<(usize, usize, usize), BackendError> {
        let path = dir.join("meta");
        let mut body = String::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_string(&mut body))
            .map_err(|_| {
                BackendError::misconfigured(
                    0,
                    format!("missing or unreadable meta file {}", path.display()),
                )
            })?;
        let mut lines = body.lines();
        if lines.next() != Some(META_MAGIC) {
            return Err(BackendError::misconfigured(
                0,
                format!("{} is not a pdm file-backend meta file", path.display()),
            ));
        }
        let mut field = |name: &str| -> Result<usize, BackendError> {
            lines
                .next()
                .and_then(|l| l.strip_prefix(name))
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| {
                    BackendError::misconfigured(0, format!("meta file is missing field {name:?}"))
                })
        };
        Ok((field("disks")?, field("block_words")?, field("blocks")?))
    }

    fn attach(
        dir: PathBuf,
        disks: usize,
        block_words: usize,
        blocks: usize,
        opts: FileBackendOptions,
    ) -> Result<Self, BackendError> {
        let block_bytes = block_words * WORD_BYTES;
        let mut control = Vec::with_capacity(disks);
        let mut workers = Vec::with_capacity(disks);
        for d in 0..disks {
            let path = disk_path(&dir, d);
            control.push(
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err(d, "opening disk file", &e))?,
            );
            let wf = open_worker_file(&path, opts.direct_io)
                .map_err(|e| io_err(d, "opening disk file for the worker", &e))?;
            let (tx, rx) = mpsc::channel();
            let join = std::thread::Builder::new()
                .name(format!("pdm-disk-{d}"))
                .spawn(move || worker_loop(wf, block_bytes, opts.direct_io, rx))
                .map_err(|e| io_err(d, "spawning disk worker", &e))?;
            workers.push(DiskWorker {
                tx,
                join: Some(join),
            });
        }
        Ok(FileBackend {
            dir,
            block_words,
            blocks,
            opts,
            control,
            workers,
            pending_flush: Mutex::new(None),
        })
    }

    /// The backend directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn offset_of(&self, block: usize) -> u64 {
        (block * self.block_words * WORD_BYTES) as u64
    }

    /// Split a submission per disk, send every disk's job before joining
    /// any, then reassemble read completions into request order.
    fn run(&self, batch: IoSubmission<'_>) -> CompletionSet {
        let d = self.workers.len();
        let mut reads_by_disk: Vec<Vec<(usize, u64)>> = vec![Vec::new(); d];
        for (slot, a) in batch.reads.iter().enumerate() {
            debug_assert!(a.disk < d && a.block < self.blocks);
            reads_by_disk[a.disk].push((slot, self.offset_of(a.block)));
        }
        let mut writes_by_disk: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); d];
        for (a, data) in batch.writes {
            debug_assert!(a.disk < d && a.block < self.blocks);
            writes_by_disk[a.disk].push((self.offset_of(a.block), encode_words(data)));
        }
        let sync = batch.sync_after || (self.opts.sync_on_write && !batch.writes.is_empty());
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut outstanding = 0usize;
        for (disk, (reads, writes)) in reads_by_disk
            .into_iter()
            .zip(writes_by_disk)
            .enumerate()
        {
            if reads.is_empty() && writes.is_empty() && !sync {
                continue;
            }
            self.workers[disk]
                .tx
                .send(Cmd::Run(Job {
                    reads,
                    writes,
                    sync,
                    reply: reply_tx.clone(),
                }))
                .expect("disk worker alive");
            outstanding += 1;
        }
        drop(reply_tx);
        let mut out = vec![Vec::new(); batch.reads.len()];
        for _ in 0..outstanding {
            let reply = reply_rx.recv().expect("disk worker reply");
            for (slot, words) in reply.reads {
                out[slot] = words;
            }
        }
        CompletionSet { reads: out }
    }
}

impl StorageBackend for FileBackend {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn disks(&self) -> usize {
        self.workers.len()
    }

    fn block_words(&self) -> usize {
        self.block_words
    }

    fn blocks_on(&self, _disk: usize) -> usize {
        self.blocks
    }

    fn grow(&mut self, blocks_per_disk: usize) {
        if blocks_per_disk <= self.blocks {
            return;
        }
        let add_bytes = (blocks_per_disk - self.blocks) * self.block_words * WORD_BYTES;
        let old_len = self.offset_of(self.blocks);
        let zeros = vec![0u8; add_bytes.min(1 << 20)];
        for f in &self.control {
            use std::os::unix::fs::FileExt;
            let mut written = 0usize;
            while written < add_bytes {
                let n = (add_bytes - written).min(zeros.len());
                f.write_all_at(&zeros[..n], old_len + written as u64)
                    .expect("growing disk file");
                written += n;
            }
        }
        self.blocks = blocks_per_disk;
        Self::write_meta(
            &self.dir,
            self.workers.len(),
            self.block_words,
            self.blocks,
        )
        .expect("rewriting meta after grow");
    }

    fn submit(&mut self, batch: IoSubmission<'_>) -> CompletionSet {
        self.run(batch)
    }

    fn submit_reads(&self, reads: &[BlockAddr]) -> CompletionSet {
        self.run(IoSubmission::reads(reads))
    }

    fn peek(&self, addr: BlockAddr) -> Vec<Word> {
        use std::os::unix::fs::FileExt;
        let mut buf = vec![0u8; self.block_words * WORD_BYTES];
        self.control[addr.disk]
            .read_exact_at(&mut buf, self.offset_of(addr.block))
            .expect("disk file read");
        decode_words(&buf)
    }

    fn poke(&mut self, addr: BlockAddr, data: &[Word]) {
        use std::os::unix::fs::FileExt;
        self.control[addr.disk]
            .write_all_at(&encode_words(data), self.offset_of(addr.block))
            .expect("disk file write");
    }

    fn snapshot(&self) -> Vec<Vec<Box<[Word]>>> {
        (0..self.workers.len())
            .map(|d| {
                (0..self.blocks)
                    .map(|b| self.peek(BlockAddr::new(d, b)).into_boxed_slice())
                    .collect()
            })
            .collect()
    }

    fn flush_begin(&mut self) -> FlushTicket {
        let (tx, rx) = mpsc::channel();
        for w in &self.workers {
            w.tx.send(Cmd::Flush(tx.clone())).expect("disk worker alive");
        }
        *self.pending_flush.lock().expect("flush lock") = Some(rx);
        FlushTicket {
            pending: self.workers.len(),
        }
    }

    fn flush_join(&mut self, ticket: FlushTicket) {
        if let Some(rx) = self.pending_flush.lock().expect("flush lock").take() {
            for _ in 0..ticket.pending {
                rx.recv().expect("disk worker flush ack");
            }
        }
    }
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Cmd::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::config::PdmConfig;
    use crate::DiskArray;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pdm-fb-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn file_backend_roundtrips_like_mem() {
        let dir = tmpdir("roundtrip");
        let mut fb = FileBackend::create(&dir, 3, 4, 2, FileBackendOptions::default()).unwrap();
        let mut mb = MemBackend::new(3, 4, 2);
        let w1 = [7 as Word, 1, 2, 3];
        let writes: Vec<(BlockAddr, &[Word])> = vec![
            (BlockAddr::new(2, 1), &w1[..]),
            (BlockAddr::new(0, 0), &w1[..2]),
        ];
        fb.submit(IoSubmission::writes(&writes));
        mb.submit(IoSubmission::writes(&writes));
        let addrs = [
            BlockAddr::new(0, 0),
            BlockAddr::new(2, 1),
            BlockAddr::new(1, 0),
        ];
        assert_eq!(
            fb.submit(IoSubmission::reads(&addrs)).reads,
            mb.submit(IoSubmission::reads(&addrs)).reads
        );
        assert_eq!(fb.snapshot(), mb.snapshot());
        drop(fb);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut fb =
                FileBackend::create(&dir, 2, 4, 2, FileBackendOptions::default()).unwrap();
            fb.poke(BlockAddr::new(1, 1), &[5; 4]);
            fb.sync();
        }
        let fb = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
        assert_eq!(fb.peek(BlockAddr::new(1, 1)), vec![5; 4]);
        assert_eq!(fb.disks(), 2);
        assert_eq!(fb.block_words(), 4);
        assert_eq!(fb.blocks_on(0), 2);
        drop(fb);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_missing_disk_file_with_typed_error() {
        let dir = tmpdir("missing");
        {
            let _fb =
                FileBackend::create(&dir, 2, 4, 2, FileBackendOptions::default()).unwrap();
        }
        std::fs::remove_file(disk_path(&dir, 1)).unwrap();
        let err = FileBackend::open(&dir, FileBackendOptions::default()).unwrap_err();
        assert_eq!(err.kind, crate::IoFaultKind::Misconfigured);
        assert_eq!(err.disk, 1);
        assert!(err.message.contains("missing disk file"), "{}", err.message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_under_changed_block_size_is_a_typed_error() {
        let dir = tmpdir("blocksize");
        {
            let _fb =
                FileBackend::create(&dir, 2, 4, 4, FileBackendOptions::default()).unwrap();
        }
        // The array was written with B = 4; a caller reopening it under a
        // B = 8 config gets a typed geometry error from with_backend.
        let fb = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
        let err = DiskArray::with_backend(PdmConfig::new(2, 8), Box::new(fb)).unwrap_err();
        assert_eq!(err.kind, crate::IoFaultKind::Misconfigured);
        assert!(err.message.contains("block size"), "{}", err.message);
        // And a meta file edited to a mismatched block size fails at open.
        let meta = dir.join("meta");
        let body = std::fs::read_to_string(&meta).unwrap();
        std::fs::write(&meta, body.replace("block_words 4", "block_words 8")).unwrap();
        let err = FileBackend::open(&dir, FileBackendOptions::default()).unwrap_err();
        assert_eq!(err.kind, crate::IoFaultKind::Misconfigured);
        assert!(err.message.contains("needs"), "{}", err.message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn direct_io_requires_aligned_blocks() {
        let dir = tmpdir("align");
        let err = FileBackend::create(&dir, 2, 4, 2, FileBackendOptions::default().direct_io(true))
            .unwrap_err();
        assert_eq!(err.kind, crate::IoFaultKind::Misconfigured);
        assert!(err.message.contains("multiple of 4096"), "{}", err.message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn direct_io_reads_and_writes_roundtrip() {
        let b = DIRECT_ALIGN / WORD_BYTES; // exactly one 4 KiB block
        let dir = tmpdir("direct");
        let mut fb =
            FileBackend::create(&dir, 2, b, 3, FileBackendOptions::default().direct_io(true))
                .unwrap();
        let full: Vec<Word> = (0..b as Word).collect();
        let part = [9 as Word; 3];
        let writes: Vec<(BlockAddr, &[Word])> = vec![
            (BlockAddr::new(0, 1), &full[..]),
            (BlockAddr::new(1, 2), &part[..]),
        ];
        fb.submit(IoSubmission::writes(&writes).with_sync(true));
        let got = fb.submit(IoSubmission::reads(&[BlockAddr::new(0, 1), BlockAddr::new(1, 2)]));
        assert_eq!(got.reads[0], full);
        assert_eq!(got.reads[1][..3], [9, 9, 9]);
        assert_eq!(got.reads[1][3..], vec![0; b - 3][..]);
        drop(fb);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grow_extends_every_disk_and_survives_reopen() {
        let dir = tmpdir("grow");
        {
            let mut fb =
                FileBackend::create(&dir, 2, 4, 2, FileBackendOptions::default()).unwrap();
            fb.poke(BlockAddr::new(0, 1), &[3; 4]);
            fb.grow(5);
            assert_eq!(fb.blocks_on(0), 5);
            assert_eq!(fb.peek(BlockAddr::new(0, 4)), vec![0; 4]);
            assert_eq!(fb.peek(BlockAddr::new(0, 1)), vec![3; 4]);
        }
        let fb = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
        assert_eq!(fb.blocks_on(1), 5);
        drop(fb);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_tickets_ack_once_per_disk() {
        let dir = tmpdir("flush");
        let mut fb = FileBackend::create(&dir, 3, 4, 1, FileBackendOptions::default()).unwrap();
        let w = [1 as Word; 4];
        let writes: Vec<(BlockAddr, &[Word])> = vec![(BlockAddr::new(0, 0), &w[..])];
        fb.submit(IoSubmission::writes(&writes));
        let t = fb.flush_begin();
        // Work queued after the barrier lands behind it per disk.
        fb.submit(IoSubmission::writes(&writes));
        fb.flush_join(t);
        drop(fb);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_on_write_toggle_syncs_every_write_batch() {
        let dir = tmpdir("synctoggle");
        let mut fb = FileBackend::create(
            &dir,
            2,
            4,
            2,
            FileBackendOptions::default().sync_on_write(true),
        )
        .unwrap();
        let w = [2 as Word; 4];
        let writes: Vec<(BlockAddr, &[Word])> = vec![(BlockAddr::new(1, 0), &w[..])];
        fb.submit(IoSubmission::writes(&writes));
        assert_eq!(fb.peek(BlockAddr::new(1, 0)), vec![2; 4]);
        drop(fb);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
