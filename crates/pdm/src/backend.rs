//! The storage seam: physical block storage behind [`DiskArray`](crate::DiskArray).
//!
//! Everything above this module — cost accounting, fault injection,
//! integrity checksums, the journal, the batch engine — is *model* logic:
//! it decides which blocks to touch and what the access costs in parallel
//! I/Os. This module owns the question of where the bytes actually live.
//! A [`StorageBackend`] accepts one [`IoSubmission`] at a time (a batch of
//! block reads and block-aligned writes, optionally followed by a
//! durability barrier) and returns a [`CompletionSet`].
//!
//! Two implementations ship:
//!
//! * [`MemBackend`] — the original `Vec<Vec<Box<[Word]>>>` in-memory
//!   storage, bit-compatible with every release before the seam existed.
//!   It is the default: tests and simulated-count benchmarks run on it
//!   with zero behavioral drift.
//! * [`FileBackend`](crate::file_backend::FileBackend) — one file plus one
//!   dedicated worker thread per "disk". A submission is split per disk
//!   and issued to **all** per-disk queues before any completion is
//!   joined, so a parallel round is *actually* parallel: the per-disk
//!   device waits (page-cache misses, `O_DIRECT` round trips, `fsync`
//!   barriers) overlap in real time exactly the way the PDM cost model
//!   assumes they do.
//!
//! ## Completion-order canonicalization
//!
//! Physical completions arrive in whatever order the disks finish.
//! [`CompletionSet::reads`] is always reassembled into **request order**
//! before it is returned. This is deliberate: every layer above (the batch
//! engine's slot mapping, the journal's replay matrices, the differential
//! test harness) indexes completions by request position, and PR 4 pinned
//! the *write* order to canonical `(disk, block)` sorting so that
//! crash-prefix experiments are deterministic. A backend that leaked
//! completion order would make observable behavior depend on device
//! timing — the one thing a deterministic reproduction cannot allow.
//!
//! ## Ordering and durability contract
//!
//! * Submissions on one backend are processed in submission order; within
//!   a submission, a disk performs its reads before its writes, and
//!   writes land in the order given. Two different disks are unordered
//!   relative to each other *within* a submission — no layer may assume
//!   cross-disk ordering short of a barrier.
//! * [`IoSubmission::sync_after`] (or [`StorageBackend::sync`]) is the
//!   barrier: when it completes, every write submitted before it is
//!   durable to the backend's medium. `MemBackend` is trivially durable;
//!   `FileBackend` issues `fdatasync` per disk file.
//! * A submission's writes are visible to every later read (on any disk)
//!   once [`StorageBackend::submit`] returns.

use crate::disk::BlockAddr;
use crate::integrity::IoFaultKind;
use crate::Word;

/// One batch of physical I/O handed to a [`StorageBackend`].
///
/// Writes may be partial (`payload.len() <= B`): the tail of the block
/// keeps its previous content. Addresses are validated by the caller
/// ([`crate::DiskArray`]); backends may assume they are in range.
#[derive(Debug, Clone, Copy)]
pub struct IoSubmission<'a> {
    /// Blocks to read, in request order.
    pub reads: &'a [BlockAddr],
    /// Blocks to write with their payloads, in request order.
    pub writes: &'a [(BlockAddr, &'a [Word])],
    /// Issue a durability barrier on every disk touched by `writes`
    /// (plus every disk with earlier unsynced writes) before completing.
    pub sync_after: bool,
}

impl<'a> IoSubmission<'a> {
    /// A read-only submission.
    #[must_use]
    pub fn reads(reads: &'a [BlockAddr]) -> Self {
        IoSubmission {
            reads,
            writes: &[],
            sync_after: false,
        }
    }

    /// A write-only submission.
    #[must_use]
    pub fn writes(writes: &'a [(BlockAddr, &'a [Word])]) -> Self {
        IoSubmission {
            reads: &[],
            writes,
            sync_after: false,
        }
    }

    /// Request a durability barrier after the writes complete.
    #[must_use]
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync_after = sync;
        self
    }
}

/// The result of one [`IoSubmission`]: block images for every requested
/// read, canonicalized to request order (see the module docs for why the
/// physical completion order is never exposed).
#[derive(Debug, Clone, Default)]
pub struct CompletionSet {
    /// One block image per entry of [`IoSubmission::reads`], same order.
    pub reads: Vec<Vec<Word>>,
}

/// Ticket for an in-flight durability barrier started with
/// [`StorageBackend::flush_begin`]. Must be redeemed with
/// [`StorageBackend::flush_join`] before the writes it covers may be
/// acknowledged to anyone.
#[derive(Debug)]
#[must_use = "a flush is not durable until flush_join is called"]
pub struct FlushTicket {
    pub(crate) pending: usize,
}

/// A typed backend configuration / open failure.
///
/// Carried by [`crate::file_backend::FileBackend::open`] and friends
/// instead of a panic, so callers (and the dictionary layer's
/// `DictError::Io`) can react to a missing disk file or a geometry
/// mismatch as data, not as a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Classification of the failure (typically
    /// [`IoFaultKind::Misconfigured`]).
    pub kind: IoFaultKind,
    /// The disk the failure is attributed to (0 for whole-array problems).
    pub disk: usize,
    /// Human-readable detail.
    pub message: String,
}

impl BackendError {
    /// A misconfiguration attributed to `disk`.
    #[must_use]
    pub fn misconfigured(disk: usize, message: impl Into<String>) -> Self {
        BackendError {
            kind: IoFaultKind::Misconfigured,
            disk,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "storage backend error ({}) on disk {}: {}",
            self.kind, self.disk, self.message
        )
    }
}

impl std::error::Error for BackendError {}

/// Physical block storage: `D` disks of `B`-word blocks behind a
/// submission/completion batch interface.
///
/// Implementations are driven exclusively through whole batches — there
/// is no single-block fast path to accidentally serialize on — and must
/// uphold the ordering/durability contract in the [module docs](self).
///
/// [`peek`](StorageBackend::peek) / [`poke`](StorageBackend::poke) are
/// the uncharged test/debug escape hatches [`crate::DiskArray`] has
/// always offered; they bypass cost accounting but **not** storage (a
/// poke on a file backend reaches the file).
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Stable tag naming the backend (`"mem"`, `"file"`); surfaces in
    /// debug output and bench reports.
    fn kind(&self) -> &'static str;

    /// Number of disks, `D`.
    fn disks(&self) -> usize;

    /// Words per block, `B`.
    fn block_words(&self) -> usize;

    /// Number of blocks currently on `disk`.
    fn blocks_on(&self, disk: usize) -> usize;

    /// Grow every disk to at least `blocks_per_disk` blocks, the new
    /// blocks zeroed. Never shrinks.
    fn grow(&mut self, blocks_per_disk: usize);

    /// Execute one submission and return its completions (reads in
    /// request order). The submission is split per disk and issued to
    /// every disk's queue before any completion is joined.
    fn submit(&mut self, batch: IoSubmission<'_>) -> CompletionSet;

    /// Execute a read-only submission through a shared reference, for
    /// concurrent readers. Semantically identical to
    /// [`submit`](StorageBackend::submit) with no writes.
    fn submit_reads(&self, reads: &[BlockAddr]) -> CompletionSet;

    /// Read one block without charging I/O (test/debug hook).
    fn peek(&self, addr: BlockAddr) -> Vec<Word>;

    /// Write up to one block without charging I/O (test/debug hook); a
    /// short payload leaves the block tail untouched.
    fn poke(&mut self, addr: BlockAddr, data: &[Word]);

    /// A full in-memory image of every disk (used to clone an array and
    /// by the differential harness as a byte-identity witness).
    fn snapshot(&self) -> Vec<Vec<Box<[Word]>>>;

    /// Durability barrier: block until every write submitted so far is
    /// durable on every disk.
    fn sync(&mut self) {
        let ticket = self.flush_begin();
        self.flush_join(ticket);
    }

    /// Start an asynchronous durability barrier covering every write
    /// submitted so far, without waiting for it. Work submitted after
    /// this call queues *behind* the barrier on each disk, so the flush
    /// overlaps with the caller's next planning phase — the serving
    /// engine uses this to overlap window `N`'s journal flush with
    /// window `N+1`'s accumulation.
    fn flush_begin(&mut self) -> FlushTicket;

    /// Wait for a barrier started with
    /// [`flush_begin`](StorageBackend::flush_begin) to complete.
    fn flush_join(&mut self, ticket: FlushTicket);
}

/// The original in-memory storage: `D` vectors of boxed blocks.
///
/// Bit-compatible with the pre-seam `DiskArray` internals and still the
/// default backend — simulated-count tests and benches see zero drift.
#[derive(Debug, Clone)]
pub struct MemBackend {
    block_words: usize,
    disks: Vec<Vec<Box<[Word]>>>,
}

impl MemBackend {
    /// Create `disks` disks of `blocks_per_disk` zeroed blocks.
    #[must_use]
    pub fn new(disks: usize, block_words: usize, blocks_per_disk: usize) -> Self {
        MemBackend {
            block_words,
            disks: (0..disks)
                .map(|_| {
                    (0..blocks_per_disk)
                        .map(|_| vec![0 as Word; block_words].into_boxed_slice())
                        .collect()
                })
                .collect(),
        }
    }

    /// Adopt an existing image (used when cloning an array whose backend
    /// cannot itself be cloned — e.g. a file backend snapshot).
    #[must_use]
    pub fn from_image(block_words: usize, image: Vec<Vec<Box<[Word]>>>) -> Self {
        debug_assert!(image
            .iter()
            .all(|d| d.iter().all(|b| b.len() == block_words)));
        MemBackend {
            block_words,
            disks: image,
        }
    }
}

impl StorageBackend for MemBackend {
    fn kind(&self) -> &'static str {
        "mem"
    }

    fn disks(&self) -> usize {
        self.disks.len()
    }

    fn block_words(&self) -> usize {
        self.block_words
    }

    fn blocks_on(&self, disk: usize) -> usize {
        self.disks[disk].len()
    }

    fn grow(&mut self, blocks_per_disk: usize) {
        for disk in &mut self.disks {
            while disk.len() < blocks_per_disk {
                disk.push(vec![0 as Word; self.block_words].into_boxed_slice());
            }
        }
    }

    fn submit(&mut self, batch: IoSubmission<'_>) -> CompletionSet {
        let reads = self.submit_reads(batch.reads);
        for &(a, data) in batch.writes {
            self.disks[a.disk][a.block][..data.len()].copy_from_slice(data);
        }
        // sync_after: memory is trivially durable.
        reads
    }

    fn submit_reads(&self, reads: &[BlockAddr]) -> CompletionSet {
        CompletionSet {
            reads: reads
                .iter()
                .map(|&a| self.disks[a.disk][a.block].to_vec())
                .collect(),
        }
    }

    fn peek(&self, addr: BlockAddr) -> Vec<Word> {
        self.disks[addr.disk][addr.block].to_vec()
    }

    fn poke(&mut self, addr: BlockAddr, data: &[Word]) {
        self.disks[addr.disk][addr.block][..data.len()].copy_from_slice(data);
    }

    fn snapshot(&self) -> Vec<Vec<Box<[Word]>>> {
        self.disks.clone()
    }

    fn flush_begin(&mut self) -> FlushTicket {
        FlushTicket { pending: 0 }
    }

    fn flush_join(&mut self, _ticket: FlushTicket) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_roundtrips_in_request_order() {
        let mut b = MemBackend::new(3, 4, 2);
        let w1 = [7 as Word; 4];
        let w2 = [9 as Word; 4];
        let writes: Vec<(BlockAddr, &[Word])> = vec![
            (BlockAddr::new(2, 1), &w1[..]),
            (BlockAddr::new(0, 0), &w2[..]),
        ];
        b.submit(IoSubmission::writes(&writes));
        let got = b.submit(IoSubmission::reads(&[
            BlockAddr::new(0, 0),
            BlockAddr::new(2, 1),
            BlockAddr::new(1, 0),
        ]));
        assert_eq!(got.reads[0], vec![9; 4]);
        assert_eq!(got.reads[1], vec![7; 4]);
        assert_eq!(got.reads[2], vec![0; 4]);
    }

    #[test]
    fn mem_backend_partial_write_preserves_tail() {
        let mut b = MemBackend::new(1, 4, 1);
        b.poke(BlockAddr::new(0, 0), &[5; 4]);
        let w = [1 as Word, 2];
        let writes: Vec<(BlockAddr, &[Word])> = vec![(BlockAddr::new(0, 0), &w[..])];
        b.submit(IoSubmission::writes(&writes));
        assert_eq!(b.peek(BlockAddr::new(0, 0)), vec![1, 2, 5, 5]);
    }

    #[test]
    fn mem_backend_reads_observe_same_submission_writes_afterward() {
        // Contract: within one submission, reads execute BEFORE writes.
        let mut b = MemBackend::new(1, 2, 1);
        b.poke(BlockAddr::new(0, 0), &[3; 2]);
        let w = [8 as Word; 2];
        let writes: Vec<(BlockAddr, &[Word])> = vec![(BlockAddr::new(0, 0), &w[..])];
        let got = b.submit(IoSubmission {
            reads: &[BlockAddr::new(0, 0)],
            writes: &writes,
            sync_after: false,
        });
        assert_eq!(got.reads[0], vec![3; 2], "reads precede writes");
        assert_eq!(b.peek(BlockAddr::new(0, 0)), vec![8; 2]);
    }

    #[test]
    fn mem_backend_grow_and_snapshot() {
        let mut b = MemBackend::new(2, 2, 1);
        b.poke(BlockAddr::new(1, 0), &[4; 2]);
        b.grow(3);
        assert_eq!(b.blocks_on(0), 3);
        assert_eq!(b.blocks_on(1), 3);
        let snap = b.snapshot();
        assert_eq!(snap[1][0].as_ref(), &[4, 4]);
        assert_eq!(snap[0][2].as_ref(), &[0, 0]);
        let b2 = MemBackend::from_image(2, snap);
        assert_eq!(b2.peek(BlockAddr::new(1, 0)), vec![4; 2]);
    }

    #[test]
    fn mem_backend_sync_is_a_noop_barrier() {
        let mut b = MemBackend::new(1, 2, 1);
        let t = b.flush_begin();
        b.flush_join(t);
        b.sync();
    }

    #[test]
    fn backend_error_displays_typed_detail() {
        let e = BackendError::misconfigured(3, "block size changed");
        assert_eq!(e.kind, IoFaultKind::Misconfigured);
        let msg = e.to_string();
        assert!(msg.contains("disk 3"), "{msg}");
        assert!(msg.contains("block size changed"), "{msg}");
    }
}
