//! The disk array: `D` disks of `B`-word blocks with exact parallel-I/O
//! accounting, on top of a pluggable [`StorageBackend`].
//!
//! The array owns the *model*: cost charging, fault injection, integrity
//! checksums, sanitization, and the journal hook. Physical bytes live in
//! a [`StorageBackend`] — [`MemBackend`] by default (bit-compatible with
//! the original in-memory simulator), or a file-per-disk backend with
//! real overlapped I/O (`pdm::file_backend`).

use crate::backend::{BackendError, FlushTicket, IoSubmission, MemBackend, StorageBackend};
use crate::config::PdmConfig;
use crate::fault::{Fault, FaultPlan, FaultState};
use crate::integrity::{BlockCodec, BlockHealth, MixCodec, ScrubReport};
use crate::metrics::{IoEvent, IoEventSink};
use crate::stats::{IoStats, OpCost, OpScope};
use crate::{Word, WORD_BITS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Address of one block: `(disk, block index within the disk)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// Disk index, `0 ≤ disk < D`.
    pub disk: usize,
    /// Block index within the disk.
    pub block: usize,
}

impl BlockAddr {
    /// Construct an address.
    #[must_use]
    pub fn new(disk: usize, block: usize) -> Self {
        BlockAddr { disk, block }
    }
}

/// Options for [`DiskArray::read`] / [`DiskArray::read_shared`].
///
/// Marked `#[non_exhaustive]`: build with [`ReadOptions::default`] or a
/// named constructor and adjust fields.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadOptions {
    /// Populate [`IoOutcome::healths`] with one [`BlockHealth`] per
    /// requested block. Sanitization (failed blocks read as zeros)
    /// happens regardless; this only controls whether the per-block
    /// classification is reported back.
    pub verify: bool,
}

impl ReadOptions {
    /// Read with per-block health reporting.
    #[must_use]
    pub fn verified() -> Self {
        ReadOptions { verify: true }
    }
}

/// Options for [`DiskArray::write`].
///
/// Marked `#[non_exhaustive]`: build with [`WriteOptions::default`] or a
/// named constructor and adjust fields.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteOptions {
    /// Populate [`IoOutcome::healths`] with one [`BlockHealth`] per
    /// write (`Ok`, dropped on a dead disk, or torn).
    pub verify: bool,
    /// Request a durability barrier after the batch: when the call
    /// returns, the writes are durable on the backend's medium. A no-op
    /// on [`MemBackend`]; `fdatasync` per touched disk on the file
    /// backend.
    pub sync: bool,
}

impl WriteOptions {
    /// Write with per-write health reporting.
    #[must_use]
    pub fn checked() -> Self {
        WriteOptions {
            verify: true,
            sync: false,
        }
    }

    /// Request (or clear) a post-batch durability barrier.
    #[must_use]
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self
    }
}

/// The result of one [`DiskArray::read`] / [`DiskArray::write`] /
/// [`DiskArray::read_shared`] batch.
#[derive(Debug, Clone, Default)]
pub struct IoOutcome {
    /// For reads: one block image per requested address, request order,
    /// failed blocks sanitized to zeros. Empty for writes.
    pub blocks: Vec<Vec<Word>>,
    /// Per-block health, request order. Populated only when the options
    /// asked for verification (`verify: true`); empty means "not
    /// requested", which callers may treat as all-`Ok` only if they
    /// didn't need the distinction in the first place.
    pub healths: Vec<BlockHealth>,
    /// The model cost of this batch. Charged calls ([`DiskArray::read`],
    /// [`DiskArray::write`]) have already added it to the global
    /// [`IoStats`]; [`DiskArray::read_shared`] has not (pass it to
    /// [`DiskArray::charge_cost`] to record it).
    pub cost: OpCost,
}

impl IoOutcome {
    /// Whether every reported health is `Ok` (vacuously true when
    /// verification was not requested).
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.healths.iter().all(|h| h.is_ok())
    }

    /// Consume the outcome, keeping only the block images.
    #[must_use]
    pub fn into_blocks(self) -> Vec<Vec<Word>> {
        self.blocks
    }
}

/// `D` disks, each an array of `B`-word blocks.
///
/// All access goes through the batched [`read`](DiskArray::read) /
/// [`write`](DiskArray::write) calls (or their single-block
/// conveniences), which charge the exact model cost: in the parallel disk
/// model a batch costs the *maximum* number of blocks it touches on any one
/// disk; in the parallel disk head model it costs `ceil(touched / D)`.
///
/// Blocks are zero-initialized. Disks can be grown with
/// [`grow`](DiskArray::grow); growing performs no I/O (it models buying a
/// bigger disk, not moving data).
///
/// ## Faults and integrity
///
/// A [`FaultPlan`] can be installed with
/// [`set_fault_plan`](DiskArray::set_fault_plan) and per-block checksums
/// enabled with [`enable_integrity`](DiskArray::enable_integrity). With
/// either active, reads **sanitize**: a block that is dead, inside a
/// transient-error window, or fails checksum verification is returned as
/// all zeros — which every decoder in this workspace interprets as
/// "unoccupied" — and its [`BlockHealth`] is reported when the options
/// ask for verification. With neither active the fault machinery costs
/// one branch per batch.
///
/// ## Cloning
///
/// `Clone` snapshots the current disk image into a fresh
/// [`MemBackend`]-backed array (whatever backend the original uses), so
/// tests can fork an image at a crash point regardless of where the
/// bytes live.
pub struct DiskArray {
    cfg: PdmConfig,
    backend: Box<dyn StorageBackend>,
    stats: IoStats,
    // Scratch reused by batch cost computation to avoid per-call allocation.
    per_disk_scratch: Vec<usize>,
    // Observability hook; `None` (the default) costs one branch per batch.
    sink: Option<Arc<dyn IoEventSink>>,
    // Active fault plan plus its per-disk access clocks.
    fault: Option<FaultState>,
    // Sidecar checksums, per disk per block; `None` until
    // `enable_integrity` seals the current content.
    checksums: Option<Vec<Vec<Word>>>,
    // Blocks verified against (or sealed into) the sidecar since the last
    // event that could have silently damaged them; reads of a clean block
    // skip recomputing the checksum. Models verify-on-first-read into a
    // trusted cache: the checksum guards the *medium*, and the only paths
    // that can damage the medium behind the array's back — installing a
    // fault plan, `poke`, a torn write — all invalidate here. Sized in
    // lockstep with `checksums`; empty while integrity is off.
    verified_clean: Vec<Vec<bool>>,
    codec: Arc<dyn BlockCodec>,
    // Write-ahead intent journal state; `None` until
    // `enable_journal` / `reopen_journal` (see `crate::journal`).
    pub(crate) journal: Option<crate::journal::JournalState>,
    // Monotone count of blocks a read returned in less-than-healthy
    // state (dead disk, transient window, checksum mismatch — i.e. the
    // block was sanitized). Atomic so `read_shared` can count through a
    // shared reference. A batch across which this counter did not move
    // was answered entirely from clean reads — the batch-level witness
    // behind `pdm-dict`'s `Provenance::Exact` / absence certification.
    degraded_reads: AtomicU64,
}

impl std::fmt::Debug for DiskArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskArray")
            .field("cfg", &self.cfg)
            .field("backend", &self.backend.kind())
            .field("stats", &self.stats)
            .field("blocks_per_disk", &self.backend.blocks_on(0))
            .field("sink", &self.sink.as_ref().map(|_| "Arc<dyn IoEventSink>"))
            .field("fault", &self.fault)
            .field("integrity", &self.checksums.is_some())
            .finish_non_exhaustive()
    }
}

impl Clone for DiskArray {
    fn clone(&self) -> Self {
        DiskArray {
            cfg: self.cfg,
            backend: Box::new(MemBackend::from_image(
                self.cfg.block_words,
                self.backend.snapshot(),
            )),
            stats: self.stats,
            per_disk_scratch: self.per_disk_scratch.clone(),
            sink: self.sink.clone(),
            fault: self.fault.clone(),
            checksums: self.checksums.clone(),
            verified_clean: self.verified_clean.clone(),
            codec: Arc::clone(&self.codec),
            journal: self.journal.clone(),
            degraded_reads: AtomicU64::new(self.degraded_reads.load(Ordering::Relaxed)),
        }
    }
}

impl DiskArray {
    /// Create a disk array with `blocks_per_disk` zeroed blocks on each of
    /// the `cfg.disks` disks, backed by an in-memory [`MemBackend`].
    #[must_use]
    pub fn new(cfg: PdmConfig, blocks_per_disk: usize) -> Self {
        Self::with_backend(
            cfg,
            Box::new(MemBackend::new(cfg.disks, cfg.block_words, blocks_per_disk)),
        )
        .expect("a freshly built MemBackend always matches its config")
    }

    /// Create a disk array over an existing backend.
    ///
    /// # Errors
    /// Returns a typed [`BackendError`] if the backend's geometry does not
    /// match `cfg` (wrong disk count or block size).
    pub fn with_backend(
        cfg: PdmConfig,
        backend: Box<dyn StorageBackend>,
    ) -> Result<Self, BackendError> {
        if backend.disks() != cfg.disks {
            return Err(BackendError::misconfigured(
                0,
                format!(
                    "backend has {} disks but the config needs D = {}",
                    backend.disks(),
                    cfg.disks
                ),
            ));
        }
        if backend.block_words() != cfg.block_words {
            return Err(BackendError::misconfigured(
                0,
                format!(
                    "backend block size is {} words but the config needs B = {}",
                    backend.block_words(),
                    cfg.block_words
                ),
            ));
        }
        Ok(DiskArray {
            cfg,
            backend,
            stats: IoStats::default(),
            per_disk_scratch: vec![0; cfg.disks],
            sink: None,
            fault: None,
            checksums: None,
            verified_clean: Vec::new(),
            codec: Arc::new(MixCodec),
            journal: None,
            degraded_reads: AtomicU64::new(0),
        })
    }

    /// Monotone count of sanitized (unhealthy) blocks returned by reads
    /// since this array was created. A caller that snapshots this before
    /// and after a batch and sees no movement knows every block of the
    /// batch read cleanly — each miss inside it is a *certified* absence
    /// (the one-probe unsuccessful-search guarantee), safe to cache
    /// negatively. Shared reads ([`read_shared`](DiskArray::read_shared))
    /// count too.
    #[must_use]
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads.load(Ordering::Relaxed)
    }

    /// The backend's stable tag (`"mem"`, `"file"`).
    #[must_use]
    pub fn backend_kind(&self) -> &'static str {
        self.backend.kind()
    }

    /// Durability barrier: block until every write issued so far is
    /// durable on every disk of the backend (no-op on [`MemBackend`]).
    pub fn sync(&mut self) {
        self.backend.sync();
    }

    /// Start an asynchronous durability barrier covering every write
    /// issued so far; see [`StorageBackend::flush_begin`]. Work submitted
    /// after this call queues behind the barrier per disk.
    pub fn flush_begin(&mut self) -> FlushTicket {
        self.backend.flush_begin()
    }

    /// Wait for a barrier started with [`flush_begin`](DiskArray::flush_begin).
    pub fn flush_join(&mut self, ticket: FlushTicket) {
        self.backend.flush_join(ticket);
    }

    /// Install (or with `None` remove) an I/O event sink. Every charged
    /// batch, scheduled round, and executor cache event is reported to the
    /// sink; see [`crate::metrics`]. The sink observes this array only —
    /// clones made before or after do not share it.
    pub fn set_io_sink(&mut self, sink: Option<Arc<dyn IoEventSink>>) {
        self.sink = sink;
    }

    /// The currently installed I/O event sink, if any.
    #[must_use]
    pub fn io_sink(&self) -> Option<&Arc<dyn IoEventSink>> {
        self.sink.as_ref()
    }

    /// Fire an event at the installed sink (no-op without one). Used by the
    /// batch engine for cache and round events; harmless for external
    /// callers layering their own instrumentation.
    pub fn emit_io_event(&self, event: IoEvent<'_>) {
        if let Some(sink) = &self.sink {
            sink.on_io(event);
        }
    }

    /// The geometry this array was created with.
    #[must_use]
    pub fn config(&self) -> &PdmConfig {
        &self.cfg
    }

    /// Number of disks, `D`.
    #[must_use]
    pub fn disks(&self) -> usize {
        self.cfg.disks
    }

    /// Words per block, `B`.
    #[must_use]
    pub fn block_words(&self) -> usize {
        self.cfg.block_words
    }

    /// Number of blocks currently on disk `disk`.
    ///
    /// # Panics
    /// Panics if `disk >= D`.
    #[must_use]
    pub fn blocks_on(&self, disk: usize) -> usize {
        assert!(
            disk < self.cfg.disks,
            "disk index {disk} out of range (D = {})",
            self.cfg.disks
        );
        self.backend.blocks_on(disk)
    }

    /// Total space in words across all disks.
    #[must_use]
    pub fn total_words(&self) -> usize {
        (0..self.cfg.disks)
            .map(|d| self.backend.blocks_on(d))
            .sum::<usize>()
            * self.cfg.block_words
    }

    /// Grow every disk to at least `blocks_per_disk` blocks (no I/O charged).
    ///
    /// With integrity enabled the new (zeroed) blocks arrive sealed, like
    /// a freshly formatted extension.
    pub fn grow(&mut self, blocks_per_disk: usize) {
        self.backend.grow(blocks_per_disk);
        if let Some(sums) = &mut self.checksums {
            let zeros = vec![0 as Word; self.cfg.block_words];
            for (d, disk_sums) in sums.iter_mut().enumerate() {
                while disk_sums.len() < self.backend.blocks_on(d) {
                    let b = disk_sums.len();
                    // New blocks are zeroed by the backend contract.
                    disk_sums.push(self.codec.checksum(BlockAddr::new(d, b), &zeros));
                    self.verified_clean[d].push(true);
                }
            }
        }
    }

    /// Current global I/O counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// A full copy of the backend's current disk image (outer index =
    /// disk, inner = block). Uncharged and fault-free — this is the
    /// *physical* medium, for differential tests and offline inspection;
    /// it bypasses checksums, fault plans, and the journal alike.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Vec<Box<[Word]>>> {
        self.backend.snapshot()
    }

    /// Begin a per-operation cost scope.
    #[must_use]
    pub fn begin_op(&self) -> OpScope {
        OpScope::at(self.stats)
    }

    /// End a per-operation cost scope, returning the delta.
    #[must_use]
    pub fn end_op(&self, scope: OpScope) -> OpCost {
        scope.cost(self.stats)
    }

    fn check(&self, addr: BlockAddr) {
        assert!(
            addr.disk < self.cfg.disks,
            "disk index {} out of range (D = {})",
            addr.disk,
            self.cfg.disks
        );
        assert!(
            addr.block < self.backend.blocks_on(addr.disk),
            "block {} out of range on disk {} ({} blocks)",
            addr.block,
            addr.disk,
            self.backend.blocks_on(addr.disk)
        );
    }

    fn charge(&mut self, addrs: impl Iterator<Item = BlockAddr>) -> u64 {
        self.per_disk_scratch.fill(0);
        let mut any = false;
        for a in addrs {
            self.per_disk_scratch[a.disk] += 1;
            any = true;
        }
        if !any {
            return 0;
        }
        let cost = self.cfg.batch_cost(&self.per_disk_scratch);
        self.stats.parallel_ios += cost;
        self.stats.batches += 1;
        cost
    }

    /// Whether any fault or integrity machinery is active (the slow-path
    /// gate: with neither, reads and writes skip all health work).
    fn hazards_active(&self) -> bool {
        self.fault.is_some() || self.checksums.is_some()
    }

    /// Health of `addr` (whose current content is `content`) against the
    /// fault state and checksums. `read_index`, when given, is the
    /// per-disk read-batch index to test transient windows against;
    /// `None` uses the disk's current clock.
    fn health_of(&self, addr: BlockAddr, content: &[Word], read_index: Option<u64>) -> BlockHealth {
        if let Some(fs) = &self.fault {
            if fs.is_dead(addr.disk) {
                return BlockHealth::DiskDead;
            }
            let idx = read_index.unwrap_or_else(|| fs.read_clock(addr.disk));
            if fs.transient_at(addr.disk, idx) {
                return BlockHealth::TransientError;
            }
        }
        if let Some(sums) = &self.checksums {
            if !self.verified_clean[addr.disk][addr.block]
                && self.codec.checksum(addr, content) != sums[addr.disk][addr.block]
            {
                return BlockHealth::ChecksumMismatch;
            }
        }
        BlockHealth::Ok
    }

    /// Reseal the checksum of `addr` over `content` (its current bytes).
    fn reseal_content(&mut self, addr: BlockAddr, content: &[Word]) {
        if self.checksums.is_none() {
            return;
        }
        let sum = self.codec.checksum(addr, content);
        if let Some(sums) = &mut self.checksums {
            sums[addr.disk][addr.block] = sum;
            self.verified_clean[addr.disk][addr.block] = true;
        }
    }

    /// Drop every verified-clean bit: the next read of each block
    /// re-verifies it against the sidecar.
    pub(crate) fn invalidate_verified(&mut self) {
        for disk in &mut self.verified_clean {
            disk.fill(false);
        }
    }

    /// Number of blocks currently marked verified-clean (test hook for
    /// the recovery cache-invalidation contract: after
    /// [`recover`](DiskArray::recover) this must be zero).
    #[must_use]
    pub fn verified_clean_blocks(&self) -> u64 {
        self.verified_clean
            .iter()
            .map(|d| d.iter().filter(|b| **b).count() as u64)
            .sum()
    }

    /// The installed block-checksum codec (also used to checksum journal
    /// intent payloads).
    pub(crate) fn block_codec(&self) -> &Arc<dyn BlockCodec> {
        &self.codec
    }

    /// Whether an installed [`Fault::CrashPoint`] has fired: at least one
    /// physical write has been dropped because the crash budget was
    /// spent. The dying process cannot observe this (writes report `Ok`);
    /// it exists for the test harness playing the role of the outside
    /// world.
    #[must_use]
    pub fn crash_fired(&self) -> bool {
        self.fault.as_ref().is_some_and(FaultState::crash_fired)
    }

    /// Install a fault plan, replacing any active one.
    ///
    /// Install-time effects fire immediately: dead disks lose their data
    /// (zeroed, and — with integrity on — resealed, so that the *fault
    /// state* rather than a stale checksum is what reports the failure,
    /// and clearing the plan models a freshly formatted replacement
    /// disk); bit-rot flips land without resealing, leaving silent
    /// corruption only integrity verification can see. Access clocks
    /// (transient-read windows, torn-write counters) start at zero.
    ///
    /// # Panics
    /// Panics if a fault names a disk or block out of range.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for fault in plan.faults() {
            match *fault {
                Fault::DeadDisk { disk } => {
                    assert!(
                        disk < self.cfg.disks,
                        "dead disk {disk} out of range (D = {})",
                        self.cfg.disks
                    );
                    let zeros = vec![0 as Word; self.cfg.block_words];
                    for b in 0..self.backend.blocks_on(disk) {
                        let addr = BlockAddr::new(disk, b);
                        self.backend.poke(addr, &zeros);
                        self.reseal_content(addr, &zeros);
                    }
                }
                Fault::BitRot { disk, block, bit } => {
                    let addr = BlockAddr::new(disk, block);
                    self.check(addr);
                    let bit = (bit as usize) % (self.cfg.block_words * WORD_BITS);
                    let mut content = self.backend.peek(addr);
                    content[bit / WORD_BITS] ^= 1 << (bit % WORD_BITS);
                    self.backend.poke(addr, &content);
                    // Checksum deliberately left stale: silent corruption.
                }
                _ => {}
            }
        }
        // Any plan may have damaged the medium behind sealed checksums
        // (bit rot): force re-verification of everything.
        self.invalidate_verified();
        self.fault = Some(FaultState::new(plan, self.cfg.disks));
    }

    /// Remove the active fault plan. Dead disks come back as freshly
    /// formatted replacements (their data stays lost until a scrub
    /// rebuilds it); bit-rot damage remains on disk.
    pub fn clear_fault_plan(&mut self) {
        self.fault = None;
    }

    /// The active fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(FaultState::plan)
    }

    /// Seal a checksum over every block's **current** content and verify
    /// on every subsequent read. Call after construction (or any trusted
    /// state); blocks damaged later fail verification and sanitize.
    pub fn enable_integrity(&mut self) {
        let sums: Vec<Vec<Word>> = (0..self.cfg.disks)
            .map(|d| {
                (0..self.backend.blocks_on(d))
                    .map(|b| {
                        let addr = BlockAddr::new(d, b);
                        self.codec.checksum(addr, &self.backend.peek(addr))
                    })
                    .collect()
            })
            .collect();
        self.verified_clean = (0..self.cfg.disks)
            .map(|d| vec![true; self.backend.blocks_on(d)])
            .collect();
        self.checksums = Some(sums);
    }

    /// Whether integrity checksums are active.
    #[must_use]
    pub fn integrity_enabled(&self) -> bool {
        self.checksums.is_some()
    }

    /// Install a checksum codec. If integrity is already enabled the
    /// current content is resealed under the new codec.
    pub fn set_block_codec(&mut self, codec: Arc<dyn BlockCodec>) {
        self.codec = codec;
        if self.integrity_enabled() {
            self.enable_integrity();
        }
    }

    /// Health of one block, **uncharged** (no I/O, no clock movement):
    /// dead-disk and transient state are evaluated against the disk's
    /// current read clock, and the checksum is verified if integrity is
    /// enabled.
    ///
    /// # Panics
    /// Panics on an out-of-range address.
    #[must_use]
    pub fn block_health(&self, addr: BlockAddr) -> BlockHealth {
        self.check(addr);
        if !self.hazards_active() {
            return BlockHealth::Ok;
        }
        if let Some(fs) = &self.fault {
            if fs.is_dead(addr.disk) {
                return BlockHealth::DiskDead;
            }
            if fs.transient_at(addr.disk, fs.read_clock(addr.disk)) {
                return BlockHealth::TransientError;
            }
        }
        if let Some(sums) = &self.checksums {
            if !self.verified_clean[addr.disk][addr.block]
                && self.codec.checksum(addr, &self.backend.peek(addr))
                    != sums[addr.disk][addr.block]
            {
                return BlockHealth::ChecksumMismatch;
            }
        }
        BlockHealth::Ok
    }

    /// Read a batch of blocks, charging the model cost.
    ///
    /// Returns an [`IoOutcome`] with the block images in request order,
    /// **sanitized** under any active fault plan or integrity failure
    /// (failed blocks read as all zeros); with
    /// [`ReadOptions::verified`] the per-block [`BlockHealth`] is
    /// reported too. Advances the per-disk read clocks that
    /// transient-fault windows are measured in — so retrying a transient
    /// failure with a second call can succeed.
    ///
    /// # Panics
    /// Panics on any out-of-range address.
    pub fn read(&mut self, addrs: &[BlockAddr], opts: ReadOptions) -> IoOutcome {
        for &a in addrs {
            self.check(a);
        }
        let before = self.stats;
        let cost = self.charge(addrs.iter().copied());
        self.stats.block_reads += addrs.len() as u64;
        if !addrs.is_empty() {
            self.emit_io_event(IoEvent::BatchRead {
                per_disk: &self.per_disk_scratch,
                blocks: addrs.len() as u64,
                parallel_ios: cost,
            });
        }
        let mut blocks = self.backend.submit(IoSubmission::reads(addrs)).reads;
        if !self.hazards_active() {
            return IoOutcome {
                blocks,
                healths: if opts.verify {
                    vec![BlockHealth::Ok; addrs.len()]
                } else {
                    Vec::new()
                },
                cost: self.stats.since(&before),
            };
        }
        // Every address in the batch shares its disk's current (not yet
        // advanced) read index, then the clocks of all touched disks tick.
        let healths: Vec<BlockHealth> = addrs
            .iter()
            .zip(&blocks)
            .map(|(&a, content)| self.health_of(a, content, None))
            .collect();
        let bad = healths.iter().filter(|h| !h.is_ok()).count() as u64;
        if bad > 0 {
            self.degraded_reads.fetch_add(bad, Ordering::Relaxed);
        }
        if self.checksums.is_some() {
            // A block that read clean stays clean until the medium can be
            // damaged again; skip re-verifying it on later reads.
            for (&a, h) in addrs.iter().zip(&healths) {
                if h.is_ok() {
                    self.verified_clean[a.disk][a.block] = true;
                }
            }
        }
        if !addrs.is_empty() {
            if let Some(fs) = self.fault.as_mut() {
                fs.tick_reads(&self.per_disk_scratch);
            }
        }
        for (block, h) in blocks.iter_mut().zip(&healths) {
            if !h.is_ok() {
                block.clear();
                block.resize(self.cfg.block_words, 0);
            }
        }
        IoOutcome {
            blocks,
            healths: if opts.verify { healths } else { Vec::new() },
            cost: self.stats.since(&before),
        }
    }

    /// Write a batch of blocks, charging the model cost.
    ///
    /// Each payload must be at most `B` words; a shorter payload leaves
    /// the block's tail untouched (the model reads a block before
    /// partially writing it, so partial writes are only issued by callers
    /// that already hold the block — all code in this workspace writes
    /// full blocks).
    ///
    /// Under an active fault plan, writes to dead disks are silently
    /// dropped and torn writes land a prefix; with
    /// [`WriteOptions::checked`] each write's [`BlockHealth`] is reported
    /// (`Ok` when the payload landed fully). With integrity enabled,
    /// landed writes are resealed; a torn write seals the checksum over
    /// the *intended* content, so the damage is caught at next read.
    /// [`WriteOptions::sync`] adds a durability barrier after the batch.
    ///
    /// # Panics
    /// Panics on any out-of-range address or an over-long payload.
    pub fn write(&mut self, writes: &[(BlockAddr, &[Word])], opts: WriteOptions) -> IoOutcome {
        for &(a, data) in writes {
            self.check(a);
            assert!(
                data.len() <= self.cfg.block_words,
                "payload of {} words exceeds block size B = {}",
                data.len(),
                self.cfg.block_words
            );
        }
        let before = self.stats;
        let cost = self.charge(writes.iter().map(|&(a, _)| a));
        self.stats.block_writes += writes.len() as u64;
        if !writes.is_empty() {
            self.emit_io_event(IoEvent::BatchWrite {
                per_disk: &self.per_disk_scratch,
                blocks: writes.len() as u64,
                parallel_ios: cost,
            });
        }
        if !self.hazards_active() {
            self.backend
                .submit(IoSubmission::writes(writes).with_sync(opts.sync));
            return IoOutcome {
                blocks: Vec::new(),
                healths: if opts.verify {
                    vec![BlockHealth::Ok; writes.len()]
                } else {
                    Vec::new()
                },
                cost: self.stats.since(&before),
            };
        }
        // Advance the per-disk write clocks (torn-write faults key on the
        // write-batch index of their disk).
        let write_indexes: Vec<u64> = {
            let scratch = std::mem::take(&mut self.per_disk_scratch);
            let indexes = match self.fault.as_mut() {
                Some(fs) => fs.tick_writes(&scratch),
                None => Vec::new(),
            };
            self.per_disk_scratch = scratch;
            indexes
        };
        // Decide each write's physical fate BEFORE anything reaches the
        // backend: crash points and dead disks drop writes here, so crash
        // semantics are identical on every backend.
        #[derive(Clone, Copy)]
        enum Fate {
            /// Dropped: crash point fired or the disk is dead.
            Skip,
            /// Lands fully; reseal over the payload afterwards.
            Full,
            /// A prefix lands; the sealed checksum covers the *intended*
            /// content (computed before the damage is applied).
            Torn(Option<Word>),
        }
        let mut healths = vec![BlockHealth::Ok; writes.len()];
        let mut first_on_disk = vec![true; self.cfg.disks];
        let mut fates = Vec::with_capacity(writes.len());
        let mut effective: Vec<(BlockAddr, &[Word])> = Vec::with_capacity(writes.len());
        for (i, &(a, data)) in writes.iter().enumerate() {
            if let Some(fs) = self.fault.as_mut() {
                // Crash point: physical writes are counted globally in
                // slice order; once the budget is spent the machine is
                // dead — this write and every later one are lost, and the
                // dying process still observes `Ok` (a real crash never
                // delivers a failure acknowledgement). No reseal either:
                // the old content keeps its old (consistent) checksum.
                if fs.note_physical_write() {
                    fates.push(Fate::Skip);
                    continue;
                }
            }
            let is_first = std::mem::replace(&mut first_on_disk[a.disk], false);
            let mut torn = false;
            if let Some(fs) = self.fault.as_mut() {
                if fs.is_dead(a.disk) {
                    healths[i] = BlockHealth::DiskDead;
                    fates.push(Fate::Skip);
                    continue; // dropped
                }
                torn = is_first && fs.consume_torn(a.disk, write_indexes[a.disk]);
            }
            if torn {
                let intended_sum = self.checksums.as_ref().map(|_| {
                    let mut intended = self.backend.peek(a);
                    intended[..data.len()].copy_from_slice(data);
                    self.codec.checksum(a, &intended)
                });
                effective.push((a, &data[..data.len() / 2]));
                fates.push(Fate::Torn(intended_sum));
                healths[i] = BlockHealth::TornWrite;
            } else {
                effective.push((a, data));
                fates.push(Fate::Full);
            }
        }
        self.backend
            .submit(IoSubmission::writes(&effective).with_sync(opts.sync));
        for (&(a, data), fate) in writes.iter().zip(&fates) {
            match *fate {
                Fate::Skip => {}
                Fate::Full => {
                    if self.checksums.is_some() {
                        if data.len() == self.cfg.block_words {
                            // Full-block write: the payload IS the content.
                            let sum = self.codec.checksum(a, data);
                            self.checksums.as_mut().expect("integrity enabled")[a.disk]
                                [a.block] = sum;
                            self.verified_clean[a.disk][a.block] = true;
                        } else {
                            let content = self.backend.peek(a);
                            self.reseal_content(a, &content);
                        }
                    }
                }
                Fate::Torn(intended_sum) => {
                    if let Some(sum) = intended_sum {
                        self.checksums.as_mut().expect("integrity enabled")[a.disk][a.block] =
                            sum;
                        self.verified_clean[a.disk][a.block] = false;
                    }
                }
            }
        }
        IoOutcome {
            blocks: Vec::new(),
            healths: if opts.verify { healths } else { Vec::new() },
            cost: self.stats.since(&before),
        }
    }

    /// Read a batch through a **shared** reference: the outcome carries
    /// the blocks and the parallel-I/O cost the batch *would* be charged,
    /// without touching the global counters.
    ///
    /// This is what makes the paper's concurrency argument concrete: the
    /// dictionaries never move data once written and probe addresses are
    /// pure functions of the key, so any number of readers can probe the
    /// same array simultaneously — see `pdm-dict`'s
    /// `OneProbeStatic::lookup_shared` and the `concurrent_reads` example.
    /// Callers that want the cost recorded pass [`IoOutcome::cost`] to
    /// [`charge_cost`](DiskArray::charge_cost).
    ///
    /// Shared reads cannot advance the per-disk read clocks (they hold no
    /// exclusive reference), so transient-fault windows are evaluated
    /// against each disk's *current* clock — an approximation that errs
    /// toward reporting the window for as long as charged traffic has not
    /// moved past it.
    ///
    /// # Panics
    /// Panics on any out-of-range address.
    #[must_use]
    pub fn read_shared(&self, addrs: &[BlockAddr], opts: ReadOptions) -> IoOutcome {
        let mut per_disk = vec![0usize; self.cfg.disks];
        for &a in addrs {
            self.check(a);
            per_disk[a.disk] += 1;
        }
        let parallel_ios = self.cfg.batch_cost(&per_disk);
        let cost = OpCost {
            parallel_ios,
            block_reads: addrs.len() as u64,
            block_writes: 0,
            sequential_ios: parallel_ios,
        };
        let mut blocks = self.backend.submit_reads(addrs).reads;
        if !self.hazards_active() {
            return IoOutcome {
                blocks,
                healths: if opts.verify {
                    vec![BlockHealth::Ok; addrs.len()]
                } else {
                    Vec::new()
                },
                cost,
            };
        }
        let healths: Vec<BlockHealth> = addrs
            .iter()
            .zip(&blocks)
            .map(|(&a, content)| self.health_of(a, content, None))
            .collect();
        let bad = healths.iter().filter(|h| !h.is_ok()).count() as u64;
        if bad > 0 {
            self.degraded_reads.fetch_add(bad, Ordering::Relaxed);
        }
        for (block, h) in blocks.iter_mut().zip(&healths) {
            if !h.is_ok() {
                block.clear();
                block.resize(self.cfg.block_words, 0);
            }
        }
        IoOutcome {
            blocks,
            healths: if opts.verify { healths } else { Vec::new() },
            cost,
        }
    }

    /// Walk every block in striped (row-major) order as charged, verified
    /// read batches, counting checksum failures. This is the base-layer
    /// scrub: it detects damage but repairs nothing — front-ends with
    /// redundancy layer repair on top (see `pdm-dict`'s `Dict::scrub`).
    pub fn scrub_verify(&mut self) -> ScrubReport {
        let scope = self.begin_op();
        // A scrub is by definition a full medium walk: bypass (and then
        // repopulate) the verified-clean cache.
        self.invalidate_verified();
        let mut report = ScrubReport::default();
        let rows = (0..self.cfg.disks)
            .map(|d| self.backend.blocks_on(d))
            .max()
            .unwrap_or(0);
        for row in 0..rows {
            let addrs: Vec<BlockAddr> = (0..self.cfg.disks)
                .filter(|&d| row < self.backend.blocks_on(d))
                .map(|d| BlockAddr::new(d, row))
                .collect();
            let out = self.read(&addrs, ReadOptions::verified());
            report.blocks_scanned += addrs.len() as u64;
            report.checksum_failures += out
                .healths
                .iter()
                .filter(|h| **h == BlockHealth::ChecksumMismatch)
                .count() as u64;
        }
        report.cost = self.end_op(scope);
        report
    }

    /// Record a cost computed elsewhere (e.g. by
    /// [`read_shared`](DiskArray::read_shared)) into the global
    /// counters.
    pub fn charge_cost(&mut self, cost: OpCost) {
        self.stats.parallel_ios += cost.parallel_ios;
        self.stats.block_reads += cost.block_reads;
        self.stats.block_writes += cost.block_writes;
        self.stats.batches += 1;
        // Shared-read costs carry no per-disk breakdown; the event reports
        // an empty per-disk slice so totals stay exact while per-disk
        // attribution is limited to directly charged batches.
        if cost.block_reads > 0 {
            self.emit_io_event(IoEvent::BatchRead {
                per_disk: &[],
                blocks: cost.block_reads,
                parallel_ios: cost.parallel_ios,
            });
        }
        if cost.block_writes > 0 {
            self.emit_io_event(IoEvent::BatchWrite {
                per_disk: &[],
                blocks: cost.block_writes,
                parallel_ios: if cost.block_reads > 0 {
                    0 // already attributed to the read event above
                } else {
                    cost.parallel_ios
                },
            });
        }
    }

    /// Record `rounds` scheduled parallel rounds into the global counters.
    ///
    /// Called by the batch engine ([`crate::batch`]) after executing a
    /// plan; plain `read_batch` / `write_batch` traffic does not move the
    /// round counter.
    pub fn record_rounds(&mut self, rounds: u64) {
        self.stats.rounds += rounds;
        if rounds > 0 {
            self.emit_io_event(IoEvent::RoundsScheduled { rounds });
        }
    }

    /// Read one block (one parallel I/O).
    pub fn read_block(&mut self, addr: BlockAddr) -> Vec<Word> {
        self.read(&[addr], ReadOptions::default())
            .blocks
            .pop()
            .expect("one block requested")
    }

    /// Write one block (one parallel I/O).
    pub fn write_block(&mut self, addr: BlockAddr, data: &[Word]) {
        let _ = self.write(&[(addr, data)], WriteOptions::default());
    }

    /// Inspect a block **without** charging I/O. For tests, debugging, and
    /// invariant checks only; production data-structure code must not use
    /// this to answer queries.
    ///
    /// # Panics
    /// Panics on an out-of-range address.
    #[must_use]
    pub fn peek(&self, addr: BlockAddr) -> Vec<Word> {
        self.check(addr);
        self.backend.peek(addr)
    }

    /// Mutate a block **without** charging I/O. Counterpart of
    /// [`peek`](DiskArray::peek) for test setup.
    ///
    /// Deliberately does **not** reseal the block's checksum: a poke
    /// models out-of-band corruption, which integrity verification is
    /// supposed to catch.
    pub fn poke(&mut self, addr: BlockAddr, data: &[Word]) {
        self.check(addr);
        assert!(data.len() <= self.cfg.block_words);
        self.backend.poke(addr, data);
        if !self.verified_clean.is_empty() {
            self.verified_clean[addr.disk][addr.block] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Model;

    fn small() -> DiskArray {
        DiskArray::new(PdmConfig::new(4, 8), 4)
    }

    #[test]
    fn blocks_start_zeroed() {
        let disks = small();
        assert_eq!(disks.peek(BlockAddr::new(3, 3)), &[0; 8]);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut disks = small();
        let data: Vec<Word> = (0..8).collect();
        disks.write_block(BlockAddr::new(1, 2), &data);
        assert_eq!(disks.read_block(BlockAddr::new(1, 2)), data);
    }

    #[test]
    fn one_block_per_disk_is_one_parallel_io() {
        let mut disks = small();
        let addrs: Vec<_> = (0..4).map(|d| BlockAddr::new(d, 0)).collect();
        disks.read(&addrs, ReadOptions::default());
        assert_eq!(disks.stats().parallel_ios, 1);
        assert_eq!(disks.stats().block_reads, 4);
    }

    #[test]
    fn same_disk_blocks_serialize() {
        let mut disks = small();
        let addrs: Vec<_> = (0..3).map(|b| BlockAddr::new(2, b)).collect();
        disks.read(&addrs, ReadOptions::default());
        assert_eq!(disks.stats().parallel_ios, 3);
    }

    #[test]
    fn head_model_packs_same_disk_blocks() {
        let cfg = PdmConfig::new(4, 8).with_model(Model::ParallelDiskHead);
        let mut disks = DiskArray::new(cfg, 4);
        let addrs: Vec<_> = (0..3).map(|b| BlockAddr::new(2, b)).collect();
        disks.read(&addrs, ReadOptions::default());
        assert_eq!(disks.stats().parallel_ios, 1);
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let mut disks = small();
        disks.read(&[], ReadOptions::default());
        disks.write(&[], WriteOptions::default());
        assert_eq!(disks.stats().parallel_ios, 0);
        assert_eq!(disks.stats().batches, 0);
    }

    #[test]
    fn partial_write_preserves_tail() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(0, 0), &[9; 8]);
        disks.write_block(BlockAddr::new(0, 0), &[1, 2]);
        assert_eq!(disks.peek(BlockAddr::new(0, 0)), &[1, 2, 9, 9, 9, 9, 9, 9]);
    }

    #[test]
    fn grow_adds_zeroed_blocks_without_io() {
        let mut disks = small();
        let before = disks.stats();
        disks.grow(10);
        assert_eq!(disks.stats(), before);
        assert_eq!(disks.blocks_on(0), 10);
        assert_eq!(disks.peek(BlockAddr::new(0, 9)), &[0; 8]);
    }

    #[test]
    fn grow_never_shrinks() {
        let mut disks = small();
        disks.grow(2);
        assert_eq!(disks.blocks_on(0), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_disk_panics() {
        let mut disks = small();
        let _ = disks.read_block(BlockAddr::new(7, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_block_panics() {
        let mut disks = small();
        let _ = disks.read_block(BlockAddr::new(0, 99));
    }

    #[test]
    #[should_panic(expected = "exceeds block size")]
    fn overlong_payload_panics() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(0, 0), &[0; 9]);
    }

    #[test]
    fn shared_reads_cost_but_do_not_charge() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(1, 2), &[5; 8]);
        let before = disks.stats();
        let out = disks.read_shared(
            &[
                BlockAddr::new(1, 2),
                BlockAddr::new(1, 3),
                BlockAddr::new(2, 0),
            ],
            ReadOptions::default(),
        );
        assert_eq!(out.blocks[0], vec![5; 8]);
        let cost = out.cost;
        assert_eq!(cost.parallel_ios, 2); // two blocks on disk 1
        assert_eq!(cost.block_reads, 3);
        assert_eq!(disks.stats(), before, "shared reads must not charge");
        disks.charge_cost(cost);
        assert_eq!(disks.stats().parallel_ios, before.parallel_ios + 2);
        assert_eq!(disks.stats().block_reads, before.block_reads + 3);
    }

    #[test]
    fn shared_reads_agree_with_mutable_reads() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(0, 1), &[7; 8]);
        let addrs = [BlockAddr::new(0, 1), BlockAddr::new(3, 0)];
        let shared = disks.read_shared(&addrs, ReadOptions::default());
        let scope = disks.begin_op();
        let counted = disks.read(&addrs, ReadOptions::default());
        assert_eq!(shared.blocks, counted.blocks);
        assert_eq!(shared.cost, disks.end_op(scope));
        assert_eq!(shared.cost, counted.cost);
    }

    #[test]
    fn op_scope_measures_delta() {
        let mut disks = small();
        disks.read_block(BlockAddr::new(0, 0));
        let scope = disks.begin_op();
        disks.read(&[BlockAddr::new(0, 1), BlockAddr::new(1, 1)], ReadOptions::default());
        disks.write_block(BlockAddr::new(2, 0), &[1]);
        let cost = disks.end_op(scope);
        assert_eq!(cost.parallel_ios, 2);
        assert_eq!(cost.block_reads, 2);
        assert_eq!(cost.block_writes, 1);
    }

    #[test]
    fn total_words_reflects_geometry() {
        let disks = small();
        assert_eq!(disks.total_words(), 4 * 4 * 8);
    }

    #[test]
    fn dead_disk_sanitizes_reads_and_drops_writes() {
        let mut disks = small();
        let dead = BlockAddr::new(2, 1);
        let live = BlockAddr::new(1, 1);
        disks.write_block(dead, &[7; 8]);
        disks.write_block(live, &[9; 8]);
        disks.set_fault_plan(FaultPlan::new().dead_disk(2));
        let out = disks.read(&[dead, live], ReadOptions::verified());
        assert_eq!(out.blocks[0], vec![0; 8], "dead-disk read sanitizes to zeros");
        assert_eq!(out.blocks[1], vec![9; 8]);
        assert_eq!(out.healths, vec![BlockHealth::DiskDead, BlockHealth::Ok]);
        let wh = disks
            .write(&[(dead, &[3; 8][..]), (live, &[4; 8][..])], WriteOptions::checked())
            .healths;
        assert_eq!(wh, vec![BlockHealth::DiskDead, BlockHealth::Ok]);
        // Replacement disk: accesses recover, data stays lost.
        disks.clear_fault_plan();
        assert_eq!(disks.read_block(dead), vec![0; 8]);
        assert_eq!(disks.block_health(dead), BlockHealth::Ok);
        assert_eq!(disks.read_block(live), vec![4; 8]);
    }

    #[test]
    fn transient_read_window_clears_on_retry() {
        let mut disks = small();
        let a = BlockAddr::new(1, 0);
        disks.write_block(a, &[5; 8]);
        // First read batch touching disk 1 fails; the next succeeds.
        disks.set_fault_plan(FaultPlan::new().transient_read(1, 0, 1));
        let out = disks.read(&[a], ReadOptions::verified());
        assert_eq!(out.healths[0], BlockHealth::TransientError);
        assert_eq!(out.blocks[0], vec![0; 8]);
        let out = disks.read(&[a], ReadOptions::verified());
        assert_eq!(out.healths[0], BlockHealth::Ok, "data was intact underneath");
        assert_eq!(out.blocks[0], vec![5; 8]);
    }

    #[test]
    fn bit_rot_is_silent_without_integrity_and_caught_with_it() {
        let run = |integrity: bool| {
            let mut disks = small();
            let a = BlockAddr::new(0, 2);
            disks.write_block(a, &[1; 8]);
            if integrity {
                disks.enable_integrity();
            }
            disks.set_fault_plan(FaultPlan::new().bit_rot(0, 2, 3));
            let out = disks.read(&[a], ReadOptions::verified());
            (out.blocks, out.healths)
        };
        let (blocks, healths) = run(false);
        assert_eq!(healths[0], BlockHealth::Ok, "no integrity: rot is silent");
        assert_eq!(blocks[0][0], 1 ^ (1 << 3), "garbage decodes as-is");
        let (blocks, healths) = run(true);
        assert_eq!(healths[0], BlockHealth::ChecksumMismatch);
        assert_eq!(blocks[0], vec![0; 8], "integrity sanitizes the rot");
    }

    #[test]
    fn torn_write_lands_a_prefix_and_is_caught_by_integrity() {
        let mut disks = small();
        let a = BlockAddr::new(3, 0);
        disks.write_block(a, &[9; 8]);
        disks.enable_integrity();
        disks.set_fault_plan(FaultPlan::new().torn_write(3, 0));
        let wh = disks.write(&[(a, &[2; 8][..])], WriteOptions::checked()).healths;
        assert_eq!(wh, vec![BlockHealth::TornWrite]);
        assert_eq!(
            disks.peek(a),
            &[2, 2, 2, 2, 9, 9, 9, 9],
            "only the prefix landed"
        );
        let out = disks.read(&[a], ReadOptions::verified());
        assert_eq!(out.healths[0], BlockHealth::ChecksumMismatch);
        assert_eq!(out.blocks[0], vec![0; 8]);
        // Torn writes are one-shot: the retry lands fully and reseals.
        let wh = disks.write(&[(a, &[2; 8][..])], WriteOptions::checked()).healths;
        assert_eq!(wh, vec![BlockHealth::Ok]);
        let out = disks.read(&[a], ReadOptions::verified());
        assert_eq!(out.healths[0], BlockHealth::Ok);
        assert_eq!(out.blocks[0], vec![2; 8]);
    }

    #[test]
    fn poke_leaves_checksums_stale() {
        let mut disks = small();
        let a = BlockAddr::new(0, 0);
        disks.write_block(a, &[4; 8]);
        disks.enable_integrity();
        disks.poke(a, &[5; 8]);
        assert_eq!(disks.block_health(a), BlockHealth::ChecksumMismatch);
        assert_eq!(disks.read_block(a), vec![0; 8], "sanitized");
        // A charged write reseals.
        disks.write_block(a, &[6; 8]);
        assert_eq!(disks.block_health(a), BlockHealth::Ok);
        assert_eq!(disks.read_block(a), vec![6; 8]);
    }

    #[test]
    fn shared_verified_reads_match_exclusive_reads() {
        let mut disks = small();
        let good = BlockAddr::new(0, 0);
        let bad = BlockAddr::new(1, 0);
        disks.write_block(good, &[3; 8]);
        disks.write_block(bad, &[8; 8]);
        disks.enable_integrity();
        disks.poke(bad, &[1; 8]);
        let shared = disks.read_shared(&[good, bad], ReadOptions::verified());
        let excl = disks.read(&[good, bad], ReadOptions::verified());
        assert_eq!(shared.blocks, excl.blocks);
        assert_eq!(shared.healths, excl.healths);
        assert_eq!(shared.cost.parallel_ios, 1);
    }

    #[test]
    fn scrub_verify_counts_checksum_failures() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(0, 0), &[1; 8]);
        disks.write_block(BlockAddr::new(2, 3), &[2; 8]);
        disks.enable_integrity();
        disks.poke(BlockAddr::new(2, 3), &[9; 8]);
        disks.poke(BlockAddr::new(1, 1), &[9; 8]);
        let report = disks.scrub_verify();
        assert_eq!(report.blocks_scanned, 16);
        assert_eq!(report.checksum_failures, 2);
        assert_eq!(report.cost.block_reads, 16);
        assert_eq!(report.cost.parallel_ios, 4, "one round per row");
    }

    #[test]
    fn grow_seals_new_blocks() {
        let mut disks = small();
        disks.enable_integrity();
        disks.grow(6);
        assert_eq!(disks.block_health(BlockAddr::new(0, 5)), BlockHealth::Ok);
        assert_eq!(disks.scrub_verify().checksum_failures, 0);
    }

    #[test]
    fn clean_array_has_zero_overhead_branches_only() {
        // No plan, no integrity: verified reads report all-Ok without
        // touching any fault machinery.
        let mut disks = small();
        disks.write_block(BlockAddr::new(0, 0), &[1; 8]);
        let out = disks.read(&[BlockAddr::new(0, 0)], ReadOptions::verified());
        assert_eq!(out.blocks[0], vec![1; 8]);
        assert_eq!(out.healths, vec![BlockHealth::Ok]);
        assert_eq!(disks.fault_plan(), None);
        assert!(!disks.integrity_enabled());
    }

    #[test]
    fn outcome_carries_cost_and_skips_healths_unless_asked() {
        let mut disks = small();
        let out = disks.read(
            &[BlockAddr::new(0, 0), BlockAddr::new(1, 0)],
            ReadOptions::default(),
        );
        assert!(out.healths.is_empty(), "healths only on request");
        assert_eq!(out.cost.parallel_ios, 1);
        assert_eq!(out.cost.block_reads, 2);
        let out = disks.write(&[(BlockAddr::new(0, 0), &[1; 8][..])], WriteOptions::default());
        assert!(out.blocks.is_empty());
        assert!(out.healths.is_empty());
        assert_eq!(out.cost.parallel_ios, 1);
        assert_eq!(out.cost.block_writes, 1);
        assert!(out.all_ok());
    }

    #[test]
    fn clone_snapshots_into_a_mem_backend() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(2, 1), &[6; 8]);
        let snap = disks.clone();
        assert_eq!(snap.backend_kind(), "mem");
        assert_eq!(snap.peek(BlockAddr::new(2, 1)), vec![6; 8]);
        assert_eq!(snap.stats(), disks.stats());
        // The snapshot is independent storage.
        disks.write_block(BlockAddr::new(2, 1), &[7; 8]);
        assert_eq!(snap.peek(BlockAddr::new(2, 1)), vec![6; 8]);
    }

    #[test]
    fn with_backend_rejects_mismatched_geometry() {
        use crate::backend::MemBackend;
        let cfg = PdmConfig::new(4, 8);
        let wrong_d = MemBackend::new(3, 8, 4);
        let err = DiskArray::with_backend(cfg, Box::new(wrong_d)).unwrap_err();
        assert_eq!(err.kind, crate::IoFaultKind::Misconfigured);
        assert!(err.message.contains("disks"), "{}", err.message);
        let wrong_b = MemBackend::new(4, 16, 4);
        let err = DiskArray::with_backend(cfg, Box::new(wrong_b)).unwrap_err();
        assert_eq!(err.kind, crate::IoFaultKind::Misconfigured);
        assert!(err.message.contains("block size"), "{}", err.message);
    }

    #[test]
    fn sync_and_flush_are_noops_on_mem() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(0, 0), &[2; 8]);
        disks.sync();
        let t = disks.flush_begin();
        disks.write_block(BlockAddr::new(0, 1), &[3; 8]);
        disks.flush_join(t);
        assert_eq!(disks.backend_kind(), "mem");
    }

    #[test]
    fn synced_write_options_round_trip() {
        let mut disks = small();
        let out = disks.write(
            &[(BlockAddr::new(1, 1), &[8; 8][..])],
            WriteOptions::checked().with_sync(true),
        );
        assert_eq!(out.healths, vec![BlockHealth::Ok]);
        assert_eq!(disks.read_block(BlockAddr::new(1, 1)), vec![8; 8]);
    }
}
