//! The simulated disk array: `D` disks of `B`-word blocks with exact
//! parallel-I/O accounting.

use crate::config::PdmConfig;
use crate::metrics::{IoEvent, IoEventSink};
use crate::stats::{IoStats, OpCost, OpScope};
use crate::Word;
use std::sync::Arc;

/// Address of one block: `(disk, block index within the disk)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// Disk index, `0 ≤ disk < D`.
    pub disk: usize,
    /// Block index within the disk.
    pub block: usize,
}

impl BlockAddr {
    /// Construct an address.
    #[must_use]
    pub fn new(disk: usize, block: usize) -> Self {
        BlockAddr { disk, block }
    }
}

/// `D` simulated disks, each an array of `B`-word blocks.
///
/// All access goes through the batched [`read_batch`](DiskArray::read_batch)
/// / [`write_batch`](DiskArray::write_batch) calls (or their single-block
/// conveniences), which charge the exact model cost: in the parallel disk
/// model a batch costs the *maximum* number of blocks it touches on any one
/// disk; in the parallel disk head model it costs `ceil(touched / D)`.
///
/// Blocks are zero-initialized. Disks can be grown with
/// [`grow`](DiskArray::grow); growing performs no I/O (it models buying a
/// bigger disk, not moving data).
#[derive(Clone)]
pub struct DiskArray {
    cfg: PdmConfig,
    disks: Vec<Vec<Box<[Word]>>>,
    stats: IoStats,
    // Scratch reused by batch cost computation to avoid per-call allocation.
    per_disk_scratch: Vec<usize>,
    // Observability hook; `None` (the default) costs one branch per batch.
    sink: Option<Arc<dyn IoEventSink>>,
}

impl std::fmt::Debug for DiskArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskArray")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .field("blocks_per_disk", &self.disks.first().map_or(0, Vec::len))
            .field("sink", &self.sink.as_ref().map(|_| "Arc<dyn IoEventSink>"))
            .finish_non_exhaustive()
    }
}

impl DiskArray {
    /// Create a disk array with `blocks_per_disk` zeroed blocks on each of
    /// the `cfg.disks` disks.
    #[must_use]
    pub fn new(cfg: PdmConfig, blocks_per_disk: usize) -> Self {
        let disks = (0..cfg.disks)
            .map(|_| {
                (0..blocks_per_disk)
                    .map(|_| vec![0 as Word; cfg.block_words].into_boxed_slice())
                    .collect()
            })
            .collect();
        DiskArray {
            cfg,
            disks,
            stats: IoStats::default(),
            per_disk_scratch: vec![0; cfg.disks],
            sink: None,
        }
    }

    /// Install (or with `None` remove) an I/O event sink. Every charged
    /// batch, scheduled round, and executor cache event is reported to the
    /// sink; see [`crate::metrics`]. The sink observes this array only —
    /// clones made before or after do not share it.
    pub fn set_io_sink(&mut self, sink: Option<Arc<dyn IoEventSink>>) {
        self.sink = sink;
    }

    /// The currently installed I/O event sink, if any.
    #[must_use]
    pub fn io_sink(&self) -> Option<&Arc<dyn IoEventSink>> {
        self.sink.as_ref()
    }

    /// Fire an event at the installed sink (no-op without one). Used by the
    /// batch engine for cache and round events; harmless for external
    /// callers layering their own instrumentation.
    pub fn emit_io_event(&self, event: IoEvent<'_>) {
        if let Some(sink) = &self.sink {
            sink.on_io(event);
        }
    }

    /// The geometry this array was created with.
    #[must_use]
    pub fn config(&self) -> &PdmConfig {
        &self.cfg
    }

    /// Number of disks, `D`.
    #[must_use]
    pub fn disks(&self) -> usize {
        self.cfg.disks
    }

    /// Words per block, `B`.
    #[must_use]
    pub fn block_words(&self) -> usize {
        self.cfg.block_words
    }

    /// Number of blocks currently on disk `disk`.
    ///
    /// # Panics
    /// Panics if `disk >= D`.
    #[must_use]
    pub fn blocks_on(&self, disk: usize) -> usize {
        self.disks[disk].len()
    }

    /// Total space in words across all disks.
    #[must_use]
    pub fn total_words(&self) -> usize {
        self.disks.iter().map(Vec::len).sum::<usize>() * self.cfg.block_words
    }

    /// Grow every disk to at least `blocks_per_disk` blocks (no I/O charged).
    pub fn grow(&mut self, blocks_per_disk: usize) {
        for disk in &mut self.disks {
            while disk.len() < blocks_per_disk {
                disk.push(vec![0 as Word; self.cfg.block_words].into_boxed_slice());
            }
        }
    }

    /// Current global I/O counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Begin a per-operation cost scope.
    #[must_use]
    pub fn begin_op(&self) -> OpScope {
        OpScope::at(self.stats)
    }

    /// End a per-operation cost scope, returning the delta.
    #[must_use]
    pub fn end_op(&self, scope: OpScope) -> OpCost {
        scope.cost(self.stats)
    }

    fn check(&self, addr: BlockAddr) {
        assert!(
            addr.disk < self.cfg.disks,
            "disk index {} out of range (D = {})",
            addr.disk,
            self.cfg.disks
        );
        assert!(
            addr.block < self.disks[addr.disk].len(),
            "block {} out of range on disk {} ({} blocks)",
            addr.block,
            addr.disk,
            self.disks[addr.disk].len()
        );
    }

    fn charge(&mut self, addrs: impl Iterator<Item = BlockAddr>) -> u64 {
        self.per_disk_scratch.fill(0);
        let mut any = false;
        for a in addrs {
            self.per_disk_scratch[a.disk] += 1;
            any = true;
        }
        if !any {
            return 0;
        }
        let cost = self.cfg.batch_cost(&self.per_disk_scratch);
        self.stats.parallel_ios += cost;
        self.stats.batches += 1;
        cost
    }

    /// Read a batch of blocks. Returns copies of the blocks' contents in the
    /// order of `addrs`. Charges the model cost of the batch.
    ///
    /// # Panics
    /// Panics on any out-of-range address.
    pub fn read_batch(&mut self, addrs: &[BlockAddr]) -> Vec<Vec<Word>> {
        for &a in addrs {
            self.check(a);
        }
        let cost = self.charge(addrs.iter().copied());
        self.stats.block_reads += addrs.len() as u64;
        if !addrs.is_empty() {
            self.emit_io_event(IoEvent::BatchRead {
                per_disk: &self.per_disk_scratch,
                blocks: addrs.len() as u64,
                parallel_ios: cost,
            });
        }
        addrs
            .iter()
            .map(|&a| self.disks[a.disk][a.block].to_vec())
            .collect()
    }

    /// Write a batch of blocks. Each payload must be at most `B` words; a
    /// shorter payload leaves the block's tail untouched (the model reads a
    /// block before partially writing it, so partial writes are only issued
    /// by callers that already hold the block — all code in this workspace
    /// writes full blocks). Charges the model cost of the batch.
    ///
    /// # Panics
    /// Panics on any out-of-range address or an over-long payload.
    pub fn write_batch(&mut self, writes: &[(BlockAddr, &[Word])]) {
        for &(a, data) in writes {
            self.check(a);
            assert!(
                data.len() <= self.cfg.block_words,
                "payload of {} words exceeds block size B = {}",
                data.len(),
                self.cfg.block_words
            );
        }
        let cost = self.charge(writes.iter().map(|&(a, _)| a));
        self.stats.block_writes += writes.len() as u64;
        if !writes.is_empty() {
            self.emit_io_event(IoEvent::BatchWrite {
                per_disk: &self.per_disk_scratch,
                blocks: writes.len() as u64,
                parallel_ios: cost,
            });
        }
        for &(a, data) in writes {
            self.disks[a.disk][a.block][..data.len()].copy_from_slice(data);
        }
    }

    /// Read a batch through a **shared** reference: returns the blocks and
    /// the parallel-I/O cost the batch *would* be charged, without touching
    /// the global counters.
    ///
    /// This is what makes the paper's concurrency argument concrete: the
    /// dictionaries never move data once written and probe addresses are
    /// pure functions of the key, so any number of readers can probe the
    /// same array simultaneously — see `pdm-dict`'s
    /// `OneProbeStatic::lookup_shared` and the `concurrent_reads` example.
    /// Callers that want the cost recorded can add the returned [`OpCost`]
    /// to their own accounting.
    ///
    /// # Panics
    /// Panics on any out-of-range address.
    #[must_use]
    pub fn read_batch_shared(&self, addrs: &[BlockAddr]) -> (Vec<Vec<Word>>, OpCost) {
        let mut per_disk = vec![0usize; self.cfg.disks];
        for &a in addrs {
            self.check(a);
            per_disk[a.disk] += 1;
        }
        let cost = OpCost {
            parallel_ios: self.cfg.batch_cost(&per_disk),
            block_reads: addrs.len() as u64,
            block_writes: 0,
        };
        let blocks = addrs
            .iter()
            .map(|&a| self.disks[a.disk][a.block].to_vec())
            .collect();
        (blocks, cost)
    }

    /// Record a cost computed elsewhere (e.g. by
    /// [`read_batch_shared`](DiskArray::read_batch_shared)) into the
    /// global counters.
    pub fn charge_cost(&mut self, cost: OpCost) {
        self.stats.parallel_ios += cost.parallel_ios;
        self.stats.block_reads += cost.block_reads;
        self.stats.block_writes += cost.block_writes;
        self.stats.batches += 1;
        // Shared-read costs carry no per-disk breakdown; the event reports
        // an empty per-disk slice so totals stay exact while per-disk
        // attribution is limited to directly charged batches.
        if cost.block_reads > 0 {
            self.emit_io_event(IoEvent::BatchRead {
                per_disk: &[],
                blocks: cost.block_reads,
                parallel_ios: cost.parallel_ios,
            });
        }
        if cost.block_writes > 0 {
            self.emit_io_event(IoEvent::BatchWrite {
                per_disk: &[],
                blocks: cost.block_writes,
                parallel_ios: if cost.block_reads > 0 {
                    0 // already attributed to the read event above
                } else {
                    cost.parallel_ios
                },
            });
        }
    }

    /// Record `rounds` scheduled parallel rounds into the global counters.
    ///
    /// Called by the batch engine ([`crate::batch`]) after executing a
    /// plan; plain `read_batch` / `write_batch` traffic does not move the
    /// round counter.
    pub fn record_rounds(&mut self, rounds: u64) {
        self.stats.rounds += rounds;
        if rounds > 0 {
            self.emit_io_event(IoEvent::RoundsScheduled { rounds });
        }
    }

    /// Read one block (one parallel I/O).
    pub fn read_block(&mut self, addr: BlockAddr) -> Vec<Word> {
        self.read_batch(&[addr]).pop().expect("one block requested")
    }

    /// Write one block (one parallel I/O).
    pub fn write_block(&mut self, addr: BlockAddr, data: &[Word]) {
        self.write_batch(&[(addr, data)]);
    }

    /// Inspect a block **without** charging I/O. For tests, debugging, and
    /// invariant checks only; production data-structure code must not use
    /// this to answer queries.
    ///
    /// # Panics
    /// Panics on an out-of-range address.
    #[must_use]
    pub fn peek(&self, addr: BlockAddr) -> &[Word] {
        self.check(addr);
        &self.disks[addr.disk][addr.block]
    }

    /// Mutate a block **without** charging I/O. Counterpart of
    /// [`peek`](DiskArray::peek) for test setup.
    pub fn poke(&mut self, addr: BlockAddr, data: &[Word]) {
        self.check(addr);
        assert!(data.len() <= self.cfg.block_words);
        self.disks[addr.disk][addr.block][..data.len()].copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Model;

    fn small() -> DiskArray {
        DiskArray::new(PdmConfig::new(4, 8), 4)
    }

    #[test]
    fn blocks_start_zeroed() {
        let disks = small();
        assert_eq!(disks.peek(BlockAddr::new(3, 3)), &[0; 8]);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut disks = small();
        let data: Vec<Word> = (0..8).collect();
        disks.write_block(BlockAddr::new(1, 2), &data);
        assert_eq!(disks.read_block(BlockAddr::new(1, 2)), data);
    }

    #[test]
    fn one_block_per_disk_is_one_parallel_io() {
        let mut disks = small();
        let addrs: Vec<_> = (0..4).map(|d| BlockAddr::new(d, 0)).collect();
        disks.read_batch(&addrs);
        assert_eq!(disks.stats().parallel_ios, 1);
        assert_eq!(disks.stats().block_reads, 4);
    }

    #[test]
    fn same_disk_blocks_serialize() {
        let mut disks = small();
        let addrs: Vec<_> = (0..3).map(|b| BlockAddr::new(2, b)).collect();
        disks.read_batch(&addrs);
        assert_eq!(disks.stats().parallel_ios, 3);
    }

    #[test]
    fn head_model_packs_same_disk_blocks() {
        let cfg = PdmConfig::new(4, 8).with_model(Model::ParallelDiskHead);
        let mut disks = DiskArray::new(cfg, 4);
        let addrs: Vec<_> = (0..3).map(|b| BlockAddr::new(2, b)).collect();
        disks.read_batch(&addrs);
        assert_eq!(disks.stats().parallel_ios, 1);
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let mut disks = small();
        disks.read_batch(&[]);
        disks.write_batch(&[]);
        assert_eq!(disks.stats().parallel_ios, 0);
        assert_eq!(disks.stats().batches, 0);
    }

    #[test]
    fn partial_write_preserves_tail() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(0, 0), &[9; 8]);
        disks.write_block(BlockAddr::new(0, 0), &[1, 2]);
        assert_eq!(disks.peek(BlockAddr::new(0, 0)), &[1, 2, 9, 9, 9, 9, 9, 9]);
    }

    #[test]
    fn grow_adds_zeroed_blocks_without_io() {
        let mut disks = small();
        let before = disks.stats();
        disks.grow(10);
        assert_eq!(disks.stats(), before);
        assert_eq!(disks.blocks_on(0), 10);
        assert_eq!(disks.peek(BlockAddr::new(0, 9)), &[0; 8]);
    }

    #[test]
    fn grow_never_shrinks() {
        let mut disks = small();
        disks.grow(2);
        assert_eq!(disks.blocks_on(0), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_disk_panics() {
        let mut disks = small();
        let _ = disks.read_block(BlockAddr::new(7, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_block_panics() {
        let mut disks = small();
        let _ = disks.read_block(BlockAddr::new(0, 99));
    }

    #[test]
    #[should_panic(expected = "exceeds block size")]
    fn overlong_payload_panics() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(0, 0), &[0; 9]);
    }

    #[test]
    fn shared_reads_cost_but_do_not_charge() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(1, 2), &[5; 8]);
        let before = disks.stats();
        let (blocks, cost) = disks.read_batch_shared(&[
            BlockAddr::new(1, 2),
            BlockAddr::new(1, 3),
            BlockAddr::new(2, 0),
        ]);
        assert_eq!(blocks[0], vec![5; 8]);
        assert_eq!(cost.parallel_ios, 2); // two blocks on disk 1
        assert_eq!(cost.block_reads, 3);
        assert_eq!(disks.stats(), before, "shared reads must not charge");
        disks.charge_cost(cost);
        assert_eq!(disks.stats().parallel_ios, before.parallel_ios + 2);
        assert_eq!(disks.stats().block_reads, before.block_reads + 3);
    }

    #[test]
    fn shared_reads_agree_with_mutable_reads() {
        let mut disks = small();
        disks.write_block(BlockAddr::new(0, 1), &[7; 8]);
        let addrs = [BlockAddr::new(0, 1), BlockAddr::new(3, 0)];
        let (shared, cost) = disks.read_batch_shared(&addrs);
        let scope = disks.begin_op();
        let counted = disks.read_batch(&addrs);
        assert_eq!(shared, counted);
        assert_eq!(cost, disks.end_op(scope));
    }

    #[test]
    fn op_scope_measures_delta() {
        let mut disks = small();
        disks.read_block(BlockAddr::new(0, 0));
        let scope = disks.begin_op();
        disks.read_batch(&[BlockAddr::new(0, 1), BlockAddr::new(1, 1)]);
        disks.write_block(BlockAddr::new(2, 0), &[1]);
        let cost = disks.end_op(scope);
        assert_eq!(cost.parallel_ios, 2);
        assert_eq!(cost.block_reads, 2);
        assert_eq!(cost.block_writes, 1);
    }

    #[test]
    fn total_words_reflects_geometry() {
        let disks = small();
        assert_eq!(disks.total_words(), 4 * 4 * 8);
    }
}
