//! External multiway mergesort with exact parallel-I/O accounting.
//!
//! Theorem 6 of the paper states that the one-probe static dictionary "can
//! be constructed deterministically in time proportional to the time it
//! takes to sort nd records". This module supplies both the *measured* cost
//! (run an actual striped multiway mergesort on the simulator) and the
//! *textbook bound* `sort(x) = Θ((x/(B·D)) · log_{M/(B·D)}(x/(B·D)))`
//! parallel I/Os, so experiment THM6 can report the measured ratio.
//!
//! The sort is the classic external scheme: run formation fills internal
//! memory (`M` words), sorts in RAM, and spills runs; merge passes combine
//! up to `M/(B·D) - 1` runs at a time, buffering one stripe per input run
//! and one for output.

use crate::config::PdmConfig;
use crate::disk::DiskArray;
use crate::file::RecordFile;
use crate::record::KeyedRecord;
use crate::stats::OpCost;

/// Result of an external sort: the sorted output file plus the I/O cost.
#[derive(Debug)]
pub struct SortOutcome {
    /// Sorted file (freshly allocated at the end of the disk array).
    pub output: RecordFile,
    /// Total parallel I/O cost of the sort.
    pub cost: OpCost,
    /// Number of merge passes performed (0 when one run sufficed).
    pub merge_passes: usize,
}

/// Sort `input` by `(key, satellite)` ascending into a new file.
///
/// Uses at most `disks.config().mem_words` words of internal memory for run
/// formation and merge buffers.
///
/// # Panics
/// Panics if internal memory cannot hold two stripes (checked by
/// [`PdmConfig`]) — required for a merge fan-in of at least 2.
pub fn external_sort(disks: &mut DiskArray, input: &RecordFile) -> SortOutcome {
    external_sort_by(disks, input, |a, b| {
        a.key
            .cmp(&b.key)
            .then_with(|| a.satellite.cmp(&b.satellite))
    })
}

/// Sort with a caller-supplied total order.
pub fn external_sort_by<F>(disks: &mut DiskArray, input: &RecordFile, cmp: F) -> SortOutcome
where
    F: Fn(&KeyedRecord, &KeyedRecord) -> std::cmp::Ordering + Copy,
{
    let scope = disks.begin_op();
    let cfg = *disks.config();
    let width = input.layout().width_words;
    let mem_records = (cfg.mem_words / width).max(1);
    let n = input.len();

    // --- Run formation ---------------------------------------------------
    let mut runs: Vec<RecordFile> = Vec::new();
    let mut reader = input.reader();
    loop {
        let take = mem_records.min(reader.remaining());
        if take == 0 {
            break;
        }
        let mut chunk = Vec::with_capacity(take);
        for _ in 0..take {
            chunk.push(reader.next(disks).expect("remaining() said more records"));
        }
        chunk.sort_by(cmp);
        let mut run = RecordFile::allocate_at_end(disks, input.layout(), chunk.len());
        run.write_all(disks, &chunk);
        runs.push(run);
    }
    // Reads went through the shared path; charge the scan to the array.
    reader.charge_to(disks);
    if runs.is_empty() {
        // Empty input: produce an empty output file.
        let output = RecordFile::allocate_at_end(disks, input.layout(), 0);
        return SortOutcome {
            output,
            cost: disks.end_op(scope),
            merge_passes: 0,
        };
    }

    // --- Merge passes ----------------------------------------------------
    // Fan-in: one stripe buffer per input run + one output stripe must fit.
    let fan_in = (cfg.mem_words / cfg.stripe_words())
        .saturating_sub(1)
        .max(2);
    let mut merge_passes = 0;
    while runs.len() > 1 {
        merge_passes += 1;
        let mut next_runs = Vec::new();
        for group in runs.chunks(fan_in) {
            next_runs.push(merge_group(disks, group, cmp));
        }
        runs = next_runs;
    }

    let output = runs.pop().expect("at least one run");
    debug_assert_eq!(output.len(), n);
    SortOutcome {
        output,
        cost: disks.end_op(scope),
        merge_passes,
    }
}

/// Merge a group of sorted runs into one sorted run.
fn merge_group<F>(disks: &mut DiskArray, group: &[RecordFile], cmp: F) -> RecordFile
where
    F: Fn(&KeyedRecord, &KeyedRecord) -> std::cmp::Ordering + Copy,
{
    let total: usize = group.iter().map(RecordFile::len).sum();
    let out = RecordFile::allocate_at_end(disks, group[0].layout(), total);
    let mut writer = out.writer();
    let mut readers: Vec<_> = group.iter().map(RecordFile::reader).collect();
    let mut heads: Vec<Option<KeyedRecord>> = Vec::with_capacity(readers.len());
    for r in &mut readers {
        heads.push(r.next(disks));
    }
    // Fan-in is at most M/(B·D), a small number, so a linear minimum scan is
    // appropriate and keeps the merge correct for any comparator (ties break
    // toward the lower run index, making the merge stable).
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some(rec) = head else { continue };
            let better = match best {
                None => true,
                Some(b) => {
                    let cur = heads[b].as_ref().expect("best head exists");
                    cmp(rec, cur) == std::cmp::Ordering::Less
                }
            };
            if better {
                best = Some(i);
            }
        }
        let Some(b) = best else { break };
        let rec = heads[b].take().expect("best head exists");
        writer.push(disks, &rec);
        heads[b] = readers[b].next(disks);
    }
    for r in &mut readers {
        r.charge_to(disks);
    }
    writer.finish(disks)
}

/// Textbook parallel-I/O bound for sorting `n_records` records of
/// `width_words` words: `2 · ⌈x/(B·D)⌉ · (1 + ⌈log_f(runs)⌉)` where
/// `x = n·width`, `f` is the merge fan-in, and `runs = ⌈x/M⌉` — i.e. one
/// read+write pass for run formation plus one per merge pass.
#[must_use]
pub fn sort_io_bound(cfg: &PdmConfig, n_records: usize, width_words: usize) -> u64 {
    let x = n_records * width_words;
    if x == 0 {
        return 0;
    }
    let stripes = x.div_ceil(cfg.stripe_words()) as u64;
    let runs = x.div_ceil(cfg.mem_words).max(1);
    let fan_in = (cfg.mem_words / cfg.stripe_words())
        .saturating_sub(1)
        .max(2);
    let mut passes = 0u64;
    let mut r = runs;
    while r > 1 {
        r = r.div_ceil(fan_in);
        passes += 1;
    }
    2 * stripes * (1 + passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordLayout;

    fn make_input(disks: &mut DiskArray, keys: &[u64], sat: usize) -> RecordFile {
        let mut f = RecordFile::allocate_at_end(disks, RecordLayout::keyed(sat), keys.len());
        let recs: Vec<KeyedRecord> = keys
            .iter()
            .map(|&k| KeyedRecord::new(k, vec![k.wrapping_mul(3); sat]))
            .collect();
        f.write_all(disks, &recs);
        f
    }

    #[test]
    fn sorts_small_input() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let input = make_input(&mut disks, &[5, 3, 9, 1, 7, 1], 1);
        let out = external_sort(&mut disks, &input);
        let keys: Vec<u64> = out
            .output
            .read_all(&disks)
            .iter()
            .map(|r| r.key)
            .collect();
        assert_eq!(keys, vec![1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn sorts_input_larger_than_memory() {
        // M = 2 stripes = 16 words; records of 2 words -> 8 records per run.
        let cfg = PdmConfig::new(2, 4).with_mem_words(16);
        let mut disks = DiskArray::new(cfg, 0);
        let keys: Vec<u64> = (0..200).map(|i| (i * 131) % 97).collect();
        let input = make_input(&mut disks, &keys, 1);
        let out = external_sort(&mut disks, &input);
        assert!(out.merge_passes >= 1, "must have merged multiple runs");
        let got: Vec<u64> = out
            .output
            .read_all(&disks)
            .iter()
            .map(|r| r.key)
            .collect();
        let mut want = keys;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn satellite_travels_with_key() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let input = make_input(&mut disks, &[9, 2, 5], 1);
        let out = external_sort(&mut disks, &input);
        for r in out.output.read_all(&disks) {
            assert_eq!(r.satellite[0], r.key.wrapping_mul(3));
        }
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let input = RecordFile::allocate_at_end(&mut disks, RecordLayout::keyed(0), 0);
        let out = external_sort(&mut disks, &input);
        assert!(out.output.is_empty());
        assert_eq!(out.cost.parallel_ios, 0);
    }

    #[test]
    fn measured_cost_within_constant_of_bound() {
        let cfg = PdmConfig::new(4, 8).with_mem_words(128);
        let mut disks = DiskArray::new(cfg, 0);
        let keys: Vec<u64> = (0..1000).map(|i| (i * 7919) % 1009).collect();
        let input = make_input(&mut disks, &keys, 1);
        let out = external_sort(&mut disks, &input);
        let bound = sort_io_bound(&cfg, 1000, 2);
        assert!(bound > 0);
        // Measured cost should be within a small constant of the textbook
        // bound (the sort re-reads the input once during run formation).
        let measured = out.cost.parallel_ios;
        assert!(
            measured <= 3 * bound,
            "measured {measured} should be ≤ 3× bound {bound}"
        );
        assert!(
            measured >= bound / 3,
            "measured {measured} suspiciously below bound {bound}"
        );
    }

    #[test]
    fn bound_is_zero_for_empty() {
        assert_eq!(sort_io_bound(&PdmConfig::new(2, 4), 0, 3), 0);
    }

    #[test]
    fn duplicate_keys_keep_all_records() {
        let mut disks = DiskArray::new(PdmConfig::new(2, 4), 0);
        let input = make_input(&mut disks, &[4, 4, 4, 4], 1);
        let out = external_sort(&mut disks, &input);
        assert_eq!(out.output.len(), 4);
    }
}
