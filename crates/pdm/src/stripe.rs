//! Striping: treating the `D` disks as a single disk with logical block
//! size `B·D`.
//!
//! Stripe `s` consists of block `s` on every disk; within a stripe the word
//! layout is disk-major (words `d·B .. (d+1)·B` live on disk `d`). Reading
//! or writing one full stripe is exactly one parallel I/O — the classic
//! "striping" speedup the paper's introduction discusses.

use crate::disk::{BlockAddr, DiskArray, ReadOptions, WriteOptions};
use crate::Word;

/// A mutable striped view over a [`DiskArray`].
#[derive(Debug)]
pub struct StripedView<'a> {
    disks: &'a mut DiskArray,
}

impl<'a> StripedView<'a> {
    /// Wrap a disk array.
    #[must_use]
    pub fn new(disks: &'a mut DiskArray) -> Self {
        StripedView { disks }
    }

    /// Words per stripe (`B·D`).
    #[must_use]
    pub fn stripe_words(&self) -> usize {
        self.disks.config().stripe_words()
    }

    /// Number of complete stripes available (limited by the shortest disk).
    #[must_use]
    pub fn num_stripes(&self) -> usize {
        (0..self.disks.disks())
            .map(|d| self.disks.blocks_on(d))
            .min()
            .unwrap_or(0)
    }

    /// Ensure at least `stripes` stripes exist (grows disks, no I/O).
    pub fn ensure_stripes(&mut self, stripes: usize) {
        self.disks.grow(stripes);
    }

    /// Read stripe `s` (one parallel I/O). Returns `B·D` words, disk-major.
    pub fn read_stripe(&mut self, s: usize) -> Vec<Word> {
        let d = self.disks.disks();
        let addrs: Vec<BlockAddr> = (0..d).map(|disk| BlockAddr::new(disk, s)).collect();
        let blocks = self.disks.read(&addrs, ReadOptions::default()).into_blocks();
        let mut out = Vec::with_capacity(self.stripe_words());
        for b in blocks {
            out.extend_from_slice(&b);
        }
        out
    }

    /// Write stripe `s` (one parallel I/O). `data` must be exactly `B·D`
    /// words, disk-major.
    ///
    /// # Panics
    /// Panics if `data.len() != B·D`.
    pub fn write_stripe(&mut self, s: usize, data: &[Word]) {
        let b = self.disks.block_words();
        let d = self.disks.disks();
        assert_eq!(
            data.len(),
            b * d,
            "stripe payload must be exactly B·D = {} words",
            b * d
        );
        let writes: Vec<(BlockAddr, &[Word])> = (0..d)
            .map(|disk| (BlockAddr::new(disk, s), &data[disk * b..(disk + 1) * b]))
            .collect();
        self.disks.write(&writes, WriteOptions::default());
    }

    /// Read `len` words starting at global (striped) word offset `start`.
    ///
    /// Only the blocks actually overlapping the range are touched; the whole
    /// request is issued as one batch, so `k` consecutive full stripes cost
    /// `k` parallel I/Os, and a sub-stripe range costs a single parallel I/O.
    pub fn read_words(&mut self, start: usize, len: usize) -> Vec<Word> {
        if len == 0 {
            return Vec::new();
        }
        let b = self.disks.block_words();
        let sw = self.stripe_words();
        let end = start + len;
        // Collect the covering blocks in word order.
        let mut addrs = Vec::new();
        let first_block = start / b; // global block index = stripe * D + disk
        let last_block = (end - 1) / b;
        for gb in first_block..=last_block {
            let stripe = gb / self.disks.disks();
            let disk = gb % self.disks.disks();
            addrs.push(BlockAddr::new(disk, stripe));
        }
        let blocks = self.disks.read(&addrs, ReadOptions::default()).into_blocks();
        let mut out = Vec::with_capacity(len);
        for (i, block) in blocks.iter().enumerate() {
            let gb = first_block + i;
            let block_start = gb * b;
            let from = start.max(block_start) - block_start;
            let to = end.min(block_start + b) - block_start;
            out.extend_from_slice(&block[from..to]);
        }
        debug_assert_eq!(out.len(), len);
        debug_assert_eq!(sw % b, 0);
        out
    }

    /// [`read_words`](StripedView::read_words) through a **shared**
    /// reference: returns the words plus the cost the batch would be
    /// charged, without touching the global counters (the shared-read
    /// contract of [`DiskArray::read_shared`]). Concurrent scanners
    /// (e.g. [`crate::file::RecordFileReader`]) use this and let their
    /// owner charge the accumulated cost.
    #[must_use]
    pub fn read_words_shared(
        disks: &DiskArray,
        start: usize,
        len: usize,
    ) -> (Vec<Word>, crate::stats::OpCost) {
        if len == 0 {
            return (Vec::new(), crate::stats::OpCost::default());
        }
        let b = disks.block_words();
        let end = start + len;
        let mut addrs = Vec::new();
        let first_block = start / b;
        let last_block = (end - 1) / b;
        for gb in first_block..=last_block {
            addrs.push(BlockAddr::new(gb % disks.disks(), gb / disks.disks()));
        }
        let out = disks.read_shared(&addrs, ReadOptions::default());
        let cost = out.cost;
        let blocks = out.into_blocks();
        let mut words = Vec::with_capacity(len);
        for (i, block) in blocks.iter().enumerate() {
            let block_start = (first_block + i) * b;
            let from = start.max(block_start) - block_start;
            let to = end.min(block_start + b) - block_start;
            words.extend_from_slice(&block[from..to]);
        }
        debug_assert_eq!(words.len(), len);
        (words, cost)
    }

    /// Write `data` starting at global (striped) word offset `start`.
    ///
    /// Block-aligned interior blocks are written directly; ragged boundary
    /// blocks are read, patched, and written back (the model charges a read
    /// before a partial write, as the paper's Figure 1 footnote notes).
    pub fn write_words(&mut self, start: usize, data: &[Word]) {
        if data.is_empty() {
            return;
        }
        let b = self.disks.block_words();
        let d = self.disks.disks();
        let end = start + data.len();
        let first_block = start / b;
        let last_block = (end - 1) / b;

        // Read ragged boundary blocks first (one batch).
        let mut boundary = Vec::new();
        if !start.is_multiple_of(b) {
            boundary.push(first_block);
        }
        if !end.is_multiple_of(b) && last_block != *boundary.first().unwrap_or(&usize::MAX) {
            boundary.push(last_block);
        }
        let baddrs: Vec<BlockAddr> = boundary
            .iter()
            .map(|&gb| BlockAddr::new(gb % d, gb / d))
            .collect();
        let bblocks = self.disks.read(&baddrs, ReadOptions::default()).into_blocks();

        // Assemble full images for every block in range.
        let mut images: Vec<(BlockAddr, Vec<Word>)> = Vec::new();
        for gb in first_block..=last_block {
            let addr = BlockAddr::new(gb % d, gb / d);
            let block_start = gb * b;
            let mut img = if let Some(pos) = boundary.iter().position(|&x| x == gb) {
                bblocks[pos].clone()
            } else {
                vec![0; b]
            };
            let from = start.max(block_start);
            let to = end.min(block_start + b);
            img[from - block_start..to - block_start]
                .copy_from_slice(&data[from - start..to - start]);
            images.push((addr, img));
        }
        let writes: Vec<(BlockAddr, &[Word])> =
            images.iter().map(|(a, v)| (*a, v.as_slice())).collect();
        self.disks.write(&writes, WriteOptions::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdmConfig;

    fn arr() -> DiskArray {
        DiskArray::new(PdmConfig::new(4, 8), 8)
    }

    #[test]
    fn stripe_roundtrip_is_two_parallel_ios() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        let data: Vec<Word> = (0..32).collect();
        view.write_stripe(3, &data);
        assert_eq!(view.read_stripe(3), data);
        assert_eq!(disks.stats().parallel_ios, 2);
    }

    #[test]
    fn stripe_layout_is_disk_major() {
        let mut disks = arr();
        let data: Vec<Word> = (0..32).collect();
        StripedView::new(&mut disks).write_stripe(0, &data);
        assert_eq!(disks.peek(BlockAddr::new(0, 0)), &data[0..8]);
        assert_eq!(disks.peek(BlockAddr::new(3, 0)), &data[24..32]);
    }

    #[test]
    fn read_words_spanning_blocks() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        let data: Vec<Word> = (0..64).collect();
        view.write_stripe(0, &data[0..32]);
        view.write_stripe(1, &data[32..64]);
        // Words 5..45 span disks 0..3 of stripe 0 and disks 0..2 of stripe 1.
        let got = view.read_words(5, 40);
        assert_eq!(got, &data[5..45]);
    }

    #[test]
    fn read_full_stripe_via_words_costs_one_io() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        let _ = view.read_words(32, 32); // stripe 1 exactly
        assert_eq!(disks.stats().parallel_ios, 1);
    }

    #[test]
    fn read_two_stripes_costs_two_ios() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        let _ = view.read_words(0, 64);
        assert_eq!(disks.stats().parallel_ios, 2);
    }

    #[test]
    fn ragged_write_preserves_neighbors() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        view.write_stripe(0, &vec![9; 32]);
        view.write_words(3, &[1, 2, 3]);
        let got = view.read_words(0, 10);
        assert_eq!(got, vec![9, 9, 9, 1, 2, 3, 9, 9, 9, 9]);
    }

    #[test]
    fn ragged_write_charges_boundary_reads() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        view.write_words(3, &[1, 2, 3]); // inside one block: 1 read + 1 write
        assert_eq!(disks.stats().parallel_ios, 2);
        assert_eq!(disks.stats().block_reads, 1);
        assert_eq!(disks.stats().block_writes, 1);
    }

    #[test]
    fn aligned_write_charges_no_reads() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        view.write_words(8, &[5; 16]); // blocks 1 and 2 exactly
        assert_eq!(disks.stats().block_reads, 0);
        assert_eq!(disks.stats().parallel_ios, 1); // two different disks
    }

    #[test]
    fn write_words_spanning_many_stripes_roundtrips() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        let data: Vec<Word> = (100..200).collect();
        view.write_words(17, &data);
        assert_eq!(view.read_words(17, 100), data);
    }

    #[test]
    fn num_stripes_tracks_geometry() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        assert_eq!(view.num_stripes(), 8);
        view.ensure_stripes(12);
        assert_eq!(view.num_stripes(), 12);
    }

    #[test]
    fn empty_ops_cost_nothing() {
        let mut disks = arr();
        let mut view = StripedView::new(&mut disks);
        assert!(view.read_words(5, 0).is_empty());
        view.write_words(5, &[]);
        assert_eq!(disks.stats().parallel_ios, 0);
    }
}
