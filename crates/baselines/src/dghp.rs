//! A chained hash dictionary in the spirit of Dietzfelbinger, Gil, Matias
//! and Pippenger, *"Polynomial hash functions are reliable"* — the
//! paper's "\[7\]": lookup and update costs of `O(1)` I/Os **with high
//! probability** (`1 - O(n^{-c})`), but with a linear worst case ("all
//! hashing based dictionaries we are aware of may use `n/B^{O(1)}` I/Os
//! for a single operation in the worst case").
//!
//! Structure: a top-level table of one-block buckets addressed by an
//! `Θ(log n)`-wise independent polynomial hash; overflowing buckets chain
//! into dynamically allocated overflow blocks on the same disk. With the
//! table sized at constant load, chains are empty w.h.p. and every
//! operation touches one block; an adversarial or unlucky key set grows a
//! chain and drags the worst case up — exactly the behaviour Figure 1
//! contrasts with the deterministic structures.

use crate::hashfam::PolyHash;
use crate::slots::Slots;
use pdm::{BlockAddr, DiskArray, OpCost, PdmConfig, Word};

/// Errors from the dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DghpError {
    /// Key already present.
    Duplicate(u64),
    /// Payload width mismatch.
    PayloadWidth {
        /// Expected words.
        expected: usize,
        /// Supplied words.
        got: usize,
    },
}

impl std::fmt::Display for DghpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DghpError::Duplicate(k) => write!(f, "key {k} already present"),
            DghpError::PayloadWidth { expected, got } => {
                write!(f, "payload width mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for DghpError {}

/// Block layout: the last word of every bucket/overflow block is a link —
/// `0` for "no next block", otherwise `1 + block index` on the same disk.
#[derive(Debug)]
pub struct DghpDict {
    disks: DiskArray,
    hash: PolyHash,
    slots: Slots,
    buckets: usize,
    len: usize,
    /// Next free overflow block per disk.
    overflow_next: Vec<usize>,
}

impl DghpDict {
    /// Create a dictionary for `capacity` keys of `payload_words` words on
    /// `d` disks with `block_words`-word blocks.
    #[must_use]
    pub fn new(
        capacity: usize,
        payload_words: usize,
        disks: usize,
        block_words: usize,
        seed: u64,
    ) -> Self {
        let cfg = PdmConfig::new(disks, block_words);
        let slots = Slots::new(payload_words);
        let per_block = slots.capacity(block_words - 1).max(1);
        let buckets = (2 * capacity.max(1)).div_ceil(per_block).max(disks);
        let buckets_per_disk = buckets.div_ceil(disks);
        let buckets = buckets_per_disk * disks;
        let mut arr = DiskArray::new(cfg, 0);
        arr.grow(buckets_per_disk);
        let k = (usize::BITS - capacity.max(2).leading_zeros()) as usize + 2;
        DghpDict {
            disks: arr,
            hash: PolyHash::new(k, seed),
            slots,
            buckets,
            len: 0,
            overflow_next: vec![buckets_per_disk; disks],
        }
    }

    /// Live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The owned disk array (I/O accounting).
    #[must_use]
    pub fn disks(&self) -> &DiskArray {
        &self.disks
    }

    fn bucket_addr(&self, bucket: usize) -> BlockAddr {
        let d = self.disks.disks();
        BlockAddr::new(bucket % d, bucket / d)
    }

    fn link_of(&self, block: &[Word]) -> Option<usize> {
        let link = *block.last().expect("non-empty block");
        (link != 0).then(|| (link - 1) as usize)
    }

    fn payload_area(block: &[Word]) -> &[Word] {
        &block[..block.len() - 1]
    }

    fn payload_area_mut(block: &mut [Word]) -> &mut [Word] {
        let n = block.len();
        &mut block[..n - 1]
    }

    /// Lookup: walks the bucket's chain — one block per hop, O(1) w.h.p.
    pub fn lookup(&mut self, key: u64) -> (Option<Vec<Word>>, OpCost) {
        let scope = self.disks.begin_op();
        let bucket = self.hash.bucket(key, self.buckets);
        let mut addr = self.bucket_addr(bucket);
        loop {
            let block = self.disks.read_block(addr);
            if let Some(p) = self.slots.find(Self::payload_area(&block), key) {
                return (Some(p), self.disks.end_op(scope));
            }
            match self.link_of(&block) {
                Some(next) => addr = BlockAddr::new(addr.disk, next),
                None => return (None, self.disks.end_op(scope)),
            }
        }
    }

    /// Insert: walk the chain to the first block with room, extending the
    /// chain with a fresh overflow block when needed.
    pub fn insert(&mut self, key: u64, payload: &[Word]) -> Result<OpCost, DghpError> {
        if payload.len() != self.slots.payload_words {
            return Err(DghpError::PayloadWidth {
                expected: self.slots.payload_words,
                got: payload.len(),
            });
        }
        let scope = self.disks.begin_op();
        let bucket = self.hash.bucket(key, self.buckets);
        let mut addr = self.bucket_addr(bucket);
        loop {
            let mut block = self.disks.read_block(addr);
            if self.slots.find(Self::payload_area(&block), key).is_some() {
                return Err(DghpError::Duplicate(key));
            }
            if self
                .slots
                .insert(Self::payload_area_mut(&mut block), key, payload)
            {
                self.disks.write_block(addr, &block);
                self.len += 1;
                return Ok(self.disks.end_op(scope));
            }
            match self.link_of(&block) {
                Some(next) => addr = BlockAddr::new(addr.disk, next),
                None => {
                    // Allocate an overflow block on the same disk.
                    let new_block_idx = self.overflow_next[addr.disk];
                    self.overflow_next[addr.disk] += 1;
                    let grow_to = *self.overflow_next.iter().max().expect("disks");
                    self.disks.grow(grow_to);
                    *block.last_mut().expect("non-empty") = 1 + new_block_idx as Word;
                    self.disks.write_block(addr, &block);
                    let mut fresh = vec![0; self.disks.block_words()];
                    assert!(self
                        .slots
                        .insert(Self::payload_area_mut(&mut fresh), key, payload));
                    self.disks
                        .write_block(BlockAddr::new(addr.disk, new_block_idx), &fresh);
                    self.len += 1;
                    return Ok(self.disks.end_op(scope));
                }
            }
        }
    }

    /// Delete (tombstone). Returns whether the key was present.
    pub fn delete(&mut self, key: u64) -> (bool, OpCost) {
        let scope = self.disks.begin_op();
        let bucket = self.hash.bucket(key, self.buckets);
        let mut addr = self.bucket_addr(bucket);
        loop {
            let mut block = self.disks.read_block(addr);
            if self.slots.delete(Self::payload_area_mut(&mut block), key) {
                self.disks.write_block(addr, &block);
                self.len -= 1;
                return (true, self.disks.end_op(scope));
            }
            match self.link_of(&block) {
                Some(next) => addr = BlockAddr::new(addr.disk, next),
                None => return (false, self.disks.end_op(scope)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(n: usize) -> DghpDict {
        DghpDict::new(n, 1, 8, 16, 0xD64B)
    }

    #[test]
    fn roundtrip() {
        let mut d = dict(400);
        for k in 0..400u64 {
            d.insert(k * 11 + 3, &[k]).unwrap();
        }
        for k in 0..400u64 {
            assert_eq!(d.lookup(k * 11 + 3).0, Some(vec![k]));
        }
        assert_eq!(d.lookup(1).0, None);
    }

    #[test]
    fn constant_ios_whp() {
        let mut d = dict(1000);
        for k in 0..1000u64 {
            d.insert(k.wrapping_mul(0x2545F4914F6CDD1D), &[0]).unwrap();
        }
        let mut total = 0;
        let mut worst = 0;
        for k in 0..1000u64 {
            let (_, c) = d.lookup(k.wrapping_mul(0x2545F4914F6CDD1D));
            total += c.parallel_ios;
            worst = worst.max(c.parallel_ios);
        }
        assert!(
            (total as f64 / 1000.0) < 1.3,
            "avg {}",
            total as f64 / 1000.0
        );
        assert!(worst <= 4, "worst {worst}");
    }

    #[test]
    fn chains_grow_under_adversarial_load() {
        // Overfill a tiny table: chains must form and operations still
        // stay correct (just slower — the Figure 1 worst case).
        let mut d = DghpDict::new(8, 1, 2, 8, 1);
        for k in 0..200u64 {
            d.insert(k, &[k]).unwrap();
        }
        let mut worst = 0;
        for k in 0..200u64 {
            let (found, c) = d.lookup(k);
            assert_eq!(found, Some(vec![k]));
            worst = worst.max(c.parallel_ios);
        }
        assert!(worst > 3, "expected long chains, worst was {worst}");
    }

    #[test]
    fn duplicate_and_delete() {
        let mut d = dict(20);
        d.insert(5, &[9]).unwrap();
        assert!(matches!(d.insert(5, &[9]), Err(DghpError::Duplicate(5))));
        let (was, _) = d.delete(5);
        assert!(was);
        assert_eq!(d.lookup(5).0, None);
        let (absent, _) = d.delete(5);
        assert!(!absent);
    }

    #[test]
    fn tombstones_reused() {
        let mut d = dict(20);
        d.insert(1, &[1]).unwrap();
        d.delete(1);
        d.insert(1, &[2]).unwrap();
        assert_eq!(d.lookup(1).0, Some(vec![2]));
        assert_eq!(d.len(), 1);
    }
}
