//! The "folklore trick" (Figure 1 row "\[7\] + trick"): full `Θ(BD)`
//! bandwidth at `1 + ɛ` average lookups.
//!
//! "Keep a hash table storing all keys that do not collide with another
//! key (in that hash table), and mark all locations for which there is a
//! collision. The remaining keys are stored using the algorithm of \[7\].
//! The fraction of searches and updates that need to go to the dictionary
//! of \[7\] can be made arbitrarily small by choosing the hash table size
//! with a suitably large constant on the linear term."
//!
//! The primary table gives each key a whole stripe (bandwidth `Θ(BD)`);
//! collided locations carry a mark and their keys are demoted to a
//! secondary [`DghpDict`]. A lookup reads the primary stripe (1 parallel
//! I/O) and falls through to the secondary only on a marked location —
//! a vanishing fraction at a suitable primary size.

use crate::dghp::{DghpDict, DghpError};
use crate::hashfam::PolyHash;
use pdm::{DiskArray, OpCost, PdmConfig, StripedView, Word};

const MARK_COLLIDED: Word = 1;
const SLOT_LIVE: Word = 1;

/// Errors from the folklore structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FolkloreError {
    /// Key already present.
    Duplicate(u64),
    /// Payload width mismatch.
    PayloadWidth {
        /// Expected words.
        expected: usize,
        /// Supplied words.
        got: usize,
    },
}

impl std::fmt::Display for FolkloreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FolkloreError::Duplicate(k) => write!(f, "key {k} already present"),
            FolkloreError::PayloadWidth { expected, got } => {
                write!(f, "payload width mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for FolkloreError {}

impl From<DghpError> for FolkloreError {
    fn from(e: DghpError) -> Self {
        match e {
            DghpError::Duplicate(k) => FolkloreError::Duplicate(k),
            DghpError::PayloadWidth { expected, got } => {
                FolkloreError::PayloadWidth { expected, got }
            }
        }
    }
}

/// Primary stripe layout: `[mark, flags, key, payload…]`.
#[derive(Debug)]
pub struct FolkloreDict {
    primary: DiskArray,
    secondary: DghpDict,
    hash: PolyHash,
    stripes: usize,
    payload_words: usize,
    len: usize,
}

impl FolkloreDict {
    /// Create for `capacity` keys of `payload_words` words on `d` disks
    /// with `block_words`-word blocks. `slack` is the "suitably large
    /// constant on the linear term": primary stripes = `slack · capacity`.
    ///
    /// # Panics
    /// Panics if a record does not fit in one stripe.
    #[must_use]
    pub fn new(
        capacity: usize,
        payload_words: usize,
        disks: usize,
        block_words: usize,
        slack: usize,
        seed: u64,
    ) -> Self {
        let cfg = PdmConfig::new(disks, block_words);
        assert!(
            payload_words + 3 <= cfg.stripe_words(),
            "record of {} words exceeds the stripe of {}",
            payload_words + 3,
            cfg.stripe_words()
        );
        let stripes = (slack.max(2) * capacity.max(1)).max(2);
        let mut arr = DiskArray::new(cfg, stripes);
        StripedView::new(&mut arr).ensure_stripes(stripes);
        let k = (usize::BITS - capacity.max(2).leading_zeros()) as usize + 2;
        FolkloreDict {
            primary: arr,
            secondary: DghpDict::new(capacity, payload_words, disks, block_words, seed ^ 0xF01C),
            hash: PolyHash::new(k, seed),
            stripes,
            payload_words,
            len: 0,
        }
    }

    /// Live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Keys currently demoted to the secondary structure.
    #[must_use]
    pub fn secondary_len(&self) -> usize {
        self.secondary.len()
    }

    /// Bandwidth in words (`Θ(BD)`).
    #[must_use]
    pub fn bandwidth_words(&self) -> usize {
        self.primary.config().stripe_words() - 3
    }

    /// Total space of both component arrays, in words.
    #[must_use]
    pub fn space_words(&self) -> usize {
        self.stripes * self.primary.config().stripe_words() + self.secondary.disks().total_words()
    }

    /// Disks of the primary array.
    #[must_use]
    pub fn primary_disks(&self) -> usize {
        self.primary.disks()
    }

    /// Combined I/O statistics of both component arrays.
    #[must_use]
    pub fn io_stats(&self) -> pdm::IoStats {
        let a = self.primary.stats();
        let b = self.secondary.disks().stats();
        pdm::IoStats {
            parallel_ios: a.parallel_ios + b.parallel_ios,
            block_reads: a.block_reads + b.block_reads,
            block_writes: a.block_writes + b.block_writes,
            batches: a.batches + b.batches,
            rounds: a.rounds + b.rounds,
        }
    }

    fn stripe_of(&self, key: u64) -> usize {
        self.hash.bucket(key, self.stripes)
    }

    /// Lookup: 1 parallel I/O unless the location is marked collided.
    pub fn lookup(&mut self, key: u64) -> (Option<Vec<Word>>, OpCost) {
        let scope = self.primary.begin_op();
        let s = self.stripe_of(key);
        let buf = StripedView::new(&mut self.primary).read_stripe(s);
        if buf[1] == SLOT_LIVE && buf[2] == key {
            let payload = buf[3..3 + self.payload_words].to_vec();
            return (Some(payload), self.primary.end_op(scope));
        }
        let primary_cost = self.primary.end_op(scope);
        if buf[0] == MARK_COLLIDED {
            let (found, sec_cost) = self.secondary.lookup(key);
            (found, primary_cost.plus(sec_cost))
        } else {
            (None, primary_cost)
        }
    }

    /// Insert. Average `2 + ɛ` I/Os: collision-free keys write their
    /// stripe; a collision demotes both residents to the secondary.
    pub fn insert(&mut self, key: u64, payload: &[Word]) -> Result<OpCost, FolkloreError> {
        if payload.len() != self.payload_words {
            return Err(FolkloreError::PayloadWidth {
                expected: self.payload_words,
                got: payload.len(),
            });
        }
        let scope = self.primary.begin_op();
        let s = self.stripe_of(key);
        let mut buf = StripedView::new(&mut self.primary).read_stripe(s);
        if buf[1] == SLOT_LIVE && buf[2] == key {
            return Err(FolkloreError::Duplicate(key));
        }
        let outcome: Result<OpCost, FolkloreError>;
        if buf[1] != SLOT_LIVE && buf[0] != MARK_COLLIDED {
            // Free, unmarked: the common case.
            buf[1] = SLOT_LIVE;
            buf[2] = key;
            buf[3..3 + self.payload_words].copy_from_slice(payload);
            StripedView::new(&mut self.primary).write_stripe(s, &buf);
            outcome = Ok(self.primary.end_op(scope));
        } else if buf[0] == MARK_COLLIDED {
            // Already marked: straight to the secondary.
            let primary_cost = self.primary.end_op(scope);
            let sec = self.secondary.insert(key, payload)?;
            outcome = Ok(primary_cost.plus(sec));
        } else {
            // Collision: demote the resident and the new key, mark.
            let old_key = buf[2];
            let old_payload = buf[3..3 + self.payload_words].to_vec();
            buf[0] = MARK_COLLIDED;
            buf[1] = 0;
            StripedView::new(&mut self.primary).write_stripe(s, &buf);
            let primary_cost = self.primary.end_op(scope);
            let c1 = self.secondary.insert(old_key, &old_payload)?;
            let c2 = self.secondary.insert(key, payload)?;
            outcome = Ok(primary_cost.plus(c1).plus(c2));
        }
        if outcome.is_ok() {
            self.len += 1;
        }
        outcome
    }

    /// Delete. Returns whether the key was present.
    pub fn delete(&mut self, key: u64) -> (bool, OpCost) {
        let scope = self.primary.begin_op();
        let s = self.stripe_of(key);
        let mut buf = StripedView::new(&mut self.primary).read_stripe(s);
        if buf[1] == SLOT_LIVE && buf[2] == key {
            buf[1] = 0;
            StripedView::new(&mut self.primary).write_stripe(s, &buf);
            self.len -= 1;
            return (true, self.primary.end_op(scope));
        }
        let primary_cost = self.primary.end_op(scope);
        if buf[0] == MARK_COLLIDED {
            let (was, sec_cost) = self.secondary.delete(key);
            if was {
                self.len -= 1;
            }
            (was, primary_cost.plus(sec_cost))
        } else {
            (false, primary_cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(n: usize, slack: usize) -> FolkloreDict {
        FolkloreDict::new(n, 2, 8, 16, slack, 0xF01)
    }

    #[test]
    fn roundtrip() {
        let mut f = dict(200, 4);
        for k in 0..200u64 {
            f.insert(k * 3 + 1, &[k, k]).unwrap();
        }
        assert_eq!(f.len(), 200);
        for k in 0..200u64 {
            assert_eq!(f.lookup(k * 3 + 1).0, Some(vec![k, k]));
        }
        assert_eq!(f.lookup(0).0, None);
    }

    #[test]
    fn average_lookup_close_to_one() {
        let mut f = dict(500, 8);
        for k in 0..500u64 {
            f.insert(k.wrapping_mul(0x9E3779B97F4A7C15), &[0, 0])
                .unwrap();
        }
        let frac_secondary = f.secondary_len() as f64 / 500.0;
        assert!(
            frac_secondary < 0.25,
            "too many demotions: {frac_secondary}"
        );
        let mut total = 0;
        for k in 0..500u64 {
            total += f.lookup(k.wrapping_mul(0x9E3779B97F4A7C15)).1.parallel_ios;
        }
        let avg = total as f64 / 500.0;
        assert!(avg < 1.5, "average lookup {avg}");
    }

    #[test]
    fn collisions_demote_both_keys() {
        // Tiny primary forces collisions.
        let mut f = dict(64, 2);
        for k in 0..64u64 {
            f.insert(k, &[k, 0]).unwrap();
        }
        assert!(f.secondary_len() > 0, "no collisions at load 1/2?");
        for k in 0..64u64 {
            assert_eq!(f.lookup(k).0, Some(vec![k, 0]), "key {k}");
        }
    }

    #[test]
    fn delete_from_both_layers() {
        let mut f = dict(32, 2);
        for k in 0..32u64 {
            f.insert(k, &[k, 0]).unwrap();
        }
        for k in 0..32u64 {
            let (was, _) = f.delete(k);
            assert!(was, "key {k}");
        }
        assert_eq!(f.len(), 0);
        for k in 0..32u64 {
            assert!(f.lookup(k).0.is_none());
        }
    }

    #[test]
    fn full_bandwidth() {
        let f = dict(4, 2);
        assert_eq!(f.bandwidth_words(), 8 * 16 - 3);
    }

    #[test]
    fn duplicate_detected_in_primary_and_secondary() {
        let mut f = dict(16, 2);
        for k in 0..16u64 {
            f.insert(k, &[0, 0]).unwrap();
        }
        for k in 0..16u64 {
            assert!(matches!(
                f.insert(k, &[0, 0]),
                Err(FolkloreError::Duplicate(_))
            ));
        }
    }
}
