//! # `baselines` — randomized dictionaries and a B-tree on the PDM
//!
//! The comparison structures of the paper's Figure 1 and Section 1.2,
//! implemented on the same simulated parallel disk model so the FIG1
//! experiment can reproduce the table's shape:
//!
//! * [`hashfam`] — `k`-wise independent polynomial hash functions over
//!   the Mersenne prime `2^61 - 1` (the paper's "O(log n)-wise independent
//!   hash functions" whose description fits in internal memory).
//! * [`striped_table::StripedHashTable`] — "having D parallel disks can be
//!   exploited by striping ... a linear space hash table has no
//!   overflowing blocks with high probability": 1-I/O lookups w.h.p.,
//!   2-I/O updates w.h.p., bandwidth `O(BD/log n)`.
//! * [`cuckoo::CuckooDict`] — cuckoo hashing (Pagh–Rodler): worst-case
//!   1 parallel I/O lookups at bandwidth `BD/2`, but only *amortized
//!   expected* constant insertions — with the occasional rehash stall the
//!   paper's determinism avoids.
//! * [`dghp::DghpDict`] — a two-level chained structure in the spirit of
//!   Dietzfelbinger–Gil–Matias–Pippenger ("\[7\]"): `O(1)` I/Os with high
//!   probability, linear worst case.
//! * [`folklore::FolkloreDict`] — the "folklore trick": a primary
//!   one-slot-per-bucket table holding collision-free keys (bandwidth
//!   `Θ(BD)`) with collided keys demoted to a secondary structure; average
//!   `1 + ɛ` lookups, `2 + ɛ` updates w.h.p.
//! * [`btree::PdmBTree`] — the Section 1.2 incumbent: a B-tree with
//!   `Θ(BD)` fanout whose lookups walk `Θ(log_{BD} n)` levels ("it takes
//!   3 disk accesses before the contents of the block is available").
//!
//! All structures own their simulated [`pdm::DiskArray`] and report exact
//! parallel-I/O costs per operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod slots;

pub mod btree;
pub mod cuckoo;
pub mod dghp;
pub mod folklore;
pub mod hashfam;
pub mod striped_table;

pub use btree::PdmBTree;
pub use cuckoo::CuckooDict;
pub use dghp::DghpDict;
pub use folklore::FolkloreDict;
pub use hashfam::PolyHash;
pub use striped_table::StripedHashTable;
