//! Shared slot codec for the baseline hash tables: fixed-width slots of
//! `[flags, key, payload…]` within a word buffer. Mirrors the layout used
//! by the deterministic structures so space comparisons are apples to
//! apples.

use pdm::Word;

pub(crate) const FLAG_LIVE: Word = 0b01;
pub(crate) const FLAG_TOMBSTONE: Word = 0b11;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Slots {
    pub payload_words: usize,
}

impl Slots {
    pub(crate) fn new(payload_words: usize) -> Self {
        Slots { payload_words }
    }

    pub(crate) fn slot_words(&self) -> usize {
        2 + self.payload_words
    }

    pub(crate) fn capacity(&self, words: usize) -> usize {
        words / self.slot_words()
    }

    pub(crate) fn find(&self, buf: &[Word], key: u64) -> Option<Vec<Word>> {
        let w = self.slot_words();
        (0..self.capacity(buf.len())).find_map(|i| {
            let s = &buf[i * w..(i + 1) * w];
            (s[0] == FLAG_LIVE && s[1] == key).then(|| s[2..].to_vec())
        })
    }

    pub(crate) fn live_count(&self, buf: &[Word]) -> usize {
        let w = self.slot_words();
        (0..self.capacity(buf.len()))
            .filter(|&i| buf[i * w] == FLAG_LIVE)
            .count()
    }

    pub(crate) fn insert(&self, buf: &mut [Word], key: u64, payload: &[Word]) -> bool {
        debug_assert_eq!(payload.len(), self.payload_words);
        let w = self.slot_words();
        for i in 0..self.capacity(buf.len()) {
            if buf[i * w] != FLAG_LIVE {
                buf[i * w] = FLAG_LIVE;
                buf[i * w + 1] = key;
                buf[i * w + 2..(i + 1) * w].copy_from_slice(payload);
                return true;
            }
        }
        false
    }

    pub(crate) fn delete(&self, buf: &mut [Word], key: u64) -> bool {
        let w = self.slot_words();
        for i in 0..self.capacity(buf.len()) {
            if buf[i * w] == FLAG_LIVE && buf[i * w + 1] == key {
                buf[i * w] = FLAG_TOMBSTONE;
                return true;
            }
        }
        false
    }

    pub(crate) fn live_entries(&self, buf: &[Word]) -> Vec<(u64, Vec<Word>)> {
        let w = self.slot_words();
        (0..self.capacity(buf.len()))
            .filter_map(|i| {
                let s = &buf[i * w..(i + 1) * w];
                (s[0] == FLAG_LIVE).then(|| (s[1], s[2..].to_vec()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_tombstone() {
        let s = Slots::new(1);
        let mut buf = vec![0; 9];
        assert!(s.insert(&mut buf, 5, &[50]));
        assert!(s.insert(&mut buf, 6, &[60]));
        assert!(s.insert(&mut buf, 7, &[70]));
        assert!(!s.insert(&mut buf, 8, &[80]));
        assert_eq!(s.find(&buf, 6), Some(vec![60]));
        assert!(s.delete(&mut buf, 6));
        assert_eq!(s.find(&buf, 6), None);
        assert_eq!(s.live_count(&buf), 2);
        assert!(s.insert(&mut buf, 8, &[80]));
        assert_eq!(s.live_entries(&buf).len(), 3);
    }
}
