//! `k`-wise independent polynomial hashing over the Mersenne prime
//! `p = 2^61 - 1`.
//!
//! The paper's randomized comparators assume "O(log n)-wise independent
//! hash functions, for which a large range of hashing algorithms can be
//! shown to work well" — the textbook realization is a degree-`(k-1)`
//! polynomial with uniformly random coefficients evaluated by Horner's
//! rule modulo a Mersenne prime (fast reduction, description of `k` words
//! fits in internal memory).

use expander::family::{DynNeighborFn, FamilyExpander, NeighborFamily};
use expander::mix::SplitMix64;
use expander::NeighborFn;
use std::sync::Arc;

/// The Mersenne prime `2^61 - 1`.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// Uniform draw from `[0, MERSENNE_P)` by rejection sampling over the
/// consolidated splitmix stream ([`expander::mix`]).
fn uniform_mod_p(rng: &mut SplitMix64) -> u64 {
    loop {
        // Keep 61 bits; accept unless we hit p exactly (prob 2^-61).
        let r = rng.next_u64() >> 3;
        if r < MERSENNE_P {
            return r;
        }
    }
}

fn mulmod(a: u64, b: u64) -> u64 {
    let prod = u128::from(a) * u128::from(b);
    let lo = (prod & u128::from(MERSENNE_P)) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

fn addmod(a: u64, b: u64) -> u64 {
    let mut s = a + b;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// A sample from the `k`-wise independent polynomial family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyHash {
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Draw a degree-`(k-1)` polynomial with seed `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "independence parameter must be at least 1");
        let mut rng = SplitMix64::new(seed);
        let coeffs = (0..k).map(|_| uniform_mod_p(&mut rng)).collect();
        PolyHash { coeffs }
    }

    /// Independence parameter `k`.
    #[must_use]
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluate the polynomial at `x` (result in `[0, p)`).
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = addmod(mulmod(acc, x), c);
        }
        acc
    }

    /// Hash into `[0, m)`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[must_use]
    pub fn bucket(&self, x: u64, m: usize) -> usize {
        assert!(m > 0);
        (self.eval(x) % m as u64) as usize
    }
}

/// A striped neighbor function built from `d` independent [`PolyHash`]
/// samples — stripe `i` indexed by its own polynomial.
#[derive(Debug, Clone)]
pub struct PolyStriped {
    left: u64,
    stripe: usize,
    hashes: Vec<PolyHash>,
}

impl NeighborFn for PolyStriped {
    fn left_size(&self) -> u64 {
        self.left
    }
    fn right_size(&self) -> usize {
        self.stripe * self.hashes.len()
    }
    fn degree(&self) -> usize {
        self.hashes.len()
    }
    fn neighbor(&self, x: u64, i: usize) -> usize {
        assert!(
            x < self.left || self.left == u64::MAX,
            "key {x} outside universe of size {}",
            self.left
        );
        i * self.stripe + self.hashes[i].bucket(x, self.stripe)
    }
    fn is_striped(&self) -> bool {
        true
    }
}

/// The `k`-wise polynomial family as a pluggable [`NeighborFamily`]:
/// proof that the expander seam is genuinely open — a baseline hash
/// family defined outside `crates/expander` drives any dictionary
/// front-end through [`FamilyExpander::Custom`].
#[derive(Debug, Clone, Copy)]
pub struct PolyFamily {
    /// Independence parameter `k` of each stripe's polynomial.
    pub independence: usize,
}

impl PolyFamily {
    /// Family with `O(log n)`-wise style independence `k`.
    #[must_use]
    pub fn new(independence: usize) -> Self {
        assert!(independence >= 1);
        PolyFamily { independence }
    }
}

impl NeighborFamily for PolyFamily {
    fn name(&self) -> &'static str {
        "poly"
    }

    fn build(
        &self,
        universe: u64,
        stripe_size: usize,
        degree: usize,
        seed: u64,
    ) -> FamilyExpander {
        assert!(degree > 0, "degree must be positive");
        assert!(stripe_size > 0, "stripes must be non-empty");
        let hashes = (0..degree)
            .map(|i| PolyHash::new(self.independence, seed.wrapping_add(i as u64)))
            .collect();
        let graph: Arc<dyn DynNeighborFn> = Arc::new(PolyStriped {
            left: universe,
            stripe: stripe_size,
            hashes,
        });
        FamilyExpander::Custom(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let h1 = PolyHash::new(8, 42);
        let h2 = PolyHash::new(8, 42);
        for x in 0..100 {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
        let h3 = PolyHash::new(8, 43);
        assert!((0..100).any(|x| h1.eval(x) != h3.eval(x)));
    }

    #[test]
    fn values_in_range() {
        let h = PolyHash::new(4, 7);
        for x in [0u64, 1, MERSENNE_P, u64::MAX] {
            assert!(h.eval(x) < MERSENNE_P);
            assert!(h.bucket(x, 17) < 17);
        }
    }

    #[test]
    fn degree_one_is_constant() {
        let h = PolyHash::new(1, 5);
        assert_eq!(h.eval(3), h.eval(9));
    }

    #[test]
    fn buckets_roughly_uniform() {
        let h = PolyHash::new(16, 99);
        let m = 32;
        let mut counts = vec![0usize; m];
        for x in 0..3200u64 {
            counts[h.bucket(x, m)] += 1;
        }
        for &c in &counts {
            assert!(c > 40 && c < 200, "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn poly_family_plugs_into_the_expander_seam() {
        let fam = PolyFamily::new(8);
        assert_eq!(fam.name(), "poly");
        let g = fam.build(1 << 20, 64, 4, 11);
        assert_eq!(g.left_size(), 1 << 20);
        assert_eq!(g.right_size(), 256);
        assert_eq!(g.degree(), 4);
        assert!(g.is_striped());
        assert_eq!(g.stripe_size(), 64);
        // Neighbors land in their stripes and rebuilding is deterministic.
        let g2 = fam.build(1 << 20, 64, 4, 11);
        for x in [0u64, 1, 17, (1 << 20) - 1] {
            for i in 0..4 {
                let y = g.neighbor(x, i);
                assert!(y >= i * 64 && y < (i + 1) * 64);
                assert_eq!(y, g2.neighbor(x, i));
            }
        }
        // Different seeds give (almost surely) different graphs.
        let g3 = fam.build(1 << 20, 64, 4, 12);
        assert!((0..200).any(|x| g.neighbors(x) != g3.neighbors(x)));
    }

    #[test]
    fn mulmod_matches_u128_reference() {
        for (a, b) in [
            (3u64, 5u64),
            (MERSENNE_P - 1, MERSENNE_P - 1),
            (1 << 60, 12345),
        ] {
            let want = ((u128::from(a) * u128::from(b)) % u128::from(MERSENNE_P)) as u64;
            assert_eq!(mulmod(a, b), want);
        }
    }
}
