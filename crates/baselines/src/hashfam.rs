//! `k`-wise independent polynomial hashing over the Mersenne prime
//! `p = 2^61 - 1`.
//!
//! The paper's randomized comparators assume "O(log n)-wise independent
//! hash functions, for which a large range of hashing algorithms can be
//! shown to work well" — the textbook realization is a degree-`(k-1)`
//! polynomial with uniformly random coefficients evaluated by Horner's
//! rule modulo a Mersenne prime (fast reduction, description of `k` words
//! fits in internal memory).

/// The Mersenne prime `2^61 - 1`.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// Splitmix64 step — a tiny seeded PRNG for drawing coefficients.
///
/// The family only needs coefficients that are deterministic per seed and
/// close to uniform in `[0, p)`; splitmix64 (the same mixer used by
/// `expander::seeded`) provides that without an external RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw from `[0, MERSENNE_P)` by rejection sampling.
fn uniform_mod_p(state: &mut u64) -> u64 {
    loop {
        // Keep 61 bits; accept unless we hit p exactly (prob 2^-61).
        let r = splitmix64(state) >> 3;
        if r < MERSENNE_P {
            return r;
        }
    }
}

fn mulmod(a: u64, b: u64) -> u64 {
    let prod = u128::from(a) * u128::from(b);
    let lo = (prod & u128::from(MERSENNE_P)) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

fn addmod(a: u64, b: u64) -> u64 {
    let mut s = a + b;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// A sample from the `k`-wise independent polynomial family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyHash {
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Draw a degree-`(k-1)` polynomial with seed `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "independence parameter must be at least 1");
        let mut state = seed;
        let coeffs = (0..k).map(|_| uniform_mod_p(&mut state)).collect();
        PolyHash { coeffs }
    }

    /// Independence parameter `k`.
    #[must_use]
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluate the polynomial at `x` (result in `[0, p)`).
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = addmod(mulmod(acc, x), c);
        }
        acc
    }

    /// Hash into `[0, m)`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[must_use]
    pub fn bucket(&self, x: u64, m: usize) -> usize {
        assert!(m > 0);
        (self.eval(x) % m as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let h1 = PolyHash::new(8, 42);
        let h2 = PolyHash::new(8, 42);
        for x in 0..100 {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
        let h3 = PolyHash::new(8, 43);
        assert!((0..100).any(|x| h1.eval(x) != h3.eval(x)));
    }

    #[test]
    fn values_in_range() {
        let h = PolyHash::new(4, 7);
        for x in [0u64, 1, MERSENNE_P, u64::MAX] {
            assert!(h.eval(x) < MERSENNE_P);
            assert!(h.bucket(x, 17) < 17);
        }
    }

    #[test]
    fn degree_one_is_constant() {
        let h = PolyHash::new(1, 5);
        assert_eq!(h.eval(3), h.eval(9));
    }

    #[test]
    fn buckets_roughly_uniform() {
        let h = PolyHash::new(16, 99);
        let m = 32;
        let mut counts = vec![0usize; m];
        for x in 0..3200u64 {
            counts[h.bucket(x, m)] += 1;
        }
        for &c in &counts {
            assert!(c > 40 && c < 200, "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn mulmod_matches_u128_reference() {
        for (a, b) in [
            (3u64, 5u64),
            (MERSENNE_P - 1, MERSENNE_P - 1),
            (1 << 60, 12345),
        ] {
            let want = ((u128::from(a) * u128::from(b)) % u128::from(MERSENNE_P)) as u64;
            assert_eq!(mulmod(a, b), want);
        }
    }
}
