//! Hashing with striping: the paper's first randomized comparator.
//!
//! "Having D parallel disks can be exploited by striping, i.e.,
//! considering the disks as a single disk with block size BD. If BD is at
//! least logarithmic in the number of keys, a linear space hash table
//! (with a suitable constant) has no overflowing blocks with high
//! probability. This is true even if we store associated information of
//! size O(BD/log n) along with each key."
//!
//! One bucket = one stripe (`B·D` words). Lookup hashes to a stripe and
//! reads it: **1 parallel I/O w.h.p.** (always, unless the bucket
//! overflowed — overflow keys chain into the following stripes, which is
//! where the with-high-probability qualifier bites). Insertion is the
//! read-modify-write: **2 parallel I/Os w.h.p.**

use crate::hashfam::PolyHash;
use crate::slots::Slots;
use pdm::{DiskArray, OpCost, PdmConfig, StripedView, Word};

/// Errors from the striped table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Table is completely full along a probe chain.
    Full,
    /// The key is already present.
    Duplicate(u64),
    /// Payload width mismatch.
    PayloadWidth {
        /// Expected words.
        expected: usize,
        /// Supplied words.
        got: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Full => write!(f, "hash table full"),
            TableError::Duplicate(k) => write!(f, "key {k} already present"),
            TableError::PayloadWidth { expected, got } => {
                write!(f, "payload width mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A linear-space hash table over striped superblocks.
#[derive(Debug)]
pub struct StripedHashTable {
    disks: DiskArray,
    hash: PolyHash,
    slots: Slots,
    stripes: usize,
    len: usize,
    capacity: usize,
}

impl StripedHashTable {
    /// Create a table for `capacity` keys with `payload_words` words of
    /// satellite data each, on `d` disks with `block_words`-word blocks.
    ///
    /// Sized at load factor ≤ 1/2 per stripe so overflows are w.h.p.
    /// absent when `B·D = Ω(log n)`.
    #[must_use]
    pub fn new(
        capacity: usize,
        payload_words: usize,
        disks: usize,
        block_words: usize,
        seed: u64,
    ) -> Self {
        let cfg = PdmConfig::new(disks, block_words);
        let slots = Slots::new(payload_words);
        let per_stripe = slots.capacity(cfg.stripe_words()).max(1);
        let stripes = (2 * capacity.max(1)).div_ceil(per_stripe).max(2);
        let mut arr = DiskArray::new(cfg, stripes);
        StripedView::new(&mut arr).ensure_stripes(stripes);
        // Independence Θ(log n), as the paper assumes.
        let k = (usize::BITS - capacity.max(2).leading_zeros()) as usize + 2;
        StripedHashTable {
            disks: arr,
            hash: PolyHash::new(k, seed),
            slots,
            stripes,
            len: 0,
            capacity,
        }
    }

    /// Live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The owned disk array (I/O accounting).
    #[must_use]
    pub fn disks(&self) -> &DiskArray {
        &self.disks
    }

    /// Space in words.
    #[must_use]
    pub fn space_words(&self) -> usize {
        self.stripes * self.disks.config().stripe_words()
    }

    /// Lookup: reads the home stripe; walks the (w.h.p. empty) overflow
    /// chain only when the home stripe is full and lacks the key.
    pub fn lookup(&mut self, key: u64) -> (Option<Vec<Word>>, OpCost) {
        let scope = self.disks.begin_op();
        let home = self.hash.bucket(key, self.stripes);
        let sw = self.disks.config().stripe_words();
        for probe in 0..self.stripes {
            let s = (home + probe) % self.stripes;
            let buf = StripedView::new(&mut self.disks).read_stripe(s);
            if let Some(p) = self.slots.find(&buf, key) {
                return (Some(p), self.disks.end_op(scope));
            }
            if self.slots.live_count(&buf) < self.slots.capacity(sw) {
                // A non-full stripe terminates the overflow chain.
                break;
            }
        }
        (None, self.disks.end_op(scope))
    }

    /// Insert: read home stripe, place, write back. Overflow chains into
    /// following stripes (w.h.p. never needed at this load factor).
    pub fn insert(&mut self, key: u64, payload: &[Word]) -> Result<OpCost, TableError> {
        if payload.len() != self.slots.payload_words {
            return Err(TableError::PayloadWidth {
                expected: self.slots.payload_words,
                got: payload.len(),
            });
        }
        if self.len >= self.capacity.max(1) * 2 {
            // Hard stop far beyond the design load: the table was sized
            // for `capacity` keys at load 1/2.
            return Err(TableError::Full);
        }
        let scope = self.disks.begin_op();
        let home = self.hash.bucket(key, self.stripes);
        for probe in 0..self.stripes {
            let s = (home + probe) % self.stripes;
            let mut buf = StripedView::new(&mut self.disks).read_stripe(s);
            if self.slots.find(&buf, key).is_some() {
                return Err(TableError::Duplicate(key));
            }
            if self.slots.insert(&mut buf, key, payload) {
                StripedView::new(&mut self.disks).write_stripe(s, &buf);
                self.len += 1;
                return Ok(self.disks.end_op(scope));
            }
        }
        Err(TableError::Full)
    }

    /// Delete (tombstone). Returns whether the key was present.
    pub fn delete(&mut self, key: u64) -> (bool, OpCost) {
        let scope = self.disks.begin_op();
        let home = self.hash.bucket(key, self.stripes);
        let sw = self.disks.config().stripe_words();
        for probe in 0..self.stripes {
            let s = (home + probe) % self.stripes;
            let mut buf = StripedView::new(&mut self.disks).read_stripe(s);
            if self.slots.delete(&mut buf, key) {
                StripedView::new(&mut self.disks).write_stripe(s, &buf);
                self.len -= 1;
                return (true, self.disks.end_op(scope));
            }
            if self.slots.live_count(&buf) < self.slots.capacity(sw) {
                break;
            }
        }
        (false, self.disks.end_op(scope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> StripedHashTable {
        StripedHashTable::new(n, 2, 8, 16, 77)
    }

    #[test]
    fn roundtrip() {
        let mut t = table(500);
        for k in 0..500u64 {
            t.insert(k * 3, &[k, k + 1]).unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(t.lookup(k * 3).0, Some(vec![k, k + 1]));
        }
        assert_eq!(t.lookup(1).0, None);
    }

    #[test]
    fn one_io_lookups_whp() {
        let mut t = table(1000);
        for k in 0..1000u64 {
            t.insert(k.wrapping_mul(0x9E3779B9), &[0, 0]).unwrap();
        }
        let mut total = 0u64;
        for k in 0..1000u64 {
            let (found, cost) = t.lookup(k.wrapping_mul(0x9E3779B9));
            assert!(found.is_some());
            total += cost.parallel_ios;
        }
        let avg = total as f64 / 1000.0;
        assert!(avg < 1.05, "average lookup {avg} should be ~1 I/O");
    }

    #[test]
    fn insert_is_two_ios_whp() {
        let mut t = table(200);
        let mut worst = 0;
        for k in 0..200u64 {
            worst = worst.max(t.insert(k, &[0, 0]).unwrap().parallel_ios);
        }
        assert!(worst <= 4, "insert worst {worst}");
    }

    #[test]
    fn duplicate_and_delete() {
        let mut t = table(50);
        t.insert(9, &[1, 2]).unwrap();
        assert_eq!(t.insert(9, &[1, 2]), Err(TableError::Duplicate(9)));
        let (was, _) = t.delete(9);
        assert!(was);
        assert_eq!(t.lookup(9).0, None);
        let (absent, _) = t.delete(9);
        assert!(!absent);
    }

    #[test]
    fn payload_width_enforced() {
        let mut t = table(10);
        assert!(matches!(
            t.insert(1, &[5]),
            Err(TableError::PayloadWidth {
                expected: 2,
                got: 1
            })
        ));
    }
}
