//! Cuckoo hashing on the parallel disk model (Figure 1 row "\[13\]").
//!
//! "Cuckoo hashing can be used to achieve bandwidth BD/2, using a single
//! parallel I/O, but its update complexity is only constant in the
//! amortized expected sense."
//!
//! Two tables, each striped over **half** the disks, so the two candidate
//! cells of a key occupy disjoint disk sets and a lookup reads both in one
//! parallel I/O. A cell is a `B·D/2`-word half-stripe: a single record may
//! be as large as the whole cell — the advertised bandwidth — while small
//! records share it. Insertion is the classic eviction walk; when the
//! walk exceeds its budget the structure rehashes with fresh seeds — the
//! expensive rare event whose absence is precisely the paper's selling
//! point, and which the FIG1 experiment surfaces as cuckoo's worst-case
//! insert cost.

use crate::hashfam::PolyHash;
use crate::slots::Slots;
use pdm::{BlockAddr, DiskArray, OpCost, PdmConfig, ReadOptions, Word, WriteOptions};

/// Errors from cuckoo insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CuckooError {
    /// Key already present.
    Duplicate(u64),
    /// Payload width mismatch.
    PayloadWidth {
        /// Expected words.
        expected: usize,
        /// Supplied words.
        got: usize,
    },
    /// Too many consecutive rehashes (table over-full).
    RehashLimit,
}

impl std::fmt::Display for CuckooError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CuckooError::Duplicate(k) => write!(f, "key {k} already present"),
            CuckooError::PayloadWidth { expected, got } => {
                write!(f, "payload width mismatch: expected {expected}, got {got}")
            }
            CuckooError::RehashLimit => write!(f, "rehash limit exceeded"),
        }
    }
}

impl std::error::Error for CuckooError {}

/// Cuckoo hashing with two half-array tables.
#[derive(Debug)]
pub struct CuckooDict {
    disks: DiskArray,
    hashes: [PolyHash; 2],
    slots: Slots,
    cells_per_table: usize,
    blocks_per_cell: usize,
    half: usize, // disks per table
    len: usize,
    seed: u64,
    rehashes: usize,
}

impl CuckooDict {
    /// Create a dictionary for `capacity` keys of `payload_words` words on
    /// `d` disks (must be even) with `block_words`-word blocks.
    ///
    /// # Panics
    /// Panics if `d` is odd or a record does not fit in `B·D/2` words.
    #[must_use]
    pub fn new(
        capacity: usize,
        payload_words: usize,
        disks: usize,
        block_words: usize,
        seed: u64,
    ) -> Self {
        assert!(
            disks >= 2 && disks.is_multiple_of(2),
            "cuckoo needs an even number of disks"
        );
        let cfg = PdmConfig::new(disks, block_words);
        let half = disks / 2;
        let slots = Slots::new(payload_words);
        let cell_words = half * block_words; // BD/2: the bandwidth per cell
        assert!(
            slots.slot_words() <= cell_words,
            "record of {} words exceeds the BD/2 = {cell_words} bandwidth",
            slots.slot_words()
        );
        // Load factor < 1/2 (classic cuckoo threshold) per table.
        let cells_per_table = (capacity.max(1) * 5 / 4).max(2);
        let blocks_per_cell = 1; // a cell is one block row across its half
        let mut arr = DiskArray::new(cfg, 0);
        arr.grow(cells_per_table * blocks_per_cell);
        CuckooDict {
            disks: arr,
            hashes: [
                PolyHash::new(16, seed),
                PolyHash::new(16, seed ^ 0x00C0_FFEE),
            ],
            slots,
            cells_per_table,
            blocks_per_cell,
            half,
            len: 0,
            seed,
            rehashes: 0,
        }
    }

    /// Live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rehashes performed so far.
    #[must_use]
    pub fn rehashes(&self) -> usize {
        self.rehashes
    }

    /// The owned disk array (I/O accounting).
    #[must_use]
    pub fn disks(&self) -> &DiskArray {
        &self.disks
    }

    /// Record bandwidth in words (`B·D/2` minus the slot header).
    #[must_use]
    pub fn bandwidth_words(&self) -> usize {
        self.half * self.disks.block_words() - 2
    }

    fn cell_addrs(&self, table: usize, cell: usize) -> Vec<BlockAddr> {
        let base_disk = table * self.half;
        (0..self.half)
            .map(|i| BlockAddr::new(base_disk + i, cell * self.blocks_per_cell))
            .collect()
    }

    fn read_cell(&mut self, table: usize, cell: usize) -> Vec<Word> {
        let addrs = self.cell_addrs(table, cell);
        self.disks.read(&addrs, ReadOptions::default()).into_blocks().concat()
    }

    fn write_cell(&mut self, table: usize, cell: usize, buf: &[Word]) {
        let bw = self.disks.block_words();
        let addrs = self.cell_addrs(table, cell);
        let writes: Vec<(BlockAddr, &[Word])> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, &buf[i * bw..(i + 1) * bw]))
            .collect();
        self.disks.write(&writes, WriteOptions::default());
    }

    fn cell_of(&self, table: usize, key: u64) -> usize {
        self.hashes[table].bucket(key, self.cells_per_table)
    }

    /// Lookup: both candidate cells in **one** parallel I/O (the tables
    /// live on disjoint disk halves).
    pub fn lookup(&mut self, key: u64) -> (Option<Vec<Word>>, OpCost) {
        let scope = self.disks.begin_op();
        let mut addrs = self.cell_addrs(0, self.cell_of(0, key));
        addrs.extend(self.cell_addrs(1, self.cell_of(1, key)));
        let blocks = self.disks.read(&addrs, ReadOptions::default()).into_blocks();
        let c0 = blocks[..self.half].concat();
        let c1 = blocks[self.half..].concat();
        let found = self
            .slots
            .find(&c0, key)
            .or_else(|| self.slots.find(&c1, key));
        (found, self.disks.end_op(scope))
    }

    /// Insert with the eviction walk; rehashes on failure (amortized
    /// expected O(1), occasionally catastrophic — by design of the
    /// comparison).
    pub fn insert(&mut self, key: u64, payload: &[Word]) -> Result<OpCost, CuckooError> {
        if payload.len() != self.slots.payload_words {
            return Err(CuckooError::PayloadWidth {
                expected: self.slots.payload_words,
                got: payload.len(),
            });
        }
        let scope = self.disks.begin_op();
        if self.lookup(key).0.is_some() {
            return Err(CuckooError::Duplicate(key));
        }
        self.insert_walk(key, payload.to_vec())?;
        self.len += 1;
        Ok(self.disks.end_op(scope))
    }

    fn insert_walk(&mut self, key: u64, payload: Vec<Word>) -> Result<(), CuckooError> {
        let mut pending = vec![(key, payload)];
        for _round in 0..16 {
            // Place every pending item with an eviction walk.
            let mut stuck = false;
            while let Some((k, p)) = pending.pop() {
                if let Err(bounced) = self.walk_place(k, p) {
                    pending.push(bounced);
                    stuck = true;
                    break;
                }
            }
            if !stuck {
                return Ok(());
            }
            // A walk failed: rehash with fresh seeds. Gather *all*
            // residents first so nobody is left placed under stale hash
            // functions, clear the tables, and re-place everything in the
            // next round.
            self.rehashes += 1;
            let fresh_seed = self
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(self.rehashes as u64));
            self.hashes = [
                PolyHash::new(16, fresh_seed),
                PolyHash::new(16, fresh_seed ^ 0x00C0_FFEE),
            ];
            for table in 0..2 {
                for cell in 0..self.cells_per_table {
                    let buf = self.read_cell(table, cell);
                    let residents = self.slots.live_entries(&buf);
                    if !residents.is_empty() {
                        pending.extend(residents);
                        let zero = vec![0; buf.len()];
                        self.write_cell(table, cell, &zero);
                    }
                }
            }
        }
        Err(CuckooError::RehashLimit)
    }

    /// One eviction walk under the current hash functions. On failure the
    /// item left without a nest is returned so the caller can rehash.
    fn walk_place(&mut self, key: u64, payload: Vec<Word>) -> Result<(), (u64, Vec<Word>)> {
        let mut item = (key, payload);
        let max_walk = 8 + 4 * (usize::BITS - self.cells_per_table.leading_zeros()) as usize;
        let mut table = 0;
        for _ in 0..max_walk {
            let cell = self.cell_of(table, item.0);
            let mut buf = self.read_cell(table, cell);
            if self.slots.insert(&mut buf, item.0, &item.1) {
                self.write_cell(table, cell, &buf);
                return Ok(());
            }
            // Evict the occupant and take its place.
            let (old_key, old_payload) = self.slots.live_entries(&buf)[0].clone();
            let mut fresh = vec![0; buf.len()];
            assert!(self.slots.insert(&mut fresh, item.0, &item.1));
            self.write_cell(table, cell, &fresh);
            item = (old_key, old_payload);
            table = 1 - table;
        }
        Err(item)
    }

    /// Delete. Returns whether the key was present.
    pub fn delete(&mut self, key: u64) -> (bool, OpCost) {
        let scope = self.disks.begin_op();
        for table in 0..2 {
            let cell = self.cell_of(table, key);
            let mut buf = self.read_cell(table, cell);
            if self.slots.delete(&mut buf, key) {
                self.write_cell(table, cell, &buf);
                self.len -= 1;
                return (true, self.disks.end_op(scope));
            }
        }
        (false, self.disks.end_op(scope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(n: usize) -> CuckooDict {
        CuckooDict::new(n, 2, 8, 16, 0x0C1D)
    }

    #[test]
    fn roundtrip() {
        let mut c = dict(300);
        for k in 0..300u64 {
            c.insert(k * 7 + 1, &[k, k]).unwrap();
        }
        assert_eq!(c.len(), 300);
        for k in 0..300u64 {
            assert_eq!(c.lookup(k * 7 + 1).0, Some(vec![k, k]));
        }
        assert_eq!(c.lookup(2).0, None);
    }

    #[test]
    fn lookups_are_exactly_one_io() {
        let mut c = dict(100);
        for k in 0..100u64 {
            c.insert(k, &[0, 0]).unwrap();
        }
        for k in 0..120u64 {
            let (_, cost) = c.lookup(k);
            assert_eq!(cost.parallel_ios, 1, "cuckoo lookup must be 1 parallel I/O");
        }
    }

    #[test]
    fn bandwidth_is_half_stripe() {
        let c = CuckooDict::new(10, 2, 8, 16, 0);
        assert_eq!(c.bandwidth_words(), 4 * 16 - 2);
    }

    #[test]
    fn eviction_chains_resolve() {
        // Load factor near the threshold exercises eviction walks.
        let mut c = dict(64);
        let mut worst = 0;
        for k in 0..64u64 {
            let cost = c.insert(k.wrapping_mul(0xABCDEF), &[1, 2]).unwrap();
            worst = worst.max(cost.parallel_ios);
        }
        for k in 0..64u64 {
            assert!(c.lookup(k.wrapping_mul(0xABCDEF)).0.is_some());
        }
        // Some insert should have needed more than the 2-I/O minimum
        // (otherwise the test is not exercising evictions at all).
        assert!(worst >= 2);
    }

    #[test]
    fn duplicate_and_delete() {
        let mut c = dict(50);
        c.insert(5, &[1, 1]).unwrap();
        assert!(matches!(
            c.insert(5, &[1, 1]),
            Err(CuckooError::Duplicate(5))
        ));
        let (was, _) = c.delete(5);
        assert!(was);
        assert_eq!(c.lookup(5).0, None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn payload_width_enforced() {
        let mut c = dict(10);
        assert!(matches!(
            c.insert(1, &[1]),
            Err(CuckooError::PayloadWidth { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_disks_rejected() {
        let _ = CuckooDict::new(10, 1, 7, 8, 0);
    }
}
