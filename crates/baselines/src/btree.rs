//! A B-tree on the parallel disk model — the Section 1.2 incumbent.
//!
//! "This associative retrieval is implemented in most commercial systems
//! through variations of B-trees. ... one follows pointers down a tree
//! with branching factor B ... in most settings it takes 3 disk accesses
//! before the contents of the block is available." And from the
//! introduction: "the query time of a B-tree in the parallel disk model
//! is Θ(log_{BD} n), which means that no asymptotic speedup is achieved
//! compared to the one disk case unless the number of disks is very
//! large."
//!
//! Nodes are stripes (`B·D` words, fanout `Θ(BD)`), so a lookup costs
//! exactly the tree height in parallel I/Os — the quantity the SEC12
//! experiment pits against the dictionary's 1–2 I/Os.

use pdm::{DiskArray, OpCost, PdmConfig, StripedView, Word};

/// Errors from the B-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BTreeError {
    /// Key already present.
    Duplicate(u64),
    /// Payload width mismatch.
    PayloadWidth {
        /// Expected words.
        expected: usize,
        /// Supplied words.
        got: usize,
    },
}

impl std::fmt::Display for BTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BTreeError::Duplicate(k) => write!(f, "key {k} already present"),
            BTreeError::PayloadWidth { expected, got } => {
                write!(f, "payload width mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for BTreeError {}

const TYPE_LEAF: Word = 1;
const TYPE_INTERNAL: Word = 0;

/// Node stripe layout:
/// `[type, count, …]` with
/// * leaf: `count` entries of `(key, payload…)`,
/// * internal: `count` child pointers followed by `count-1` separator
///   keys (child `i` holds keys `< sep[i]`).
#[derive(Debug)]
pub struct PdmBTree {
    disks: DiskArray,
    payload_words: usize,
    root: usize,
    next_stripe: usize,
    len: usize,
    height: usize,
    leaf_cap: usize,
    internal_cap: usize,
}

impl PdmBTree {
    /// Create an empty tree on `d` disks with `block_words`-word blocks,
    /// storing `payload_words` words per key.
    ///
    /// # Panics
    /// Panics if the stripe cannot hold at least 4 leaf entries.
    #[must_use]
    pub fn new(payload_words: usize, disks: usize, block_words: usize) -> Self {
        let cfg = PdmConfig::new(disks, block_words);
        let sw = cfg.stripe_words();
        let leaf_cap = (sw - 2) / (1 + payload_words);
        // children (cap) + separators (cap - 1) ≤ sw - 2.
        let internal_cap = (sw - 1) / 2;
        assert!(
            leaf_cap >= 4,
            "stripe of {sw} words too small for a B-tree node"
        );
        let mut arr = DiskArray::new(cfg, 1);
        // Root starts as an empty leaf at stripe 0.
        let mut node = vec![0; sw];
        node[0] = TYPE_LEAF;
        StripedView::new(&mut arr).write_stripe(0, &node);
        PdmBTree {
            disks: arr,
            payload_words,
            root: 0,
            next_stripe: 1,
            len: 0,
            height: 1,
            leaf_cap,
            internal_cap,
        }
    }

    /// Live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (levels of nodes; = parallel I/Os per lookup).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The owned disk array (I/O accounting).
    #[must_use]
    pub fn disks(&self) -> &DiskArray {
        &self.disks
    }

    fn alloc_node(&mut self) -> usize {
        let s = self.next_stripe;
        self.next_stripe += 1;
        StripedView::new(&mut self.disks).ensure_stripes(self.next_stripe);
        s
    }

    fn read(&mut self, stripe: usize) -> Vec<Word> {
        StripedView::new(&mut self.disks).read_stripe(stripe)
    }

    fn write(&mut self, stripe: usize, node: &[Word]) {
        StripedView::new(&mut self.disks).write_stripe(stripe, node);
    }

    // --- node accessors ---------------------------------------------------

    fn is_leaf(node: &[Word]) -> bool {
        node[0] == TYPE_LEAF
    }

    fn count(node: &[Word]) -> usize {
        node[1] as usize
    }

    fn leaf_entry_words(&self) -> usize {
        1 + self.payload_words
    }

    fn leaf_key(&self, node: &[Word], i: usize) -> u64 {
        node[2 + i * self.leaf_entry_words()]
    }

    fn leaf_payload(&self, node: &[Word], i: usize) -> Vec<Word> {
        let off = 2 + i * self.leaf_entry_words() + 1;
        node[off..off + self.payload_words].to_vec()
    }

    fn child(node: &[Word], i: usize) -> usize {
        node[2 + i] as usize
    }

    fn separator(&self, node: &[Word], i: usize) -> u64 {
        node[2 + self.internal_cap + i]
    }

    /// Index of the child to descend into for `key`.
    fn child_index(&self, node: &[Word], key: u64) -> usize {
        let c = Self::count(node);
        let mut i = 0;
        while i + 1 < c && key >= self.separator(node, i) {
            i += 1;
        }
        i
    }

    // --- operations -------------------------------------------------------

    /// Lookup: walks from root to leaf, `height` parallel I/Os.
    pub fn lookup(&mut self, key: u64) -> (Option<Vec<Word>>, OpCost) {
        let scope = self.disks.begin_op();
        let mut stripe = self.root;
        loop {
            let node = self.read(stripe);
            if Self::is_leaf(&node) {
                let c = Self::count(&node);
                for i in 0..c {
                    if self.leaf_key(&node, i) == key {
                        return (Some(self.leaf_payload(&node, i)), self.disks.end_op(scope));
                    }
                }
                return (None, self.disks.end_op(scope));
            }
            stripe = Self::child(&node, self.child_index(&node, key));
        }
    }

    /// Insert with proactive splitting on the way down.
    pub fn insert(&mut self, key: u64, payload: &[Word]) -> Result<OpCost, BTreeError> {
        if payload.len() != self.payload_words {
            return Err(BTreeError::PayloadWidth {
                expected: self.payload_words,
                got: payload.len(),
            });
        }
        let scope = self.disks.begin_op();

        // Split a full root first (the only way the tree grows taller).
        let root_node = self.read(self.root);
        if self.is_full(&root_node) {
            let (right, sep) = self.split(self.root, root_node);
            let new_root = self.alloc_node();
            let sw = self.disks.config().stripe_words();
            let mut node = vec![0; sw];
            node[0] = TYPE_INTERNAL;
            node[1] = 2;
            node[2] = self.root as Word;
            node[3] = right as Word;
            node[2 + self.internal_cap] = sep;
            self.write(new_root, &node);
            self.root = new_root;
            self.height += 1;
        }

        let mut stripe = self.root;
        loop {
            let node = self.read(stripe);
            if Self::is_leaf(&node) {
                let mut node = node;
                let c = Self::count(&node);
                for i in 0..c {
                    if self.leaf_key(&node, i) == key {
                        return Err(BTreeError::Duplicate(key));
                    }
                }
                // Insert sorted.
                let mut pos = 0;
                while pos < c && self.leaf_key(&node, pos) < key {
                    pos += 1;
                }
                let ew = self.leaf_entry_words();
                let start = 2 + pos * ew;
                node.copy_within(start..2 + c * ew, start + ew);
                node[start] = key;
                node[start + 1..start + ew].copy_from_slice(payload);
                node[1] += 1;
                self.write(stripe, &node);
                self.len += 1;
                return Ok(self.disks.end_op(scope));
            }
            // Internal: proactively split the target child if full.
            let mut ci = self.child_index(&node, key);
            let child_stripe = Self::child(&node, ci);
            let child_node = self.read(child_stripe);
            if self.is_full(&child_node) {
                let (right, sep) = self.split(child_stripe, child_node);
                // Insert (sep, right) into this node at position ci.
                let mut node = node;
                let c = Self::count(&node);
                // Shift children after ci.
                for i in (ci + 1..c).rev() {
                    node[2 + i + 1] = node[2 + i];
                }
                node[2 + ci + 1] = right as Word;
                // Shift separators at/after ci.
                for i in (ci..c.saturating_sub(1)).rev() {
                    node[2 + self.internal_cap + i + 1] = node[2 + self.internal_cap + i];
                }
                node[2 + self.internal_cap + ci] = sep;
                node[1] += 1;
                self.write(stripe, &node);
                if key >= sep {
                    ci += 1;
                }
                stripe = Self::child(&node, ci);
            } else {
                stripe = child_stripe;
            }
        }
    }

    fn is_full(&self, node: &[Word]) -> bool {
        let c = Self::count(node);
        if Self::is_leaf(node) {
            c >= self.leaf_cap
        } else {
            c >= self.internal_cap
        }
    }

    /// Split a full node; returns (right sibling stripe, separator key).
    fn split(&mut self, stripe: usize, mut node: Vec<Word>) -> (usize, u64) {
        let right_stripe = self.alloc_node();
        let sw = self.disks.config().stripe_words();
        let mut right = vec![0; sw];
        let c = Self::count(&node);
        let half = c / 2;
        if Self::is_leaf(&node) {
            right[0] = TYPE_LEAF;
            let ew = self.leaf_entry_words();
            let sep = self.leaf_key(&node, half);
            right[1] = (c - half) as Word;
            right[2..2 + (c - half) * ew].copy_from_slice(&node[2 + half * ew..2 + c * ew]);
            node[1] = half as Word;
            // Zero the vacated tail for hygiene.
            for w in &mut node[2 + half * ew..2 + c * ew] {
                *w = 0;
            }
            self.write(stripe, &node);
            self.write(right_stripe, &right);
            (right_stripe, sep)
        } else {
            right[0] = TYPE_INTERNAL;
            // children: [0, half) stay; [half, c) move. Separator between
            // them is sep[half-1].
            let sep = self.separator(&node, half - 1);
            let moved = c - half;
            right[1] = moved as Word;
            for i in 0..moved {
                right[2 + i] = node[2 + half + i];
            }
            for i in 0..moved.saturating_sub(1) {
                right[2 + self.internal_cap + i] = node[2 + self.internal_cap + half + i];
            }
            node[1] = half as Word;
            self.write(stripe, &node);
            self.write(right_stripe, &right);
            (right_stripe, sep)
        }
    }

    /// Delete: removes the entry from its leaf (no rebalancing — deletion
    /// never increases the height, which is all the experiments measure).
    pub fn delete(&mut self, key: u64) -> (bool, OpCost) {
        let scope = self.disks.begin_op();
        let mut stripe = self.root;
        loop {
            let node = self.read(stripe);
            if Self::is_leaf(&node) {
                let mut node = node;
                let c = Self::count(&node);
                for i in 0..c {
                    if self.leaf_key(&node, i) == key {
                        let ew = self.leaf_entry_words();
                        node.copy_within(2 + (i + 1) * ew..2 + c * ew, 2 + i * ew);
                        node[1] -= 1;
                        for w in &mut node[2 + (c - 1) * ew..2 + c * ew] {
                            *w = 0;
                        }
                        self.write(stripe, &node);
                        self.len -= 1;
                        return (true, self.disks.end_op(scope));
                    }
                }
                return (false, self.disks.end_op(scope));
            }
            stripe = Self::child(&node, self.child_index(&node, key));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> PdmBTree {
        // Tiny stripes so the tree actually grows tall: D = 2, B = 8 ->
        // 16-word stripes, leaf_cap = 7 with payload 1.
        PdmBTree::new(1, 2, 8)
    }

    #[test]
    fn roundtrip_sequential() {
        let mut t = tree();
        for k in 0..500u64 {
            t.insert(k, &[k * 2]).unwrap();
        }
        assert_eq!(t.len(), 500);
        for k in 0..500u64 {
            assert_eq!(t.lookup(k).0, Some(vec![k * 2]), "key {k}");
        }
        assert_eq!(t.lookup(1000).0, None);
    }

    #[test]
    fn roundtrip_random_order() {
        let mut t = tree();
        let keys: Vec<u64> = (0..400u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) >> 16)
            .collect();
        for &k in &keys {
            t.insert(k, &[k]).unwrap();
        }
        for &k in &keys {
            assert_eq!(t.lookup(k).0, Some(vec![k]), "key {k}");
        }
    }

    #[test]
    fn lookup_cost_equals_height() {
        let mut t = tree();
        for k in 0..1000u64 {
            t.insert(k, &[0]).unwrap();
        }
        assert!(t.height() >= 3, "tree should be tall at this size");
        let (_, cost) = t.lookup(123);
        assert_eq!(cost.parallel_ios, t.height() as u64);
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = tree();
        let mut heights = Vec::new();
        for k in 0..2000u64 {
            t.insert(k, &[0]).unwrap();
            if k == 10 || k == 100 || k == 1999 {
                heights.push(t.height());
            }
        }
        assert!(heights.windows(2).all(|w| w[0] <= w[1]));
        assert!(*heights.last().unwrap() <= 8, "height blew up: {heights:?}");
    }

    #[test]
    fn duplicate_rejected() {
        let mut t = tree();
        t.insert(7, &[1]).unwrap();
        assert!(matches!(t.insert(7, &[1]), Err(BTreeError::Duplicate(7))));
    }

    #[test]
    fn delete_removes() {
        let mut t = tree();
        for k in 0..100u64 {
            t.insert(k, &[k]).unwrap();
        }
        for k in (0..100u64).step_by(2) {
            let (was, _) = t.delete(k);
            assert!(was, "key {k}");
        }
        for k in 0..100u64 {
            assert_eq!(t.lookup(k).0.is_some(), k % 2 == 1, "key {k}");
        }
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn payload_width_enforced() {
        let mut t = tree();
        assert!(matches!(
            t.insert(1, &[1, 2]),
            Err(BTreeError::PayloadWidth { .. })
        ));
    }

    #[test]
    fn wide_stripes_keep_tree_short() {
        // Realistic geometry: D = 16, B = 64 -> fanout ~512: height 2 for
        // 10k keys (the "3 disk accesses" regime of Section 1.2).
        let mut t = PdmBTree::new(1, 16, 64);
        for k in 0..10_000u64 {
            t.insert(k, &[0]).unwrap();
        }
        assert!(t.height() <= 3);
        let (_, cost) = t.lookup(9999);
        assert!(cost.parallel_ios >= 2, "taller than a hash table's 1 I/O");
    }
}
