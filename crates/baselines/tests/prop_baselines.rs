//! Model-based property tests: every baseline behaves exactly like a
//! `HashMap` under arbitrary operation interleavings.

use baselines::{CuckooDict, DghpDict, FolkloreDict, PdmBTree, StripedHashTable};
use pdm::{OpCost, Word};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Lookup(u64),
    Delete(u64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u64..48, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            2 => (0u64..48).prop_map(Op::Lookup),
            1 => (0u64..48).prop_map(Op::Delete),
        ],
        1..200,
    )
}

/// A minimal uniform facade so one driver exercises all five baselines.
trait Dict {
    fn insert(&mut self, k: u64, v: &[Word]) -> Result<OpCost, String>;
    fn lookup(&mut self, k: u64) -> Option<Vec<Word>>;
    fn delete(&mut self, k: u64) -> bool;
}

macro_rules! impl_dict {
    ($t:ty) => {
        impl Dict for $t {
            fn insert(&mut self, k: u64, v: &[Word]) -> Result<OpCost, String> {
                <$t>::insert(self, k, v).map_err(|e| e.to_string())
            }
            fn lookup(&mut self, k: u64) -> Option<Vec<Word>> {
                <$t>::lookup(self, k).0
            }
            fn delete(&mut self, k: u64) -> bool {
                <$t>::delete(self, k).0
            }
        }
    };
}

impl_dict!(StripedHashTable);
impl_dict!(CuckooDict);
impl_dict!(DghpDict);
impl_dict!(FolkloreDict);
impl_dict!(PdmBTree);

fn drive(dict: &mut dyn Dict, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let res = dict.insert(k, &[v]);
                if let std::collections::hash_map::Entry::Vacant(e) = model.entry(k) {
                    prop_assert!(res.is_ok(), "insert({}) failed: {:?}", k, res);
                    e.insert(v);
                } else {
                    prop_assert!(res.is_err(), "duplicate insert of {} accepted", k);
                }
            }
            Op::Lookup(k) => {
                prop_assert_eq!(
                    dict.lookup(k),
                    model.get(&k).map(|&v| vec![v]),
                    "lookup({}) diverged",
                    k
                );
            }
            Op::Delete(k) => {
                prop_assert_eq!(
                    dict.delete(k),
                    model.remove(&k).is_some(),
                    "delete({}) diverged",
                    k
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn striped_table_matches_model(ops in ops_strategy()) {
        drive(&mut StripedHashTable::new(64, 1, 4, 16, 0x51), &ops)?;
    }

    #[test]
    fn cuckoo_matches_model(ops in ops_strategy()) {
        drive(&mut CuckooDict::new(64, 1, 4, 16, 0x52), &ops)?;
    }

    #[test]
    fn dghp_matches_model(ops in ops_strategy()) {
        drive(&mut DghpDict::new(64, 1, 4, 16, 0x53), &ops)?;
    }

    #[test]
    fn folklore_matches_model(ops in ops_strategy()) {
        drive(&mut FolkloreDict::new(64, 1, 4, 16, 3, 0x54), &ops)?;
    }

    #[test]
    fn btree_matches_model(ops in ops_strategy()) {
        drive(&mut PdmBTree::new(1, 2, 8), &ops)?;
    }

    /// B-tree specifically: in-order traversal via lookups after random
    /// inserts — the separator/split logic must keep every key findable
    /// at every intermediate size.
    #[test]
    fn btree_stays_searchable_through_growth(keys in proptest::collection::hash_set(0u64..10_000, 1..300)) {
        let mut t = PdmBTree::new(1, 2, 8);
        let keys: Vec<u64> = keys.into_iter().collect();
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, &[k]).map_err(|e| TestCaseError::fail(e.to_string()))?;
            // Every previously inserted key must remain reachable.
            if i % 7 == 0 {
                for &p in &keys[..=i] {
                    prop_assert_eq!(t.lookup(p).0, Some(vec![p]), "lost key {} at size {}", p, i + 1);
                }
            }
        }
    }
}
