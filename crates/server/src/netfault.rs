//! Deterministic network fault injection: the transport-level sibling
//! of `pdm::fault::FaultPlan`.
//!
//! The disk layer replays any failure scenario bit-exactly from a seed;
//! this module extends the same discipline to the wire. A
//! [`NetFaultPlan`] is a declarative list of [`NetFault`]s — per-link
//! drop / delay / duplicate / reorder / truncate windows keyed to
//! **per-connection frame clocks** — enforced by [`ChaosNet`], a
//! frame-aware proxy fleet that [`TcpClient`](crate::TcpClient) /
//! [`TcpServer`](crate::TcpServer) traffic is routed through. Because
//! every fault decision is a pure function of `(link, direction,
//! frame index)`, the same plan against the same request sequence
//! produces the same failures, so a failing chaos drill replays exactly
//! from its seed.
//!
//! On top of the seeded plan, [`ChaosNet`] models **partitions** as
//! runtime state: [`ChaosNet::partition`] splits the links into named
//! groups and black-holes every frame to or from a link outside the
//! first (client-side) group — connections stay open, frames silently
//! vanish, and the client sees exactly what a real partition delivers:
//! timeouts. [`ChaosNet::heal`] lifts the partition.
//!
//! Fault semantics per frame (first matching fault wins):
//!
//! * [`NetFault::Drop`] — the frame silently vanishes; the sender never
//!   learns, the receiver times out.
//! * [`NetFault::Delay`] — the frame is forwarded after a fixed pause;
//!   later frames on the same connection and direction queue behind it
//!   (TCP keeps a stream in order, so does the proxy).
//! * [`NetFault::Duplicate`] — the frame is forwarded twice.
//! * [`NetFault::Reorder`] — the frame is held and forwarded *after*
//!   the next frame on the same connection and direction (a late
//!   arrival; if the connection ends first, the held frame is flushed
//!   before close).
//! * [`NetFault::Truncate`] — the frame's length prefix is forwarded
//!   followed by only half its payload, then the connection is cut:
//!   the receiver sees EOF mid-frame.
//!
//! Duplicate, reorder and truncate desynchronize the protocol's strict
//! one-request-one-response rhythm, so a client may read a stale or
//! broken response — always surfacing as a *typed* error, never a
//! hang or a silent wrong answer for the type-checked calls. They are
//! aimed at targeted protocol-robustness tests via the explicit
//! builders; [`NetFaultPlan::random`] draws only drop and delay
//! windows, the flaky-link mix whose drills must stay deterministic
//! end to end.

use crate::protocol::{read_frame_poll, write_frame, FrameRead};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a forwarding thread blocks in `read` before re-checking
/// the stop flag (bounds shutdown latency, invisible to traffic).
const POLL: Duration = Duration::from_millis(20);

/// Bound on the proxy's upstream connection attempt; a dead node makes
/// the accepted client connection close immediately.
const UPSTREAM_TIMEOUT: Duration = Duration::from_secs(1);

/// Which way a frame crosses a proxied link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Client → node (requests).
    ToNode,
    /// Node → client (responses).
    FromNode,
}

/// One injected network fault. See the [module docs](self) for exact
/// semantics. Frame indices are 0-based and **per connection, per
/// direction**: every new connection through a link starts a fresh
/// clock, mirroring how `pdm::fault::Fault` windows key to per-disk
/// access clocks.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Silently discard a window of frames.
    Drop {
        /// The affected link (proxy endpoint index).
        link: usize,
        /// The affected direction.
        dir: Dir,
        /// First frame index (per connection) that vanishes.
        first_frame: u64,
        /// Number of consecutive frames that vanish.
        count: u64,
    },
    /// Forward a window of frames after a fixed pause each.
    Delay {
        /// The affected link.
        link: usize,
        /// The affected direction.
        dir: Dir,
        /// First delayed frame index (per connection).
        first_frame: u64,
        /// Number of consecutive delayed frames.
        count: u64,
        /// Pause before each delayed frame is forwarded.
        millis: u64,
    },
    /// Forward the `nth_frame`-th frame twice.
    Duplicate {
        /// The affected link.
        link: usize,
        /// The affected direction.
        dir: Dir,
        /// The duplicated frame index (per connection).
        nth_frame: u64,
    },
    /// Hold the `nth_frame`-th frame and deliver it after its successor.
    Reorder {
        /// The affected link.
        link: usize,
        /// The affected direction.
        dir: Dir,
        /// The held frame index (per connection).
        nth_frame: u64,
    },
    /// Forward the frame's length prefix plus half its payload, then
    /// cut the connection (EOF mid-frame at the receiver).
    Truncate {
        /// The affected link.
        link: usize,
        /// The affected direction.
        dir: Dir,
        /// The truncated frame index (per connection).
        nth_frame: u64,
    },
}

/// What the proxy does with one frame (resolved from a plan by
/// [`NetFaultPlan::action`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAction {
    /// Forward unchanged.
    Forward,
    /// Discard silently.
    Drop,
    /// Forward after this pause.
    Delay(Duration),
    /// Forward twice.
    Duplicate,
    /// Hold until the next frame has been forwarded.
    Reorder,
    /// Forward a broken prefix and cut the connection.
    Truncate,
}

/// A deterministic, composable set of injected network faults.
///
/// Built either explicitly with the fluent constructors or
/// pseudo-randomly (but reproducibly) from a seed with
/// [`NetFaultPlan::random`] — the transport mirror of
/// `pdm::FaultPlan`.
///
/// ```
/// use pdm_server::netfault::{Dir, NetFaultPlan};
/// let plan = NetFaultPlan::new()
///     .drop_frames(0, Dir::ToNode, 2, 1)
///     .delay_frames(1, Dir::FromNode, 0, 3, 15)
///     .duplicate(0, Dir::FromNode, 4);
/// assert_eq!(plan.faults().len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    faults: Vec<NetFault>,
}

impl NetFaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        NetFaultPlan::default()
    }

    /// Add a [`NetFault::Drop`] window.
    #[must_use]
    pub fn drop_frames(mut self, link: usize, dir: Dir, first_frame: u64, count: u64) -> Self {
        self.faults.push(NetFault::Drop {
            link,
            dir,
            first_frame,
            count,
        });
        self
    }

    /// Add a [`NetFault::Delay`] window.
    #[must_use]
    pub fn delay_frames(
        mut self,
        link: usize,
        dir: Dir,
        first_frame: u64,
        count: u64,
        millis: u64,
    ) -> Self {
        self.faults.push(NetFault::Delay {
            link,
            dir,
            first_frame,
            count,
            millis,
        });
        self
    }

    /// Add a [`NetFault::Duplicate`].
    #[must_use]
    pub fn duplicate(mut self, link: usize, dir: Dir, nth_frame: u64) -> Self {
        self.faults.push(NetFault::Duplicate {
            link,
            dir,
            nth_frame,
        });
        self
    }

    /// Add a [`NetFault::Reorder`].
    #[must_use]
    pub fn reorder(mut self, link: usize, dir: Dir, nth_frame: u64) -> Self {
        self.faults.push(NetFault::Reorder {
            link,
            dir,
            nth_frame,
        });
        self
    }

    /// Add a [`NetFault::Truncate`].
    #[must_use]
    pub fn truncate(mut self, link: usize, dir: Dir, nth_frame: u64) -> Self {
        self.faults.push(NetFault::Truncate {
            link,
            dir,
            nth_frame,
        });
        self
    }

    /// Add an already-constructed fault.
    #[must_use]
    pub fn with_fault(mut self, fault: NetFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// `count` pseudo-random flaky-link faults over `links` proxied
    /// endpoints, deterministic in `seed`. Draws only **drop** and
    /// **delay** windows (weighted toward delays) in the first
    /// `frames_per_conn` frames of each connection: the faults that
    /// model a lossy, laggy network while keeping the strict
    /// one-request-one-response rhythm intact, so a whole cluster drill
    /// over the plan replays deterministically. Duplicate / reorder /
    /// truncate desynchronize that rhythm and must be asked for
    /// explicitly via the builders.
    ///
    /// # Panics
    /// Panics if `links == 0`.
    #[must_use]
    pub fn random(seed: u64, links: usize, frames_per_conn: u64, count: usize) -> Self {
        assert!(links > 0, "need at least one link");
        let mut state = seed ^ 0x5DEE_CE66_D051_F00D;
        let mut next = || {
            // SplitMix64: full-period, seed-deterministic.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let window = frames_per_conn.max(1);
        let mut plan = NetFaultPlan::new();
        for _ in 0..count {
            let link = (next() % links as u64) as usize;
            let dir = if next() % 2 == 0 {
                Dir::ToNode
            } else {
                Dir::FromNode
            };
            let first = next() % window;
            if next() % 3 == 0 {
                plan = plan.drop_frames(link, dir, first, 1);
            } else {
                plan = plan.delay_frames(link, dir, first, 1 + next() % 3, 1 + next() % 15);
            }
        }
        plan
    }

    /// The faults in this plan, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[NetFault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Resolve the action for frame number `frame` (per connection,
    /// 0-based) crossing `link` in direction `dir`. The first matching
    /// fault in insertion order wins; no match forwards.
    #[must_use]
    pub fn action(&self, link: usize, dir: Dir, frame: u64) -> FrameAction {
        for fault in &self.faults {
            match *fault {
                NetFault::Drop {
                    link: l,
                    dir: d,
                    first_frame,
                    count,
                } if l == link && d == dir && frame >= first_frame && frame - first_frame < count =>
                {
                    return FrameAction::Drop;
                }
                NetFault::Delay {
                    link: l,
                    dir: d,
                    first_frame,
                    count,
                    millis,
                } if l == link && d == dir && frame >= first_frame && frame - first_frame < count =>
                {
                    return FrameAction::Delay(Duration::from_millis(millis));
                }
                NetFault::Duplicate {
                    link: l,
                    dir: d,
                    nth_frame,
                } if l == link && d == dir && frame == nth_frame => {
                    return FrameAction::Duplicate;
                }
                NetFault::Reorder {
                    link: l,
                    dir: d,
                    nth_frame,
                } if l == link && d == dir && frame == nth_frame => {
                    return FrameAction::Reorder;
                }
                NetFault::Truncate {
                    link: l,
                    dir: d,
                    nth_frame,
                } if l == link && d == dir && frame == nth_frame => {
                    return FrameAction::Truncate;
                }
                _ => {}
            }
        }
        FrameAction::Forward
    }
}

/// Per-link traffic counters (frames, not bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames forwarded unchanged.
    pub forwarded: u64,
    /// Frames discarded by a [`NetFault::Drop`].
    pub dropped: u64,
    /// Frames forwarded after a [`NetFault::Delay`].
    pub delayed: u64,
    /// Frames forwarded twice by a [`NetFault::Duplicate`].
    pub duplicated: u64,
    /// Frames held by a [`NetFault::Reorder`].
    pub reordered: u64,
    /// Frames broken by a [`NetFault::Truncate`].
    pub truncated: u64,
    /// Frames black-holed by an active partition.
    pub blackholed: u64,
}

#[derive(Default)]
struct LinkCells {
    forwarded: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    truncated: AtomicU64,
    blackholed: AtomicU64,
}

struct ChaosShared {
    plan: NetFaultPlan,
    /// Global stop flag for acceptors and forwarding threads.
    stop: AtomicBool,
    /// When unset, every frame forwards regardless of the plan
    /// (partitions still apply). See [`ChaosNet::disarm`].
    armed: AtomicBool,
    /// Per-link partition black-hole switch.
    blocked: Vec<AtomicBool>,
    stats: Vec<LinkCells>,
}

struct LinkHandle {
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

/// A fleet of fault-injecting proxies, one per target endpoint
/// ("link"): clients connect to [`addr`](ChaosNet::addr)`(i)` instead
/// of target `i`, and every frame crossing link `i` is subjected to the
/// plan plus the current partition state. Protocol-agnostic above the
/// framing layer — it speaks length-prefixed frames, not opcodes — so
/// it fronts any [`TcpServer`](crate::TcpServer)-compatible endpoint.
///
/// ```no_run
/// use pdm_server::netfault::{ChaosNet, NetFaultPlan};
/// let targets = vec!["127.0.0.1:4000".parse().unwrap()];
/// let chaos = ChaosNet::start(NetFaultPlan::random(42, 1, 16, 4), &targets).unwrap();
/// let proxied = chaos.addr(0); // hand this to the client instead
/// chaos.partition(&[&[], &[0]]); // link 0 unreachable
/// chaos.heal();
/// chaos.shutdown();
/// ```
pub struct ChaosNet {
    shared: Arc<ChaosShared>,
    links: Vec<LinkHandle>,
}

impl ChaosNet {
    /// Start one proxy listener (on an ephemeral localhost port) per
    /// target address. Link `i` fronts `targets[i]`.
    ///
    /// # Errors
    /// Propagates listener bind / thread spawn failures.
    pub fn start(plan: NetFaultPlan, targets: &[SocketAddr]) -> io::Result<Self> {
        let shared = Arc::new(ChaosShared {
            plan,
            stop: AtomicBool::new(false),
            armed: AtomicBool::new(true),
            blocked: targets.iter().map(|_| AtomicBool::new(false)).collect(),
            stats: targets.iter().map(|_| LinkCells::default()).collect(),
        });
        let mut links = Vec::with_capacity(targets.len());
        for (i, &target) in targets.iter().enumerate() {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let shared = Arc::clone(&shared);
            let acceptor = std::thread::Builder::new()
                .name(format!("pdm-chaos-link-{i}"))
                .spawn(move || link_loop(&listener, i, target, &shared))?;
            links.push(LinkHandle {
                addr,
                acceptor: Some(acceptor),
            });
        }
        Ok(ChaosNet { shared, links })
    }

    /// The proxied address of link `link` (hand this to clients in
    /// place of the real target address).
    #[must_use]
    pub fn addr(&self, link: usize) -> SocketAddr {
        self.links[link].addr
    }

    /// All proxied addresses, in link order.
    #[must_use]
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.links.iter().map(|l| l.addr).collect()
    }

    /// Install a named partition. `groups[0]` is the group the clients
    /// share; every link in `groups[1..]` is black-holed (frames in
    /// both directions silently vanish — connections stay open and the
    /// client observes timeouts, exactly like real packet loss). Links
    /// in no group stay reachable. Replaces any previous partition.
    ///
    /// Nodes in this architecture never talk to each other directly
    /// (re-replication is router-mediated), so black-holing the links
    /// outside the client's group models the full partition.
    ///
    /// # Panics
    /// Panics if a group names a link out of range.
    pub fn partition(&self, groups: &[&[usize]]) {
        let mut blocked = vec![false; self.links.len()];
        for group in groups.iter().skip(1) {
            for &link in *group {
                assert!(link < self.links.len(), "link {link} out of range");
                blocked[link] = true;
            }
        }
        if let Some(first) = groups.first() {
            for &link in *first {
                assert!(link < self.links.len(), "link {link} out of range");
                blocked[link] = false;
            }
        }
        for (cell, b) in self.shared.blocked.iter().zip(blocked) {
            cell.store(b, Ordering::Release);
        }
    }

    /// Lift any partition: every link becomes reachable again.
    pub fn heal(&self) {
        for cell in &self.shared.blocked {
            cell.store(false, Ordering::Release);
        }
    }

    /// Whether `link` is currently black-holed by a partition.
    #[must_use]
    pub fn blocked(&self, link: usize) -> bool {
        self.shared.blocked[link].load(Ordering::Acquire)
    }

    /// Stop applying the fault plan: every subsequent frame forwards
    /// unchanged (partitions still apply). Lets a drill run its chaos
    /// phase, quiesce, and then audit / repair over a clean transport —
    /// repairs may open fresh connections whose frame clocks would
    /// otherwise re-enter the plan's early-frame windows.
    pub fn disarm(&self) {
        self.shared.armed.store(false, Ordering::Release);
    }

    /// Re-arm the fault plan after a [`disarm`](Self::disarm).
    pub fn arm(&self) {
        self.shared.armed.store(true, Ordering::Release);
    }

    /// Per-link traffic counters.
    #[must_use]
    pub fn stats(&self) -> Vec<LinkStats> {
        self.shared
            .stats
            .iter()
            .map(|c| LinkStats {
                forwarded: c.forwarded.load(Ordering::Relaxed),
                dropped: c.dropped.load(Ordering::Relaxed),
                delayed: c.delayed.load(Ordering::Relaxed),
                duplicated: c.duplicated.load(Ordering::Relaxed),
                reordered: c.reordered.load(Ordering::Relaxed),
                truncated: c.truncated.load(Ordering::Relaxed),
                blackholed: c.blackholed.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Stop all listeners and forwarding threads and join them.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock each `accept` with a throwaway connection; if that
        // fails the listener is already dead and accept has returned.
        for link in &self.links {
            let _ = TcpStream::connect(link.addr);
        }
        for link in &mut self.links {
            if let Some(acceptor) = link.acceptor.take() {
                let _ = acceptor.join();
            }
        }
    }
}

impl Drop for ChaosNet {
    fn drop(&mut self) {
        self.stop_all();
    }
}

impl std::fmt::Debug for ChaosNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosNet")
            .field("links", &self.links.len())
            .field("plan_faults", &self.shared.plan.faults().len())
            .finish_non_exhaustive()
    }
}

fn link_loop(listener: &TcpListener, link: usize, target: SocketAddr, shared: &Arc<ChaosShared>) {
    let pumps: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(client) = stream else { continue };
        // A dead node behind the link: drop the accepted connection so
        // the client sees an immediate close, like a refused target.
        let Ok(upstream) = TcpStream::connect_timeout(&target, UPSTREAM_TIMEOUT) else {
            continue;
        };
        if client.set_read_timeout(Some(POLL)).is_err()
            || upstream.set_read_timeout(Some(POLL)).is_err()
        {
            continue;
        }
        let (Ok(client_rx), Ok(upstream_rx)) = (client.try_clone(), upstream.try_clone()) else {
            continue;
        };
        let spawn_pump = |name: String, src: TcpStream, dst: TcpStream, dir: Dir| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(name)
                .spawn(move || pump(src, dst, link, dir, &shared))
        };
        let to_node = spawn_pump(
            format!("pdm-chaos-{link}-c{next_id}-tx"),
            client_rx,
            upstream,
            Dir::ToNode,
        );
        let from_node = spawn_pump(
            format!("pdm-chaos-{link}-c{next_id}-rx"),
            upstream_rx,
            client,
            Dir::FromNode,
        );
        next_id += 1;
        let mut held = pumps.lock().unwrap_or_else(PoisonError::into_inner);
        // Reap finished pumps opportunistically so the vec does not
        // grow with connection churn.
        held.retain(|h| !h.is_finished());
        held.extend(to_node.into_iter().chain(from_node));
    }
    let held = std::mem::take(&mut *pumps.lock().unwrap_or_else(PoisonError::into_inner));
    for handle in held {
        let _ = handle.join();
    }
}

/// Forward frames from `src` to `dst` for one connection direction,
/// applying partition state and the fault plan per frame.
fn pump(mut src: TcpStream, mut dst: TcpStream, link: usize, dir: Dir, shared: &ChaosShared) {
    let mut clock: u64 = 0;
    // Reorder buffer: a held frame goes out right after its successor.
    let mut held: Option<Vec<u8>> = None;
    let stop = || shared.stop.load(Ordering::Acquire);
    loop {
        if stop() {
            break;
        }
        let frame = match read_frame_poll(&mut src, stop) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Eof | FrameRead::Stopped) | Err(_) => break,
        };
        let n = clock;
        clock += 1;
        let cells = &shared.stats[link];
        if shared.blocked[link].load(Ordering::Acquire) {
            cells.blackholed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let action = if shared.armed.load(Ordering::Acquire) {
            shared.plan.action(link, dir, n)
        } else {
            FrameAction::Forward
        };
        let mut closing = false;
        match action {
            FrameAction::Drop => {
                cells.dropped.fetch_add(1, Ordering::Relaxed);
            }
            FrameAction::Reorder if held.is_none() => {
                cells.reordered.fetch_add(1, Ordering::Relaxed);
                held = Some(frame);
            }
            FrameAction::Truncate => {
                cells.truncated.fetch_add(1, Ordering::Relaxed);
                if !frame.is_empty() {
                    let mut broken = Vec::with_capacity(4 + frame.len() / 2);
                    broken.extend_from_slice(&(frame.len() as u32).to_le_bytes());
                    broken.extend_from_slice(&frame[..frame.len() / 2]);
                    let _ = io::Write::write_all(&mut dst, &broken);
                    let _ = io::Write::flush(&mut dst);
                }
                closing = true;
            }
            FrameAction::Forward | FrameAction::Delay(_) | FrameAction::Duplicate
            | FrameAction::Reorder => {
                let copies = if action == FrameAction::Duplicate {
                    cells.duplicated.fetch_add(1, Ordering::Relaxed);
                    2
                } else {
                    if let FrameAction::Delay(pause) = action {
                        cells.delayed.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(pause);
                    } else {
                        cells.forwarded.fetch_add(1, Ordering::Relaxed);
                    }
                    1
                };
                for _ in 0..copies {
                    if write_frame(&mut dst, &frame).is_err() {
                        closing = true;
                        break;
                    }
                }
                if !closing {
                    if let Some(late) = held.take() {
                        closing = write_frame(&mut dst, &late).is_err();
                    }
                }
            }
        }
        if closing {
            break;
        }
    }
    // Flush a held frame as a late arrival, then cut both directions so
    // the sibling pump unblocks too.
    if let Some(late) = held.take() {
        let _ = write_frame(&mut dst, &late);
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame;

    /// A minimal frame-echo peer: echoes every frame back, one
    /// connection at a time. Detached — it dies with the test process
    /// (joining it would race proxy shutdown: a stop flag can land
    /// before a goodbye frame crosses the proxy).
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                while let Ok(Some(payload)) = read_frame(&mut stream) {
                    if write_frame(&mut stream, &payload).is_err() {
                        break;
                    }
                }
            }
        });
        addr
    }

    fn connect(chaos: &ChaosNet) -> TcpStream {
        let s = TcpStream::connect(chaos.addr(0)).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = NetFaultPlan::random(42, 3, 16, 8);
        let b = NetFaultPlan::random(42, 3, 16, 8);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 8);
        let c = NetFaultPlan::random(43, 3, 16, 8);
        assert_ne!(a, c, "different seeds draw different plans");
        // Only drop/delay in the random mix (deterministic drills).
        assert!(a.faults().iter().all(|f| matches!(
            f,
            NetFault::Drop { .. } | NetFault::Delay { .. }
        )));
    }

    #[test]
    fn action_first_match_wins_and_windows_bound() {
        let plan = NetFaultPlan::new()
            .drop_frames(0, Dir::ToNode, 2, 2)
            .delay_frames(0, Dir::ToNode, 3, 1, 7);
        assert_eq!(plan.action(0, Dir::ToNode, 1), FrameAction::Forward);
        assert_eq!(plan.action(0, Dir::ToNode, 2), FrameAction::Drop);
        assert_eq!(plan.action(0, Dir::ToNode, 3), FrameAction::Drop, "drop added first wins");
        assert_eq!(plan.action(0, Dir::ToNode, 4), FrameAction::Forward);
        assert_eq!(plan.action(0, Dir::FromNode, 2), FrameAction::Forward, "direction-scoped");
        assert_eq!(plan.action(1, Dir::ToNode, 2), FrameAction::Forward, "link-scoped");
    }

    #[test]
    fn clean_proxy_forwards_both_ways() {
        let addr = echo_server();
        let chaos = ChaosNet::start(NetFaultPlan::new(), &[addr]).unwrap();
        let mut conn = connect(&chaos);
        for tag in [b"aa".as_slice(), b"bb", b"cc"] {
            write_frame(&mut conn, tag).unwrap();
            assert_eq!(read_frame(&mut conn).unwrap().unwrap(), tag);
        }
        let stats = chaos.stats();
        assert_eq!(stats[0].forwarded, 6, "3 requests + 3 echoes");
        chaos.shutdown();
    }

    #[test]
    fn dropped_request_frame_never_arrives() {
        let addr = echo_server();
        let plan = NetFaultPlan::new().drop_frames(0, Dir::ToNode, 0, 1);
        let chaos = ChaosNet::start(plan, &[addr]).unwrap();
        let mut conn = connect(&chaos);
        write_frame(&mut conn, b"lost").unwrap();
        write_frame(&mut conn, b"kept").unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap().unwrap(),
            b"kept",
            "first echo is the surviving second frame"
        );
        assert_eq!(chaos.stats()[0].dropped, 1);
        chaos.shutdown();
    }

    #[test]
    fn duplicate_and_reorder_reshape_the_stream() {
        let addr = echo_server();
        // Request direction: duplicate frame 0, so the echo answers it
        // twice; reorder response frame 1 behind response frame 2.
        let plan = NetFaultPlan::new()
            .duplicate(0, Dir::ToNode, 0)
            .reorder(0, Dir::FromNode, 1);
        let chaos = ChaosNet::start(plan, &[addr]).unwrap();
        let mut conn = connect(&chaos);
        write_frame(&mut conn, b"a").unwrap();
        write_frame(&mut conn, b"b").unwrap();
        // Echo stream: a, a, b. Response frame 1 (second "a") is held
        // and delivered after frame 2 ("b").
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"a");
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"b");
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"a", "late arrival");
        let stats = chaos.stats();
        assert_eq!(stats[0].duplicated, 1);
        assert_eq!(stats[0].reordered, 1);
        chaos.shutdown();
    }

    #[test]
    fn truncated_response_surfaces_as_eof_mid_frame() {
        let addr = echo_server();
        let plan = NetFaultPlan::new().truncate(0, Dir::FromNode, 0);
        let chaos = ChaosNet::start(plan, &[addr]).unwrap();
        let mut conn = connect(&chaos);
        write_frame(&mut conn, b"payload").unwrap();
        let err = read_frame(&mut conn).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(chaos.stats()[0].truncated, 1);
        chaos.shutdown();
    }

    #[test]
    fn partition_blackholes_and_heal_restores() {
        let addr = echo_server();
        let chaos = ChaosNet::start(NetFaultPlan::new(), &[addr]).unwrap();
        let mut conn = connect(&chaos);
        conn.set_read_timeout(Some(Duration::from_millis(80))).unwrap();
        chaos.partition(&[&[], &[0]]);
        assert!(chaos.blocked(0));
        write_frame(&mut conn, b"void").unwrap();
        let err = read_frame(&mut conn).unwrap_err();
        assert!(
            matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut),
            "partitioned link times out, got {err:?}"
        );
        chaos.heal();
        assert!(!chaos.blocked(0));
        write_frame(&mut conn, b"back").unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"back");
        assert_eq!(chaos.stats()[0].blackholed, 1);
        chaos.shutdown();
    }

    #[test]
    fn disarm_suspends_the_plan() {
        let addr = echo_server();
        let plan = NetFaultPlan::new().drop_frames(0, Dir::ToNode, 0, u64::MAX);
        let chaos = ChaosNet::start(plan, &[addr]).unwrap();
        chaos.disarm();
        let mut conn = connect(&chaos);
        write_frame(&mut conn, b"through").unwrap();
        assert_eq!(read_frame(&mut conn).unwrap().unwrap(), b"through");
        chaos.shutdown();
    }
}
